"""Section 3.3's MTTF illustration and section 1's write-age claim.

* MTTF: "consider a system that crashes once every two months ... the
  MTTF of a disk-based system would be 15 years, and the MTTF of Rio
  without protection would be 11 years."
* Write age: "1/3 to 2/3 of newly written data lives longer than 30
  seconds", so a 30-second delayed-write policy still has to write most
  data through — while Rio's delay-until-overflow lets files die in
  memory.
"""

from repro.analysis import WriteAgeTrace, mttf_table, write_age_survival
from repro.analysis.mttf import PAPER_RATES
from repro.faults import FaultType
from repro.hw.clock import NS_PER_SEC
from repro.reliability import run_table1_campaign
from repro.system import SystemSpec, build_system
from repro.workloads.memtest import MemTest, MemTestParams

from _helpers import bench_crashes_per_cell


def test_mttf_from_paper_rates(benchmark, record_result):
    table = benchmark.pedantic(mttf_table, args=(PAPER_RATES,), rounds=1, iterations=1)
    record_result(
        "mttf_paper_rates",
        "MTTF at one crash per two months (paper's Table 1 rates):\n"
        + "\n".join(f"  {name:11s}: {years:5.1f} years" for name, years in table.items())
        + "\n  (paper quotes ~15 years disk, ~11 years Rio without protection)",
    )
    assert 14 < table["disk"] < 17
    assert 10 < table["rio_noprot"] < 12
    assert table["rio_prot"] > table["disk"]


def test_mttf_from_measured_campaign(benchmark, record_result):
    """Recompute MTTF from our own (scaled) campaign: with corruption this
    rare, a small campaign often measures zero -> infinite MTTF, so the
    assertion is one-sided."""
    crashes = max(2, bench_crashes_per_cell() // 2)
    faults = (FaultType.KERNEL_TEXT, FaultType.COPY_OVERRUN, FaultType.POINTER)

    def campaign():
        table = run_table1_campaign(crashes_per_cell=crashes, fault_types=faults)
        return {
            name: (table.total_corruptions(name), max(1, table.total_crashes(name)))
            for name in ("disk", "rio_noprot", "rio_prot")
        }

    rates = benchmark.pedantic(campaign, rounds=1, iterations=1)
    mttfs = mttf_table(rates)
    record_result(
        "mttf_measured",
        "MTTF from our scaled campaign (one crash per two months):\n"
        + "\n".join(
            f"  {name:11s}: {rates[name][0]}/{rates[name][1]} corrupted -> "
            f"{mttfs[name]:.1f} years"
            for name in rates
        ),
    )
    # With a few crashes per cell the estimate is extremely noisy (the
    # paper needed 650 crashes per system); require only plausibility.
    for name, years in mttfs.items():
        assert years > 0.3, f"{name} corrupts implausibly often"


def test_write_age_survival(benchmark, record_result):
    """Trace a file workload's write lifetimes and measure how much newly
    written data outlives a 30-second delay window."""

    def run_trace():
        system = build_system(SystemSpec(policy="rio", rio=None, fs_blocks=1024))
        memtest = MemTest(
            system.vfs, seed=4242, params=MemTestParams(max_files=16, max_io_bytes=8192)
        )
        memtest.setup()
        trace = WriteAgeTrace()
        for _ in range(1200):
            op = memtest.step()
            now = system.clock.now_ns
            if op.kind == "write":
                trace.record_write(op.path, op.offset, op.length, now)
            elif op.kind == "delete":
                trace.record_delete(op.path, now)
            # memTest ops are fast; pace the virtual clock so lifetimes
            # span the interesting 1-120 s range.
            system.clock.consume(int(0.4 * NS_PER_SEC))
        return trace, system.clock.now_ns

    trace, end_ns = benchmark.pedantic(run_trace, rounds=1, iterations=1)
    curve = write_age_survival(trace, end_ns)
    dead_30 = trace.bytes_dead_within(30.0)
    total = trace.total_written()
    record_result(
        "write_age",
        "Survival of newly written bytes (fraction still live after T):\n"
        + "\n".join(f"  {age:>4d}s: {frac:5.1%}" for age, frac in curve.items())
        + f"\n  bytes written: {total}; dead within 30s: {dead_30}"
        f" ({dead_30 / total:.1%})"
        + "\n  paper (from [Baker91, Hartman93]): 1/3 to 2/3 live longer than 30s,"
        + "\n  so a 30-second delay cannot avoid most write traffic — Rio's"
        + "\n  delay-until-overflow can.",
    )
    # The headline claim: a large fraction of data outlives 30 seconds.
    assert 0.25 <= curve[30] <= 0.9
    # And survival declines with age.
    assert curve[1] >= curve[30] >= curve[120]
