"""Section 2.1's claim: code patching is 20-50% slower than the TLB
method, which itself adds essentially no overhead.

Measures a store-dense workload (file writes) under the three protection
modes on otherwise identical Rio systems, in virtual time.  Under
CODE_PATCHING the kernel text really is rewritten with inline address
checks and interpreted, so the overhead is the extra instructions the
patched binary executes — and the [Wahbe93]-style check-elision pass
(``code_patch_optimize``) measurably narrows it.
"""

import pytest

from repro.core import ProtectionMode, RioConfig
from repro.system import SystemSpec, build_system


def run_store_workload(mode: ProtectionMode, optimize: bool = True) -> float:
    spec = SystemSpec(
        policy="rio",
        rio=RioConfig(
            protection=mode,
            maintain_checksums=False,
            code_patch_optimize=optimize,
        ),
    )
    system = build_system(spec)
    vfs = system.vfs
    t0 = system.clock.now_ns
    fd = vfs.open("/stores", create=True)
    payload = bytes(range(256)) * 32  # 8 KB
    for i in range(64):
        vfs.pwrite(fd, payload, i * len(payload))
    vfs.close(fd)
    return (system.clock.now_ns - t0) / 1e9


@pytest.mark.parametrize(
    "mode",
    [ProtectionMode.NONE, ProtectionMode.VM_KSEG, ProtectionMode.CODE_PATCHING],
    ids=["none", "vm_kseg", "code_patching"],
)
def test_protection_mode_cost(benchmark, mode):
    seconds = benchmark.pedantic(run_store_workload, args=(mode,), rounds=1, iterations=1)
    assert seconds > 0


def test_code_patching_overhead_band(benchmark, record_result):
    def measure():
        return {
            mode.value: run_store_workload(mode)
            for mode in (
                ProtectionMode.NONE,
                ProtectionMode.VM_KSEG,
                ProtectionMode.CODE_PATCHING,
            )
        }

    times = benchmark.pedantic(measure, rounds=1, iterations=1)
    base = times["none"]
    vm_overhead = times["vm_kseg"] / base - 1.0
    patch_overhead = times["code_patching"] / base - 1.0
    record_result(
        "code_patching_overhead",
        "Store-dense workload, virtual seconds by protection mode:\n"
        + "\n".join(f"  {mode:14s}: {secs:.4f}s" for mode, secs in times.items())
        + f"\n  VM/KSEG overhead:       {100 * vm_overhead:.1f}%  (paper: ~0%)"
        + f"\n  code patching overhead: {100 * patch_overhead:.1f}%  (paper: 20-50%)",
    )
    # The TLB method is essentially free.
    assert vm_overhead < 0.02
    # Code patching lands in (or near) the paper's 20-50% band.
    assert 0.10 <= patch_overhead <= 0.80


def test_check_elision_reduces_overhead(benchmark, record_result):
    """The optimizer's elided checks and unspilled scratch registers must
    show up as real time: optimized < naive, both in the band."""

    def measure():
        return {
            "none": run_store_workload(ProtectionMode.NONE),
            "optimized": run_store_workload(ProtectionMode.CODE_PATCHING, True),
            "naive": run_store_workload(ProtectionMode.CODE_PATCHING, False),
        }

    times = benchmark.pedantic(measure, rounds=1, iterations=1)
    base = times["none"]
    optimized = times["optimized"] / base - 1.0
    naive = times["naive"] / base - 1.0
    record_result(
        "code_patch_elision",
        "Check-elision effect on the store-dense workload:\n"
        f"  naive patch overhead:     {100 * naive:.1f}%\n"
        f"  optimized patch overhead: {100 * optimized:.1f}%\n"
        f"  elision saved:            {100 * (naive - optimized):.1f} points",
    )
    assert optimized < naive
    assert 0.10 <= optimized <= 0.80
    assert 0.10 <= naive <= 0.80
