"""Cluster scaling: acked throughput from 1 to 8 kernel shards.

Drives the same seeded client population against clusters of 1, 2, 4
and 8 shards, once calm and once through a rolling crash storm (one
forced kernel crash per shard, staggered so at most one shard is down
at a time).  Cluster throughput is acked operations over the *slowest
shard's* elapsed virtual time — shards run concurrently, so the
cluster is done when its last shard is — which is exactly why the
curve scales: N shards each execute ~1/N of the requests, so each
virtual clock advances ~1/N as far.

Shape assertions are the cluster's design claims: the calm curve grows
roughly linearly with the shard count (floors well below perfect
scaling absorb router imbalance), a rolling storm never loses an
acknowledged operation and never changes *what* was acked — its cost
is recovery latency on the shard that crashed, not correctness.

``RIO_BENCH_CLUSTER_CLIENTS`` sets the population (default 64 keeps
``make bench`` quick; ``make bench-cluster`` records the checked-in
artifact at 1024).
"""

import os

import pytest

from repro.reliability import ClusterTrafficConfig, run_cluster_campaign
from repro.server import LoadSpec

SHARD_COUNTS = (1, 2, 4, 8)
CLIENTS = int(os.environ.get("RIO_BENCH_CLUSTER_CLIENTS", "64"))
OPS = int(os.environ.get("RIO_BENCH_CLUSTER_OPS", "6"))

#: Per-shard machine memory: 128 MB auto-sizes the buffer cache to
#: 2048 pages (see KernelLayout.resolve_buffer_cache_pages), enough
#: that even the 1-shard run at the 1024-client artifact scale holds
#: every home directory and inode block — the baseline is measured on
#: cache behaviour, not metadata thrash, so the scaling ratios are
#: honest.
MEMORY_BYTES = 128 * 1024 * 1024

#: Light per-client load: the scaling story is the shard count, so each
#: client carries a small working set (2 files, 4 KB cap) and the
#: population carries the scale.
LOAD = LoadSpec(
    ops_per_client=OPS,
    files_per_client=2,
    max_file_bytes=4096,
    write_bytes=(64, 512),
)


def _run(shards: int, crashes_per_shard: int):
    return run_cluster_campaign(
        ClusterTrafficConfig(
            shards=shards,
            system="rio_prot",
            clients=CLIENTS,
            crashes_per_shard=crashes_per_shard,
            seed=7,
            router_mode="dir",
            jobs=1 if shards == 1 else min(shards, os.cpu_count() or 1),
            fs_blocks=4096,
            memory_bytes=MEMORY_BYTES,
            batch_size=max(32, 8 * shards),
            load=LOAD,
        )
    )


@pytest.fixture(scope="module")
def grid():
    return {
        (shards, crashes): _run(shards, crashes)
        for shards in SHARD_COUNTS
        for crashes in (0, 1)
    }


def test_cluster_scaling(benchmark, grid, record_result):
    benchmark.pedantic(lambda: _run(2, 0), rounds=1, iterations=1)
    lines = [
        f"Cluster scaling (rio_prot, {CLIENTS} clients x {OPS} programs, "
        "dir router, virtual time, seed 7):",
        "  shards  storm    acked   ops/vsec      p50 ms      p99 ms  lost",
    ]
    for shards in SHARD_COUNTS:
        for crashes in (0, 1):
            result = grid[(shards, crashes)]
            load = result.load
            lines.append(
                f"  {shards:6d}  {'rolling' if crashes else 'calm   '}"
                f"  {load.acked:6d}  {load.throughput_ops_per_vsec:9.1f}"
                f"  {load.latency_percentile(0.50) / 1e6:10.2f}"
                f"  {load.latency_percentile(0.99) / 1e6:10.2f}"
                f"  {result.lost_acks:4d}"
            )
    record_result("cluster_throughput", "\n".join(lines))

    calm = {s: grid[(s, 0)] for s in SHARD_COUNTS}
    stormy = {s: grid[(s, 1)] for s in SHARD_COUNTS}
    # Nobody — calm or mid-storm — may lose an acknowledged op, and
    # every shard audit and intent audit must come back clean.
    for result in grid.values():
        assert result.ok, result.to_json_dict()
    # The calm curve is roughly linear in the shard count.  The floors
    # sit below perfect scaling to absorb consistent-hash imbalance,
    # but far above "flat": 8 shards must deliver >= 4x one shard at
    # the artifact scale (measured 4.68x at 1024 clients).  Small
    # populations (the quick `make bench` default of 64) spread only
    # 64 directory keys over the ring, so keys-to-bins variance alone
    # caps the tail — the floors relax below 512 clients.
    thr = {s: calm[s].load.throughput_ops_per_vsec for s in SHARD_COUNTS}
    floors = {2: 1.4, 4: 2.4, 8: 4.0} if CLIENTS >= 512 else {2: 1.3, 4: 2.0, 8: 2.5}
    for shards, floor in floors.items():
        assert thr[shards] > floor * thr[1], (thr, floors)
    # A rolling storm changes *when* work finishes, never *what* was
    # acknowledged: the acked count matches the calm run exactly.
    for shards in SHARD_COUNTS:
        assert stormy[shards].load.acked == calm[shards].load.acked, shards
        assert stormy[shards].recoveries >= shards
