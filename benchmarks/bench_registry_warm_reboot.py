"""Section 2.2's claims about the registry and the warm reboot.

* The registry costs ~40 bytes per 8 KB page (ours: 48) and its
  maintenance overhead during normal operation is low.
* The warm reboot is a dump of all of physical memory plus a
  registry-driven restore; its cost scales with memory and with the
  amount of dirty data ("our first priority ... is ease of
  implementation, rather than reboot speed").
"""

import pytest

from repro.core import RioConfig
from repro.core.registry import ENTRY_SIZE
from repro.fs.types import BLOCK_SIZE
from repro.system import SystemSpec, build_system
from repro.util import pattern_bytes


def write_files(system, count: int, size: int) -> None:
    for i in range(count):
        fd = system.vfs.open(f"/file{i:03d}", create=True)
        system.vfs.write(fd, pattern_bytes(i, 0, size))
        system.vfs.close(fd)


def test_registry_entry_size(benchmark, record_result):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    per_page = ENTRY_SIZE
    record_result(
        "registry_size",
        f"registry entry: {per_page} bytes per {BLOCK_SIZE} byte page "
        f"({100 * per_page / BLOCK_SIZE:.2f}% of cached data; paper: 40 bytes)",
    )
    assert per_page <= 64


def test_registry_maintenance_overhead(benchmark, record_result):
    """Rio with registry+checksums off vs on: the delta is the
    bookkeeping cost, which the paper calls low."""

    def run(maintain: bool) -> float:
        spec = SystemSpec(
            policy="rio",
            rio=RioConfig.with_protection(maintain_checksums=maintain),
        )
        system = build_system(spec)
        t0 = system.clock.now_ns
        write_files(system, 24, 32 * 1024)
        return (system.clock.now_ns - t0) / 1e9

    def measure():
        return run(False), run(True)

    without, with_checksums = benchmark.pedantic(measure, rounds=1, iterations=1)
    overhead = with_checksums / without - 1.0
    record_result(
        "registry_overhead",
        f"24 files x 32 KB written:\n"
        f"  registry only:          {without:.4f}s\n"
        f"  registry + checksums:   {with_checksums:.4f}s\n"
        f"  detection checksums overhead: {100 * overhead:.1f}% "
        f"(apparatus only; excluded from perf runs, as in the paper)",
    )
    assert overhead < 0.5


@pytest.mark.parametrize("dirty_kb", [64, 512, 2048], ids=["64K", "512K", "2M"])
def test_warm_reboot_cost_scales_with_dirty_data(benchmark, dirty_kb):
    spec = SystemSpec(policy="rio", rio=RioConfig.with_protection())
    system = build_system(spec)
    write_files(system, max(1, dirty_kb // 64), 64 * 1024)
    system.crash("bench crash")

    def reboot():
        t0 = system.clock.now_ns
        report = system.reboot()
        return report, (system.clock.now_ns - t0) / 1e9

    report, seconds = benchmark.pedantic(reboot, rounds=1, iterations=1)
    assert report.warm.registry_found
    assert seconds > 0


def test_warm_reboot_breakdown(benchmark, record_result):
    spec = SystemSpec(policy="rio", rio=RioConfig.with_protection())
    system = build_system(spec)
    write_files(system, 16, 128 * 1024)
    system.crash("bench crash")

    def reboot():
        t0 = system.clock.now_ns
        report = system.reboot()
        return report, (system.clock.now_ns - t0) / 1e9

    report, seconds = benchmark.pedantic(reboot, rounds=1, iterations=1)
    warm = report.warm
    record_result(
        "warm_reboot",
        f"warm reboot with 2 MB dirty file data (16 MB memory dump):\n"
        f"  virtual time:        {seconds:.2f}s\n"
        f"  memory dumped:       {warm.dumped_bytes // 1024} KB to swap\n"
        f"  registry entries:    {warm.valid_entries}\n"
        f"  metadata restored:   {warm.metadata_restored} blocks (before fsck)\n"
        f"  UBC pages restored:  {warm.ubc_restored}\n"
        f"  fsck fixes needed:   {report.fsck.fix_count}",
    )
    assert warm.ubc_restored >= 16
    assert report.fsck.fix_count == 0
