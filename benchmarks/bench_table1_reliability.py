"""Table 1: how often crashes corrupt file data, per fault type and system.

Runs the full 13-fault-type campaign over the three systems.  The paper
used 50 counted crashes per cell (1950 crashes, "6 machine-months");
``RIO_BENCH_CRASHES`` scales ours (default 4 per cell = 156 crashes,
a few minutes of wall time).

Shape assertions, not absolute numbers:

* corruption is rare on every system (the paper's central surprise);
* Rio with protection corrupts no more than Rio without (the paper
  measured 4 vs 10 of 650);
* protection traps fire on some runs (the paper recorded 8) — each is a
  corruption that was *prevented*;
* the crash-kind mix is diverse (panics, machine checks, watchdogs).
"""

from repro.reliability import format_table1, run_table1_campaign
from repro.reliability.propagation import format_propagation, summarize_propagation

from _helpers import bench_crashes_per_cell

PAPER_TABLE1 = """Paper's Table 1 totals (corruptions / 650 crashes):
  Disk-based (write-through): 7  (1.1%)
  Rio without protection:     10 (1.5%)
  Rio with protection:        4  (0.6%)
  Protection traps recorded:  8 (6 copy overrun, 2 initialization)"""


def test_table1_campaign(benchmark, record_result):
    crashes = bench_crashes_per_cell()
    table = benchmark.pedantic(
        run_table1_campaign,
        kwargs=dict(crashes_per_cell=crashes),
        rounds=1,
        iterations=1,
    )
    lines = [format_table1(table), ""]
    for system in ("disk", "rio_noprot", "rio_prot"):
        total = table.total_crashes(system)
        corr = table.total_corruptions(system)
        rate = 100.0 * table.corruption_rate(system)
        lines.append(
            f"{system:11s}: {corr} of {total} ({rate:.1f}%), "
            f"traps={table.trap_saves(system)}"
        )
    lines.append(f"distinct crash messages: {table.unique_crash_messages()}")
    lines.append("")
    lines.append(PAPER_TABLE1)
    record_result("table1_reliability", "\n".join(lines))

    # The propagation matrix — the paper's footnote-2 future work.
    propagation = format_propagation(summarize_propagation(table, "rio_prot"))
    record_result("fault_propagation", propagation)

    expected = crashes * 13
    for system in ("disk", "rio_noprot", "rio_prot"):
        total = table.total_crashes(system)
        assert total >= expected * 0.6, f"{system}: too few crashes collected"
        # Corruption is rare everywhere — the paper's central result.
        assert table.corruption_rate(system) < 0.20

    # Protection does not corrupt more than no-protection.
    assert table.total_corruptions("rio_prot") <= max(
        table.total_corruptions("rio_noprot"), 1
    )
    # Crash variety: several distinct kinds appear overall.
    kinds = set()
    for cell in table.cells.values():
        kinds.update(cell.crash_kinds)
    assert {"panic", "machine_check"} <= kinds
    assert table.unique_crash_messages() >= 8
