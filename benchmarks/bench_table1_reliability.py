"""Table 1: how often crashes corrupt file data, per fault type and system.

Runs the full 13-fault-type campaign over the three systems.  The paper
used 50 counted crashes per cell (1950 crashes, "6 machine-months");
``RIO_BENCH_CRASHES`` scales ours (default 4 per cell = 156 crashes,
a few minutes of wall time).

Shape assertions, not absolute numbers:

* corruption is rare on every system (the paper's central surprise);
* Rio with protection corrupts no more than Rio without (the paper
  measured 4 vs 10 of 650);
* protection traps fire on some runs (the paper recorded 8) — each is a
  corruption that was *prevented*;
* the crash-kind mix is diverse (panics, machine checks, watchdogs).
"""

import os
import time

from repro.faults import FaultType
from repro.reliability import (
    CampaignEngine,
    format_table1,
    run_table1_campaign,
    table1_digest,
)
from repro.reliability.propagation import format_propagation, summarize_propagation

from _helpers import bench_crashes_per_cell

PAPER_TABLE1 = """Paper's Table 1 totals (corruptions / 650 crashes):
  Disk-based (write-through): 7  (1.1%)
  Rio without protection:     10 (1.5%)
  Rio with protection:        4  (0.6%)
  Protection traps recorded:  8 (6 copy overrun, 2 initialization)"""


def test_table1_campaign(benchmark, record_result):
    crashes = bench_crashes_per_cell()
    table = benchmark.pedantic(
        run_table1_campaign,
        kwargs=dict(crashes_per_cell=crashes),
        rounds=1,
        iterations=1,
    )
    lines = [format_table1(table), ""]
    for system in ("disk", "rio_noprot", "rio_prot"):
        total = table.total_crashes(system)
        corr = table.total_corruptions(system)
        rate = 100.0 * table.corruption_rate(system)
        lines.append(
            f"{system:11s}: {corr} of {total} ({rate:.1f}%), "
            f"traps={table.trap_saves(system)}"
        )
    lines.append(f"distinct crash messages: {table.unique_crash_messages()}")
    lines.append("")
    lines.append(PAPER_TABLE1)
    record_result("table1_reliability", "\n".join(lines))

    # The propagation matrix — the paper's footnote-2 future work.
    propagation = format_propagation(summarize_propagation(table, "rio_prot"))
    record_result("fault_propagation", propagation)

    expected = crashes * 13
    for system in ("disk", "rio_noprot", "rio_prot"):
        total = table.total_crashes(system)
        assert total >= expected * 0.6, f"{system}: too few crashes collected"
        # Corruption is rare everywhere — the paper's central result.
        assert table.corruption_rate(system) < 0.20

    # Protection does not corrupt more than no-protection.
    assert table.total_corruptions("rio_prot") <= max(
        table.total_corruptions("rio_noprot"), 1
    )
    # Crash variety: several distinct kinds appear overall.
    kinds = set()
    for cell in table.cells.values():
        kinds.update(cell.crash_kinds)
    assert {"panic", "machine_check"} <= kinds
    assert table.unique_crash_messages() >= 8


def test_parallel_campaign_speedup(benchmark, record_result):
    """The campaign engine vs the serial loop on a 60-crash campaign
    (3 systems x 5 fault types x 4 counted crashes).

    Two claims: the parallel Table 1 is bit-identical to the serial one
    (asserted unconditionally), and fanning out to ``RIO_BENCH_JOBS``
    workers (default 4) cuts wall-clock time — asserted at >= 2x only
    when the machine actually has >= 4 CPUs; the ratio is recorded
    either way.
    """
    jobs = int(os.environ.get("RIO_BENCH_JOBS", "4"))
    params = dict(
        crashes_per_cell=4,
        systems=("disk", "rio_noprot", "rio_prot"),
        fault_types=(
            FaultType.KERNEL_TEXT,
            FaultType.KERNEL_HEAP,
            FaultType.DELETE_BRANCH,
            FaultType.POINTER,
            FaultType.COPY_OVERRUN,
        ),
        base_seed=9000,
        # Trim the per-trial budget so the survive-and-discard runs don't
        # dominate; applied identically on both sides.
        config_overrides=dict(max_ops_after_injection=400, andrew_copies=1),
    )

    t0 = time.monotonic()
    serial = run_table1_campaign(**params)
    serial_s = time.monotonic() - t0

    engine = CampaignEngine(**params, jobs=jobs)
    parallel = benchmark.pedantic(engine.run, rounds=1, iterations=1)
    parallel_s = engine.stats.wall_seconds

    assert table1_digest(parallel) == table1_digest(serial), (
        "parallel campaign diverged from serial"
    )
    speedup = serial_s / parallel_s if parallel_s else float("inf")
    cpus = os.cpu_count() or 1
    lines = [
        f"60-crash campaign ({serial.total_crashes('disk') + serial.total_crashes('rio_noprot') + serial.total_crashes('rio_prot')} counted crashes)",
        f"serial:          {serial_s:8.1f} s",
        f"engine (jobs={jobs}): {parallel_s:6.1f} s   ({engine.stats.executed} trials run, "
        f"{engine.stats.wasted_speculation} wasted speculation)",
        f"speedup:         {speedup:8.2f} x   on {cpus} CPU(s)",
        f"digests match:   {table1_digest(serial)[:16]}",
    ]
    record_result("table1_parallel_speedup", "\n".join(lines))
    if cpus >= 4 and jobs >= 4:
        assert speedup >= 2.0, f"expected >=2x speedup on {cpus} CPUs, got {speedup:.2f}x"
