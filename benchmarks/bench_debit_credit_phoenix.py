"""Related-work quantifications (section 6).

* **Debit/credit protection overhead** — Sullivan & Stonebraker's
  "expose page" costs 7% on debit/credit because every protection change
  is a system call and records are small; "The overhead of Rio's
  protection mechanism, which is negligible, is lower for two reasons"
  (in-kernel protection toggles; page-sized cache writes amortizing each
  window).  We measure Rio's protection overhead on the same workload
  shape and the throughput gap to a write-through system — the paper's
  transaction-processing motivation.
* **Phoenix comparison** — Phoenix [Gait90] makes writes permanent only
  at checkpoints and holds two copies of modified pages; Rio makes every
  write permanent with one copy.  Both differences are measured.
"""

from repro.core import ProtectionMode, RioConfig
from repro.system import SystemSpec, build_system
from repro.workloads.debit_credit import DebitCreditParams, DebitCreditWorkload

PARAMS = DebitCreditParams(accounts=128, transactions=300)


def run_debit_credit(spec: SystemSpec):
    system = build_system(spec)
    bench = DebitCreditWorkload(system.vfs, system.kernel, PARAMS)
    bench.setup()
    result = bench.run()
    return system, result


def test_debit_credit_protection_overhead(benchmark, record_result):
    def measure():
        results = {}
        for label, mode in (
            ("no protection", ProtectionMode.NONE),
            ("vm/kseg", ProtectionMode.VM_KSEG),
            ("code patching", ProtectionMode.CODE_PATCHING),
        ):
            spec = SystemSpec(
                policy="rio",
                rio=RioConfig(protection=mode, maintain_checksums=False),
            )
            _, result = run_debit_credit(spec)
            results[label] = result
        _, wt = run_debit_credit(SystemSpec(policy="wt_write"))
        results["write-through disk"] = wt
        return results

    results = benchmark.pedantic(measure, rounds=1, iterations=1)
    base = results["no protection"]
    vm_overhead = results["vm/kseg"].seconds / base.seconds - 1.0
    record_result(
        "debit_credit",
        "debit/credit, 300 transactions with synchronous commit:\n"
        + "\n".join(
            f"  {label:18s}: {r.seconds:8.4f}s  ({r.tps:9.1f} tps)"
            for label, r in results.items()
        )
        + f"\n  Rio VM/KSEG protection overhead: {100 * vm_overhead:.2f}%"
        + "\n  (expose-page [Sullivan91a] cost 7%; Rio's 'is negligible')"
        + f"\n  Rio vs write-through speedup: "
        f"{results['vm/kseg'].tps / results['write-through disk'].tps:.1f}x",
    )
    # Rio's protection is far below expose-page's 7% on the same shape.
    assert vm_overhead < 0.03
    # Synchronous commits at memory speed vs disk speed.
    assert results["vm/kseg"].tps > 5 * results["write-through disk"].tps


def test_phoenix_vs_rio(benchmark, record_result):
    def measure():
        # Rio: every committed write survives.
        rio = build_system(SystemSpec(policy="rio", rio=RioConfig.with_protection()))
        fd = rio.vfs.open("/ledger", create=True)
        for i in range(32):
            rio.vfs.pwrite(fd, f"entry {i:04d};".encode(), i * 16)
        rio.vfs.close(fd)
        rio_extra_frames = 0
        rio.crash("boom")
        rio.reboot()
        rio_survives = rio.fs.read(rio.fs.namei("/ledger"), 0, 16 * 32).count(b"entry")

        # Phoenix: only entries before the last checkpoint survive.
        phoenix = build_system(SystemSpec(policy="rio", phoenix=True))
        fd = phoenix.vfs.open("/ledger", create=True)
        for i in range(16):
            phoenix.vfs.pwrite(fd, f"entry {i:04d};".encode(), i * 16)
        phoenix.vfs.close(fd)
        phoenix.phoenix.checkpoint()
        phoenix_extra_frames = phoenix.phoenix.snapshot_frames
        fd = phoenix.vfs.open("/ledger")
        for i in range(16, 32):
            phoenix.vfs.pwrite(fd, f"entry {i:04d};".encode(), i * 16)
        phoenix.vfs.close(fd)
        phoenix.crash("boom")
        phoenix.reboot()
        phoenix_survives = phoenix.fs.read(
            phoenix.fs.namei("/ledger"), 0, 16 * 32
        ).count(b"entry")
        return rio_survives, rio_extra_frames, phoenix_survives, phoenix_extra_frames

    rio_n, rio_frames, phx_n, phx_frames = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    record_result(
        "phoenix_vs_rio",
        f"32 ledger entries written, crash after the 32nd:\n"
        f"  Rio     : {rio_n}/32 entries survive; extra snapshot frames: {rio_frames}\n"
        f"  Phoenix : {phx_n}/32 entries survive (checkpoint was at 16); "
        f"extra snapshot frames: {phx_frames}\n"
        "  paper: Phoenix makes writes permanent only at checkpoints and\n"
        "  keeps multiple copies of modified pages; Rio does neither.",
    )
    assert rio_n == 32
    assert phx_n == 16
    assert rio_frames == 0 and phx_frames > 0
