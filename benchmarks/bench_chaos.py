"""Chaos SLOs: p99 latency, recovery time and zero lost acks per capability.

Runs the full chaos capability matrix (baseline plus one trial per
fault capability — allocation denials, forced queue overflow, disk
full, 8x-slow IO, fail-Nth) against the crash-transparent file service
at the default 16-client scale, then re-runs the whole campaign at
``--jobs 4`` and on both execution engines and asserts the campaign
digests are bit-identical — the seed-purity claim the chaos tier
stands on.

The recorded artifact (``benchmarks/results/chaos_slo.txt``) is the
SLO report: per-capability fires, acked ops, p50/p99 latency under
chaos, recovery time, and the lost-ack count (always 0).
"""

import os

import pytest

from repro.reliability import (
    ChaosCampaignConfig,
    format_chaos_report,
    run_chaos_campaign,
)

CLIENTS = int(os.environ.get("RIO_BENCH_CHAOS_CLIENTS", "16"))
OPS = int(os.environ.get("RIO_BENCH_CHAOS_OPS", "30"))
SEED = 11


def _config(**overrides):
    params = dict(clients=CLIENTS, ops_per_client=OPS, crashes=2, seed=SEED)
    params.update(overrides)
    return ChaosCampaignConfig(**params)


@pytest.fixture(scope="module")
def campaigns():
    return {
        "serial": run_chaos_campaign(_config(jobs=1)),
        "fanned": run_chaos_campaign(_config(jobs=4)),
        "reference": run_chaos_campaign(_config(jobs=4, fast_path=False)),
        "hot": run_chaos_campaign(_config(jobs=4, fast_path=True)),
    }


def test_chaos_slos(benchmark, campaigns, record_result):
    benchmark.pedantic(
        lambda: run_chaos_campaign(
            _config(clients=4, ops_per_client=10, crashes=1)
        ),
        rounds=1,
        iterations=1,
    )
    result = campaigns["serial"]
    lines = [
        format_chaos_report(result),
        "",
        "seed purity (sha256 campaign digests):",
        f"  --jobs 1           {campaigns['serial'].digest}",
        f"  --jobs 4           {campaigns['fanned'].digest}",
        f"  RIO_FAST_PATH=0    {campaigns['reference'].digest}",
        f"  RIO_FAST_PATH=1    {campaigns['hot'].digest}",
    ]
    record_result("chaos_slo", "\n".join(lines))

    # Every trial survives: zero lost acks under every capability.
    assert result.ok, [t.trial for t in result.trials if not t.ok]
    for trial in result.trials:
        assert trial.lost_acks == 0, trial.trial
        assert trial.crashes_observed == 2, trial.trial
        assert trial.recovery_ns > 0, trial.trial
    by_name = {t.trial: t for t in result.trials}
    # The baseline is calm; every armed capability actually fired.
    assert by_name["baseline"].chaos_fires == 0
    for name in ("fail_alloc", "fail_queue", "fail_disk_full",
                 "slow_io", "fail_nth_syscall"):
        assert by_name[name].chaos_fires > 0, name
    # slow_io denies nothing — it only stretches the tail.
    assert by_name["slow_io"].failed == 0
    assert by_name["slow_io"].p99_ns >= by_name["baseline"].p99_ns
    # Seed purity: bit-identical digests at any worker count and on
    # either execution engine.
    digests = {name: c.digest for name, c in campaigns.items()}
    assert len(set(digests.values())) == 1, digests
