"""Parameter sweeps: where the paper's conclusions live in design space.

Three sweeps over the cp+rm workload:

* update-daemon interval (the delayed system's knob; Rio has none),
* disk bandwidth (what happens as "disk" gets faster — the question the
  NVM literature descended from this paper keeps asking),
* working-set size (Rio's advantage vs. the amount of data written).
"""

from repro.perf.sweeps import (
    format_sweep,
    sweep_disk_bandwidth,
    sweep_update_interval,
    sweep_working_set,
)
from repro.workloads.cp_rm import CpRmParams

SMALL_TREE = CpRmParams(dirs=6, files_per_dir=6, mean_file_bytes=16 * 1024)


def test_update_interval_sweep(benchmark, record_result):
    results = benchmark.pedantic(
        sweep_update_interval,
        kwargs=dict(intervals_s=(0.25, 1.0, 4.0), cp_rm_params=SMALL_TREE),
        rounds=1,
        iterations=1,
    )
    record_result(
        "sweep_update_interval",
        "cp+rm vs update-daemon interval (virtual seconds):\n"
        + format_sweep(results, "interval (s)"),
    )
    # Rio does not depend on the daemon at all.
    rio = [results[("rio_prot", x)] for x in (0.25, 1.0, 4.0)]
    assert max(rio) - min(rio) < 0.2 * max(rio)
    # The delayed system is never faster than Rio.
    for x in (0.25, 1.0, 4.0):
        assert results[("ufs_delayed", x)] >= results[("rio_prot", x)] * 0.95


def test_disk_bandwidth_sweep(benchmark, record_result):
    bandwidths = (2, 10, 40)
    results = benchmark.pedantic(
        sweep_disk_bandwidth,
        kwargs=dict(bandwidths_mb_s=bandwidths, cp_rm_params=SMALL_TREE),
        rounds=1,
        iterations=1,
    )
    record_result(
        "sweep_disk_bandwidth",
        "cp+rm vs disk bandwidth (virtual seconds):\n"
        + format_sweep(results, "MB/s")
        + "\n(faster disks shrink the write-through gap; Rio barely moves)",
    )
    # Write-through improves monotonically with bandwidth...
    wt = [results[("wt_write", b)] for b in bandwidths]
    assert wt[0] > wt[1] > wt[2]
    # ...but even at 40 MB/s Rio still wins (seeks dominate).
    assert results[("wt_write", 40)] > results[("rio_prot", 40)]


def test_working_set_sweep(benchmark, record_result):
    scales = (1, 2, 4)
    results = benchmark.pedantic(
        sweep_working_set, kwargs=dict(scales=scales), rounds=1, iterations=1
    )
    record_result(
        "sweep_working_set",
        "cp+rm vs tree size (virtual seconds; scale 1 = 0.5 MB):\n"
        + format_sweep(results, "scale"),
    )
    # Rio's absolute advantage grows with the amount written.
    gaps = [results[("wt_write", s)] - results[("rio_prot", s)] for s in scales]
    assert gaps[0] < gaps[-1]
