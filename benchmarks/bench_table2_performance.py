"""Table 2: running time of cp+rm, Sdet and Andrew on eight systems.

Regenerates the table and checks the paper's headline ratio claims as
*shape* assertions: Rio must beat the write-through systems by a large
factor, the default UFS by a middling one, the delayed no-order system by
a small one; protection must be essentially free; Rio must be close to
MFS.
"""

import pytest

from repro.perf import Table2, format_table2, ratio_summary, run_table2
from repro.perf.report import format_ratio_summary

PAPER_TABLE2 = """Paper's Table 2 (seconds, DEC 3000/600):
  System                cp+rm        Sdet   Andrew
  MFS                   21 (15+6)    43     13
  UFS delayed           81 (76+5)    47     13
  AdvFS                 125 (110+15) 132    16
  UFS                   332 (245+87) 401    23
  UFS wt-on-close       394 (274+120) 699   49
  UFS wt-on-write       539 (419+120) 910   178
  Rio without protection 24 (18+6)   42     12
  Rio with protection   25 (18+7)    42     13"""


@pytest.fixture(scope="module")
def table2():
    return Table2(results=run_table2())


def test_table2_full_grid(benchmark, record_result):
    table = benchmark.pedantic(
        lambda: Table2(results=run_table2()), rounds=1, iterations=1
    )
    text = (
        format_table2(table)
        + "\n\n"
        + format_ratio_summary(ratio_summary(table))
        + "\n\n"
        + PAPER_TABLE2
    )
    record_result("table2_performance", text)

    summary = ratio_summary(table)
    # Rio vs the write-through systems: the paper's 4-22x band.
    low, high = summary["rio_vs_wt_write"]
    assert low > 3.0 and high > 10.0, summary
    # Rio vs the default UFS: the paper's 2-14x band.
    low, high = summary["rio_vs_ufs"]
    assert low > 2.0 and high > 8.0, summary
    # Rio vs the optimized no-order system: the paper's 1-3x band.
    low, high = summary["rio_vs_delayed"]
    assert 0.9 <= low <= 1.5 and high <= 4.0, summary
    # Protection adds essentially no overhead.
    low, high = summary["protection_overhead"]
    assert high <= 1.05, summary
    # Rio performs about as fast as a memory file system.
    low, high = summary["rio_vs_mfs"]
    assert high <= 1.5, summary


def test_rio_orders_between_mfs_and_everything_else(table2, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for workload in ("cp_rm", "sdet", "andrew"):
        rio = table2.seconds("rio_prot", workload)
        assert rio <= table2.seconds("ufs", workload)
        assert rio <= table2.seconds("wt_close", workload)
        assert rio <= table2.seconds("wt_write", workload)


def test_write_through_ordering(table2, benchmark):
    """wt-on-write >= wt-on-close >= default UFS, per workload, as in the
    paper's columns."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for workload in ("sdet", "andrew"):
        assert (
            table2.seconds("wt_write", workload)
            >= table2.seconds("wt_close", workload)
            >= table2.seconds("ufs", workload) * 0.95
        )


def test_rio_issues_no_reliability_writes(table2, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for workload in ("sdet", "andrew"):
        stats = table2.results[("rio_prot", workload)].disk_stats
        assert stats["writes"] == 0, stats
