"""Shared benchmark helpers.

Every benchmark regenerates one table, figure, or quantified claim from
the paper, prints it, and appends it to ``benchmarks/results/`` so the
EXPERIMENTS.md comparison can be refreshed from a single run.

Scale knobs (environment variables):

* ``RIO_BENCH_CRASHES`` — counted crashes per Table 1 cell (default 4;
  the paper used 50.  Expect roughly 1-2 minutes per 10 crashes).
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def record_result():
    """Save a named result artifact and echo it to stdout."""

    def save(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print(f"\n---- {name} ----")
        print(text)

    return save


@pytest.fixture
def once(benchmark):
    """Run a long experiment exactly once under pytest-benchmark timing."""

    def run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return run
