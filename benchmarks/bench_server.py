"""File-service scaling: throughput and latency, calm vs. crash storm.

Drives the crash-transparent file service at 1, 4, 16 and 64 clients,
once calm and once through a three-crash storm, and records acked
throughput with p50/p99 latency (all in virtual time).  The shape
assertions are the service's design claims: batched fair scheduling
must scale aggregate throughput with the client count, a storm must
never lose an acknowledged operation, and the storm's cost must show up
where it belongs — in tail latency, not in correctness.
"""

import os

import pytest

from repro.reliability import TrafficConfig, run_traffic_campaign
from repro.server import LoadSpec

CLIENT_COUNTS = (1, 4, 16, 64)
OPS = int(os.environ.get("RIO_BENCH_SERVER_OPS", "25"))


def _run(clients: int, crashes: int):
    return run_traffic_campaign(
        TrafficConfig(
            system="rio_prot",
            clients=clients,
            crashes=crashes,
            seed=7,
            load=LoadSpec(ops_per_client=OPS),
        )
    )


@pytest.fixture(scope="module")
def grid():
    return {
        (clients, crashes): _run(clients, crashes)
        for clients in CLIENT_COUNTS
        for crashes in (0, 3)
    }


def test_server_scaling(benchmark, grid, record_result):
    benchmark.pedantic(lambda: _run(4, 0), rounds=1, iterations=1)
    lines = [
        "File service scaling (rio_prot, virtual time, "
        f"{OPS} programs/client, seed 7):",
        "  clients  storm   acked   ops/vsec      p50 ms      p99 ms  lost",
    ]
    for clients in CLIENT_COUNTS:
        for crashes in (0, 3):
            result = grid[(clients, crashes)]
            load = result.load
            lines.append(
                f"  {clients:7d}  {'3-crash' if crashes else 'calm   '}"
                f"  {load.acked:6d}  {load.throughput_ops_per_vsec:9.1f}"
                f"  {load.latency_percentile(0.50) / 1e6:10.2f}"
                f"  {load.latency_percentile(0.99) / 1e6:10.2f}"
                f"  {result.lost_acks:4d}"
            )
    record_result("server_throughput", "\n".join(lines))

    calm = {c: grid[(c, 0)] for c in CLIENT_COUNTS}
    stormy = {c: grid[(c, 3)] for c in CLIENT_COUNTS}
    # No campaign, calm or stormy, may lose an acknowledged op.
    for result in grid.values():
        assert result.ok, result.to_json_dict()
    # Aggregate acked work scales with the client count.
    assert calm[64].load.acked > 10 * calm[1].load.acked
    # Batching amortizes the syscall prologue: per-op virtual cost at 16
    # clients stays below twice the single-client cost.
    calm_1 = calm[1].load.wall_virtual_ns / max(1, calm[1].load.acked)
    calm_16 = calm[16].load.wall_virtual_ns / max(1, calm[16].load.acked)
    assert calm_16 < 2.0 * calm_1, (calm_1, calm_16)
    # The 64-client cliff stays dead: the buffer cache is sized to the
    # machine and evictions clean dirty pages in clustered elevator
    # sweeps, so throughput degrades gently (within 10x of 16 clients)
    # instead of collapsing ~158x as it did with a fixed 48-page cache
    # and one synchronous flush per eviction.
    thr_16 = calm[16].load.throughput_ops_per_vsec
    thr_64 = calm[64].load.throughput_ops_per_vsec
    assert thr_64 * 10.0 > thr_16, (thr_16, thr_64)
    # The storm's cost is tail latency, not lost work.
    for clients in CLIENT_COUNTS:
        assert stormy[clients].load.acked == calm[clients].load.acked
        assert stormy[clients].load.latency_percentile(0.99) >= (
            calm[clients].load.latency_percentile(0.99)
        )
