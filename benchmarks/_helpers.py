"""Shared helpers importable by benchmark modules.

(Separate from conftest.py so the import name cannot collide with the
tests/ conftest when both directories are collected in one run.)
"""

import os


def bench_crashes_per_cell() -> int:
    """Counted crashes per Table 1 cell (paper: 50)."""
    return int(os.environ.get("RIO_BENCH_CRASHES", "4"))
