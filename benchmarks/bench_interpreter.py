"""Interpreter throughput: the hot-path engine vs the reference engine.

Times a store-heavy routine (``bzero``) and a branch-heavy routine
(``checksum_block``) interpreted on two otherwise-identical machines —
one with ``fast_path=True``, one with ``False`` — and asserts both that
the results are bit-identical (CallResult and every BusStats counter)
and that the speedup clears a floor (``RIO_MIN_SPEEDUP``, default 3.0;
CI runs a 1.5x smoke so a loaded runner cannot flake the build).

Deliberately uses plain ``perf_counter`` timing rather than the
pytest-benchmark fixture so it runs in environments without the plugin
(it is the perf *gate*, not just a report).
"""

from __future__ import annotations

import os
import time
from types import SimpleNamespace

from repro.hw import Machine, MachineConfig
from repro.isa import Interpreter
from repro.isa.routines import build_kernel_text


def build_env(fast_path: bool) -> SimpleNamespace:
    machine = Machine(
        MachineConfig(memory_bytes=2 * 1024 * 1024, boot_time_ns=0, fast_path=fast_path)
    )
    text = build_kernel_text()
    page = machine.memory.page_size
    text_pages = -(-text.size_bytes // page)
    text.load(machine.memory, base_paddr=1 * page, base_vaddr=1 * page)
    for i in range(text_pages):
        machine.mmu.map(1 + i, 1 + i, writable=False)
    for i in range(8):
        machine.mmu.map(32 + i, 32 + i)
    for i in range(2):
        machine.mmu.map(48 + i, 48 + i)
    interp = Interpreter(machine.bus, text)
    interp.force_interpret = True
    return SimpleNamespace(
        machine=machine, interp=interp, heap=32 * page, stack_top=50 * page - 64
    )


#: (label, routine, args-as-heap-offsets) — one store-dense, one
#: branch/ALU-dense, one mixed copy loop.
WORKLOADS = [
    ("store-heavy bzero(4096)", "bzero", lambda h: [h, 4096]),
    ("branch-heavy checksum_block(4096)", "checksum_block", lambda h: [h, 4096]),
    ("copy loop bcopy(2048)", "bcopy", lambda h: [h, h + 0x1000, 2048]),
]


def _time_call(env, name, args, repeats: int):
    """Best-of-N wall time for one interpreted call, plus its result."""
    best = None
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = env.interp.call(name, args, sp=env.stack_top)
        dt = time.perf_counter() - t0
        best = dt if best is None or dt < best else best
    return result, best


def test_interpreter_throughput(record_result):
    min_speedup = float(os.environ.get("RIO_MIN_SPEEDUP", "3.0"))
    repeats = int(os.environ.get("RIO_BENCH_REPEATS", "5"))
    fast, ref = build_env(True), build_env(False)
    lines = [
        "Interpreter throughput: hot-path engine vs reference engine",
        f"(best of {repeats}; floor RIO_MIN_SPEEDUP={min_speedup}x)",
        "",
        f"{'workload':38} {'ref instr/s':>12} {'fast instr/s':>13} {'speedup':>8}",
    ]
    worst = None
    for label, name, argf in WORKLOADS:
        rf, tf = _time_call(fast, name, argf(fast.heap), repeats)
        rr, tr = _time_call(ref, name, argf(ref.heap), repeats)
        assert rf == rr, f"{name}: CallResult diverged: {rf} != {rr}"
        sf, sr = fast.machine.bus.stats, ref.machine.bus.stats
        assert (sf.loads, sf.stores, sf.bytes_loaded, sf.bytes_stored) == (
            sr.loads, sr.stores, sr.bytes_loaded, sr.bytes_stored,
        ), f"{name}: BusStats diverged"
        speedup = tr / tf
        worst = speedup if worst is None or speedup < worst else worst
        lines.append(
            f"{label:38} {rr.steps / tr:12,.0f} {rf.steps / tf:13,.0f} "
            f"{speedup:7.2f}x"
        )
    lines.append("")
    lines.append(f"worst-case speedup: {worst:.2f}x (floor {min_speedup}x)")
    record_result("interpreter_throughput", "\n".join(lines))
    assert worst >= min_speedup, (
        f"hot path speedup {worst:.2f}x below the {min_speedup}x floor"
    )


def test_obs_disabled_overhead_under_5_percent(record_result):
    """The flight recorder must be free when off: an attached-but-
    disabled recorder (the default on every Machine) may cost at most 5%
    against the same machine with the recorder detached outright.  The
    interpreter hot loop never consults the recorder; the only possible
    cost is the ``rec is not None and rec.enabled`` guards on trap and
    MMU-toggle paths."""
    repeats = int(os.environ.get("RIO_BENCH_REPEATS", "5"))
    attached, detached = build_env(True), build_env(True)
    assert attached.machine.recorder is not None
    assert not attached.machine.recorder.enabled
    for obj in (detached.machine, detached.machine.mmu, detached.machine.bus):
        obj.recorder = None
    lines = [
        "Flight recorder disabled-overhead (attached-but-off vs detached)",
        f"(best of {repeats}; budget 5%)",
        "",
        f"{'workload':38} {'detached s':>12} {'attached s':>12} {'overhead':>9}",
    ]
    worst = None
    for label, name, argf in WORKLOADS:
        ra, ta = _time_call(attached, name, argf(attached.heap), repeats)
        rd, td = _time_call(detached, name, argf(detached.heap), repeats)
        assert ra == rd, f"{name}: CallResult diverged: {ra} != {rd}"
        overhead = ta / td - 1.0
        worst = overhead if worst is None or overhead > worst else worst
        lines.append(f"{label:38} {td:12.6f} {ta:12.6f} {overhead:8.1%}")
    lines.append("")
    lines.append(f"worst-case overhead: {worst:.1%} (budget 5.0%)")
    record_result("obs_disabled_overhead", "\n".join(lines))
    assert worst < 0.05, (
        f"disabled flight recorder costs {worst:.1%}, over the 5% budget"
    )


def test_campaign_end_to_end_speedup(record_result, monkeypatch):
    """A miniature Table 1 campaign with the engine on vs off: digests
    must match byte-for-byte, and the wall-clock ratio is recorded (the
    hard perf gate is the microbench above — campaign time includes
    non-interpreter work, so this one only reports)."""
    from repro.faults.types import FaultType
    from repro.reliability.report import run_table1_campaign, table1_digest

    runs = {}
    for flag in ("1", "0"):
        monkeypatch.setenv("RIO_FAST_PATH", flag)
        t0 = time.perf_counter()
        table = run_table1_campaign(
            crashes_per_cell=2,
            systems=("rio_prot",),
            fault_types=(FaultType.KERNEL_TEXT, FaultType.POINTER),
            base_seed=1000,
        )
        runs[flag] = (table1_digest(table), time.perf_counter() - t0)
    assert runs["1"][0] == runs["0"][0], "campaign digests diverged"
    speedup = runs["0"][1] / runs["1"][1]
    record_result(
        "campaign_speedup",
        "\n".join(
            [
                "Table 1 mini-campaign (2 crashes/cell, rio_prot, 2 fault types)",
                f"digest (both engines): {runs['1'][0]}",
                f"reference engine: {runs['0'][1]:8.2f} s",
                f"hot-path engine:  {runs['1'][1]:8.2f} s",
                f"end-to-end speedup: {speedup:.2f}x",
            ]
        ),
    )
