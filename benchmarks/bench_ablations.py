"""Ablations for the design decisions DESIGN.md calls out.

* D3 — shadow paging: crash mid-metadata-update with shadows on vs off.
  With shadows, the warm reboot recovers a *consistent* version of the
  metadata block; without, it can recover a torn one.
* D1 — protection coverage: how many wild-store attempts each protection
  mode actually stops.
* D4 — warm reboot necessity: Rio semantics (reliability writes off)
  without warm reboot loses everything — the two mechanisms only work
  together.
"""

from repro.core import ProtectionMode, RioConfig
from repro.errors import ProtectionTrap
from repro.fs.cache import IO_CONTEXT
from repro.system import SystemSpec, build_system
from repro.util.checksum import fletcher32
from repro.fs.types import BLOCK_SIZE


def test_shadow_paging_preserves_metadata_atomicity(benchmark, record_result):
    def crash_mid_update(shadow: bool) -> bool:
        """Crash halfway through a metadata update; returns True when the
        registry-recovered image equals a consistent version."""
        spec = SystemSpec(
            policy="rio",
            rio=RioConfig.with_protection(shadow_metadata=shadow),
        )
        system = build_system(spec)
        cache = system.kernel.buffer_cache
        page = next(iter(cache.pages.values()))
        before = system.kernel.memory.read(page.pfn * BLOCK_SIZE, BLOCK_SIZE)
        # Begin an update and die halfway through the copy: write only the
        # first half of the new image.
        system.rio.guard.begin_write(page)
        half = b"\xee" * (BLOCK_SIZE // 2)
        system.kernel.bus.store(page.vaddr, half, IO_CONTEXT)
        system.crash("died mid metadata update")
        # The machine is down: read the registry out of the raw memory
        # image, as the warm reboot would.
        from repro.core.registry import find_registry_in_image, read_entries_from_image

        image = system.machine.memory.dump_image()
        base, capacity = find_registry_in_image(image, BLOCK_SIZE)
        entries = read_entries_from_image(image, base, capacity)
        entry = next(e for e in entries if e.slot == page.registry_slot)
        recovered = image[entry.phys_addr : entry.phys_addr + BLOCK_SIZE]
        after_torn = half + before[BLOCK_SIZE // 2 :]
        consistent = recovered == before  # the pre-image is the only
        # consistent version available mid-write
        return consistent, recovered == after_torn

    def measure():
        return crash_mid_update(True), crash_mid_update(False)

    (with_shadow, _), (without_shadow, without_is_torn) = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    record_result(
        "ablation_shadow_paging",
        f"crash mid-metadata-update:\n"
        f"  shadows ON : registry points at consistent pre-image: {with_shadow}\n"
        f"  shadows OFF: recovered image is torn: {without_is_torn}",
    )
    assert with_shadow
    assert without_is_torn and not without_shadow


def test_protection_mode_coverage(benchmark, record_result):
    """Fire wild stores at file cache pages under each mode; count stops."""

    def attempts(mode: ProtectionMode) -> tuple[int, int]:
        spec = SystemSpec(policy="rio", rio=RioConfig(protection=mode))
        system = build_system(spec)
        fd = system.vfs.open("/target", create=True)
        system.vfs.write(fd, b"t" * 32768)
        system.vfs.close(fd)
        pages = list(system.kernel.ubc.pages.values())[:4]
        stopped = 0
        for page in pages:
            try:
                system.kernel.bus.store(page.vaddr, b"WILD")
            except ProtectionTrap:
                stopped += 1
        return stopped, len(pages)

    def measure():
        return {mode.value: attempts(mode) for mode in ProtectionMode}

    results = benchmark.pedantic(measure, rounds=1, iterations=1)
    record_result(
        "ablation_protection_coverage",
        "wild stores stopped, by protection mode:\n"
        + "\n".join(
            f"  {mode:14s}: {stopped}/{total}"
            for mode, (stopped, total) in results.items()
        ),
    )
    assert results["none"][0] == 0
    assert results["vm_kseg"][0] == results["vm_kseg"][1]
    assert results["code_patching"][0] == results["code_patching"][1]


def test_warm_reboot_is_load_bearing(benchmark, record_result):
    """Rio's write-avoidance without its warm reboot is just data loss."""

    def survival(warm_reboot: bool) -> bool:
        spec = SystemSpec(
            policy="rio",
            rio=RioConfig.with_protection(warm_reboot=warm_reboot),
        )
        system = build_system(spec)
        fd = system.vfs.open("/precious", create=True)
        system.vfs.write(fd, b"only copy")
        system.vfs.close(fd)
        system.crash("boom")
        system.reboot()
        return system.vfs.exists("/precious")

    def measure():
        return survival(True), survival(False)

    with_warm, without_warm = benchmark.pedantic(measure, rounds=1, iterations=1)
    record_result(
        "ablation_warm_reboot",
        f"data survives crash with warm reboot: {with_warm}; "
        f"without: {without_warm}",
    )
    assert with_warm and not without_warm


def test_checksum_detection_catches_wild_store(benchmark, record_result):
    """The detection apparatus: corrupt an unprotected page behind the
    MMU's back and confirm the checksum audit flags exactly that page."""

    def run() -> tuple[int, bool]:
        spec = SystemSpec(policy="rio", rio=RioConfig.without_protection())
        system = build_system(spec)
        fd = system.vfs.open("/audited", create=True)
        system.vfs.write(fd, b"a" * 8192)
        system.vfs.close(fd)
        page = next(
            p for p in system.kernel.ubc.pages.values() if p.file_id is not None
        )
        system.machine.memory.flip_bit(page.pfn * BLOCK_SIZE + 100, 2)
        system.crash("boom")
        report = system.reboot()
        return (
            len(report.warm.checksum_mismatches),
            page.registry_slot in report.warm.checksum_mismatches,
        )

    mismatches, exact = benchmark.pedantic(run, rounds=1, iterations=1)
    record_result(
        "ablation_checksum_detection",
        f"checksum audit after a single flipped bit: {mismatches} mismatch(es); "
        f"correct page identified: {exact}",
    )
    assert mismatches == 1 and exact
