"""Backing-store tier cost: the price of surviving without the disk.

Drives the file service once per backend flavour — no backend, the
free local tier, the raw object store (one upload per flush), and the
write-back tiered store (batched drains + dedup) — and records acked
throughput, tail latency and the upload counters, all in virtual time.
A second section measures content-hash dedup directly: many files
holding the same bytes must upload one blob.

The shape assertions are the tier's design claims: the local backend
is free (no throughput regression vs. no backend at all), the remote
tiers pay their latency in the tail but never in correctness, the
write-back tier never does worse than the drain-per-flush object
store, and dedup stores one object per distinct content.
"""

import os

import pytest

from repro.reliability import TrafficConfig, run_traffic_campaign
from repro.server import LoadSpec

BACKENDS = (None, "local", "objectstore", "tiered")
OPS = int(os.environ.get("RIO_BENCH_BACKEND_OPS", "15"))


def _run(backend):
    return run_traffic_campaign(
        TrafficConfig(
            system="rio_prot",
            clients=4,
            crashes=0,
            seed=9,
            load=LoadSpec(ops_per_client=OPS),
            backend=backend,
        )
    )


def _dedup_rate():
    """Upload 24 blocks of identical content; count distinct objects."""
    from repro.reliability.campaign import system_spec_for
    from repro.system import build_system

    spec = system_spec_for("rio_prot", fs_blocks=256, backend="tiered")
    system = build_system(spec)
    body = b"same bytes in every file" * 300
    for i in range(24):
        fd = system.vfs.open(f"/dup{i}", create=True)
        system.vfs.write(fd, body)
        system.vfs.close(fd)
    system.fs.flush_data(sync=True)
    system.fs.flush_metadata(sync=True)
    system.drain_disks()
    system.backing.drain_uploads()
    return system.backing


@pytest.fixture(scope="module")
def grid():
    return {backend: _run(backend) for backend in BACKENDS}


def test_backend_throughput(benchmark, grid, record_result):
    benchmark.pedantic(lambda: _run("tiered"), rounds=1, iterations=1)
    lines = [
        "Backing-store tier cost (rio_prot, 4 clients, virtual time, "
        f"{OPS} programs/client, seed 9):",
        "  backend      acked   ops/vsec      p99 ms  uploads  dedup  lost",
    ]
    for backend in BACKENDS:
        result = grid[backend]
        load = result.load
        stats = result.remote_stats or {}
        lines.append(
            f"  {backend or 'none':11s}  {load.acked:5d}"
            f"  {load.throughput_ops_per_vsec:9.1f}"
            f"  {load.latency_percentile(0.99) / 1e6:10.2f}"
            f"  {stats.get('uploads', 0):7d}  {stats.get('dedup_hits', 0):5d}"
            f"  {result.lost_acks:4d}"
        )

    store = _dedup_rate()
    mapped = len(store._map)
    objects = len(store.remote.list("obj/"))
    lines += [
        "",
        "Dedup (24 files, identical content, tiered):",
        f"  mapped blocks {mapped}, distinct objects {objects}, "
        f"dedup hits {store.stats.dedup_hits}",
    ]
    record_result("backend_throughput", "\n".join(lines))

    # Correctness is backend-independent: every flavour keeps every ack.
    for result in grid.values():
        assert result.ok, result.to_json_dict()
    # The local tier is free: within 1% of running with no backend.
    none_tp = grid[None].load.throughput_ops_per_vsec
    local_tp = grid["local"].load.throughput_ops_per_vsec
    assert local_tp > 0.99 * none_tp, (none_tp, local_tp)
    # Both remote flavours actually uploaded, and the write-back tier's
    # batching never loses to drain-per-flush.
    for backend in ("objectstore", "tiered"):
        assert grid[backend].remote_stats["uploads"] > 0
    tiered_tp = grid["tiered"].load.throughput_ops_per_vsec
    object_tp = grid["objectstore"].load.throughput_ops_per_vsec
    assert tiered_tp >= object_tp, (object_tp, tiered_tp)
    # One blob per distinct content: identical files share one object.
    assert store.stats.dedup_hits > 0
    assert objects < mapped, (objects, mapped)
