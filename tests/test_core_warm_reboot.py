"""Tests for the warm reboot: dump, metadata restore, UBC restore."""

import pytest

from repro.core import RioConfig
from repro.errors import ProtectionTrap
from repro.fs.types import BLOCK_SIZE
from repro.system import SystemSpec, build_system
from repro.util import pattern_bytes


def rio_system(**kw):
    return build_system(SystemSpec(policy="rio", rio=RioConfig.with_protection(), **kw))


class TestWarmRebootEndToEnd:
    def test_dirty_data_survives_crash(self):
        system = rio_system()
        fd = system.vfs.open("/survivor", create=True)
        payload = pattern_bytes(7, 0, 3 * BLOCK_SIZE + 17)
        system.vfs.write(fd, payload)
        system.vfs.close(fd)
        assert system.disk.stats.writes == 0  # nothing was reliability-written
        system.crash("kernel went down")
        report = system.reboot()
        assert report.warm.registry_found
        assert report.warm.ubc_restored >= 4
        fd = system.vfs.open("/survivor")
        assert system.vfs.read(fd, len(payload) + 10) == payload

    def test_metadata_restored_before_fsck(self):
        """Directory structure created purely in memory must be on disk
        after the warm reboot's metadata pass (step 1), so fsck sees an
        intact file system."""
        system = rio_system()
        system.vfs.mkdir("/deep")
        system.vfs.mkdir("/deep/nest")
        fd = system.vfs.open("/deep/nest/file", create=True)
        system.vfs.write(fd, b"nested")
        system.vfs.close(fd)
        system.crash("boom")
        report = system.reboot()
        assert report.warm.metadata_restored > 0
        assert report.fsck.fix_count == 0  # fsck found nothing to repair
        assert system.vfs.read(system.vfs.open("/deep/nest/file"), 10) == b"nested"

    def test_dump_lands_in_swap(self):
        system = rio_system()
        system.crash("boom")
        report = system.reboot()
        assert report.warm.dumped_bytes == system.machine.memory.size
        image = system.swap.read_memory_image(64)
        assert len(image) == 64

    def test_deleted_file_not_resurrected(self):
        system = rio_system()
        fd = system.vfs.open("/ghost", create=True)
        system.vfs.write(fd, b"ephemeral")
        system.vfs.close(fd)
        system.vfs.unlink("/ghost")
        system.crash("boom")
        system.reboot()
        assert not system.vfs.exists("/ghost")

    def test_cold_reboot_on_pc_loses_memory(self):
        """Section 5: the PCs tested erase memory on reset, making warm
        reboot impossible — only disk contents survive."""
        system = rio_system()
        fd = system.vfs.open("/volatile", create=True)
        system.vfs.write(fd, b"in memory only")
        system.vfs.close(fd)
        system.crash("boom")
        report = system.reboot(preserve_memory=False)
        assert report.warm is None or not report.warm.registry_found
        assert not system.vfs.exists("/volatile")

    def test_warm_reboot_without_rio_registry(self):
        """A non-Rio system has no registry: reboot is fsck-only."""
        system = build_system(SystemSpec(policy="ufs"))
        system.crash("boom")
        report = system.reboot()
        assert report.warm is None
        assert report.fsck is not None

    def test_overwritten_data_restores_latest_version(self):
        system = rio_system()
        fd = system.vfs.open("/versioned", create=True)
        system.vfs.write(fd, b"old old old")
        system.vfs.pwrite(fd, b"NEW", 0)
        system.vfs.close(fd)
        system.crash("boom")
        system.reboot()
        fd = system.vfs.open("/versioned")
        assert system.vfs.read(fd, 16) == b"NEWold old!"[:3] + b" old old"[-8:]

    def test_clean_data_not_rewritten(self):
        """Pages already clean (flushed by eviction) need no restore."""
        system = rio_system()
        fd = system.vfs.open("/clean", create=True)
        system.vfs.write(fd, b"will be flushed")
        system.fs.flush_data(sync=True)  # administrative flush
        system.crash("boom")
        report = system.reboot()
        assert report.warm.ubc_restored == 0
        fd = system.vfs.open("/clean")
        assert system.vfs.read(fd, 32) == b"will be flushed"

    def test_checksum_audit_flags_corrupted_page(self):
        system = rio_system()
        fd = system.vfs.open("/target", create=True)
        system.vfs.write(fd, b"pristine content")
        system.vfs.close(fd)
        # Hardware-level corruption of the file page behind the MMU's back
        # (what a wild store would do on an unprotected system).
        page = next(p for p in system.kernel.ubc.pages.values())
        system.machine.memory.flip_bit(page.pfn * BLOCK_SIZE + 3, 5)
        system.crash("boom")
        report = system.reboot()
        assert page.registry_slot in report.warm.checksum_mismatches

    def test_rio_protection_also_guards_during_reboot_gap(self):
        """Protection state is CPU state: after reset it is off until the
        new Rio engages; but memory content was already dumped."""
        system = rio_system()
        fd = system.vfs.open("/x", create=True)
        system.vfs.write(fd, b"x")
        page = next(p for p in system.kernel.ubc.pages.values())
        with pytest.raises(ProtectionTrap):
            system.kernel.bus.store(page.vaddr, b"wild")
        system.crash("boom")
        system.reboot()
        # New kernel, new Rio: protection is live again on new pages.
        fd = system.vfs.open("/y", create=True)
        system.vfs.write(fd, b"y")
        new_page = next(
            p for p in system.kernel.ubc.pages.values() if p.dirty
        )
        with pytest.raises(ProtectionTrap):
            system.kernel.bus.store(new_page.vaddr, b"wild")


class TestRepeatedCrashes:
    def test_multiple_crash_reboot_cycles(self):
        system = rio_system()
        for round_no in range(3):
            fd = system.vfs.open(f"/round{round_no}", create=True)
            system.vfs.write(fd, f"data {round_no}".encode())
            system.vfs.close(fd)
            system.crash(f"crash {round_no}")
            report = system.reboot()
            assert report.warm.registry_found
            for previous in range(round_no + 1):
                fd = system.vfs.open(f"/round{previous}")
                assert system.vfs.read(fd, 16) == f"data {previous}".encode()
