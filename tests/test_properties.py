"""Property-based tests on core data structures and invariants."""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.fs.types import BLOCK_SIZE
from repro.hw import Machine, MachineConfig
from repro.hw.clock import Clock
from repro.disk import DiskParameters, SimulatedDisk
from repro.kernel.kmalloc import KernelHeap
from repro.isa.assembler import assemble
from repro.isa.encoding import decode
from repro.isa.routines import ROUTINE_SOURCES
from repro.system import SystemSpec, build_system

PAGE = 8192


# ---------------------------------------------------------------------------
# Kernel heap: random alloc/free sequences preserve allocator invariants.
# ---------------------------------------------------------------------------


@st.composite
def heap_scripts(draw):
    """A sequence of (op, value) where op is alloc size or free index."""
    return draw(
        st.lists(
            st.one_of(
                st.tuples(st.just("alloc"), st.integers(1, 2000)),
                st.tuples(st.just("free"), st.integers(0, 50)),
            ),
            min_size=1,
            max_size=60,
        )
    )


class TestHeapProperties:
    @settings(max_examples=40, deadline=None)
    @given(heap_scripts())
    def test_no_overlap_and_full_recovery(self, script):
        machine = Machine(MachineConfig(memory_bytes=16 * PAGE, boot_time_ns=0))
        for vpn in range(8):
            machine.mmu.map(vpn, vpn)
        heap = KernelHeap(machine.bus, 0, 8 * PAGE)
        initial_free = heap.free_bytes
        live: list[tuple[int, int]] = []
        for op, value in script:
            if op == "alloc":
                try:
                    addr = heap.kmalloc(value)
                except Exception:
                    continue
                # Invariant: no overlap with any live block.
                for other, size in live:
                    assert addr + value <= other or other + size <= addr
                live.append((addr, value))
            elif live:
                addr, _ = live.pop(value % len(live))
                heap.kfree(addr)
        for addr, _ in live:
            heap.kfree(addr)
        # Invariant: freeing everything recovers all bytes (coalescing).
        assert heap.free_bytes == initial_free
        assert heap.live_blocks == 0

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(1, 512), min_size=1, max_size=30))
    def test_contents_isolated(self, sizes):
        machine = Machine(MachineConfig(memory_bytes=16 * PAGE, boot_time_ns=0))
        for vpn in range(8):
            machine.mmu.map(vpn, vpn)
        heap = KernelHeap(machine.bus, 0, 8 * PAGE)
        blocks = []
        for i, size in enumerate(sizes):
            addr = heap.kmalloc(size)
            fill = bytes([i & 0xFF]) * size
            machine.bus.store(addr, fill)
            blocks.append((addr, fill))
        for addr, fill in blocks:
            assert machine.bus.load(addr, len(fill)) == fill


# ---------------------------------------------------------------------------
# Disk: after any crash, every sector is old, new, or the designated torn one.
# ---------------------------------------------------------------------------


class TestDiskCrashProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        n_writes=st.integers(1, 6),
        crash_frac=st.floats(0.0, 1.0),
        data=st.randoms(),
    )
    def test_crash_leaves_old_new_or_single_torn(self, n_writes, crash_frac, data):
        clock = Clock()
        disk = SimulatedDisk("p", 256, DiskParameters())
        disk.attach(clock)
        old = {s: bytes([s & 0xFF]) * 512 for s in range(64)}
        for s, content in old.items():
            disk.poke(s, content)
        requests = []
        for i in range(n_writes):
            start = data.randrange(48)
            count = data.randrange(1, 8)
            new = bytes([(0x80 + i) & 0xFF]) * (count * 512)
            requests.append((start, count, new))
            disk.write(start, new, sync=False)
        last_completion = max(r.completion_ns for r in disk._pending) if disk._pending else 0
        clock.advance_to(int(last_completion * crash_frac))
        disk.crash()
        torn = 0
        for s in range(64):
            sector = disk.peek(s, 1)
            candidates = {old[s]} | {
                new[(s - start) * 512 : (s - start + 1) * 512]
                for start, count, new in requests
                if start <= s < start + count
            }
            if sector not in candidates:
                torn += 1
        assert torn <= 1  # at most the single sector under the head

    @settings(max_examples=25, deadline=None)
    @given(st.integers(1, 10))
    def test_drain_makes_everything_durable(self, n_writes):
        clock = Clock()
        disk = SimulatedDisk("p", 256, DiskParameters())
        disk.attach(clock)
        for i in range(n_writes):
            disk.write(i * 4, bytes([i]) * 512, sync=False)
        disk.drain()
        disk.crash()
        for i in range(n_writes):
            assert disk.peek(i * 4, 1) == bytes([i]) * 512


# ---------------------------------------------------------------------------
# Assembler/decoder: assembled programs decode back to valid instructions.
# ---------------------------------------------------------------------------


class TestIsaProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.sampled_from(
                [
                    "lda t0, 8(zero)",
                    "addq t0, t1, t2",
                    "ldq t3, 0(sp)",
                    "stq t3, -8(sp)",
                    "cmpult t0, t1, t2",
                    "xor a0, a1, v0",
                    "nop",
                    "ret",
                ]
            ),
            min_size=1,
            max_size=40,
        )
    )
    def test_assemble_decode_roundtrip(self, lines):
        words, _ = assemble("\n".join(lines))
        assert len(words) == len(lines)
        for word, line in zip(words, lines):
            inst = decode(word)
            assert inst.op is not None
            assert str(inst).split()[0] == line.split()[0]


# ---------------------------------------------------------------------------
# UFS vs a dict oracle: random namespace operations agree.
# ---------------------------------------------------------------------------


@st.composite
def fs_scripts(draw):
    ops = []
    for _ in range(draw(st.integers(1, 40))):
        kind = draw(st.sampled_from(["create", "write", "unlink", "mkdir", "rename"]))
        name = f"n{draw(st.integers(0, 9))}"
        name2 = f"n{draw(st.integers(0, 9))}"
        payload = draw(st.integers(0, 5000))
        ops.append((kind, name, name2, payload))
    return ops


class TestUfsAgainstOracle:
    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
    )
    @given(fs_scripts())
    def test_namespace_and_content_agree(self, script):
        from repro.util import pattern_bytes

        system = build_system(SystemSpec(policy="ufs_delayed", fs_blocks=512))
        fs = system.fs
        oracle: dict[str, bytes] = {}
        dirs: set[str] = set()
        for step, (kind, name, name2, payload) in enumerate(script):
            path, path2 = f"/{name}", f"/{name2}"
            try:
                if kind == "create":
                    fs.create(path)
                    oracle[path] = b""
                elif kind == "write" and path in oracle:
                    data = pattern_bytes(step, 0, payload)
                    fs.write(fs.namei(path), 0, data)
                    old = oracle[path]
                    oracle[path] = data + old[len(data):]
                elif kind == "unlink":
                    fs.unlink(path)
                    del oracle[path]
                elif kind == "mkdir":
                    fs.mkdir(path)
                    dirs.add(path)
                elif kind == "rename" and path in oracle and path2 not in dirs:
                    fs.rename(path, path2)
                    oracle[path2] = oracle.pop(path)
            except Exception:
                continue  # oracle not updated on failure; fs must agree
        for path, content in oracle.items():
            assert fs.exists(path), path
            ino = fs.namei(path)
            assert fs.read(ino, 0, len(content) + 10) == content
        listed = {f"/{n}" for n in fs.readdir("/")} - {"/lost+found"}
        assert listed == set(oracle) | dirs


# ---------------------------------------------------------------------------
# Static analysis: the disassembler is the assembler's exact inverse, and
# the code patcher preserves routine behaviour.
# ---------------------------------------------------------------------------


class TestAnalysisProperties:
    @settings(max_examples=20, deadline=None)
    @given(st.sampled_from(sorted(ROUTINE_SOURCES)))
    def test_disassembly_is_a_fixed_point(self, name):
        """assemble -> disassemble -> assemble reproduces the exact words."""
        from repro.isa.analysis import disassemble_words

        words, labels = assemble(ROUTINE_SOURCES[name])
        dis = disassemble_words(words, labels=labels, name=name)
        rewords, relabels = assemble(dis.source)
        assert rewords == words
        assert relabels == labels
        # And the fixed point is stable: one more trip changes nothing.
        assert disassemble_words(rewords, labels=relabels, name=name).source == dis.source

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(
            st.sampled_from(
                [
                    "lda t0, 8(zero)",
                    "lda sp, -16(sp)",
                    "lda sp, 16(sp)",
                    "addq t0, a1, t2",
                    "subq a0, t2, t3",
                    "cmpult t0, a1, t2",
                    "ldq t3, 0(sp)",
                    "stq a0, -8(sp)",
                    "stb t0, 3(a0)",
                    "ldb t4, 1(a1)",
                    "bis a0, a1, v0",
                    "nop",
                ]
            ),
            min_size=1,
            max_size=30,
        )
    )
    def test_random_straightline_roundtrips(self, body):
        from repro.isa.analysis import disassemble_words

        words, labels = assemble("\n".join(body + ["ret"]))
        dis = disassemble_words(words, labels=labels)
        rewords, _ = assemble(dis.source)
        assert rewords == words

    @settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(
        data=st.binary(min_size=1, max_size=512),
        offset=st.integers(0, 96),
        optimize=st.booleans(),
    )
    def test_patched_kernel_text_is_behaviour_identical(self, data, offset, optimize):
        """A memtest-style copy through plain and patched text ends with
        byte-identical memory and return values."""
        from repro.isa import Interpreter, KernelText
        from repro.isa.analysis import CodePatcher

        heap = 8 * PAGE
        outcomes = []
        for transform in (None, CodePatcher(optimize=optimize)):
            machine = Machine(MachineConfig(memory_bytes=64 * PAGE, boot_time_ns=0))
            text = KernelText(ROUTINE_SOURCES, transform=transform)
            text.load(machine.memory, PAGE, PAGE)
            for i in range(-(-text.size_bytes // PAGE)):
                machine.mmu.map(1 + i, 1 + i, writable=False)
            for vpn in range(8, 16):
                machine.mmu.map(vpn, vpn)
            interp = Interpreter(machine.bus, text)
            machine.bus.store_u64(heap + 8 * PAGE - 8, 1 << 62)
            interp.global_pointer = heap + 8 * PAGE - 8
            machine.memory.write(heap, data)
            hdr = heap + 2 * PAGE
            machine.bus.store_u64(hdr + 0, 0x7B0F)
            machine.bus.store_u64(hdr + 8, heap + 4 * PAGE)
            machine.bus.store_u64(hdr + 16, 2 * PAGE)
            value = interp.call(
                "cache_copy", [hdr, heap, offset, len(data)], sp=15 * PAGE
            ).value
            interp.call("bzero", [heap + 6 * PAGE, 64], sp=15 * PAGE)
            outcomes.append(
                (value, machine.memory.read(heap + 4 * PAGE, 2 * PAGE))
            )
        assert outcomes[0] == outcomes[1]
