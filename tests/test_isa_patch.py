"""Tests for the binary code patcher: correctness, traps, elision, overhead."""

import pytest

from repro.errors import ProtectionTrap
from repro.hw import Machine, MachineConfig
from repro.isa.analysis import (
    CodePatcher,
    PatchError,
    disassemble_words,
    patch_routine,
)
from repro.isa.assembler import assemble
from repro.isa.interpreter import PATCH_TRAP_CODE, Interpreter
from repro.isa.routines import ROUTINE_SOURCES, build_kernel_text
from repro.isa.text import KernelText

PAGE = 8192
HEAP = 8 * PAGE
#: Heap quadword where each harness stores the protection threshold.
DESCRIPTOR = HEAP + 8 * PAGE - 8


def make_env(sources, threshold=1 << 62, transform=None):
    """A small machine with loaded text, a heap, and the gp descriptor."""
    machine = Machine(MachineConfig(memory_bytes=64 * PAGE, boot_time_ns=0))
    text = KernelText(sources, transform=transform)
    pages = -(-text.size_bytes // PAGE)
    text.load(machine.memory, PAGE, PAGE)
    for i in range(pages):
        machine.mmu.map(1 + i, 1 + i, writable=False)
    for vpn in range(8, 16):
        machine.mmu.map(vpn, vpn)
    interp = Interpreter(machine.bus, text)
    machine.bus.store_u64(DESCRIPTOR, threshold)
    interp.global_pointer = DESCRIPTOR
    return machine, interp


def run(interp, name, args):
    return interp.call(name, list(args), sp=15 * PAGE)


class TestPatchedBehaviour:
    """Patched routines compute exactly what the originals compute."""

    def test_bcopy_identical_output(self):
        data = bytes(range(200))
        plain_m, plain_i = make_env(ROUTINE_SOURCES)
        patch_m, patch_i = make_env(ROUTINE_SOURCES, transform=CodePatcher())
        for machine, interp in ((plain_m, plain_i), (patch_m, patch_i)):
            machine.memory.write(HEAP, data)
            run(interp, "bcopy", [HEAP, HEAP + 2048, len(data)])
        assert patch_m.memory.read(HEAP + 2048, 200) == plain_m.memory.read(
            HEAP + 2048, 200
        )
        assert patch_m.memory.read(HEAP + 2048, 200) == data

    def test_cache_copy_identical_output(self):
        hdr = HEAP
        src = HEAP + 256
        dst = HEAP + 4096
        payload = bytes((i * 7) % 256 for i in range(99))
        results = []
        for transform in (None, CodePatcher()):
            machine, interp = make_env(ROUTINE_SOURCES, transform=transform)
            machine.bus.store_u64(hdr + 0, 0x7B0F)
            machine.bus.store_u64(hdr + 8, dst)
            machine.bus.store_u64(hdr + 16, 4096)
            machine.memory.write(src, payload)
            value = run(interp, "cache_copy", [hdr, src, 16, len(payload)]).value
            results.append((value, machine.memory.read(dst + 16, len(payload))))
        assert results[0] == results[1]
        assert results[1][1] == payload

    def test_patched_checksum_matches(self):
        data = (123456789).to_bytes(8, "little") * 16
        plain = make_env(ROUTINE_SOURCES)
        patched = make_env(ROUTINE_SOURCES, transform=CodePatcher())
        values = []
        for machine, interp in (plain, patched):
            machine.memory.write(HEAP, data)
            values.append(run(interp, "checksum_block", [HEAP, len(data)]).value)
        assert values[0] == values[1]


class TestTrap:
    def test_store_above_threshold_traps(self):
        machine, interp = make_env(ROUTINE_SOURCES, transform=CodePatcher())
        machine.bus.store_u64(DESCRIPTOR, HEAP + 4096)  # tighten the threshold
        machine.memory.write(HEAP, b"x" * 64)
        with pytest.raises(ProtectionTrap) as exc:
            run(interp, "bcopy", [HEAP, HEAP + 4096, 64])
        assert exc.value.address == HEAP + 4096

    def test_store_below_threshold_passes(self):
        machine, interp = make_env(ROUTINE_SOURCES, transform=CodePatcher())
        machine.bus.store_u64(DESCRIPTOR, HEAP + 4096)
        machine.memory.write(HEAP, b"y" * 64)
        run(interp, "bcopy", [HEAP, HEAP + 1024, 64])
        assert machine.memory.read(HEAP + 1024, 64) == b"y" * 64

    def test_trap_reports_exact_effective_address(self):
        machine, interp = make_env(ROUTINE_SOURCES, transform=CodePatcher())
        threshold = HEAP + 4096
        machine.bus.store_u64(DESCRIPTOR, threshold)
        machine.memory.write(HEAP, b"z" * 24)
        # The first trapping store is the byte-loop's (length 3 tail).
        with pytest.raises(ProtectionTrap) as exc:
            run(interp, "bcopy", [HEAP, threshold + 5, 3])
        assert exc.value.address == threshold + 5

    def test_naive_patch_traps_too(self):
        machine, interp = make_env(
            ROUTINE_SOURCES, transform=CodePatcher(optimize=False)
        )
        machine.bus.store_u64(DESCRIPTOR, HEAP + 4096)
        machine.memory.write(HEAP, b"w" * 16)
        with pytest.raises(ProtectionTrap):
            run(interp, "bcopy", [HEAP, HEAP + 4200, 16])


class TestElision:
    def test_cache_copy_prologue_spills_elided(self):
        words, labels = assemble(ROUTINE_SOURCES["cache_copy"])
        _, _, report = patch_routine("cache_copy", words, labels)
        assert report.stores == 5
        assert report.elided_stack == 3  # the ra/a0/a1 frame spills
        assert report.checked == 2
        assert report.spilled == 0  # dead scratch registers were found

    def test_rewalk_elision_on_descending_stores(self):
        source = """
            stq zero, 16(a0)
            stq zero, 8(a0)
            stq zero, 0(a0)
            ret
        """
        words, labels = assemble(source)
        _, _, report = patch_routine("rewalker", words, labels)
        assert report.elided_rewalk == 2
        assert report.checked == 1

    def test_elision_reduces_added_words(self):
        for name, source in ROUTINE_SOURCES.items():
            words, labels = assemble(source)
            _, _, opt = patch_routine(name, words, labels, optimize=True)
            _, _, naive = patch_routine(name, words, labels, optimize=False)
            assert opt.added_words <= naive.added_words
        # And strictly fewer where there are stores at all.
        words, labels = assemble(ROUTINE_SOURCES["cache_copy"])
        _, _, opt = patch_routine("cache_copy", words, labels, optimize=True)
        _, _, naive = patch_routine("cache_copy", words, labels, optimize=False)
        assert opt.added_words < naive.added_words

    def test_optimized_executes_fewer_steps_than_naive(self):
        steps = {}
        for optimize in (True, False):
            machine, interp = make_env(
                ROUTINE_SOURCES, transform=CodePatcher(optimize=optimize)
            )
            machine.memory.write(HEAP, bytes(200))
            hdr = HEAP + 2048
            machine.bus.store_u64(hdr + 0, 0x7B0F)
            machine.bus.store_u64(hdr + 8, HEAP + 4096)
            machine.bus.store_u64(hdr + 16, 4096)
            steps[optimize] = run(
                interp, "cache_copy", [hdr, HEAP, 0, 200]
            ).steps
        assert steps[True] < steps[False]

    def test_unpatched_is_fastest(self):
        plain_machine, plain_interp = make_env(ROUTINE_SOURCES)
        patch_machine, patch_interp = make_env(
            ROUTINE_SOURCES, transform=CodePatcher()
        )
        plain_machine.memory.write(HEAP, bytes(128))
        patch_machine.memory.write(HEAP, bytes(128))
        plain = run(plain_interp, "bcopy", [HEAP, HEAP + 1024, 128]).steps
        patched = run(patch_interp, "bcopy", [HEAP, HEAP + 1024, 128]).steps
        assert plain < patched


class TestRewrite:
    @pytest.mark.parametrize("name", sorted(ROUTINE_SOURCES))
    @pytest.mark.parametrize("optimize", [True, False])
    def test_patched_text_disassembles_strictly(self, name, optimize):
        words, labels = assemble(ROUTINE_SOURCES[name])
        new_words, new_labels, _ = patch_routine(
            name, words, labels, optimize=optimize
        )
        dis = disassemble_words(new_words, labels=new_labels, name=name)
        rewords, _ = assemble(dis.source)
        assert rewords == new_words

    def test_branches_cannot_jump_over_checks(self):
        # A branch targeting a checked store must land at the check.
        source = """
            beq a0, out
            stq zero, 0(a1)
        out:
            stq zero, 0(a2)
            ret
        """
        words, labels = assemble(source)
        new_words, new_labels, report = patch_routine("jumpy", words, labels)
        assert report.checked == 2
        dis = disassemble_words(new_words, labels=new_labels, name="jumpy")
        # 'out' points at the head of the second check sequence (ldq),
        # not at the store itself.
        assert dis.lines[new_labels["out"]].text.startswith("ldq")

    def test_panic_code_is_the_trap_code(self):
        words, labels = assemble("stq zero, 0(a0)\nret")
        new_words, new_labels, _ = patch_routine("one_store", words, labels)
        dis = disassemble_words(new_words, labels=new_labels, name="one_store")
        assert any(f"panic #{PATCH_TRAP_CODE}" in line.text for line in dis.lines)

    def test_reserved_register_use_rejected(self):
        words, labels = assemble("lda gp, 8(gp)\nret")
        with pytest.raises(PatchError):
            patch_routine("greedy", words, labels)

    def test_store_free_routine_unchanged(self):
        words, labels = assemble(ROUTINE_SOURCES["checksum_block"])
        new_words, new_labels, report = patch_routine("checksum_block", words, labels)
        assert new_words == words
        assert new_labels == labels
        assert report.stores == 0


class TestCodePatcherTransform:
    def test_build_kernel_text_with_patcher_has_no_natives(self):
        patcher = CodePatcher()
        text = build_kernel_text(transform=patcher)
        assert set(patcher.reports) == set(ROUTINE_SOURCES)
        for routine in text.routines.values():
            assert routine.native is None
        assert patcher.total_added_words > 0
