"""Tests for the independent consistency validator."""

import pytest

from repro.fs.ondisk import DIRENT_SIZE, DirEntry, INODE_SIZE, Inode
from repro.fs.types import BLOCK_SIZE, FileType, ROOT_INO, SECTORS_PER_BLOCK
from repro.fs.validate import validate
from repro.system import SystemSpec, build_system


@pytest.fixture
def system():
    s = build_system(SystemSpec(policy="ufs_delayed", fs_blocks=512))
    return s


def settle(system):
    system.fs.flush_data(sync=True)
    system.fs.flush_metadata(sync=True)
    system.drain_disks()


def patch_inode(system, ino, mutate):
    sb = system.fs.sb
    per_block = BLOCK_SIZE // INODE_SIZE
    block = sb.inode_start + ino // per_block
    offset = (ino % per_block) * INODE_SIZE
    raw = bytearray(system.disk.peek(block * SECTORS_PER_BLOCK, SECTORS_PER_BLOCK))
    inode = Inode.from_bytes(ino, bytes(raw[offset : offset + INODE_SIZE]), strict=False)
    mutate(inode)
    raw[offset : offset + INODE_SIZE] = inode.to_bytes()
    system.disk.poke(block * SECTORS_PER_BLOCK, bytes(raw))


class TestValidator:
    def test_fresh_fs_consistent(self, system):
        settle(system)
        assert validate(system.disk).consistent

    def test_populated_fs_consistent(self, system):
        fs = system.fs
        fs.mkdir("/d")
        ino = fs.create("/d/f")
        fs.write(ino, 0, b"x" * 20000)
        fs.symlink("/d/f", "/s")
        fs.link("/d/f", "/hard")
        settle(system)
        report = validate(system.disk)
        assert report.consistent, report.problems

    def test_detects_bad_nlink(self, system):
        ino = system.fs.create("/f")
        settle(system)
        patch_inode(system, ino, lambda i: setattr(i, "nlink", 9))
        report = validate(system.disk)
        assert any("nlink" in p for p in report.problems)

    def test_detects_duplicate_claim(self, system):
        a = system.fs.create("/a")
        b = system.fs.create("/b")
        system.fs.write(a, 0, b"a")
        system.fs.write(b, 0, b"b")
        settle(system)
        block_of_a = []
        patch_inode(system, a, lambda i: block_of_a.append(i.direct[0]))
        patch_inode(system, b, lambda i: i.direct.__setitem__(0, block_of_a[0]))
        report = validate(system.disk)
        assert any("claimed by both" in p for p in report.problems)

    def test_detects_unreachable_inode(self, system):
        from repro.fs.ondisk import Superblock

        settle(system)
        # Allocate an inode directly on disk with no directory entry.
        patch_inode(
            system,
            40,
            lambda i: (setattr(i, "ftype", FileType.REGULAR), setattr(i, "nlink", 1)),
        )
        report = validate(system.disk)
        assert any("unreachable" in p for p in report.problems)

    def test_detects_bitmap_leak(self, system):
        settle(system)
        sb = system.fs.sb
        raw = bytearray(system.disk.peek(sb.bitmap_start * SECTORS_PER_BLOCK, SECTORS_PER_BLOCK))
        victim = sb.data_start + 50
        raw[victim // 8] |= 1 << (victim % 8)
        system.disk.poke(sb.bitmap_start * SECTORS_PER_BLOCK, bytes(raw))
        report = validate(system.disk)
        assert any("marked used but unclaimed" in p for p in report.problems)

    def test_detects_missing_dot(self, system):
        system.fs.mkdir("/d")
        settle(system)
        ino = system.fs.namei("/d")
        holder = []
        patch_inode(system, ino, lambda i: holder.append(i.direct[0]))
        block = holder[0]
        raw = bytearray(system.disk.peek(block * SECTORS_PER_BLOCK, SECTORS_PER_BLOCK))
        for off in range(0, BLOCK_SIZE, DIRENT_SIZE):
            entry = DirEntry.from_bytes(bytes(raw[off : off + DIRENT_SIZE]))
            if entry is not None and entry.name == ".":
                raw[off : off + DIRENT_SIZE] = b"\x00" * DIRENT_SIZE
        system.disk.poke(block * SECTORS_PER_BLOCK, bytes(raw))
        report = validate(system.disk)
        assert any("missing '.'" in p for p in report.problems)

    def test_fsck_fixes_what_validator_flags(self, system):
        """fsck and the validator must agree: anything fsck repairs should
        validate cleanly afterwards."""
        from repro.fs.fsck import fsck

        ino = system.fs.create("/broken")
        settle(system)
        patch_inode(system, ino, lambda i: setattr(i, "nlink", 5))
        assert not validate(system.disk).consistent
        fsck(system.disk)
        report = validate(system.disk)
        assert report.consistent, report.problems
