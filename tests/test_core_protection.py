"""Tests for the protection manager and the Rio guard."""

import pytest

from repro.core import ProtectionMode, RioConfig, RioFileCache
from repro.core.registry import FLAG_CHANGING
from repro.errors import ProtectionTrap
from repro.fs.cache import IO_CONTEXT
from repro.fs.types import BLOCK_SIZE, FileId
from repro.hw import Machine, MachineConfig
from repro.kernel import Kernel, KernelConfig
from repro.util.checksum import fletcher32


def make_rio_kernel(mode: ProtectionMode, **rio_kw):
    machine = Machine(MachineConfig(memory_bytes=8 * 1024 * 1024, boot_time_ns=0))
    kernel = Kernel(machine, KernelConfig(charge_time=False))
    rio = RioFileCache(kernel, RioConfig(protection=mode, **rio_kw))
    kernel.init_caches(rio.guard)
    return kernel, rio


class TestVmKsegProtection:
    def test_abox_bit_engaged(self):
        kernel, _ = make_rio_kernel(ProtectionMode.VM_KSEG)
        assert kernel.mmu.kseg_through_tlb

    def test_ubc_page_protected_against_wild_store(self):
        kernel, _ = make_rio_kernel(ProtectionMode.VM_KSEG)
        page = kernel.ubc.get(("data", 0, 1, 0), file_id=FileId(0, 1))
        with pytest.raises(ProtectionTrap):
            kernel.bus.store(page.vaddr, b"wild store")

    def test_buffer_cache_page_protected(self):
        kernel, _ = make_rio_kernel(ProtectionMode.VM_KSEG)
        page = kernel.buffer_cache.get(("meta", 0, 1))
        with pytest.raises(ProtectionTrap):
            kernel.bus.store(page.vaddr, b"wild store")

    def test_legitimate_write_succeeds_through_window(self):
        kernel, _ = make_rio_kernel(ProtectionMode.VM_KSEG)
        page = kernel.ubc.get(("data", 0, 2, 0), file_id=FileId(0, 2))
        kernel.ubc.write_into(page, 0, b"authorized", IO_CONTEXT)
        assert kernel.ubc.read(page, 0, 10) == b"authorized"
        # And the page is protected again afterwards.
        with pytest.raises(ProtectionTrap):
            kernel.bus.store(page.vaddr, b"wild")

    def test_registry_frames_protected(self):
        kernel, rio = make_rio_kernel(ProtectionMode.VM_KSEG)
        with pytest.raises(ProtectionTrap):
            kernel.bus.store(rio.registry.base_vaddr, b"\x00" * 8)

    def test_detached_page_frame_writable_again(self):
        kernel, _ = make_rio_kernel(ProtectionMode.VM_KSEG)
        page = kernel.ubc.get(("data", 0, 3, 0))
        vaddr = page.vaddr
        kernel.ubc.drop(page)
        kernel.bus.store(vaddr, b"frame recycled")  # no trap

    def test_trap_counted(self):
        kernel, _ = make_rio_kernel(ProtectionMode.VM_KSEG)
        page = kernel.ubc.get(("data", 0, 4, 0))
        with pytest.raises(ProtectionTrap):
            kernel.bus.store(page.vaddr, b"x")
        assert kernel.mmu.stat_protection_traps == 1


class TestCodePatching:
    def test_store_checker_installed(self):
        kernel, _ = make_rio_kernel(ProtectionMode.CODE_PATCHING)
        assert kernel.bus.store_checker is not None
        assert not kernel.mmu.kseg_through_tlb  # the CPU cannot do it

    def test_patched_text_installed(self):
        kernel, rio = make_rio_kernel(ProtectionMode.CODE_PATCHING)
        pm = rio.protection
        # Every routine was rewritten; checked stores carry inline checks.
        assert set(pm.patch_reports) == set(kernel.text.routines)
        assert sum(r.checked for r in pm.patch_reports.values()) > 0
        # Patched text has no native fast paths: everything interprets.
        for routine in kernel.text.routines.values():
            assert routine.native is None
        # The interpreter hands the descriptor to every call in gp.
        assert kernel.interp.global_pointer != 0
        assert (
            kernel.bus.load_u64(kernel.interp.global_pointer)
            == pm.patch_threshold
        )

    def test_inline_check_traps_registry_store(self):
        kernel, rio = make_rio_kernel(ProtectionMode.CODE_PATCHING)
        target = rio.protection.patch_threshold + 64
        src = kernel.heap.kmalloc(16)
        with pytest.raises(ProtectionTrap) as exc:
            kernel.klib.bcopy(src, target, 16)
        assert exc.value.address == target

    def test_wild_store_trapped_by_check(self):
        kernel, _ = make_rio_kernel(ProtectionMode.CODE_PATCHING)
        page = kernel.ubc.get(("data", 0, 1, 0))
        with pytest.raises(ProtectionTrap):
            kernel.bus.store(page.vaddr, b"wild")

    def test_window_allows_writes(self):
        kernel, _ = make_rio_kernel(ProtectionMode.CODE_PATCHING)
        page = kernel.ubc.get(("data", 0, 2, 0))
        kernel.ubc.write_into(page, 0, b"fine", IO_CONTEXT)
        assert kernel.ubc.read(page, 0, 4) == b"fine"

    def test_meta_page_covered(self):
        kernel, _ = make_rio_kernel(ProtectionMode.CODE_PATCHING)
        page = kernel.buffer_cache.get(("meta", 0, 1))
        with pytest.raises(ProtectionTrap):
            kernel.bus.store(page.vaddr, b"wild")


class TestNoProtection:
    def test_wild_stores_corrupt_silently(self):
        kernel, _ = make_rio_kernel(ProtectionMode.NONE)
        page = kernel.ubc.get(("data", 0, 1, 0))
        kernel.bus.store(page.vaddr, b"corruption")  # no trap
        assert kernel.ubc.read(page, 0, 10) == b"corruption"

    def test_checksum_detects_the_corruption(self):
        """Without protection, the detection apparatus still notices."""
        kernel, rio = make_rio_kernel(ProtectionMode.NONE)
        page = kernel.ubc.get(("data", 0, 1, 0), file_id=FileId(0, 1))
        kernel.ubc.write_into(page, 0, b"legit data", IO_CONTEXT)
        kernel.bus.store(page.vaddr, b"corruption")
        entry = rio.registry.read_entry(page.registry_slot)
        actual = fletcher32(kernel.memory.read(page.pfn * BLOCK_SIZE, BLOCK_SIZE))
        assert actual != entry.checksum


class TestGuardBookkeeping:
    def test_checksum_updated_on_write(self):
        kernel, rio = make_rio_kernel(ProtectionMode.VM_KSEG)
        page = kernel.ubc.get(("data", 0, 1, 0), file_id=FileId(0, 1))
        kernel.ubc.write_into(page, 0, b"payload", IO_CONTEXT)
        entry = rio.registry.read_entry(page.registry_slot)
        expected = fletcher32(kernel.memory.read(page.pfn * BLOCK_SIZE, BLOCK_SIZE))
        assert entry.checksum == expected
        assert not entry.changing

    def test_dirty_flag_tracked(self):
        kernel, rio = make_rio_kernel(ProtectionMode.VM_KSEG)
        page = kernel.ubc.get(("data", 0, 1, 0), file_id=FileId(0, 1))
        kernel.ubc.write_into(page, 0, b"dirty", IO_CONTEXT)
        assert rio.registry.read_entry(page.registry_slot).dirty
        kernel.ubc.set_dirty(page, False)
        assert not rio.registry.read_entry(page.registry_slot).dirty

    def test_placement_tracked(self):
        kernel, rio = make_rio_kernel(ProtectionMode.VM_KSEG)
        page = kernel.ubc.get(
            ("data", 0, 8, 3), file_id=FileId(0, 8), file_offset=3 * BLOCK_SIZE
        )
        kernel.ubc.set_placement(page, disk_block=55)
        entry = rio.registry.read_entry(page.registry_slot)
        assert entry.ino == 8
        assert entry.file_offset == 3 * BLOCK_SIZE
        assert entry.disk_block == 55

    def test_crash_mid_write_leaves_changing_flag(self):
        """If the system dies inside a write window, the entry must still
        say CHANGING — that block cannot be classified by checksum."""
        kernel, rio = make_rio_kernel(ProtectionMode.VM_KSEG, shadow_metadata=False)
        page = kernel.ubc.get(("data", 0, 1, 0), file_id=FileId(0, 1))
        rio.guard.begin_write(page)  # ... and the machine dies here
        entry = rio.registry.read_entry(page.registry_slot)
        assert entry.flags & FLAG_CHANGING

    def test_shadow_preserves_preimage_during_meta_write(self):
        kernel, rio = make_rio_kernel(ProtectionMode.VM_KSEG, shadow_metadata=True)
        cache = kernel.buffer_cache
        page = cache.get(("meta", 0, 1))
        cache.write_into(page, 0, b"version one....", IO_CONTEXT)
        entry_before = rio.registry.read_entry(page.registry_slot)
        # Begin a second update; mid-write, the registry must point at a
        # shadow holding the *pre-image*.
        rio.guard.begin_write(page)
        kernel.bus.store(page.vaddr, b"version two....", IO_CONTEXT)
        entry_mid = rio.registry.read_entry(page.registry_slot)
        assert entry_mid.phys_addr != page.pfn * BLOCK_SIZE
        shadow_bytes = kernel.memory.read(entry_mid.phys_addr, 15)
        assert shadow_bytes == b"version one...."
        assert fletcher32(
            kernel.memory.read(entry_mid.phys_addr, BLOCK_SIZE)
        ) == entry_before.checksum
        # Finish: the registry points back at the updated original.
        rio.guard.end_write(page)
        entry_after = rio.registry.read_entry(page.registry_slot)
        assert entry_after.phys_addr == page.pfn * BLOCK_SIZE

    def test_shadow_frame_released_after_write(self):
        kernel, rio = make_rio_kernel(ProtectionMode.VM_KSEG, shadow_metadata=True)
        cache = kernel.buffer_cache
        page = cache.get(("meta", 0, 2))
        free_before = kernel.frames.free_count
        cache.write_into(page, 0, b"update", IO_CONTEXT)
        assert kernel.frames.free_count == free_before

    def test_detach_frees_registry_slot(self):
        kernel, rio = make_rio_kernel(ProtectionMode.VM_KSEG)
        page = kernel.ubc.get(("data", 0, 1, 0))
        slot = page.registry_slot
        kernel.ubc.drop(page)
        assert not rio.registry.read_entry(slot).valid
