"""Tests for the Table 2 harness and the analysis helpers."""

import pytest

from repro.analysis import WriteAgeTrace, mttf_table, mttf_years, write_age_survival
from repro.analysis.mttf import PAPER_RATES
from repro.perf import (
    TABLE2_SYSTEMS,
    Table2,
    format_table2,
    ratio_summary,
    run_workload,
    spec_for_row,
)
from repro.system import SystemSpec
from repro.workloads.andrew import AndrewParams
from repro.workloads.cp_rm import CpRmParams
from repro.workloads.sdet import SdetParams

SMALL_CP = CpRmParams(dirs=3, files_per_dir=3, mean_file_bytes=8 * 1024)
SMALL_SDET = SdetParams(scripts=2, files_per_script=3)
SMALL_ANDREW = AndrewParams(dirs=2, files_per_dir=2)


class TestSystemRows:
    def test_eight_rows(self):
        assert len(TABLE2_SYSTEMS) == 8

    def test_specs_resolve(self):
        for row in TABLE2_SYSTEMS:
            spec = spec_for_row(row.key)
            assert spec is not None

    def test_code_patching_ablation_row(self):
        from repro.core import ProtectionMode

        spec = spec_for_row("rio_patch")
        assert spec.rio.protection is ProtectionMode.CODE_PATCHING

    def test_unknown_row(self):
        with pytest.raises(KeyError):
            spec_for_row("ext4")

    def test_perf_specs_disable_checksums(self):
        assert spec_for_row("rio_prot").rio.maintain_checksums is False


class TestRunner:
    def test_cp_rm_reports_phase_split(self):
        result = run_workload("rio_prot", "cp_rm", cp_rm_params=SMALL_CP)
        assert result.cp_seconds is not None
        assert result.seconds == pytest.approx(result.cp_seconds + result.rm_seconds)

    def test_rio_issues_no_reliability_writes_during_run(self):
        result = run_workload("rio_prot", "sdet", sdet_params=SMALL_SDET)
        assert result.disk_stats["sync_writes"] == 0

    def test_wt_write_slower_than_rio(self):
        rio = run_workload("rio_prot", "sdet", sdet_params=SMALL_SDET)
        wt = run_workload("wt_write", "sdet", sdet_params=SMALL_SDET)
        assert wt.seconds > 2 * rio.seconds

    def test_protection_essentially_free(self):
        noprot = run_workload("rio_noprot", "andrew", andrew_params=SMALL_ANDREW)
        prot = run_workload("rio_prot", "andrew", andrew_params=SMALL_ANDREW)
        assert prot.seconds <= noprot.seconds * 1.05

    def test_code_patching_slower_than_vm_protection(self):
        """Section 2.1: code patching costs 20-50%; the TLB method ~0."""
        vm = run_workload("rio_prot", "cp_rm", cp_rm_params=SMALL_CP)
        patch = run_workload("rio_patch", "cp_rm", cp_rm_params=SMALL_CP)
        assert patch.seconds > vm.seconds

    def test_unknown_workload(self):
        with pytest.raises(KeyError):
            run_workload("rio_prot", "tpcc")

    def test_mfs_runs_on_memory_mount(self):
        result = run_workload("mfs", "sdet", sdet_params=SMALL_SDET)
        assert result.seconds > 0


class TestReport:
    def make_table(self):
        table = Table2()
        for key, seconds in (
            ("rio_prot", 25.0),
            ("rio_noprot", 24.0),
            ("mfs", 21.0),
            ("wt_write", 539.0),
            ("wt_close", 394.0),
            ("ufs", 332.0),
            ("ufs_delayed", 81.0),
            ("advfs", 125.0),
        ):
            from repro.perf.runner import WorkloadResult

            table.results[(key, "cp_rm")] = WorkloadResult(key, "cp_rm", seconds, 1, 1)
        return table

    def test_ratios_reproduce_paper_arithmetic(self):
        table = self.make_table()
        assert table.ratio("wt_write", "rio_prot", "cp_rm") == pytest.approx(21.56)
        assert table.ratio("ufs_delayed", "rio_prot", "cp_rm") == pytest.approx(3.24)

    def test_ratio_summary_keys(self):
        summary = ratio_summary(self.make_table())
        assert set(summary) >= {
            "rio_vs_wt_write",
            "rio_vs_ufs",
            "rio_vs_delayed",
            "protection_overhead",
            "rio_vs_mfs",
        }

    def test_format_contains_all_rows(self):
        text = format_table2(self.make_table())
        for row in TABLE2_SYSTEMS:
            assert row.label in text


class TestMttf:
    def test_paper_numbers(self):
        """Crash every 2 months: disk 7/650 -> ~15.5 yr, Rio-P 10/650 ->
        ~10.8 yr (the paper rounds to 15 and 11)."""
        table = mttf_table(PAPER_RATES)
        assert table["disk"] == pytest.approx(15.47, abs=0.05)
        assert table["rio_noprot"] == pytest.approx(10.83, abs=0.05)
        assert table["rio_prot"] == pytest.approx(27.08, abs=0.05)

    def test_zero_corruptions_is_infinite(self):
        assert mttf_years(0, 650) == float("inf")

    def test_validates_crashes(self):
        with pytest.raises(ValueError):
            mttf_years(1, 0)


class TestWriteAge:
    def test_overwrite_kills_old_data(self):
        trace = WriteAgeTrace()
        trace.record_write("f", 0, 100, now_ns=0)
        trace.record_write("f", 0, 100, now_ns=int(5e9))
        # At 10s, the first extent died at 5s; the second is alive.
        frac = trace.survival_fraction(6.0, end_ns=int(20e9))
        assert frac == pytest.approx(0.5)

    def test_delete_kills_all_extents(self):
        trace = WriteAgeTrace()
        trace.record_write("f", 0, 100, now_ns=0)
        trace.record_write("f", 200, 100, now_ns=0)
        trace.record_delete("f", now_ns=int(1e9))
        assert trace.survival_fraction(2.0, end_ns=int(100e9)) == 0.0

    def test_young_writes_not_judged(self):
        trace = WriteAgeTrace()
        trace.record_write("f", 0, 100, now_ns=int(99e9))
        # Only 1s old at end: too young for a 30s judgement.
        assert trace.survival_fraction(30.0, end_ns=int(100e9)) == 0.0

    def test_survival_curve_shape(self):
        trace = WriteAgeTrace()
        for i in range(10):
            trace.record_write(f"f{i}", 0, 1000, now_ns=0)
        for i in range(4):
            trace.record_delete(f"f{i}", now_ns=int(10e9))
        curve = write_age_survival(trace, end_ns=int(1000e9), ages=(5, 15))
        assert curve[5] == pytest.approx(1.0)
        assert curve[15] == pytest.approx(0.6)

    def test_bytes_dead_within(self):
        trace = WriteAgeTrace()
        trace.record_write("f", 0, 500, now_ns=0)
        trace.record_delete("f", now_ns=int(3e9))
        assert trace.bytes_dead_within(5.0) == 500
        assert trace.bytes_dead_within(1.0) == 0
