"""Exhaustive opcode coverage for the interpreter, via tiny programs."""

import pytest

from repro.errors import MachineCheck
from repro.isa import KernelText, Interpreter
from repro.hw import Machine, MachineConfig

PAGE = 8192


def run_program(source: str, args=(), heap_init=b""):
    """Assemble a one-routine program, run it, return (value, machine)."""
    machine = Machine(MachineConfig(memory_bytes=64 * PAGE, boot_time_ns=0))
    text = KernelText({"prog": source})
    pages = -(-text.size_bytes // PAGE)
    text.load(machine.memory, PAGE, PAGE)
    for i in range(pages):
        machine.mmu.map(1 + i, 1 + i, writable=False)
    for vpn in range(8, 16):  # heap
        machine.mmu.map(vpn, vpn)
    if heap_init:
        machine.memory.write(8 * PAGE, heap_init)
    interp = Interpreter(machine.bus, text)
    result = interp.call("prog", list(args), sp=15 * PAGE)
    return result.value, machine


HEAP = 8 * PAGE


class TestArithmetic:
    def test_addq_subq(self):
        value, _ = run_program("addq a0, a1, t0\nsubq t0, a2, v0\nret", [10, 32, 2])
        assert value == 40

    def test_mulq(self):
        value, _ = run_program("mulq a0, a1, v0\nret", [7, 6])
        assert value == 42

    def test_mulq_wraps_64_bits(self):
        value, _ = run_program("mulq a0, a0, v0\nret", [1 << 40])
        assert value == (1 << 80) % (1 << 64)

    def test_logic_ops(self):
        value, _ = run_program("and a0, a1, t0\nbis t0, a2, t1\nxor t1, a3, v0\nret",
                               [0b1100, 0b1010, 0b0001, 0b1111])
        assert value == (((0b1100 & 0b1010) | 0b0001) ^ 0b1111)

    def test_shifts(self):
        value, _ = run_program("sll a0, a1, t0\nsrl t0, a2, v0\nret", [3, 8, 4])
        assert value == (3 << 8) >> 4

    def test_shift_count_masked_to_6_bits(self):
        value, _ = run_program("sll a0, a1, v0\nret", [1, 65])
        assert value == 2  # shift by 65 & 63 == 1

    def test_lda_negative_displacement(self):
        value, _ = run_program("lda v0, -16(a0)\nret", [100])
        assert value == 84

    def test_subtraction_wraps(self):
        value, _ = run_program("subq a0, a1, v0\nret", [0, 1])
        assert value == (1 << 64) - 1


class TestComparisons:
    @pytest.mark.parametrize(
        "op,a,b,expected",
        [
            ("cmpeq", 5, 5, 1),
            ("cmpeq", 5, 6, 0),
            ("cmplt", (1 << 64) - 1, 0, 1),  # signed: -1 < 0
            ("cmplt", 0, (1 << 64) - 1, 0),
            ("cmple", 4, 4, 1),
            ("cmpult", (1 << 64) - 1, 0, 0),  # unsigned: max > 0
            ("cmpult", 1, 2, 1),
            ("cmpule", 2, 2, 1),
        ],
    )
    def test_compare(self, op, a, b, expected):
        value, _ = run_program(f"{op} a0, a1, v0\nret", [a, b])
        assert value == expected


class TestBranches:
    @pytest.mark.parametrize(
        "branch,value,taken",
        [
            ("beq", 0, True),
            ("beq", 1, False),
            ("bne", 1, True),
            ("bne", 0, False),
            ("blt", (1 << 64) - 5, True),  # -5 < 0
            ("blt", 5, False),
            ("bge", 5, True),
            ("bge", (1 << 64) - 5, False),
            ("bgt", 1, True),
            ("bgt", 0, False),
            ("ble", 0, True),
            ("ble", 1, False),
        ],
    )
    def test_conditional(self, branch, value, taken):
        source = f"""
            {branch} a0, yes
            lda v0, 0(zero)
            ret
        yes:
            lda v0, 1(zero)
            ret
        """
        result, _ = run_program(source, [value])
        assert result == (1 if taken else 0)

    def test_br_links_return_address(self):
        source = """
            br t0, after
        after:
            bne t0, linked
            lda v0, 0(zero)
            ret
        linked:
            lda v0, 1(zero)
            ret
        """
        value, _ = run_program(source)
        assert value == 1

    def test_backward_loop(self):
        source = """
            bis zero, zero, v0
        loop:
            addq v0, a1, v0
            lda a0, -1(a0)
            bne a0, loop
            ret
        """
        value, _ = run_program(source, [10, 3])
        assert value == 30

    def test_jsr_and_ret_through_register(self):
        source = """
            lda pv, 0(a0)
            jsr ra, (pv)
            lda v0, 1(v0)
            ret
        """
        # a0 points at a tiny "function": lda v0, 41(zero); ret — we place
        # it by jumping into our own text: instead test jsr to a label
        # via computed address is covered by wild-jump tests; here ensure
        # jsr to own entry works (recursion depth 1 via flag).
        # Simpler: jump to the address of the final 'ret' (nop call).
        value, machine = run_program(
            """
            lda t5, 0(zero)
            bne t5, skip
            br v0, here
        here:
            lda v0, 41(zero)
        skip:
            lda v0, 1(v0)
            ret
            """,
        )
        assert value == 42


class TestMemoryOps:
    def test_byte_ops(self):
        value, machine = run_program(
            "stb a1, 5(a0)\nldb v0, 5(a0)\nret", [HEAP, 0x1AB]
        )
        assert value == 0xAB  # stb stores the low byte; ldb zero-extends

    def test_quad_roundtrip(self):
        big = 0x1122334455667788
        value, _ = run_program("stq a1, 8(a0)\nldq v0, 8(a0)\nret", [HEAP, big])
        assert value == big

    def test_unaligned_quad_ok(self):
        """Our simplified ISA allows unaligned data access (byte-addressed
        bus); the value survives."""
        value, _ = run_program("stq a1, 3(a0)\nldq v0, 3(a0)\nret", [HEAP, 999])
        assert value == 999

    def test_load_from_unmapped_machine_checks(self):
        with pytest.raises(MachineCheck):
            run_program("ldq v0, 0(a0)\nret", [0x7000_0000])

    def test_heap_init_visible(self):
        value, _ = run_program("ldq v0, 0(a0)\nret", [HEAP], heap_init=(777).to_bytes(8, "little"))
        assert value == 777


class TestRegisterConventions:
    def test_r31_reads_zero(self):
        value, _ = run_program("addq zero, zero, v0\nret")
        assert value == 0

    def test_r31_write_ignored(self):
        value, _ = run_program("lda zero, 99(zero)\naddq zero, zero, v0\nret")
        assert value == 0

    def test_six_args(self):
        value, _ = run_program(
            "addq a0, a1, t0\naddq t0, a2, t0\naddq t0, a3, t0\n"
            "addq t0, a4, t0\naddq t0, a5, v0\nret",
            [1, 2, 3, 4, 5, 6],
        )
        assert value == 21

    def test_too_many_args_rejected(self):
        with pytest.raises(ValueError):
            run_program("ret", [0] * 7)


class TestCallErrors:
    def test_unknown_routine_names_the_known_set(self):
        from repro.errors import ConfigurationError

        machine = Machine(MachineConfig(memory_bytes=64 * PAGE, boot_time_ns=0))
        text = KernelText({"prog": "ret"})
        text.load(machine.memory, PAGE, PAGE)
        machine.mmu.map(1, 1, writable=False)
        interp = Interpreter(machine.bus, text)
        with pytest.raises(ConfigurationError, match="unknown kernel routine 'nope'.*prog"):
            interp.call("nope", [], sp=15 * PAGE)

    def test_panic_carries_numeric_code(self):
        from repro.errors import KernelPanic

        with pytest.raises(KernelPanic) as exc:
            run_program("panic #21")
        assert exc.value.code == 21

    def test_unexpected_halt_coded_99(self):
        from repro.errors import KernelPanic

        with pytest.raises(KernelPanic) as exc:
            run_program("halt")
        assert exc.value.code == 99
