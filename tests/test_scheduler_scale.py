"""Scheduler behaviour at cluster scale.

The incremental active-list rewrite of :class:`RequestScheduler` must
preserve the original semantics — rotating deficit round-robin over
sorted client ids — while assembling batches in O(batch) instead of
re-sorting every client queue per call.  These tests pin the semantics
at populations the original tests never reached (256+ clients), the
multi-client ``requeue_front`` ordering contract, and the backlog
accounting across a crash-requeue cycle.
"""

from repro.server import Backpressure, Request, RequestScheduler

import pytest


def _req(client: int, req: int, op: str = "stat") -> Request:
    return Request(client_id=client, req_id=req, op=op, path="/x")


def _drain_schedule(scheduler: RequestScheduler, batch_size: int, quantum: int):
    """Pull batches until empty; returns the full (client, req) order."""
    order = []
    while scheduler.backlog():
        batch = scheduler.next_batch(batch_size, quantum)
        assert batch, "backlog positive but batch empty"
        order.extend((r.client_id, r.req_id) for r in batch)
    return order


def test_fairness_at_256_clients():
    """Every one of 256 clients is served before anyone is served twice."""
    scheduler = RequestScheduler(queue_depth=8)
    clients = 256
    for client in range(clients):
        for req in range(3):
            scheduler.enqueue(_req(client, req))
    # quantum=1: one request per visit, so one full rotation of the
    # active list serves each client exactly once.
    first_rotation = scheduler.next_batch(clients, quantum=1)
    assert [r.client_id for r in first_rotation] == list(range(clients))
    assert all(r.req_id == 0 for r in first_rotation)
    # The second rotation serves everyone's second request — nobody got
    # ahead, nobody starved.
    second_rotation = scheduler.next_batch(clients, quantum=1)
    assert [r.client_id for r in second_rotation] == list(range(clients))
    assert all(r.req_id == 1 for r in second_rotation)


def test_rotation_resumes_after_last_served_at_scale():
    """The rotation cursor survives partial batches: a batch ending at
    client k resumes at k+1, wrapping circularly, at 300 clients."""
    scheduler = RequestScheduler(queue_depth=4)
    clients = 300
    for client in range(clients):
        scheduler.enqueue(_req(client, 0))
    seen = []
    # Pull 30 batches of 10 (quantum 1): each batch should be the next
    # 10 ids in ascending circular order.
    for _ in range(30):
        batch = scheduler.next_batch(10, quantum=1)
        seen.extend(r.client_id for r in batch)
    assert seen == list(range(clients))
    # Refill and confirm the cursor wrapped to client 0.
    for client in range(clients):
        scheduler.enqueue(_req(client, 1))
    batch = scheduler.next_batch(5, quantum=1)
    assert [r.client_id for r in batch] == [0, 1, 2, 3, 4]


def test_rotation_skips_idle_clients():
    """Only clients with queued work are visited; sparse ids rotate in
    ascending order regardless of gaps."""
    scheduler = RequestScheduler(queue_depth=4)
    sparse = [7, 64, 65, 900, 4096]
    for client in sparse:
        scheduler.enqueue(_req(client, 0))
        scheduler.enqueue(_req(client, 1))
    batch = scheduler.next_batch(len(sparse), quantum=1)
    assert [r.client_id for r in batch] == sparse
    batch = scheduler.next_batch(len(sparse), quantum=1)
    assert [r.client_id for r in batch] == sparse


def test_requeue_front_preserves_fifo_across_many_clients():
    """Requeued requests from several clients keep intra-client FIFO
    order and go back to the *head* of each queue."""
    scheduler = RequestScheduler(queue_depth=8)
    clients = 32
    for client in range(clients):
        for req in range(4):
            scheduler.enqueue(_req(client, req))
    # Take a big batch (quantum 2): each client contributes reqs 0..1.
    batch = scheduler.next_batch(clients * 2, quantum=2)
    assert len(batch) == clients * 2
    # A crash interrupts the batch after 10 requests: the rest go back.
    survivors = batch[10:]
    scheduler.requeue_front(survivors)
    order = _drain_schedule(scheduler, batch_size=64, quantum=4)
    # Global delivery order varies with the rotation, but per client the
    # req_ids must come out strictly ascending — requeue_front restored
    # the interrupted requests *ahead* of the queued remainder.
    per_client = {}
    for client, req in order:
        per_client.setdefault(client, []).append(req)
    for client, reqs in per_client.items():
        assert reqs == sorted(reqs), (client, reqs)
    # Every request not executed before the crash is delivered exactly once.
    executed_before = {(r.client_id, r.req_id) for r in batch[:10]}
    expected = {
        (client, req) for client in range(clients) for req in range(4)
    } - executed_before
    assert set(order) == expected
    assert len(order) == len(expected)


def test_backlog_accounting_across_crash_requeue_cycle():
    """backlog() is exact through enqueue -> batch -> requeue -> drain."""
    scheduler = RequestScheduler(queue_depth=16)
    clients, per_client = 48, 5
    for client in range(clients):
        for req in range(per_client):
            scheduler.enqueue(_req(client, req))
    total = clients * per_client
    assert scheduler.backlog() == total
    batch = scheduler.next_batch(100, quantum=3)
    assert scheduler.backlog() == total - len(batch)
    # Crash: 60 of the batch never started; they return to their queues.
    scheduler.requeue_front(batch[40:])
    assert scheduler.backlog() == total - 40
    for client in range(clients):
        assert scheduler.backlog(client) == per_client - sum(
            1 for r in batch[:40] if r.client_id == client
        )
    drained = _drain_schedule(scheduler, batch_size=128, quantum=4)
    assert len(drained) == total - 40
    assert scheduler.backlog() == 0
    # Draining emptied the rotation: the next batch is empty, and new
    # work is admitted and scheduled normally afterwards.
    assert scheduler.next_batch(8) == []
    scheduler.enqueue(_req(5, 99))
    assert scheduler.backlog() == 1
    assert [r.req_id for r in scheduler.next_batch(8)] == [99]


def test_backpressure_per_client_at_scale():
    """Queue depth is per client: filling one client's queue does not
    steal capacity from 255 others."""
    scheduler = RequestScheduler(queue_depth=4)
    for req in range(4):
        scheduler.enqueue(_req(0, req))
    with pytest.raises(Backpressure):
        scheduler.enqueue(_req(0, 4))
    for client in range(1, 256):
        scheduler.enqueue(_req(client, 0))  # must not raise
    assert scheduler.backlog() == 4 + 255


def test_incremental_active_list_matches_reference_shuffle():
    """Differential check: the incremental scheduler's schedule equals a
    brute-force reference that re-sorts every non-empty queue per batch,
    across an adversarial interleaving of enqueues and batches."""

    class Reference:
        def __init__(self):
            self.queues = {}
            self.resume_after = -1

        def enqueue(self, request):
            self.queues.setdefault(request.client_id, []).append(request)

        def next_batch(self, batch_size, quantum):
            active = sorted(c for c, q in self.queues.items() if q)
            batch = []
            if not active:
                return batch
            start = 0
            while start < len(active) and active[start] <= self.resume_after:
                start += 1
            order = active[start:] + active[:start]
            while order and len(batch) < batch_size:
                progressed = False
                for cid in list(order):
                    queue = self.queues[cid]
                    took = 0
                    while queue and took < quantum and len(batch) < batch_size:
                        batch.append(queue.pop(0))
                        took += 1
                        progressed = True
                    self.resume_after = cid
                    if len(batch) >= batch_size:
                        return batch
                order = [c for c in order if self.queues[c]]
                if not progressed:
                    break
            return batch

    scheduler = RequestScheduler(queue_depth=64)
    reference = Reference()
    # Deterministic pseudo-random interleaving, no RNG dependency.
    state = 0x5EED
    step = 0
    for round_ in range(200):
        state = (state * 1103515245 + 12345) % (1 << 31)
        client = state % 97
        burst = 1 + state % 3
        for _ in range(burst):
            request = _req(client, step)
            step += 1
            scheduler.enqueue(request)
            reference.enqueue(request)
        if round_ % 5 == 4:
            size = 1 + state % 17
            got = scheduler.next_batch(size, quantum=2)
            want = reference.next_batch(size, quantum=2)
            assert [(r.client_id, r.req_id) for r in got] == [
                (r.client_id, r.req_id) for r in want
            ], f"diverged at round {round_}"
    # Drain both completely.
    while scheduler.backlog():
        got = scheduler.next_batch(13, quantum=2)
        want = reference.next_batch(13, quantum=2)
        assert [(r.client_id, r.req_id) for r in got] == [
            (r.client_id, r.req_id) for r in want
        ]
