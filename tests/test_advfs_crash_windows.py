"""AdvFS crash-window tests: crashes at awkward journal moments."""

import pytest

from repro.fs.advfs import advfs_recover
from repro.fs.validate import validate
from repro.system import SystemSpec, build_system


@pytest.fixture
def system():
    return build_system(SystemSpec(fs_type="advfs", policy="advfs", fs_blocks=512))


class TestJournalCrashWindows:
    def test_crash_during_checkpoint_window(self, system):
        """Crash right after a checkpoint reset the header but (possibly)
        before in-place flushes landed: recovery must still produce a
        consistent file system (the checkpoint's flush writes race the
        crash in the disk queue)."""
        vfs = system.vfs
        for i in range(6):
            fd = vfs.open(f"/pre{i}", create=True)
            vfs.write(fd, b"x" * 1000)
            vfs.close(fd)
        system.fs.journal_checkpoint()  # async flushes + header reset queued
        system.crash("mid checkpoint")
        system.reboot()
        report = validate(system.disk)
        assert report.consistent, report.problems[:6]

    def test_epoch_prevents_stale_replay(self, system):
        """Records from an older epoch must not be replayed after a
        checkpoint truncates the log."""
        vfs = system.vfs
        fd = vfs.open("/old", create=True)
        vfs.close(fd)
        system.fs.journal_commit()
        old_epoch = system.fs._epoch
        system.fs.journal_checkpoint()
        system.fs.flush_metadata(sync=True)
        system.drain_disks()
        assert system.fs._epoch == old_epoch + 1
        # The old records still sit in the journal area, but replay must
        # apply none of them.
        applied = advfs_recover(system.disk)
        assert applied == 0

    def test_mount_bumps_epoch(self, system):
        """Each mount invalidates whatever the previous life logged."""
        first_epoch = system.fs._epoch
        system.crash("x")
        system.reboot()
        assert system.fs._epoch == first_epoch + 1

    def test_interleaved_data_and_journal_traffic(self, system):
        """Data flushes and journal appends share the disk; everything
        still recovers."""
        vfs = system.vfs
        for i in range(10):
            fd = vfs.open(f"/mix{i}", create=True)
            vfs.write(fd, b"d" * 4000)
            vfs.close(fd)
            if i % 3 == 0:
                system.fs.flush_data(sync=False)
        system.fs.journal_commit()
        system.fs.flush_data(sync=True)
        system.crash("x")
        system.reboot()
        assert validate(system.disk).consistent
        for i in range(10):
            assert system.vfs.exists(f"/mix{i}")

    def test_journal_region_isolated_from_data(self, system):
        """Journal writes never land in the data region and vice versa."""
        sb = system.fs.sb
        vfs = system.vfs
        fd = vfs.open("/f", create=True)
        vfs.write(fd, b"z" * 8192)
        vfs.close(fd)
        system.fs.flush_data(sync=True)
        system.fs.journal_commit()
        # Journal header magic is intact after data traffic.
        header = system.disk.peek(sb.journal_start * 16, 1)
        assert header[:4] == b"GOLA"[::-1] or header[:4] == (0x414C4F47).to_bytes(4, "little")
