"""Tests for system assembly and odds and ends across modules."""

import pytest

from repro import RioConfig, SystemSpec, build_system
from repro.core import ProtectionMode
from repro.errors import ConfigurationError


class TestSystemSpec:
    def test_describe(self):
        assert SystemSpec().describe() == "ufs/ufs/none"
        spec = SystemSpec(policy="rio", rio=RioConfig.with_protection())
        assert spec.describe() == "ufs/rio/rio(vm_kseg)"

    def test_build_with_overrides(self):
        system = build_system(policy="ufs_delayed", fs_blocks=512)
        assert system.spec.policy == "ufs_delayed"

    def test_build_with_spec_and_overrides(self):
        base = SystemSpec(policy="ufs")
        system = build_system(base, fs_blocks=512)
        assert system.spec.fs_blocks == 512
        assert base.fs_blocks != 512  # the original spec is untouched

    def test_unknown_fs_type(self):
        with pytest.raises(ConfigurationError):
            build_system(SystemSpec(fs_type="zfs"))

    def test_specs_are_isolated_across_systems(self):
        spec = SystemSpec(policy="ufs")
        a = build_system(spec)
        b = build_system(spec)
        fd = a.vfs.open("/only-in-a", create=True)
        a.vfs.close(fd)
        assert not b.vfs.exists("/only-in-a")


class TestRebootChains:
    def test_rio_spec_flags_propagate(self):
        system = build_system(SystemSpec(policy="rio", rio=RioConfig.with_protection()))
        assert system.kernel.reliability_writes_off
        assert not system.kernel.config.panic_syncs_dirty
        assert system.kernel.mmu.kseg_through_tlb

    def test_reboot_rebuilds_kernel_objects(self):
        system = build_system(SystemSpec(policy="rio", rio=RioConfig.with_protection()))
        old_kernel, old_vfs = system.kernel, system.vfs
        system.crash("x")
        system.reboot()
        assert system.kernel is not old_kernel
        assert system.vfs is not old_vfs

    def test_clock_continues_across_reboot(self):
        system = build_system(SystemSpec(policy="ufs"))
        t0 = system.clock.now_ns
        system.crash("x")
        system.reboot()
        assert system.clock.now_ns > t0  # boot time + recovery I/O

    def test_cold_then_warm_cycles(self):
        system = build_system(SystemSpec(policy="rio", rio=RioConfig.with_protection()))
        fd = system.vfs.open("/a", create=True)
        system.vfs.write(fd, b"a")
        system.vfs.close(fd)
        system.crash("x")
        system.reboot(preserve_memory=False)  # cold: /a is gone
        assert not system.vfs.exists("/a")
        fd = system.vfs.open("/b", create=True)
        system.vfs.write(fd, b"b")
        system.vfs.close(fd)
        system.crash("y")
        system.reboot(preserve_memory=True)  # warm: /b survives
        assert system.vfs.exists("/b")

    def test_mount_count_increments(self):
        system = build_system(SystemSpec(policy="ufs"))
        first = system.fs.sb.mount_count
        system.crash("x")
        system.reboot()
        assert system.fs.sb.mount_count == first + 1


class TestCodePatchingSystem:
    def test_full_stack_with_code_patching(self):
        spec = SystemSpec(
            policy="rio",
            rio=RioConfig(protection=ProtectionMode.CODE_PATCHING),
        )
        system = build_system(spec)
        fd = system.vfs.open("/patched", create=True)
        system.vfs.write(fd, b"guarded by store checks")
        system.vfs.close(fd)
        system.crash("x")
        system.reboot()
        assert system.fs.read(system.fs.namei("/patched"), 0, 32) == b"guarded by store checks"


class TestCli:
    def test_demo_command(self, capsys):
        from repro.__main__ import main

        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "recovered" in out

    def test_mttf_command(self, capsys):
        from repro.__main__ import main

        assert main(["mttf"]) == 0
        assert "years" in capsys.readouterr().out
