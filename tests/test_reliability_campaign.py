"""Tests for the crash-test campaign (Table 1 harness).

Full campaigns are benchmark territory; these tests exercise single runs
and a miniature campaign to validate the machinery.
"""

import pytest

from repro.faults import FaultType
from repro.reliability import (
    CrashTestConfig,
    SYSTEM_NAMES,
    format_table1,
    run_crash_test,
    run_table1_campaign,
    system_spec_for,
)
from repro.reliability.report import Table1


class TestSystemSpecs:
    def test_three_systems(self):
        assert SYSTEM_NAMES == ("disk", "rio_noprot", "rio_prot")

    def test_disk_system_has_no_rio(self):
        assert system_spec_for("disk").rio is None

    def test_rio_systems(self):
        from repro.core import ProtectionMode

        assert system_spec_for("rio_noprot").rio.protection is ProtectionMode.NONE
        assert system_spec_for("rio_prot").rio.protection is ProtectionMode.VM_KSEG

    def test_unknown_system(self):
        with pytest.raises(ValueError):
            system_spec_for("zfs")


class TestSingleRuns:
    def test_text_fault_run_crashes_and_recovers(self):
        result = run_crash_test(
            CrashTestConfig(system="rio_prot", fault_type=FaultType.KERNEL_TEXT, seed=3)
        )
        assert result.crashed
        assert result.crash_kind
        assert result.memtest_progress > 0

    def test_deterministic_given_seed(self):
        config = dict(system="rio_noprot", fault_type=FaultType.POINTER, seed=8)
        a = run_crash_test(CrashTestConfig(**config))
        b = run_crash_test(CrashTestConfig(**config))
        assert a.crashed == b.crashed
        assert a.crash_kind == b.crash_kind
        assert a.ops_run == b.ops_run
        assert a.corrupted == b.corrupted

    def test_panic_crash_carries_numeric_code(self):
        # Heap faults reliably hit a consistency-check panic within a few
        # seeds; the result must then carry the panic's numeric code.
        from repro.isa.interpreter import PANIC_MESSAGES

        for seed in range(1, 30):
            result = run_crash_test(
                CrashTestConfig(
                    system="rio_prot", fault_type=FaultType.KERNEL_HEAP, seed=seed
                )
            )
            if result.crash_kind == "panic" and result.panic_code is not None:
                assert result.panic_code in PANIC_MESSAGES
                break
        else:
            pytest.fail("no coded panic in 29 seeds")

    def test_run_result_counts_protection_trap(self):
        # Seed chosen to trigger the trap path (copy overrun, protected).
        for seed in range(20, 40):
            result = run_crash_test(
                CrashTestConfig(
                    system="rio_prot", fault_type=FaultType.COPY_OVERRUN, seed=seed
                )
            )
            if result.protection_trap:
                assert result.crash_kind == "protection_trap"
                break
        else:
            pytest.fail("no protection trap in 20 seeds")

    def test_discarded_run_reports_no_corruption(self):
        # Stack faults often leave the system running: the run is
        # discarded, exactly as in the paper.
        for seed in range(1, 12):
            result = run_crash_test(
                CrashTestConfig(
                    system="disk", fault_type=FaultType.KERNEL_STACK, seed=seed
                )
            )
            if result.discarded:
                assert not result.crashed
                assert not result.corrupted
                break
        else:
            pytest.fail("no discarded run in 11 seeds")


class TestMiniCampaign:
    def test_small_campaign_structure(self):
        table = run_table1_campaign(
            crashes_per_cell=2,
            systems=("rio_prot",),
            fault_types=(FaultType.KERNEL_TEXT, FaultType.SOURCE_REG),
            base_seed=500,
        )
        assert table.total_crashes("rio_prot") == 4
        cell = table.cell("rio_prot", FaultType.KERNEL_TEXT)
        assert cell.crashes == 2
        assert cell.crash_kinds

    def test_format_table1(self):
        table = run_table1_campaign(
            crashes_per_cell=1,
            systems=("rio_prot",),
            fault_types=(FaultType.KERNEL_TEXT,),
            base_seed=600,
        )
        text = format_table1(table, systems=("rio_prot",))
        assert "kernel text" in text
        assert "Total" in text
        assert "Rio with Protection" in text

    def test_corruption_rate_math(self):
        table = Table1(crashes_per_cell=50)
        cell = table.cell("disk", FaultType.KERNEL_TEXT)
        cell.crashes = 50
        cell.corruptions = 2
        assert table.corruption_rate("disk") == pytest.approx(0.04)
        assert table.total_corruptions("disk") == 2

    def test_unique_crash_messages_counted(self):
        table = run_table1_campaign(
            crashes_per_cell=2,
            systems=("disk",),
            fault_types=(FaultType.KERNEL_TEXT, FaultType.DELETE_BRANCH),
            base_seed=700,
        )
        assert table.unique_crash_messages() >= 1
