"""Tests for UFS: files, directories, block mapping, policies, flushing."""

import pytest

from repro.errors import (
    DirectoryNotEmpty,
    FileExists,
    FileNotFound,
    InvalidArgument,
    IsADirectory,
    NoSpace,
    NotADirectory,
)
from repro.fs.types import BLOCK_SIZE, N_DIRECT
from repro.system import SystemSpec, build_system
from repro.util import pattern_bytes


@pytest.fixture
def system():
    return build_system(SystemSpec(policy="ufs_delayed", fs_blocks=512))


@pytest.fixture
def fs(system):
    return system.fs


class TestNamespace:
    def test_create_and_lookup(self, fs):
        ino = fs.create("/a")
        assert fs.namei("/a") == ino

    def test_create_duplicate_fails(self, fs):
        fs.create("/a")
        with pytest.raises(FileExists):
            fs.create("/a")

    def test_missing_file(self, fs):
        with pytest.raises(FileNotFound):
            fs.namei("/nope")

    def test_relative_path_rejected(self, fs):
        with pytest.raises(InvalidArgument):
            fs.namei("relative")

    def test_mkdir_and_nested_create(self, fs):
        fs.mkdir("/d")
        fs.mkdir("/d/e")
        ino = fs.create("/d/e/f")
        assert fs.namei("/d/e/f") == ino

    def test_readdir(self, fs):
        fs.mkdir("/d")
        fs.create("/d/one")
        fs.create("/d/two")
        assert fs.readdir("/d") == ["one", "two"]

    def test_root_readdir_has_lost_found(self, fs):
        assert "lost+found" in fs.readdir("/")

    def test_file_as_directory_fails(self, fs):
        fs.create("/f")
        with pytest.raises(NotADirectory):
            fs.create("/f/child")

    def test_unlink(self, fs):
        fs.create("/gone")
        fs.unlink("/gone")
        assert not fs.exists("/gone")

    def test_unlink_missing(self, fs):
        with pytest.raises(FileNotFound):
            fs.unlink("/missing")

    def test_unlink_directory_fails(self, fs):
        fs.mkdir("/d")
        with pytest.raises(IsADirectory):
            fs.unlink("/d")

    def test_unlink_frees_resources(self, fs):
        before = fs.statfs()
        ino = fs.create("/big")
        fs.write(ino, 0, b"z" * (4 * BLOCK_SIZE))
        assert fs.statfs()["free_blocks"] < before["free_blocks"]
        fs.unlink("/big")
        after = fs.statfs()
        assert after["free_blocks"] == before["free_blocks"]
        assert after["free_inodes"] == before["free_inodes"]

    def test_rmdir(self, fs):
        fs.mkdir("/d")
        fs.rmdir("/d")
        assert not fs.exists("/d")

    def test_rmdir_nonempty_fails(self, fs):
        fs.mkdir("/d")
        fs.create("/d/x")
        with pytest.raises(DirectoryNotEmpty):
            fs.rmdir("/d")

    def test_rmdir_fixes_parent_nlink(self, fs):
        root_before = fs.iget(fs.namei("/")).nlink
        fs.mkdir("/d")
        assert fs.iget(fs.namei("/")).nlink == root_before + 1
        fs.rmdir("/d")
        assert fs.iget(fs.namei("/")).nlink == root_before

    def test_rename_same_dir(self, fs):
        ino = fs.create("/old")
        fs.rename("/old", "/new")
        assert not fs.exists("/old")
        assert fs.namei("/new") == ino

    def test_rename_across_dirs(self, fs):
        fs.mkdir("/a")
        fs.mkdir("/b")
        ino = fs.create("/a/f")
        fs.rename("/a/f", "/b/g")
        assert fs.namei("/b/g") == ino
        assert fs.readdir("/a") == []

    def test_rename_replaces_target(self, fs):
        ino = fs.create("/src")
        fs.create("/dst")
        fs.write(fs.namei("/dst"), 0, b"target data")
        free_before = fs.statfs()["free_inodes"]
        fs.rename("/src", "/dst")
        assert fs.namei("/dst") == ino
        assert fs.statfs()["free_inodes"] == free_before + 1

    def test_rename_directory_updates_dotdot(self, fs):
        fs.mkdir("/a")
        fs.mkdir("/b")
        fs.mkdir("/a/sub")
        fs.rename("/a/sub", "/b/sub")
        sub = fs.iget(fs.namei("/b/sub"))
        assert fs.dir_lookup(sub, "..") == fs.namei("/b")

    def test_many_files_grow_directory(self, fs):
        fs.mkdir("/many")
        names = [f"file{i:03d}" for i in range(300)]  # > 256 entries/block
        for name in names:
            fs.create(f"/many/{name}")
        assert fs.readdir("/many") == sorted(names)


class TestDataPath:
    def test_write_read_roundtrip(self, fs):
        ino = fs.create("/data")
        payload = pattern_bytes(1, 0, 1000)
        fs.write(ino, 0, payload)
        assert fs.read(ino, 0, 1000) == payload

    def test_read_respects_size(self, fs):
        ino = fs.create("/short")
        fs.write(ino, 0, b"abc")
        assert fs.read(ino, 0, 100) == b"abc"
        assert fs.read(ino, 2, 100) == b"c"
        assert fs.read(ino, 5, 100) == b""

    def test_overwrite(self, fs):
        ino = fs.create("/ow")
        fs.write(ino, 0, b"aaaaaa")
        fs.write(ino, 2, b"BB")
        assert fs.read(ino, 0, 6) == b"aaBBaa"

    def test_sparse_hole_reads_zeroes(self, fs):
        ino = fs.create("/sparse")
        fs.write(ino, 3 * BLOCK_SIZE, b"end")
        assert fs.read(ino, 0, 8) == b"\x00" * 8
        assert fs.read(ino, 3 * BLOCK_SIZE, 3) == b"end"

    def test_multi_block_write(self, fs):
        ino = fs.create("/multi")
        payload = pattern_bytes(2, 0, 3 * BLOCK_SIZE + 500)
        fs.write(ino, 0, payload)
        assert fs.read(ino, 0, len(payload)) == payload
        assert fs.iget(ino).size == len(payload)

    def test_indirect_blocks(self, fs):
        ino = fs.create("/big")
        offset = (N_DIRECT + 3) * BLOCK_SIZE  # needs the indirect block
        fs.write(ino, offset, b"indirect data")
        assert fs.read(ino, offset, 13) == b"indirect data"
        assert fs.iget(ino).indirect != 0

    def test_truncate(self, fs):
        ino = fs.create("/t")
        fs.write(ino, 0, b"x" * (2 * BLOCK_SIZE))
        free_before = fs.statfs()["free_blocks"]
        fs.truncate(ino)
        assert fs.iget(ino).size == 0
        assert fs.read(ino, 0, 10) == b""
        assert fs.statfs()["free_blocks"] == free_before + 2

    def test_write_survives_cache_eviction(self, system):
        """Dirty pages evicted under memory pressure are flushed and
        re-readable — the only disk write a Rio system performs."""
        fs = system.fs
        system.kernel.ubc.capacity = 8  # make eviction easy to trigger
        ino = fs.create("/pressure")
        payload = pattern_bytes(3, 0, BLOCK_SIZE)
        fs.write(ino, 0, payload)
        # Force the page out by filling the UBC with another file.
        filler = fs.create("/filler")
        for i in range(12):
            fs.write(filler, i * BLOCK_SIZE, b"f" * 64)
        assert system.kernel.ubc.stat_evictions > 0
        assert fs.read(ino, 0, BLOCK_SIZE) == payload


class TestDurability:
    def test_data_reaches_disk_after_unmount(self, system):
        fs = system.fs
        ino = fs.create("/durable")
        fs.write(ino, 0, b"must hit the platter")
        fs.unmount()
        system.crash("after unmount")
        system.reboot()
        ino = system.fs.namei("/durable")
        assert system.fs.read(ino, 0, 64) == b"must hit the platter"

    def test_fsync_makes_data_durable_in_delayed_mode(self, system):
        fs = system.fs
        ino = fs.create("/fsynced")
        fs.write(ino, 0, b"explicitly flushed")
        fs.fsync(ino)
        system.crash("right after fsync")
        system.reboot()
        ino = system.fs.namei("/fsynced")
        assert system.fs.read(ino, 0, 64) == b"explicitly flushed"

    def test_unfsynced_data_lost_in_delayed_mode(self, system):
        fs = system.fs
        ino = fs.create("/unsafe")
        fs.write(ino, 0, b"still in memory")
        system.crash("before any flush")
        system.reboot()
        # The delayed policy wrote nothing: file (or its data) is gone.
        if system.fs.exists("/unsafe"):
            ino = system.fs.namei("/unsafe")
            assert system.fs.read(ino, 0, 64) != b"still in memory"

    def test_update_daemon_flushes_after_30s(self, system):
        fs = system.fs
        ino = fs.create("/periodic")
        fs.write(ino, 0, b"wait for update")
        # Let 30+ virtual seconds pass, then poke the kernel.
        system.clock.consume(31 * 10**9)
        system.kernel.maybe_run_update()
        system.drain_disks()
        system.crash("after update ran")
        system.reboot()
        ino = system.fs.namei("/periodic")
        assert system.fs.read(ino, 0, 64) == b"wait for update"


class TestPartialWrite:
    """A mid-write allocation failure is a clean POSIX partial write."""

    def _fill_disk(self, fs, path="/filler"):
        """Append block-sized writes until the disk is genuinely full."""
        ino = fs.create(path)
        offset = 0
        with pytest.raises(NoSpace):
            while True:
                fs.write(ino, offset, b"\xaa" * BLOCK_SIZE)
                offset += BLOCK_SIZE

    def test_enospc_mid_write_commits_the_prefix(self, fs):
        spare = fs.create("/spare")
        fs.write(spare, 0, b"\xbb" * (2 * BLOCK_SIZE))
        victim = fs.create("/victim")
        self._fill_disk(fs)
        # Exactly two blocks come back; a four-block write must stop
        # after them with the written prefix visible — not vanish, and
        # not leave invisible debris.
        fs.unlink("/spare")
        data = pattern_bytes(0xD1CE, 0, 4 * BLOCK_SIZE)
        with pytest.raises(NoSpace):
            fs.write(victim, 0, data)
        inode = fs.iget(victim)
        assert inode.size == 2 * BLOCK_SIZE
        assert fs.read(victim, 0, 2 * BLOCK_SIZE) == data[: 2 * BLOCK_SIZE]

    def test_failed_write_leaves_no_zombie_extent(self, fs):
        spare = fs.create("/spare")
        fs.write(spare, 0, b"\xbb" * (2 * BLOCK_SIZE))
        victim = fs.create("/victim")
        self._fill_disk(fs)
        fs.unlink("/spare")
        with pytest.raises(NoSpace):
            fs.write(victim, 0, pattern_bytes(0xD1CE, 0, 4 * BLOCK_SIZE))
        # Free plenty of space, then extend the file far past the failed
        # write: the gap must read as zeros — a reused block from the
        # failed attempt must not resurrect with stale bytes.
        fs.unlink("/filler")
        tail = pattern_bytes(0x7A11, 0, BLOCK_SIZE)
        fs.write(victim, 8 * BLOCK_SIZE, tail)
        assert fs.read(victim, 2 * BLOCK_SIZE, 6 * BLOCK_SIZE) == b"\x00" * (6 * BLOCK_SIZE)
        assert fs.read(victim, 8 * BLOCK_SIZE, BLOCK_SIZE) == tail
