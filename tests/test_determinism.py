"""Determinism guarantees: identical inputs produce identical simulations.

Everything in the reproduction — workload streams, fault mutations, disk
timing, crash outcomes — must be a pure function of explicit seeds, or
campaigns would not be replayable and EXPERIMENTS.md numbers would not be
regenerable.
"""

from repro import RioConfig, SystemSpec, build_system
from repro.perf import run_workload
from repro.workloads.cp_rm import CpRmParams
from repro.workloads.sdet import SdetParams, SdetWorkload


class TestPerfDeterminism:
    def test_same_run_same_virtual_time(self):
        params = CpRmParams(dirs=3, files_per_dir=3, mean_file_bytes=8192)
        a = run_workload("ufs", "cp_rm", cp_rm_params=params)
        b = run_workload("ufs", "cp_rm", cp_rm_params=params)
        assert a.seconds == b.seconds
        assert a.disk_stats == b.disk_stats

    def test_sdet_deterministic(self):
        def run():
            system = build_system(SystemSpec(policy="wt_close", fs_blocks=1024))
            return SdetWorkload(
                system.vfs, system.kernel, SdetParams(scripts=2, files_per_script=3)
            ).run()

        assert run() == run()


class TestCrashDeterminism:
    def test_identical_crash_and_recovery(self):
        def run():
            system = build_system(
                SystemSpec(policy="rio", rio=RioConfig.with_protection(), fs_blocks=512)
            )
            from repro.workloads.memtest import MemTest

            memtest = MemTest(system.vfs, 99)
            memtest.setup()
            for _ in range(120):
                memtest.step()
            system.crash("deterministic crash")
            report = system.reboot()
            return (
                system.clock.now_ns,
                report.warm.ubc_restored,
                report.warm.metadata_restored,
                report.fsck.fix_count,
                system.disk.stats.sectors_written,
            )

        assert run() == run()

    def test_memory_images_bit_identical(self):
        def image():
            system = build_system(
                SystemSpec(policy="rio", rio=RioConfig.with_protection(), fs_blocks=512)
            )
            fd = system.vfs.open("/x", create=True)
            system.vfs.write(fd, b"deterministic bytes")
            system.vfs.close(fd)
            return system.machine.memory.dump_image()

        assert image() == image()
