"""The file service: sessions, scheduling, admission, crash transparency.

Single-service unit and integration tests; the multi-client crash-storm
campaigns live in test_server_traffic.py.
"""

import pytest

from repro import RioConfig, SystemSpec, build_system
from repro.server import (
    AckJournal,
    Backpressure,
    FileService,
    QuotaExceeded,
    Request,
    RequestScheduler,
    ServiceConfig,
    SessionError,
)
from repro.server.session import FdState, resolve_path


def rio_system(**overrides):
    return build_system(
        SystemSpec(policy="rio", rio=RioConfig.with_protection(), **overrides)
    )


def make_service(**config):
    return FileService(rio_system(), ServiceConfig(**config))


def ok(service, request):
    """Submit one request, pump, and return its successful response."""
    rejection = service.submit(request)
    assert rejection is None, rejection
    responses = service.drain()
    assert len(responses) == 1
    assert responses[0].ok, (responses[0].error, responses[0].value)
    return responses[0]


# -- path resolution ----------------------------------------------------


def test_resolve_path_handles_dots_and_root():
    assert resolve_path("/srv/c000", "f1") == "/srv/c000/f1"
    assert resolve_path("/srv/c000", "./d/../f1") == "/srv/c000/f1"
    assert resolve_path("/srv", "/abs/x") == "/abs/x"
    assert resolve_path("/", "../../escape") == "/escape"
    with pytest.raises(SessionError):
        resolve_path("/srv", "")


# -- sessions -----------------------------------------------------------


def test_sessions_get_homes_and_private_fd_spaces():
    service = make_service()
    a = service.open_session(1)
    b = service.open_session(2)
    assert a.cwd == "/srv/c001" and b.cwd == "/srv/c002"
    assert service.system.vfs.exists("/srv/c001")

    fd_a = ok(service, Request(client_id=1, req_id=1, op="open", path="f", create=True)).value
    fd_b = ok(service, Request(client_id=2, req_id=1, op="open", path="f", create=True)).value
    ok(service, Request(client_id=1, req_id=2, op="write", fd=fd_a, offset=0, data=b"A"))
    ok(service, Request(client_id=2, req_id=2, op="write", fd=fd_b, offset=0, data=b"B"))
    # Same relative path, different files: the homes isolate the clients.
    assert ok(service, Request(client_id=1, req_id=3, op="read", fd=fd_a, offset=0, length=1)).value == b"A"
    assert ok(service, Request(client_id=2, req_id=3, op="read", fd=fd_b, offset=0, length=1)).value == b"B"


def test_unknown_session_and_unknown_fd_are_fatal():
    service = make_service()
    response = service.submit(Request(client_id=9, req_id=1, op="stat", path="x"))
    assert response is not None and not response.ok and not response.retryable
    assert response.error == "EBADSESSION"

    service.open_session(0)
    service.submit(Request(client_id=0, req_id=1, op="read", fd=77, length=1))
    [response] = service.drain()
    assert not response.ok and response.error == "EBADSESSION"


def test_open_fd_quota():
    service = make_service(max_open_fds=2)
    service.open_session(0)
    ok(service, Request(client_id=0, req_id=1, op="open", path="a", create=True))
    ok(service, Request(client_id=0, req_id=2, op="open", path="b", create=True))
    service.submit(Request(client_id=0, req_id=3, op="open", path="c", create=True))
    [response] = service.drain()
    assert not response.ok and response.error == "EQUOTA" and response.retryable


# -- scheduler ----------------------------------------------------------


def _req(client, n):
    return Request(client_id=client, req_id=n, op="stat", path="x")


def test_scheduler_backpressure():
    scheduler = RequestScheduler(queue_depth=2)
    scheduler.enqueue(_req(0, 1))
    scheduler.enqueue(_req(0, 2))
    with pytest.raises(Backpressure):
        scheduler.enqueue(_req(0, 3))
    assert scheduler.backlog(0) == 2


def test_scheduler_fairness_and_rotation():
    scheduler = RequestScheduler(queue_depth=64)
    for n in range(8):
        scheduler.enqueue(_req(0, n))
    for n in range(2):
        scheduler.enqueue(_req(1, n))
    batch = scheduler.next_batch(batch_size=6, quantum=2)
    # Deficit round-robin: the heavy client cannot take the whole batch.
    per_client = {cid: sum(1 for r in batch if r.client_id == cid) for cid in (0, 1)}
    assert per_client == {0: 4, 1: 2}
    # The rotation resumes after the last client served.
    scheduler.enqueue(_req(2, 0))
    batch2 = scheduler.next_batch(batch_size=2, quantum=2)
    assert batch2[0].client_id == 2


def test_scheduler_requeue_front_preserves_order():
    scheduler = RequestScheduler()
    for n in range(4):
        scheduler.enqueue(_req(0, n))
    batch = scheduler.next_batch(batch_size=4, quantum=4)
    scheduler.requeue_front(batch[1:])
    replay = scheduler.next_batch(batch_size=4, quantum=4)
    assert [r.req_id for r in replay] == [1, 2, 3]


def test_scheduler_determinism():
    def schedule():
        scheduler = RequestScheduler()
        order = []
        for n in range(30):
            scheduler.enqueue(_req(n % 3, n))
        while True:
            batch = scheduler.next_batch(batch_size=7, quantum=3)
            if not batch:
                return order
            order.extend((r.client_id, r.req_id) for r in batch)

    assert schedule() == schedule()


# -- admission ----------------------------------------------------------


def test_submit_backpressure_is_retryable():
    service = make_service(queue_depth=1)
    service.open_session(0)
    assert service.submit(Request(client_id=0, req_id=1, op="stat", path="x")) is None
    response = service.submit(Request(client_id=0, req_id=2, op="stat", path="x"))
    assert response is not None and response.error == "EAGAIN" and response.retryable
    service.drain()
    assert service.submit(Request(client_id=0, req_id=3, op="stat", path="x")) is None


# -- the ack journal ----------------------------------------------------


def test_journal_model_and_digests():
    journal = AckJournal()
    journal.record(0, 1, "open", "/f")
    journal.record(0, 2, "write", "/f", offset=4, data=b"abcd")
    journal.record(0, 3, "mkdir", "/d")
    journal.record(0, 4, "rename", "/f", new_path="/g")
    journal.record(0, 5, "unlink", "/g")
    assert journal.files == {}
    assert journal.dirs == {"/d"}
    assert journal.absent == {"/f", "/g"}
    assert journal.ack_digest() != journal.state_digest()
    replay = AckJournal()
    replay.record(0, 1, "open", "/f")
    replay.record(0, 2, "write", "/f", offset=4, data=b"abcd")
    replay.record(0, 3, "mkdir", "/d")
    replay.record(0, 4, "rename", "/f", new_path="/g")
    replay.record(0, 5, "unlink", "/g")
    assert replay.ack_digest() == journal.ack_digest()
    assert replay.state_digest() == journal.state_digest()


def test_audit_detects_and_repairs_loss():
    system = rio_system()
    service = FileService(system, ServiceConfig())
    service.open_session(0)
    fd = ok(service, Request(client_id=0, req_id=1, op="open", path="f", create=True)).value
    ok(service, Request(client_id=0, req_id=2, op="write", fd=fd, offset=0, data=b"keep me"))
    assert service.audit().ok

    # Sabotage the file behind the journal's back: the audit must see it.
    system.vfs.unlink("/srv/c000/f")
    report = service.journal.audit(system.vfs)
    assert not report.ok and any("missing" in item for item in report.lost)

    repaired = service.journal.audit(system.vfs, repair=True)
    assert repaired.repaired >= 1
    assert service.journal.audit(system.vfs).ok


# -- crash transparency (single client) ---------------------------------


def test_crash_between_requests_is_transparent():
    service = make_service()
    system = service.system
    service.open_session(0)
    fd = ok(service, Request(client_id=0, req_id=1, op="open", path="f", create=True)).value
    ok(service, Request(client_id=0, req_id=2, op="write", fd=fd, offset=0, data=b"pre-crash"))

    system.machine.crash("between pumps", kind="forced")
    service.submit(Request(client_id=0, req_id=3, op="read", fd=fd, offset=0, length=9))
    [response] = service.drain()
    assert response.ok and response.value == b"pre-crash"
    assert service.stats.recoveries == 1
    assert service.stats.lost_acks == 0
    assert service.last_audit is not None and service.last_audit.ok


def test_crash_mid_batch_retries_in_order():
    service = make_service(batch_size=8, quantum=8)
    system = service.system
    service.open_session(0)
    fd = ok(service, Request(client_id=0, req_id=1, op="open", path="f", create=True)).value

    # Crash while the middle request of a three-request batch executes.
    service.submit(Request(client_id=0, req_id=2, op="write", fd=fd, offset=0, data=b"one"))
    service.submit(Request(client_id=0, req_id=3, op="write", fd=fd, offset=8, data=b"two"))
    service.submit(Request(client_id=0, req_id=4, op="write", fd=fd, offset=16, data=b"three"))
    state = {"n": 0}

    def storm(_executed):
        state["n"] += 1
        if state["n"] == 2:
            system.machine.crash("mid-batch", kind="forced")

    service.before_execute = storm
    responses = service.pump()
    # The first write acked before the crash; its response is delivered.
    assert [r.req_id for r in responses] == [2] and responses[0].ok
    assert service.stats.transparent_retries == 1
    service.before_execute = None

    # The interrupted request and its successor replay in order.
    responses = service.drain()
    assert [r.req_id for r in responses] == [3, 4]
    assert all(r.ok for r in responses)
    read = ok(service, Request(client_id=0, req_id=5, op="read", fd=fd, offset=16, length=5))
    assert read.value == b"three"
    assert service.stats.lost_acks == 0


def test_rebind_restores_offsets_across_crash():
    service = make_service()
    system = service.system
    service.open_session(0)
    fd = ok(service, Request(client_id=0, req_id=1, op="open", path="f", create=True)).value
    # Sequential write (no offset) advances the session offset.
    ok(service, Request(client_id=0, req_id=2, op="write", fd=fd, data=b"12345"))

    system.machine.crash("offsets", kind="forced")
    # Sequential read after recovery continues where the client left off.
    service.submit(Request(client_id=0, req_id=3, op="write", fd=fd, data=b"678"))
    [w] = service.drain()
    assert w.ok
    read = ok(service, Request(client_id=0, req_id=4, op="read", fd=fd, offset=0, length=8))
    assert read.value == b"12345678"
    session = service.sessions.get(0)
    assert session.rebinds >= 1 and session.rebind_failures == 0


def test_stale_fd_after_lossy_recovery():
    # On a delayed-write disk system a file created just before the
    # crash is gone afterwards; its fd must go stale, not silently
    # point at air.
    service = FileService(build_system(SystemSpec(policy="ufs_delayed")), ServiceConfig())
    system = service.system
    service.open_session(0)
    fd = ok(service, Request(client_id=0, req_id=1, op="open", path="f", create=True)).value
    system.machine.crash("lossy", kind="forced")
    service.submit(Request(client_id=0, req_id=2, op="read", fd=fd, offset=0, length=1))
    [response] = service.drain()
    assert not response.ok and response.error == "EBADSESSION"
    assert service.sessions.get(0).fds[fd].stale
    assert service.sessions.get(0).fds[fd].backing_fd == FdState.STALE


# -- batched syscalls ---------------------------------------------------


def test_vfs_batch_prices_prologue_once():
    system = rio_system()
    vfs, kernel = system.vfs, system.kernel

    fd = vfs.open("/f", create=True)
    start = system.clock.now_ns
    vfs.pwrite(fd, b"x", 0)
    single = system.clock.now_ns - start
    assert kernel.stat_batched_syscalls == 0

    start = system.clock.now_ns
    with vfs.batch():
        for i in range(8):
            vfs.pwrite(fd, b"x", i)
    batched = system.clock.now_ns - start
    assert kernel.stat_batched_syscalls == 7
    # Eight batched writes must cost far less than eight unbatched ones.
    assert batched < 8 * single
    full, cheap = kernel.config.syscall_overhead_ns, kernel.config.batch_syscall_overhead_ns
    assert batched >= full + 7 * cheap


def test_vfs_run_batch_collects_errors():
    system = rio_system()
    results = system.vfs.run_batch(
        [("mkdir", "/d"), ("readdir", "/nope"), ("exists", "/d")]
    )
    assert results[0] is None
    assert isinstance(results[1], Exception)
    assert results[2] is True


def test_quota_error_importable_and_typed():
    assert issubclass(QuotaExceeded, Backpressure.__mro__[1])
    assert QuotaExceeded.retryable and QuotaExceeded.code == "EQUOTA"
