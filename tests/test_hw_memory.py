"""Tests for PhysicalMemory."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import MachineCheck
from repro.hw.memory import PhysicalMemory


def make_mem(pages=4, page_size=8192):
    return PhysicalMemory(pages * page_size, page_size)


class TestConstruction:
    def test_rejects_non_multiple_size(self):
        with pytest.raises(ValueError):
            PhysicalMemory(8192 + 1, 8192)

    def test_rejects_zero_size(self):
        with pytest.raises(ValueError):
            PhysicalMemory(0, 8192)

    def test_page_count(self):
        assert make_mem(pages=4).num_pages == 4


class TestReadWrite:
    def test_zero_initialised(self):
        mem = make_mem()
        assert mem.read(0, 100) == b"\x00" * 100

    def test_roundtrip(self):
        mem = make_mem()
        mem.write(10, b"hello rio")
        assert mem.read(10, 9) == b"hello rio"

    def test_cross_page_write(self):
        mem = make_mem(page_size=8192)
        data = bytes(range(256)) * 80  # 20480 bytes, spans 3 pages
        mem.write(4000, data)
        assert mem.read(4000, len(data)) == data

    def test_out_of_range_read_raises(self):
        mem = make_mem(pages=1)
        with pytest.raises(MachineCheck):
            mem.read(8192 - 4, 8)

    def test_out_of_range_write_raises(self):
        mem = make_mem(pages=1)
        with pytest.raises(MachineCheck):
            mem.write(8190, b"abcd")

    def test_negative_address_raises(self):
        with pytest.raises(MachineCheck):
            make_mem().read(-1, 1)

    def test_u64_roundtrip(self):
        mem = make_mem()
        mem.write_u64(64, 0xDEADBEEFCAFEF00D)
        assert mem.read_u64(64) == 0xDEADBEEFCAFEF00D

    def test_u32_roundtrip(self):
        mem = make_mem()
        mem.write_u32(12, 0x12345678)
        assert mem.read_u32(12) == 0x12345678

    def test_fill(self):
        mem = make_mem()
        mem.fill(100, 50, 0xAB)
        assert mem.read(100, 50) == b"\xab" * 50
        assert mem.read(99, 1) == b"\x00"

    @given(st.integers(0, 8192 * 4 - 64), st.binary(min_size=1, max_size=64))
    def test_write_then_read_anywhere(self, addr, data):
        mem = make_mem()
        mem.write(addr, data)
        assert mem.read(addr, len(data)) == data


class TestImageOps:
    def test_dump_and_load_image(self):
        mem = make_mem(pages=2)
        mem.write(100, b"persist me")
        image = mem.dump_image()
        fresh = make_mem(pages=2)
        fresh.load_image(image)
        assert fresh.read(100, 10) == b"persist me"

    def test_load_image_size_mismatch(self):
        with pytest.raises(ValueError):
            make_mem(pages=2).load_image(b"\x00" * 10)

    def test_erase_models_pc_reset(self):
        mem = make_mem()
        mem.write(0, b"gone after PC reset")
        mem.erase()
        assert mem.read(0, 19) == b"\x00" * 19

    def test_flip_bit(self):
        mem = make_mem()
        mem.write(500, b"\x00")
        mem.flip_bit(500, 3)
        assert mem.read(500, 1) == bytes([1 << 3])
        mem.flip_bit(500, 3)
        assert mem.read(500, 1) == b"\x00"

    def test_flip_bit_validates(self):
        mem = make_mem()
        with pytest.raises(ValueError):
            mem.flip_bit(0, 8)

    def test_page_checksum_changes_on_write(self):
        mem = make_mem()
        before = mem.page_checksum(0)
        mem.write(8, b"x")
        assert mem.page_checksum(0) != before
