"""Shared fixtures: a minimal machine with kernel text loaded and mapped."""

from __future__ import annotations

from types import SimpleNamespace

import pytest

from repro.hw import Machine, MachineConfig
from repro.isa import Interpreter
from repro.isa.routines import build_kernel_text


@pytest.fixture
def env():
    """A small machine with kernel text, a heap and a stack mapped.

    Layout (8 KB pages, identity virtual->physical mapping):
      page 1..   kernel text (read-only)
      page 32..39 heap
      page 48..49 stack
    """
    machine = Machine(MachineConfig(memory_bytes=2 * 1024 * 1024, boot_time_ns=0))
    text = build_kernel_text()
    page = machine.memory.page_size

    text_pages = -(-text.size_bytes // page)
    text.load(machine.memory, base_paddr=1 * page, base_vaddr=1 * page)
    for i in range(text_pages):
        machine.mmu.map(1 + i, 1 + i, writable=False)
    for i in range(8):
        machine.mmu.map(32 + i, 32 + i)
    for i in range(2):
        machine.mmu.map(48 + i, 48 + i)

    interp = Interpreter(machine.bus, text)
    return SimpleNamespace(
        machine=machine,
        bus=machine.bus,
        mmu=machine.mmu,
        memory=machine.memory,
        text=text,
        interp=interp,
        page=page,
        heap=32 * page,
        heap_pages=range(32, 40),
        stack_top=50 * page - 64,
    )
