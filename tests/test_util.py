"""Tests for checksums and the deterministic PRNG."""

import pytest
from hypothesis import given, strategies as st

from repro.util import DeterministicRandom, fletcher32, pattern_bytes


class TestFletcher32:
    def test_known_properties(self):
        assert fletcher32(b"") == fletcher32(b"")
        assert fletcher32(b"abcde") != fletcher32(b"abcdf")

    def test_detects_single_bit_flip(self):
        data = bytearray(b"The Rio file cache" * 10)
        original = fletcher32(data)
        data[7] ^= 0x10
        assert fletcher32(data) != original

    def test_accepts_buffer_types(self):
        assert fletcher32(b"xyz") == fletcher32(bytearray(b"xyz")) == fletcher32(memoryview(b"xyz"))

    @given(st.binary(min_size=0, max_size=4096))
    def test_deterministic(self, data):
        assert fletcher32(data) == fletcher32(data)

    @given(st.binary(min_size=1, max_size=512), st.integers(0, 7))
    def test_any_one_bit_flip_detected(self, data, bit):
        mutated = bytearray(data)
        mutated[len(data) // 2] ^= 1 << bit
        assert fletcher32(bytes(mutated)) != fletcher32(data)


class TestDeterministicRandom:
    def test_same_seed_same_stream(self):
        a = DeterministicRandom(42)
        b = DeterministicRandom(42)
        assert [a.next_u64() for _ in range(20)] == [b.next_u64() for _ in range(20)]

    def test_different_seeds_differ(self):
        assert DeterministicRandom(1).next_u64() != DeterministicRandom(2).next_u64()

    def test_randint_bounds(self):
        rng = DeterministicRandom(7)
        values = [rng.randint(3, 9) for _ in range(200)]
        assert min(values) >= 3 and max(values) <= 9
        assert set(values) == set(range(3, 10))

    def test_randrange_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            DeterministicRandom(0).randrange(0)

    def test_random_in_unit_interval(self):
        rng = DeterministicRandom(11)
        for _ in range(100):
            x = rng.random()
            assert 0.0 <= x < 1.0

    def test_choice_and_weighted_choice(self):
        rng = DeterministicRandom(5)
        assert rng.choice([10]) == 10
        picks = {rng.weighted_choice(["a", "b"], [0.0, 1.0]) for _ in range(50)}
        assert picks == {"b"}

    def test_weighted_choice_validates(self):
        rng = DeterministicRandom(5)
        with pytest.raises(ValueError):
            rng.weighted_choice(["a"], [1, 2])

    def test_shuffle_is_permutation(self):
        rng = DeterministicRandom(9)
        seq = list(range(30))
        shuffled = list(seq)
        rng.shuffle(shuffled)
        assert sorted(shuffled) == seq

    def test_bytes_length(self):
        rng = DeterministicRandom(3)
        for n in (0, 1, 7, 8, 9, 100):
            assert len(rng.bytes(n)) == n

    def test_fork_independent(self):
        rng = DeterministicRandom(1)
        child_a = rng.fork(1)
        child_b = rng.fork(2)
        assert child_a.next_u64() != child_b.next_u64()


class TestPatternBytes:
    def test_deterministic(self):
        assert pattern_bytes(5, 100, 64) == pattern_bytes(5, 100, 64)

    def test_different_keys_differ(self):
        assert pattern_bytes(1, 0, 32) != pattern_bytes(2, 0, 32)

    def test_zero_length(self):
        assert pattern_bytes(1, 0, 0) == b""

    @given(
        st.integers(0, 2**32),
        st.integers(0, 10_000),
        st.integers(1, 300),
        st.integers(1, 300),
    )
    def test_concatenation_property(self, key, offset, len_a, len_b):
        """Contents are a pure function of (key, offset): splits concatenate."""
        whole = pattern_bytes(key, offset, len_a + len_b)
        parts = pattern_bytes(key, offset, len_a) + pattern_bytes(key, offset + len_a, len_b)
        assert whole == parts

    @given(st.integers(0, 2**32), st.integers(0, 1000), st.integers(1, 100))
    def test_subrange_property(self, key, offset, length):
        """Reading a subrange equals slicing the containing range."""
        outer = pattern_bytes(key, 0, offset + length)
        assert pattern_bytes(key, offset, length) == outer[offset : offset + length]
