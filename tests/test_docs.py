"""The documentation is executable and checked.

* every ``python`` code block in docs/TUTORIAL.md runs, top to bottom,
  in one namespace — the tutorial cannot drift from the code;
* every relative link in README.md and docs/*.md resolves;
* docs/ARCHITECTURE.md names every package under src/repro/;
* the docstring-coverage gate (scripts/check_docstrings.py) passes.
"""

from __future__ import annotations

import importlib.util
import pathlib
import re

import pytest

REPO = pathlib.Path(__file__).parent.parent
DOCS = REPO / "docs"
TUTORIAL = DOCS / "TUTORIAL.md"


def extract_python_blocks(path: pathlib.Path) -> list[str]:
    return re.findall(r"```python\n(.*?)```", path.read_text(), re.S)


def test_tutorial_blocks_execute():
    blocks = extract_python_blocks(TUTORIAL)
    assert len(blocks) >= 5, "the tutorial lost its code blocks"
    namespace: dict = {}
    for index, block in enumerate(blocks):
        code = compile(block, f"{TUTORIAL.name}[block {index}]", "exec")
        exec(code, namespace)  # asserts inside the blocks do the checking


def _markdown_files():
    return [REPO / "README.md", *sorted(DOCS.glob("*.md"))]


@pytest.mark.parametrize("path", _markdown_files(), ids=lambda p: p.name)
def test_relative_links_resolve(path):
    text = path.read_text()
    links = re.findall(r"\[[^\]]*\]\(([^)#\s]+)(?:#[^)\s]*)?\)", text)
    broken = []
    for link in links:
        if link.startswith(("http://", "https://", "mailto:")):
            continue
        target = (path.parent / link).resolve()
        if not target.exists():
            broken.append(link)
    assert not broken, f"{path.name}: broken relative links: {broken}"


def test_architecture_names_every_package():
    text = (DOCS / "ARCHITECTURE.md").read_text()
    packages = sorted(
        child.name
        for child in (REPO / "src" / "repro").iterdir()
        if child.is_dir() and (child / "__init__.py").exists()
    )
    assert packages, "src/repro lost its packages?"
    missing = [name for name in packages if f"`{name}/`" not in text]
    assert not missing, f"ARCHITECTURE.md does not cover: {missing}"
    for module in ("system.py", "errors.py"):
        assert module in text


def test_architecture_covers_request_lifecycle():
    text = (DOCS / "ARCHITECTURE.md").read_text()
    for phrase in ("Request lifecycle", "vfs.batch", "rebind_all", "journal.audit"):
        assert phrase in text, f"lifecycle section lost {phrase!r}"


def test_docstring_gate():
    spec = importlib.util.spec_from_file_location(
        "check_docstrings", REPO / "scripts" / "check_docstrings.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    assert module.main([]) == 0, "undocumented public items (see output)"
