"""The tiered backing store: protocol, write-back tier, crash matrix.

Four layers of coverage:

* the :class:`Backend` protocol itself — key validation, the typed
  transient/outage error split, the deterministic failure model of the
  simulated object store;
* the write-back tier — upload batching, content-hash dedup with
  refcounts, the snapshot-once drain invariant, crash semantics of the
  kernel-memory queue;
* the seeded outage matrix — crash with stranded uploads, object store
  down through the reboot (reconcile defers, as declared), heal, one
  ``batch`` pass reconciles, and fsck-remote's verdict agrees with the
  independent dissect of the materialized image;
* determinism — the ``local`` backend changes nothing (bit-identical
  digests vs. no backend), tiered campaigns are engine-pure, and the
  explorer's sweep digest is identical at any worker count.
"""

import hashlib

import pytest

from repro.backend import (
    BackendError,
    BackendOutage,
    DictBackend,
    LocalBackend,
    ObjectStoreBackend,
    ObjectStoreConfig,
    TieredConfig,
    TieredStore,
    TransientBackendError,
    make_backing_store,
)
from repro.backend.audit import mount_materialized, remote_recovery_audit
from repro.backend.fsck_remote import fsck_remote
from repro.backend.tiered import content_hash, obj_key
from repro.fs.types import SECTORS_PER_BLOCK
from repro.hw.clock import Clock
from repro.reliability import TrafficConfig, run_traffic_campaign
from repro.reliability.campaign import system_spec_for
from repro.server import LoadSpec
from repro.system import build_system

BLOCK = 8192


def _tiered_system(seed=1, fs_blocks=256, backend="tiered", system="rio_prot"):
    spec = system_spec_for(
        system, fs_blocks=fs_blocks, backend=backend, backend_seed=seed
    )
    return build_system(spec)


def _churn(system, prefix, count=10, stride=1):
    system.vfs.mkdir(prefix)
    for i in range(count):
        fd = system.vfs.open(f"{prefix}/f{i}", create=True)
        system.vfs.write(fd, bytes([(i * stride) % 256]) * (400 + 96 * i))
        system.vfs.close(fd)
    _flush(system)


def _flush(system):
    system.fs.flush_data(sync=True)
    system.fs.flush_metadata(sync=True)
    system.drain_disks()


def _hold_queue(store):
    """Raise the drain threshold so flushes queue but never upload."""
    from dataclasses import replace

    store.config = replace(store.config, dirty_threshold=10**9)


def _release_queue(store):
    from dataclasses import replace

    store.config = replace(store.config, dirty_threshold=8)


class TestBackendProtocol:
    def test_key_validation(self):
        backend = DictBackend()
        for bad in ("", "a\nb", "x" * 300):
            with pytest.raises(BackendError):
                backend.put(bad, b"data")
            with pytest.raises(BackendError):
                backend.get(bad)

    def test_dict_roundtrip_and_digest(self):
        a, b = DictBackend(), DictBackend()
        for backend in (a, b):
            backend.put("obj/x", b"one")
            backend.put("map/1", b"two")
        assert a.get("obj/x") == b"one"
        assert a.list("obj/") == ["obj/x"]
        assert a.digest() == b.digest()
        b.delete("map/1")
        assert a.digest() != b.digest()
        b.delete("map/1")  # idempotent
        assert a.stats.puts == 2 and a.stats.gets == 1

    def test_local_backend_is_free(self):
        clock = Clock()
        backend = LocalBackend()
        backend.attach(clock)
        before = clock.now_ns
        backend.put("obj/x", b"y" * 10000)
        backend.get("obj/x")
        assert clock.now_ns == before

    def test_objectstore_charges_virtual_time(self):
        clock = Clock()
        store = ObjectStoreBackend(ObjectStoreConfig(seed=4))
        store.attach(clock)
        before = clock.now_ns
        store.put("obj/x", b"y" * BLOCK)
        after_put = clock.now_ns
        assert after_put > before
        store.put("obj/big", b"y" * (64 * BLOCK))
        # Bandwidth term: more bytes cost more virtual time.
        assert clock.now_ns - after_put > after_put - before

    def test_objectstore_outage_hides_absence(self):
        store = ObjectStoreBackend(ObjectStoreConfig(seed=4))
        store.attach(Clock())
        store.set_down(True)
        with pytest.raises(BackendOutage):
            store.get("obj/never-stored")
        with pytest.raises(BackendOutage):
            store.put("obj/x", b"y")
        store.set_down(False)
        with pytest.raises(KeyError):
            store.get("obj/never-stored")

    def test_objectstore_fail_for_expires_with_clock(self):
        clock = Clock()
        store = ObjectStoreBackend(ObjectStoreConfig(seed=4))
        store.attach(clock)
        store.fail_for(10_000_000)
        with pytest.raises(BackendOutage):
            store.put("obj/x", b"y")
        clock.consume(10_000_001)
        store.put("obj/x", b"y")
        assert store.get("obj/x") == b"y"

    def test_objectstore_transients_are_seeded(self):
        def pattern(seed):
            store = ObjectStoreBackend(
                ObjectStoreConfig(seed=seed, transient_fail_pct=30)
            )
            store.attach(Clock())
            out = []
            for i in range(40):
                try:
                    store.put(f"obj/{i}", b"data")
                    out.append("ok")
                except TransientBackendError:
                    out.append("fail")
            return out

        first = pattern(9)
        assert first == pattern(9)
        assert "fail" in first and "ok" in first
        assert first != pattern(10)

    def test_make_backing_store_flavours(self):
        from repro.disk.device import SimulatedDisk

        for name, remote_type in (
            ("local", LocalBackend),
            ("objectstore", ObjectStoreBackend),
            ("tiered", ObjectStoreBackend),
        ):
            disk = SimulatedDisk("d", num_sectors=256 * 16)
            store = make_backing_store(name, disk=disk, clock=Clock(), seed=3)
            assert isinstance(store, TieredStore)
            assert isinstance(store.remote, remote_type)
        with pytest.raises(ValueError):
            make_backing_store("s3", disk=disk)


class TestTieredStore:
    def test_flush_uploads_and_seals(self):
        system = _tiered_system()
        store = system.backing
        _churn(system, "/a")
        store.drain_uploads()
        assert store.stats.uploads > 0
        assert not store.dirty_blocks()
        # A drain never claims the mirror: blocks written before the
        # store was installed (mkfs) reconcile on the first full scan.
        first = fsck_remote(store, batch=True)
        assert first.ok and not first.sealed and first.repairs > 0
        # Now the remote tier alone reproduces the local image, and a
        # second check rides the seal fast path.
        materialized = hashlib.sha256(store.materialize()).hexdigest()
        assert materialized == store.local_image_sha256()
        second = fsck_remote(store)
        assert second.sealed and second.ok

    def test_dedup_refcounts(self):
        system = _tiered_system()
        store = system.backing
        body = b"\x5a" * BLOCK  # exactly one block: identical data blocks
        for name in ("/one", "/two"):
            fd = system.vfs.open(name, create=True)
            system.vfs.write(fd, body)
            system.vfs.close(fd)
        _flush(system)
        store.drain_uploads()
        digest = content_hash(body)
        assert store._refs[digest] == 2
        assert store.stats.dedup_hits >= 1
        # Overwriting a *file* would let UFS allocate a fresh data block
        # and leave the old bytes in place on disk (still correctly
        # mirrored, so still referenced).  Drive the refcount
        # transitions at the block layer instead: rewrite the two
        # physical blocks that hold the shared blob.
        shared = sorted(b for b, d in store._map.items() if d == digest)
        assert len(shared) == 2
        first, second = shared
        store.disk.poke(first * SECTORS_PER_BLOCK, b"\xa5" * BLOCK)
        store.note_flush(first)
        store.drain_uploads()
        assert store._refs[digest] == 1
        # Rewrite the last holder: refcount zero deletes the blob.
        store.disk.poke(second * SECTORS_PER_BLOCK, b"\x3c" * BLOCK)
        store.note_flush(second)
        store.drain_uploads()
        assert digest not in store._refs
        assert obj_key(digest) not in store.remote.list("obj/")

    def test_drain_snapshots_dirty_set_once(self):
        """A block re-dirtied during a slow drain waits for the *next*
        drain — the in-flight batch never extends (the regression the
        flush loop fixed, realized at the upload tier)."""
        system = _tiered_system()
        store = system.backing
        _churn(system, "/a")
        batch = list(store._dirty)
        assert batch
        victim = batch[0]
        redirtied = []
        original_put = store.remote.put

        def racing_put(key, data):
            # A concurrent flush lands mid-drain: re-dirty the block the
            # drain already uploaded (and one it is about to upload).
            if not redirtied:
                redirtied.append(True)
                store.note_flush(victim)
            return original_put(key, data)

        store.remote.put = racing_put
        try:
            # Slow remote: every upload is a chance for the race to land.
            assert store.drain_uploads()
        finally:
            store.remote.put = original_put
        # The drain uploaded exactly the snapshot; the re-dirtied block
        # is queued for the next drain, not re-uploaded in this one.
        assert store.dirty_blocks() == [victim]
        assert store.drain_uploads()
        assert not store.dirty_blocks()

    def test_crash_discards_queue_and_reboot_reconciles(self):
        system = _tiered_system()
        store = system.backing
        _churn(system, "/a")
        store.drain_uploads()
        _hold_queue(store)
        _churn(system, "/b", count=6)
        assert store.dirty_blocks()
        system.crash("stranded uploads", kind="forced")
        _release_queue(store)
        report = system.reboot()
        # The queue was kernel memory: the reboot discarded it (nothing
        # was left to drain) and the mount-time reconcile healed the
        # remote tier from local truth instead.
        assert not store.dirty_blocks()
        assert report.remote is not None and report.remote.ok
        assert report.remote.repairs > 0
        materialized = hashlib.sha256(store.materialize()).hexdigest()
        assert materialized == store.local_image_sha256()

    def test_writeback_policy_drains_at_fsync(self):
        """On a write-through policy the durability point is the upload
        boundary: fsync leaves nothing in the dirty queue."""
        system = _tiered_system(system="disk")
        store = system.backing
        fd = system.vfs.open("/f", create=True)
        system.vfs.write(fd, b"durable" * 600)
        system.vfs.fsync(fd)
        system.vfs.close(fd)
        assert store.stats.uploads > 0
        assert not store.dirty_blocks()

    def test_transient_failures_retry_then_defer(self):
        system = _tiered_system()
        store = system.backing
        _churn(system, "/a", count=4)
        failures = {"left": 2}
        original_put = store.remote.put

        def flaky_put(key, data):
            if failures["left"]:
                failures["left"] -= 1
                raise TransientBackendError("blip")
            return original_put(key, data)

        store.remote.put = flaky_put
        try:
            assert store.drain_uploads()
        finally:
            store.remote.put = original_put
        assert not store.dirty_blocks()
        assert store.stats.retries >= 2

    def test_outage_defers_blocks_not_drops(self):
        system = _tiered_system()
        store = system.backing
        _churn(system, "/a", count=4)
        dirty = store.dirty_blocks()
        store.remote.set_down(True)
        assert not store.drain_uploads()
        assert store.dirty_blocks() == dirty
        assert store.stats.outage_deferrals > 0
        store.remote.set_down(False)
        assert store.drain_uploads()
        assert not store.dirty_blocks()


class TestOutageMatrix:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_crash_outage_reboot_reconcile(self, seed):
        system = _tiered_system(seed=seed)
        store = system.backing
        _churn(system, "/base", count=8, stride=seed)
        store.drain_uploads()
        _hold_queue(store)
        _churn(system, "/late", count=8, stride=seed + 1)
        assert store.dirty_blocks()
        system.crash("outage matrix", kind="forced")
        _release_queue(store)
        store.remote.set_down(True)
        report = system.reboot()
        # Reconcile during the outage defers — declared, not an error.
        assert report.remote is not None and report.remote.deferred
        store.remote.set_down(False)
        check = fsck_remote(store, batch=True, force=True)
        assert check.ok and check.repairs > 0
        # fsck-remote and the independent verifier agree about the
        # materialized image after every recovery.
        scratch, scratch_report, image = mount_materialized(store)
        from repro.fs.dissect import compare_verdicts, dissect_image

        scan = dissect_image(image)
        divergence = compare_verdicts(
            fsck_unrecoverable=scratch_report.fsck.unrecoverable,
            fsck_fix_count=scratch_report.fsck.fix_count,
            report=scan,
        )
        assert divergence.agreed, divergence.details
        assert scratch.vfs.exists("/base/f0")


class TestTrafficRemote:
    def test_tiered_campaign_zero_lost_acks(self):
        result = run_traffic_campaign(
            TrafficConfig(
                system="rio_prot",
                clients=3,
                crashes=1,
                seed=21,
                load=LoadSpec(ops_per_client=10),
                backend="tiered",
            )
        )
        assert result.ok and result.remote_ok
        assert result.remote_reconciles == 1
        assert result.remote_audit["ok"]
        assert result.remote_stats["uploads"] > 0
        data = result.to_json_dict()
        assert data["backend"] == "tiered" and data["remote_ok"]

    def test_backendless_campaign_serializes_as_before(self):
        result = run_traffic_campaign(
            TrafficConfig(
                system="rio_prot",
                clients=2,
                crashes=0,
                seed=21,
                load=LoadSpec(ops_per_client=6),
            )
        )
        data = result.to_json_dict()
        assert "backend" not in data and "remote_audit" not in data
        assert result.remote_ok  # vacuously true without a backend

    def test_local_backend_changes_nothing(self):
        def digests(backend):
            result = run_traffic_campaign(
                TrafficConfig(
                    system="rio_prot",
                    clients=2,
                    crashes=1,
                    seed=33,
                    load=LoadSpec(ops_per_client=8),
                    backend=backend,
                )
            )
            return result.ack_digest, result.state_digest

        assert digests(None) == digests("local")

    def test_tiered_campaign_engine_pure(self):
        def run(fast_path):
            return run_traffic_campaign(
                TrafficConfig(
                    system="rio_prot",
                    clients=2,
                    crashes=1,
                    seed=33,
                    load=LoadSpec(ops_per_client=8),
                    backend="tiered",
                    fast_path=fast_path,
                )
            )

        hot, ref = run(True), run(False)
        assert hot.ack_digest == ref.ack_digest
        assert hot.state_digest == ref.state_digest
        assert (
            hot.remote_audit["image_sha256"] == ref.remote_audit["image_sha256"]
        )

    def test_audit_remote_raises_on_outage(self):
        system = _tiered_system()
        store = system.backing
        _churn(system, "/a", count=4)
        store.drain_uploads()
        from repro.server.journal import AckJournal

        journal = AckJournal()
        store.remote.set_down(True)
        with pytest.raises(BackendOutage):
            journal.audit_remote(store)


class TestExploreBackend:
    def test_every_upload_boundary_survives(self):
        """The acceptance criterion: crash at every backend/upload and
        backend/commit boundary; the spec (including the remote-tier
        clause) holds at each."""
        from repro.explore.explorer import run_boundary_trial, run_enumeration
        from repro.explore.workloads import ExploreConfig

        config = ExploreConfig(
            workload="basic",
            system="rio_prot",
            seed=3,
            ops=1,
            fs_blocks=96,
            backend="tiered",
        )
        enumeration = run_enumeration(config)
        targets = [
            b for b in enumeration.boundaries if b.kind == "backend"
        ]
        assert {b.op for b in targets} == {"upload", "commit"}
        for boundary in targets:
            verdict = run_boundary_trial(config, boundary)
            assert verdict.fired
            assert not verdict.violations, [
                v.to_json_dict() for v in verdict.violations
            ]

    def test_sweep_digest_jobs_pure(self):
        from repro.explore.explorer import explore
        from repro.explore.workloads import ExploreConfig

        config = ExploreConfig(
            workload="basic",
            system="disk",
            seed=3,
            ops=2,
            fs_blocks=96,
            backend="tiered",
        )
        serial = explore(config, jobs=1)
        fanned = explore(config, jobs=2)
        assert serial.to_json_dict()["report_digest"] == (
            fanned.to_json_dict()["report_digest"]
        )
        # The disk system legitimately loses unflushed acks at crash
        # points (the paper's thesis) — but the remote tier must stay
        # consistent with the surviving local disk at every boundary.
        remote = [
            v for v in serial.violations if v.clause == "remote-tier-consistent"
        ]
        assert not remote, [v.to_json_dict() for v in remote]
