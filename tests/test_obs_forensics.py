"""Unit tests for the flight recorder and the forensic report builder.

The recorder tests cover the lifecycle (disabled by default, start/stop,
ring eviction with dropped accounting); the forensics tests run the
report builder on small *synthetic* event streams so every attribution
path — baseline diff, heuristic, crash stand-in, no injection — is
exercised without running a campaign.
"""

from __future__ import annotations

import pytest

from repro.obs import (
    DEFAULT_EVENT_CAP,
    FlightRecorder,
    NoDivergence,
    build_forensic_report,
    events_digest,
    first_divergence,
    format_forensic_report,
)


def ev(seq, kind, op, vtime=0, **payload):
    return {"seq": seq, "kind": kind, "op": op, "vtime": vtime, "payload": payload}


class FakeClock:
    def __init__(self):
        self.now_ns = 0


class TestFlightRecorder:
    def test_disabled_by_default(self):
        rec = FlightRecorder()
        assert not rec.enabled
        rec.emit("cache", "write", page="p")
        assert len(rec) == 0

    def test_default_cap(self):
        assert FlightRecorder().cap == DEFAULT_EVENT_CAP

    def test_start_records_and_stop_freezes(self):
        clock = FakeClock()
        rec = FlightRecorder(clock)
        rec.start()
        clock.now_ns = 7
        rec.emit("cache", "write", page="p")
        rec.stop()
        rec.emit("cache", "write", page="q")
        assert rec.to_json_list() == [
            {"seq": 0, "kind": "cache", "op": "write", "vtime": 7,
             "payload": {"page": "p"}}
        ]

    def test_payload_may_reuse_kind_and_op_keys(self):
        """kind/op are positional-only on emit, so payloads can carry
        fields with those names (the cache layer does)."""
        rec = FlightRecorder()
        rec.start()
        rec.emit("cache", "fill", kind="data", op="x")
        assert rec.to_json_list()[0]["payload"] == {"kind": "data", "op": "x"}

    def test_cap_evicts_oldest_and_counts_dropped(self):
        rec = FlightRecorder(cap=3)
        rec.start()
        for i in range(5):
            rec.emit("cache", "write", i=i)
        assert len(rec) == 3
        assert rec.dropped == 2
        assert rec.events()[0].seq == 2  # seq survives eviction

    def test_start_clears_previous_run(self):
        rec = FlightRecorder(cap=3)
        rec.start()
        for i in range(5):
            rec.emit("cache", "write", i=i)
        rec.start()
        assert len(rec) == 0 and rec.dropped == 0
        rec.emit("cache", "write", i=9)
        assert rec.events()[0].seq == 0

    def test_start_can_resize(self):
        rec = FlightRecorder(cap=2)
        rec.start(cap=5)
        for i in range(5):
            rec.emit("cache", "write", i=i)
        assert len(rec) == 5 and rec.dropped == 0

    def test_rejects_nonpositive_cap(self):
        with pytest.raises(ValueError):
            FlightRecorder(cap=0)
        with pytest.raises(ValueError):
            FlightRecorder().start(cap=-1)

    def test_digest_is_order_and_content_sensitive(self):
        a = ev(0, "cache", "write", page="a")
        b = ev(1, "cache", "write", page="b")
        assert events_digest([a, b]) != events_digest([b, a])
        assert events_digest([a]) != events_digest([ev(0, "cache", "write", page="z")])
        rec = FlightRecorder()
        rec.start()
        rec.emit("cache", "write", page="a")
        assert rec.digest() == events_digest(rec.to_json_list())


FAULTED = [
    ev(0, "syscall", "write", vtime=10, phase="enter"),
    ev(1, "trial", "inject", vtime=11, at_op=3, fault="pointer"),
    ev(2, "fault", "inject", vtime=11, details=["flip word 7"]),
    ev(3, "cache", "write", vtime=12, page="a", offset=0),
    ev(4, "cache", "write", vtime=13, page="b", offset=99),  # corrupted offset
    ev(5, "wb", "flush", vtime=14, page="b"),
    ev(6, "crash", "machine_check", vtime=15, reason="boom", panic_code=None),
]

# Same trial, injection suppressed.  vtimes deliberately differ so the
# tests prove timing is excluded from the comparison.
BASELINE = [
    ev(0, "syscall", "write", vtime=100, phase="enter"),
    ev(1, "cache", "write", vtime=120, page="a", offset=0),
    ev(2, "cache", "write", vtime=130, page="b", offset=1),
    ev(3, "wb", "flush", vtime=140, page="b"),
]

RESULT = {
    "config": {"system": "rio_prot", "fault_type": "pointer", "seed": 7},
    "crashed": True,
    "ops_run": 44,
    "memtest_problems": [{"path": "/f", "problem": "missing"}],
    "checksum_mismatches": 1,
    "static_copy_mismatch": False,
    "recovery_failed": False,
    "protection_trap": True,
}


class TestFirstDivergence:
    def test_identical_streams(self):
        assert first_divergence(BASELINE, BASELINE) == (None, None)

    def test_injector_events_are_filtered(self):
        """A stream differing only by trial/fault events is identical."""
        clean = [e for e in FAULTED[:4] if e["kind"] not in ("trial", "fault")]
        idx, div = first_divergence(FAULTED[:4], clean)
        assert (idx, div) == (None, None)

    def test_vtime_is_excluded(self):
        shifted = [dict(e, vtime=e["vtime"] + 1000) for e in BASELINE]
        assert first_divergence(shifted, BASELINE) == (None, None)

    def test_diverging_payload(self):
        idx, div = first_divergence(FAULTED, BASELINE)
        assert idx == 2  # index into the injector-filtered faulted stream
        assert div["payload"]["offset"] == 99

    def test_truncated_faulted_stream(self):
        idx, div = first_divergence(BASELINE[:2], BASELINE)
        assert idx == 2 and div is None


class TestForensicReportBuilder:
    def test_baseline_diff_attribution(self):
        report = build_forensic_report(RESULT, FAULTED, BASELINE)
        assert report.system == "rio_prot"
        assert report.fault == "pointer"
        assert report.seed == 7
        assert report.injection["payload"]["at_op"] == 3
        assert [e["payload"] for e in report.fault_events] == [
            {"details": ["flip word 7"]}
        ]
        assert report.divergence_basis == "baseline-diff"
        assert report.first_divergence["payload"]["offset"] == 99
        assert report.first_divergent_store == report.first_divergence
        assert report.crash["op"] == "machine_check"
        assert report.events_total == len(FAULTED)

    def test_detector_evidence_lines(self):
        report = build_forensic_report(RESULT, FAULTED, BASELINE)
        text = " | ".join(report.detectors)
        assert "memtest: 1 file problem(s)" in text
        assert "/f" in text and "missing" in text
        assert "registry checksums: 1 mismatched slot(s)" in text
        assert "protection trap" in text

    def test_heuristic_without_baseline(self):
        report = build_forensic_report(RESULT, FAULTED, None)
        assert report.divergence_basis == "heuristic"
        # First store-class event after the injection marker (which may
        # pre-date the true divergence — that is why it is a heuristic).
        assert report.first_divergent_store["payload"]["page"] == "a"
        assert any("no baseline" in n for n in report.notes)

    def test_crash_stands_in_when_no_store_event(self):
        stream = [FAULTED[0], FAULTED[1], FAULTED[2], FAULTED[6]]
        report = build_forensic_report(RESULT, stream, None)
        assert report.first_divergent_store["kind"] == "crash"
        assert any("stands in" in n for n in report.notes)

    def test_identical_to_baseline_means_no_divergence(self):
        report = build_forensic_report(RESULT, BASELINE, BASELINE)
        assert report.divergence_basis == "none"
        assert report.first_divergence is None
        assert isinstance(report.first_divergent_store, NoDivergence)
        assert "identical" in report.first_divergent_store.reason
        assert any("identical" in n for n in report.notes)

    def test_no_injection_recorded(self):
        report = build_forensic_report(RESULT, BASELINE, None)
        assert report.injection is None
        assert report.divergence_basis == "none"
        assert isinstance(report.first_divergent_store, NoDivergence)
        assert "no fault injected" in report.first_divergent_store.reason

    def test_crash_at_event_index_zero_is_typed_not_crash(self):
        """A trial that crashes at the very first event (an explorer
        boundary-0 trial) attributes nothing: there is no prior store to
        blame, and the report says so in a typed way."""
        stream = [ev(0, "crash", "machine_check", reason="armed", panic_code=None)]
        report = build_forensic_report(RESULT, stream, None)
        assert report.divergence_basis == "none"
        assert isinstance(report.first_divergent_store, NoDivergence)
        assert "no prior" in report.first_divergent_store.reason
        assert any("before any fault" in n for n in report.notes)
        # and the typed outcome survives the wire format + the renderer
        data = report.to_json_dict()
        assert data["first_divergent_store"]["no_divergence"] is True
        assert "no prior" in format_forensic_report(report)

    def test_no_injection_crash_after_stores(self):
        """Explorer trials that crash mid-workload: the stores on record
        are ordinary workload stores, not divergence."""
        stream = BASELINE + [
            ev(4, "crash", "machine_check", vtime=150, reason="armed", panic_code=None)
        ]
        report = build_forensic_report(RESULT, stream, None)
        assert isinstance(report.first_divergent_store, NoDivergence)
        assert "ordinary workload stores" in report.first_divergent_store.reason

    def test_truncated_stream_notes_the_truncation(self):
        report = build_forensic_report(RESULT, BASELINE[:2], BASELINE)
        assert report.divergence_basis == "baseline-diff"
        assert report.first_divergence is None
        assert any("truncated" in n for n in report.notes)

    def test_report_round_trips_to_json(self):
        report = build_forensic_report(RESULT, FAULTED, BASELINE)
        data = report.to_json_dict()
        assert data["divergence_basis"] == "baseline-diff"
        assert data["first_divergent_store"]["payload"]["offset"] == 99


class TestFormatting:
    def test_format_names_the_whole_chain(self):
        report = build_forensic_report(RESULT, FAULTED, BASELINE)
        text = format_forensic_report(report)
        assert "system=rio_prot fault=pointer seed=7" in text
        assert "injection:" in text and "trial/inject" in text
        assert "fault action:" in text
        assert "first divergence:" in text and "offset=99" in text
        assert "first divergent store:" in text
        assert "crash:" in text and "machine_check" in text
        assert "detector evidence:" in text
        assert "events recorded: 7" in text

    def test_format_handles_missing_pieces(self):
        report = build_forensic_report(RESULT, [], None)
        text = format_forensic_report(report)
        assert "injection:        (none)" in text
