"""The multi-kernel cluster: routing, crash transparency, determinism.

The contracts under test, in the order the module docstring states
them: the router is a pure function of the path (and balances), a
shard's kernel crash is invisible to clients (zero lost acks, storm
acked == calm acked), the cluster digest is bit-identical across
``jobs`` and across execution engines, and the cross-shard rename —
the one operation no single shard journal covers — moves the bytes,
settles its intent record, and survives crashes landed inside its
two-phase window.
"""

import pytest

from repro.obs.events import FlightRecorder
from repro.server import (
    ClusterConfig,
    ClusterService,
    LoadClient,
    LoadSpec,
    Request,
    Router,
    run_cluster_load,
)
from repro.reliability import (
    ClusterTrafficConfig,
    rolling_crash_points,
    run_cluster_campaign,
)

LIGHT = LoadSpec(ops_per_client=15, files_per_client=2)


def _drive(cluster, client_ids, requests):
    """Submit raw requests, drain, and index responses by req id."""
    for client_id in client_ids:
        cluster.open_session(client_id)
    responses = {}
    for request in requests:
        rejection = cluster.submit(request)
        assert rejection is None, rejection
    for response in cluster.drain():
        responses[(response.client_id, response.req_id)] = response
    return responses


# -- router ------------------------------------------------------------


def test_router_is_deterministic_and_pure():
    a = Router(4, mode="hash")
    b = Router(4, mode="hash")
    paths = [f"/srv/c{c:03d}/f{i}" for c in range(32) for i in range(4)]
    assert [a.shard_for(p) for p in paths] == [b.shard_for(p) for p in paths]
    for p in paths:
        assert 0 <= a.shard_for(p) < 4


def test_router_dir_mode_colocates_directories():
    router = Router(8, mode="dir")
    for c in range(64):
        home = f"/srv/c{c:03d}"
        shards = {router.shard_for(f"{home}/f{i}") for i in range(8)}
        assert len(shards) == 1, f"{home} split across {shards}"


def test_router_hash_mode_scatters_and_balances():
    router = Router(4, mode="hash")
    paths = [f"/srv/c{c:03d}/f{i}" for c in range(64) for i in range(8)]
    counts = router.spread(paths)
    assert all(count > 0 for count in counts)
    # Consistent hashing with 64 vnodes/shard: no shard owns more than
    # half of 512 well-mixed keys.
    assert max(counts) < len(paths) // 2
    # And one directory's files really do scatter.
    assert len({router.shard_for(f"/srv/c000/f{i}") for i in range(8)}) > 1


def test_router_rejects_bad_config():
    with pytest.raises(ValueError):
        Router(0)
    with pytest.raises(ValueError):
        Router(2, vnodes=0)
    with pytest.raises(ValueError):
        Router(2, mode="range")


# -- basic service behaviour ------------------------------------------


def test_cluster_serves_load_with_zero_failures():
    with ClusterService(ClusterConfig(shards=2, router_mode="dir")) as cluster:
        clients = [LoadClient(c, seed=11, spec=LIGHT) for c in range(6)]
        report = run_cluster_load(cluster, clients)
        assert report.failed == 0
        assert report.acked > 0
        audits = cluster.audits()
        assert all(audit["ok"] for audit in audits)
        assert cluster.audit_intents()["ok"]


def test_cluster_matches_single_service_ack_count():
    """Sharding changes placement, never outcomes: the same seeded load
    acks the same number of operations as on one shard."""
    counts = []
    for shards in (1, 3):
        with ClusterService(
            ClusterConfig(shards=shards, router_mode="hash")
        ) as cluster:
            clients = [LoadClient(c, seed=5, spec=LIGHT) for c in range(4)]
            counts.append(run_cluster_load(cluster, clients).acked)
    assert counts[0] == counts[1], counts


def test_readdir_fans_out_and_merges_sorted_union():
    cluster = ClusterService(ClusterConfig(shards=3, router_mode="hash"))
    with cluster:
        reqs = [
            Request(client_id=0, req_id=1, op="open", path="alpha", create=True),
            Request(client_id=0, req_id=2, op="open", path="beta", create=True),
            Request(client_id=0, req_id=3, op="open", path="gamma", create=True),
        ]
        responses = _drive(cluster, [0], reqs)
        for r in range(1, 4):
            assert responses[(0, r)].ok
        # The three files scatter in hash mode; readdir must still see
        # one coherent, sorted directory.
        spread = {
            cluster.router.shard_for(f"/srv/c000/{n}")
            for n in ("alpha", "beta", "gamma")
        }
        assert len(spread) > 1
        listing = _drive(
            cluster, [0], [Request(client_id=0, req_id=9, op="readdir", path=".")]
        )[(0, 9)]
        assert listing.ok
        assert listing.value == ["alpha", "beta", "gamma"]


# -- determinism -------------------------------------------------------


def _campaign(jobs=1, fast_path=None, crashes=0):
    return run_cluster_campaign(
        ClusterTrafficConfig(
            shards=2,
            clients=6,
            crashes_per_shard=crashes,
            seed=11,
            router_mode="hash",
            jobs=jobs,
            load=LIGHT,
            fast_path=fast_path,
        )
    )


def test_digest_identical_across_jobs():
    inline = _campaign(jobs=1, crashes=1)
    processes = _campaign(jobs=2, crashes=1)
    assert inline.cluster_digest == processes.cluster_digest
    assert inline.to_json_dict()["acked"] == processes.to_json_dict()["acked"]
    assert inline.ok and processes.ok


def test_digest_identical_across_engines():
    reference = _campaign(fast_path=False, crashes=1)
    hot = _campaign(fast_path=True, crashes=1)
    assert reference.cluster_digest == hot.cluster_digest
    assert reference.ok and hot.ok


# -- crash transparency ------------------------------------------------


def test_rolling_storm_loses_nothing_and_acks_match_calm():
    calm = _campaign(crashes=0)
    storm = _campaign(crashes=2)
    assert storm.ok, storm.to_json_dict()
    assert storm.lost_acks == 0
    assert storm.recoveries >= 2
    assert storm.load.acked == calm.load.acked
    # Crash transparency means the acknowledged history is identical —
    # digest and all — not merely the same size.
    assert storm.cluster_digest == calm.cluster_digest


def test_rolling_crash_points_stagger_one_shard_at_a_time():
    config = ClusterTrafficConfig(
        shards=4, clients=32, crashes_per_shard=2, load=LIGHT
    )
    points = rolling_crash_points(config)
    assert set(points) == {0, 1, 2, 3}
    # Interleaved: sorting every (point, shard) pair by point must
    # alternate shards, never the same shard twice in a row.
    flat = sorted(
        (point, shard) for shard, shard_points in points.items()
        for point in shard_points
    )
    shards_in_order = [shard for _, shard in flat]
    assert shards_in_order == [0, 1, 2, 3, 0, 1, 2, 3]


# -- cross-shard rename ------------------------------------------------


def _cross_shard_pair(cluster, client_id=0):
    """Find two names in the client's home that route to different
    shards under the hash router."""
    home = f"/srv/c{client_id:03d}"
    src = f"{home}/src"
    src_shard = cluster.router.shard_for(src)
    for n in range(1000):
        dst = f"{home}/dst{n}"
        if cluster.router.shard_for(dst) != src_shard:
            return "src", f"dst{n}", src_shard, cluster.router.shard_for(dst)
    raise AssertionError("no cross-shard pair found in 1000 candidates")


def test_cross_shard_rename_moves_bytes_and_settles_intent():
    cluster = ClusterService(ClusterConfig(shards=2, router_mode="hash"))
    with cluster:
        cluster.open_session(0)
        src, dst, _, _ = _cross_shard_pair(cluster)
        payload = b"rio pages survive the warm reboot" * 100
        responses = _drive(
            cluster,
            [0],
            [
                Request(client_id=0, req_id=1, op="open", path=src, create=True),
            ],
        )
        fd = responses[(0, 1)].value
        responses = _drive(
            cluster,
            [0],
            [
                Request(client_id=0, req_id=2, op="write", fd=fd, offset=0,
                        data=payload),
                Request(client_id=0, req_id=3, op="close", fd=fd),
                Request(client_id=0, req_id=4, op="rename", path=src,
                        new_path=dst),
                Request(client_id=0, req_id=5, op="stat", path=src),
                Request(client_id=0, req_id=6, op="stat", path=dst),
                Request(client_id=0, req_id=7, op="open", path=dst),
            ],
        )
        assert responses[(0, 4)].ok, responses[(0, 4)]
        assert responses[(0, 5)].value == {"exists": False}
        assert responses[(0, 6)].value["size"] == len(payload)
        new_fd = responses[(0, 7)].value
        got = _drive(
            cluster,
            [0],
            [
                Request(client_id=0, req_id=8, op="read", fd=new_fd, offset=0,
                        length=len(payload)),
            ],
        )[(0, 8)]
        assert got.value == payload
        assert cluster.stats.cross_renames == 1
        assert [i.state for i in cluster.intents.records] == ["done"]
        assert cluster.audit_intents()["ok"]
        assert all(audit["ok"] for audit in cluster.audits())


def test_cross_shard_rename_stales_open_descriptors():
    cluster = ClusterService(ClusterConfig(shards=2, router_mode="hash"))
    with cluster:
        cluster.open_session(0)
        src, dst, _, _ = _cross_shard_pair(cluster)
        responses = _drive(
            cluster, [0],
            [Request(client_id=0, req_id=1, op="open", path=src, create=True)],
        )
        fd = responses[(0, 1)].value
        _drive(
            cluster, [0],
            [Request(client_id=0, req_id=2, op="rename", path=src, new_path=dst)],
        )
        # The bytes moved to another kernel; the old descriptor cannot
        # follow (documented: like an NFS handle after a migration).
        stale = _drive(
            cluster, [0],
            [Request(client_id=0, req_id=3, op="write", fd=fd, offset=0,
                     data=b"x")],
        )[(0, 3)]
        assert not stale.ok
        assert stale.error == "EBADSESSION"


def test_cross_shard_rename_survives_crash_in_two_phase_window():
    """A source-shard kernel crash between copy and unlink: the shard
    recovers in line, the unlink re-executes, the intent settles."""
    cluster = ClusterService(ClusterConfig(shards=2, router_mode="hash"))
    with cluster:
        cluster.open_session(0)
        src, dst, src_shard, _ = _cross_shard_pair(cluster)
        fired = []

        def crash_in_window(phase, intent):
            if phase == "pre-unlink" and not fired:
                fired.append(intent)
                cluster.hosts[src_shard].shard.system.machine.crash(
                    "test: crash inside the rename window", kind="forced"
                )

        cluster.rename_hook = crash_in_window
        responses = _drive(
            cluster, [0],
            [Request(client_id=0, req_id=1, op="open", path=src, create=True)],
        )
        fd = responses[(0, 1)].value
        responses = _drive(
            cluster, [0],
            [
                Request(client_id=0, req_id=2, op="write", fd=fd, offset=0,
                        data=b"crossing kernels"),
                Request(client_id=0, req_id=3, op="close", fd=fd),
                Request(client_id=0, req_id=4, op="rename", path=src,
                        new_path=dst),
                Request(client_id=0, req_id=5, op="stat", path=src),
                Request(client_id=0, req_id=6, op="stat", path=dst),
            ],
        )
        assert fired, "crash hook never fired"
        assert responses[(0, 4)].ok
        assert responses[(0, 5)].value == {"exists": False}
        assert responses[(0, 6)].value["size"] == len(b"crossing kernels")
        assert [i.state for i in cluster.intents.records] == ["done"]
        snaps = cluster.snapshots()
        assert snaps[src_shard]["recoveries"] == 1
        assert sum(s["lost_acks"] for s in snaps) == 0
        assert cluster.audit_intents()["ok"]


def test_intent_audit_rolls_forward_interrupted_rename():
    """The front-end dies after the copy but before the unlink: the
    intent is stuck at "copied" and the audit finishes the job."""
    cluster = ClusterService(ClusterConfig(shards=2, router_mode="hash"))
    with cluster:
        cluster.open_session(0)
        src, dst, _, _ = _cross_shard_pair(cluster)

        class FrontEndDied(Exception):
            pass

        def die(phase, intent):
            if phase == "pre-unlink":
                raise FrontEndDied

        cluster.rename_hook = die
        responses = _drive(
            cluster, [0],
            [Request(client_id=0, req_id=1, op="open", path=src, create=True)],
        )
        fd = responses[(0, 1)].value
        _drive(
            cluster, [0],
            [
                Request(client_id=0, req_id=2, op="write", fd=fd, offset=0,
                        data=b"halfway"),
                Request(client_id=0, req_id=3, op="close", fd=fd),
            ],
        )
        cluster.submit(
            Request(client_id=0, req_id=4, op="rename", path=src, new_path=dst)
        )
        with pytest.raises(FrontEndDied):
            cluster.drain()
        cluster.rename_hook = None
        assert [i.state for i in cluster.intents.records] == ["copied"]
        audit = cluster.audit_intents()
        assert audit["rolled_forward"] == 1
        assert audit["ok"], audit
        # The destination holds the bytes, the source is gone.
        check = _drive(
            cluster, [0],
            [
                Request(client_id=0, req_id=5, op="stat", path=src),
                Request(client_id=0, req_id=6, op="stat", path=dst),
            ],
        )
        assert check[(0, 5)].value == {"exists": False}
        assert check[(0, 6)].value["size"] == len(b"halfway")


def test_intent_audit_rolls_back_unstarted_rename():
    """The front-end dies before the copy: the audit aborts the intent
    and the source file is untouched."""
    cluster = ClusterService(ClusterConfig(shards=2, router_mode="hash"))
    with cluster:
        cluster.open_session(0)
        src, dst, _, _ = _cross_shard_pair(cluster)

        class FrontEndDied(Exception):
            pass

        def die(phase, intent):
            if phase == "pre-copy":
                raise FrontEndDied

        cluster.rename_hook = die
        responses = _drive(
            cluster, [0],
            [Request(client_id=0, req_id=1, op="open", path=src, create=True)],
        )
        fd = responses[(0, 1)].value
        _drive(
            cluster, [0],
            [
                Request(client_id=0, req_id=2, op="write", fd=fd, offset=0,
                        data=b"never moved"),
                Request(client_id=0, req_id=3, op="close", fd=fd),
            ],
        )
        cluster.submit(
            Request(client_id=0, req_id=4, op="rename", path=src, new_path=dst)
        )
        with pytest.raises(FrontEndDied):
            cluster.drain()
        cluster.rename_hook = None
        audit = cluster.audit_intents()
        assert audit["rolled_back"] == 1
        assert audit["ok"], audit
        check = _drive(
            cluster, [0],
            [
                Request(client_id=0, req_id=5, op="stat", path=src),
                Request(client_id=0, req_id=6, op="stat", path=dst),
            ],
        )
        assert check[(0, 5)].value["size"] == len(b"never moved")
        assert check[(0, 6)].value == {"exists": False}


# -- observability -----------------------------------------------------


def test_flight_recorder_static_tags_merge_into_payloads():
    recorder = FlightRecorder()
    recorder.static_tags["shard"] = 3
    recorder.start()
    recorder.emit("server", "ack", client=1)
    recorder.emit("server", "crash-detected")
    events = recorder.events()
    assert all(event.payload["shard"] == 3 for event in events)
    assert events[0].payload["client"] == 1
    # Explicit payload keys win over static tags.
    recorder.emit("server", "ack", shard=9)
    assert recorder.events()[-1].payload["shard"] == 9


def test_cluster_events_carry_shard_tags():
    cluster = ClusterService(
        ClusterConfig(shards=2, router_mode="dir", trace_events=True)
    )
    with cluster:
        clients = [LoadClient(c, seed=3, spec=LIGHT) for c in range(2)]
        run_cluster_load(cluster, clients)
        for shard in range(2):
            events = cluster._shard_call(shard, "events")
            assert events, f"shard {shard} recorded nothing"
            assert all(
                event["payload"].get("shard") == shard for event in events
            )
