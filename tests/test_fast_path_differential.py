"""Differential proof that the fast engine is bit-identical to the
reference engine.

Two machines are built identically — one with ``fast_path=True``, one with
``False`` — the same randomly-chosen corruption is applied to both texts,
the same call is made on both, and *everything observable* is compared:
the result or the exception (type and message), every ``BusStats``
counter, the MMU's protection statistics, and the checksums of every
memory page.  Hypothesis drives the corruption so the comparison covers
trap paths (illegal opcodes, wild stores, protection traps, watchdogs),
not just clean runs.

The final test closes the loop at the top of the stack: a miniature
Table 1 campaign must produce the same digest with the engine on and off.
"""

from __future__ import annotations

from types import SimpleNamespace

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.errors import SystemCrash
from repro.faults.types import FaultType
from repro.hw import Machine, MachineConfig
from repro.isa import Interpreter
from repro.isa.routines import build_kernel_text
from repro.reliability.report import run_table1_campaign, table1_digest


def build_env(fast_path: bool) -> SimpleNamespace:
    machine = Machine(
        MachineConfig(memory_bytes=2 * 1024 * 1024, boot_time_ns=0, fast_path=fast_path)
    )
    text = build_kernel_text()
    page = machine.memory.page_size
    text_pages = -(-text.size_bytes // page)
    text.load(machine.memory, base_paddr=1 * page, base_vaddr=1 * page)
    for i in range(text_pages):
        machine.mmu.map(1 + i, 1 + i, writable=False)
    for i in range(8):
        machine.mmu.map(32 + i, 32 + i)
    for i in range(2):
        machine.mmu.map(48 + i, 48 + i)
    interp = Interpreter(machine.bus, text)
    interp.force_interpret = True
    return SimpleNamespace(
        machine=machine,
        bus=machine.bus,
        mmu=machine.mmu,
        memory=machine.memory,
        text=text,
        interp=interp,
        page=page,
        heap=32 * page,
        stack_top=50 * page - 64,
    )


def observe(env, name, args):
    """Run a call and capture every observable output as plain data."""
    try:
        result = env.interp.call(name, args, sp=env.stack_top, max_steps=20_000)
        outcome = ("ok", result.value, result.steps, result.stores, result.interpreted)
    except SystemCrash as exc:
        outcome = ("crash", type(exc).__name__, str(exc))
    stats = env.bus.stats
    return (
        outcome,
        (stats.loads, stats.stores, stats.bytes_loaded, stats.bytes_stored,
         stats.checked_stores),
        (env.mmu.stat_protection_traps, env.mmu.stat_pte_toggles),
        tuple((p, env.memory.page_checksum(p)) for p in sorted(env.memory._pages)),
    )


ROUTINES = ("bzero", "bcopy", "checksum_block", "cache_copy")

# Addresses: mostly in-heap, sometimes wild (negative, unmapped, KSEG-ish)
# so trap paths get differential coverage too.
addr_strategy = st.one_of(
    st.integers(min_value=32 * 8192, max_value=40 * 8192 - 1),
    st.integers(min_value=0, max_value=(1 << 44)),
    st.integers(min_value=-(1 << 20), max_value=-1),
)


@given(
    routine=st.sampled_from(ROUTINES),
    args=st.lists(addr_strategy, min_size=2, max_size=4),
    corrupt=st.one_of(
        st.none(),
        st.tuples(st.integers(min_value=0, max_value=200),
                  st.integers(min_value=0, max_value=(1 << 32) - 1)),
    ),
)
@settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_engines_bit_identical(routine, args, corrupt):
    fast, ref = build_env(True), build_env(False)
    if corrupt is not None:
        rel, word = corrupt
        for env in (fast, ref):
            r = env.text.routines[routine]
            env.text.write_word(r.start_index + rel % r.num_words, word)
    assert observe(fast, routine, args) == observe(ref, routine, args)


@given(
    routine=st.sampled_from(("bzero", "bcopy")),
    length=st.integers(min_value=0, max_value=400),
    protect=st.booleans(),
)
@settings(max_examples=30, deadline=None)
def test_engines_identical_under_protection_toggles(routine, length, protect):
    """Same comparison with a protection toggle between two calls, so the
    soft-TLB invalidation path itself is differentially exercised."""
    fast, ref = build_env(True), build_env(False)
    observations = []
    for env in (fast, ref):
        args = [env.heap, env.heap + 0x2000, length][: 3 if routine == "bcopy" else 2]
        first = observe(env, routine, args)
        env.mmu.set_writable(33, not protect)
        env.mmu.kseg_through_tlb = protect
        second = observe(env, routine, args)
        observations.append((first, second))
    assert observations[0] == observations[1]


def test_obs_streams_identical_across_engines(monkeypatch):
    """Tentpole acceptance: a traced corrupting crash trial produces
    byte-identical flight-recorder streams — and therefore identical
    digests and forensic reports — under both execution engines."""
    from repro.obs import build_forensic_report, format_forensic_report
    from repro.reliability.campaign import (
        CrashTestConfig,
        run_baseline_trace,
        run_crash_test,
    )

    outputs = {}
    for flag in ("1", "0"):
        monkeypatch.setenv("RIO_FAST_PATH", flag)
        config = CrashTestConfig(
            system="rio_noprot",
            fault_type=FaultType.POINTER,
            seed=12,
            trace_events=True,
        )
        result = run_crash_test(config)
        assert result.crashed and result.corrupted
        assert result.trace_events and result.event_digest
        baseline = run_baseline_trace(result.config, result.ops_run + 1)
        report = build_forensic_report(
            result.to_json_dict(), result.trace_events, baseline
        )
        assert report.divergence_basis == "baseline-diff"
        assert report.first_divergent_store is not None
        assert report.crash is not None
        outputs[flag] = (
            result.event_digest,
            result.trace_events,
            format_forensic_report(report),
        )
    assert outputs["1"][0] == outputs["0"][0]
    assert outputs["1"][1] == outputs["0"][1]  # event streams, byte for byte
    assert outputs["1"][2] == outputs["0"][2]  # rendered forensic reports


@given(seed=st.integers(min_value=0, max_value=2**16), ops=st.integers(0, 2))
@settings(
    max_examples=5,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_explore_verdicts_identical_across_engines(seed, ops):
    """Crash-point exploration is engine-blind: for any seed, both
    engines enumerate byte-identical boundary lists and, crashing at a
    sample of those boundaries, produce byte-identical canonical
    verdicts and coverage reports."""
    import json

    from repro.explore import (
        ExploreConfig,
        ExploreReport,
        boundary_census,
        format_explore_report,
        run_boundary_trial,
        run_enumeration,
    )

    outputs = {}
    for fast in (True, False):
        config = ExploreConfig(workload="basic", ops=ops, seed=seed, fast_path=fast)
        enumeration = run_enumeration(config)
        boundaries = enumeration.boundaries
        picks = sorted(
            {boundaries[0], boundaries[len(boundaries) // 2], boundaries[-1]},
            key=lambda b: b.index,
        )
        verdicts = [run_boundary_trial(config, b) for b in picks]
        report = ExploreReport(
            config=config,
            total_events=len(enumeration.events),
            enumeration_digest=enumeration.digest,
            census=boundary_census(picks),
            boundaries_total=len(picks),
            verdicts=verdicts,
            executed=len(picks),
        )
        outputs[fast] = (
            enumeration.digest,
            json.dumps(boundary_census(boundaries), sort_keys=True),
            json.dumps(
                [v.canonical_json_dict() for v in verdicts], sort_keys=True
            ),
            report.report_digest(),
            format_explore_report(report),
        )
    assert outputs[True] == outputs[False]


@pytest.mark.slow
def test_campaign_digest_identical(monkeypatch):
    """The acceptance check from the top of the stack: a (small) Table 1
    campaign digest is byte-identical with the fast path on and off."""
    digests = {}
    for flag in ("1", "0"):
        monkeypatch.setenv("RIO_FAST_PATH", flag)
        table = run_table1_campaign(
            crashes_per_cell=2,
            systems=("rio_prot",),
            fault_types=(FaultType.KERNEL_TEXT, FaultType.POINTER),
            base_seed=1000,
        )
        digests[flag] = table1_digest(table)
    assert digests["1"] == digests["0"]
