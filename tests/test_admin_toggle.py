"""Tests for footnote 1: the administrative reliability-writes toggle."""

from repro import RioConfig, SystemSpec, build_system


def make_rio():
    return build_system(
        SystemSpec(policy="rio", rio=RioConfig.with_protection(), fs_blocks=512)
    )


class TestMaintenanceToggle:
    def test_enable_flushes_and_survives_power_loss(self):
        """The extended-power-outage scenario: enable reliability writes,
        power off (cold reboot: memory scrubbed), everything is on disk."""
        system = make_rio()
        fd = system.vfs.open("/precious", create=True)
        system.vfs.write(fd, b"about to lose power")
        system.vfs.close(fd)
        system.enable_reliability_writes()
        system.crash("power outage imminent: operator shut down")
        system.reboot(preserve_memory=False)  # power actually went out
        assert system.vfs.exists("/precious")
        assert (
            system.fs.read(system.fs.namei("/precious"), 0, 32)
            == b"about to lose power"
        )

    def test_without_toggle_power_loss_loses_data(self):
        system = make_rio()
        fd = system.vfs.open("/precious", create=True)
        system.vfs.write(fd, b"about to lose power")
        system.vfs.close(fd)
        system.crash("power outage with no warning")
        system.reboot(preserve_memory=False)
        assert not system.vfs.exists("/precious")

    def test_enabled_mode_keeps_writing_to_disk(self):
        system = make_rio()
        system.enable_reliability_writes()
        fd = system.vfs.open("/during-maintenance", create=True)
        system.vfs.write(fd, b"written in maintenance mode")
        system.vfs.fsync(fd)  # honoured now: the policy is delayed, not rio
        system.vfs.close(fd)
        assert system.disk.stats.writes > 0

    def test_disable_restores_rio_behaviour(self):
        system = make_rio()
        system.enable_reliability_writes()
        system.disable_reliability_writes()
        writes_before = system.disk.stats.writes
        fd = system.vfs.open("/back-to-normal", create=True)
        system.vfs.write(fd, b"memory is the stable store again")
        system.vfs.fsync(fd)
        system.vfs.close(fd)
        assert system.disk.stats.writes == writes_before
        assert system.kernel.reliability_writes_off
        # And the warm reboot still protects the new data.
        system.crash("normal crash")
        system.reboot()
        assert system.vfs.exists("/back-to-normal")
