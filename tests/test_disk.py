"""Tests for the simulated disk: timing, queueing, crash semantics."""

import pytest

from repro.disk import DiskParameters, SimulatedDisk, SwapPartition
from repro.errors import ConfigurationError, MachineCheck
from repro.hw.clock import Clock, NS_PER_MS

SS = 512


def make_disk(sectors=1024, clock=None, **params):
    disk = SimulatedDisk("test", sectors, DiskParameters(**params))
    disk.attach(clock or Clock())
    return disk


class TestSectorStore:
    def test_peek_zero_filled(self):
        disk = make_disk()
        assert disk.peek(10, 2) == b"\x00" * 2 * SS

    def test_poke_peek_roundtrip(self):
        disk = make_disk()
        data = bytes(range(256)) * 4  # 2 sectors
        disk.poke(5, data)
        assert disk.peek(5, 2) == data

    def test_poke_requires_whole_sectors(self):
        with pytest.raises(ValueError):
            make_disk().poke(0, b"partial")

    def test_out_of_range(self):
        disk = make_disk(sectors=8)
        with pytest.raises(MachineCheck):
            disk.peek(7, 2)
        with pytest.raises(MachineCheck):
            disk.poke(8, b"\x00" * SS)


class TestTiming:
    def test_sync_write_advances_clock(self):
        clock = Clock()
        disk = make_disk(clock=clock)
        disk.write(0, b"\x01" * SS, sync=True)
        # overhead + seek + rotation + transfer: strictly positive.
        assert clock.now_ns > 0

    def test_async_write_does_not_advance_clock(self):
        clock = Clock()
        disk = make_disk(clock=clock)
        disk.write(0, b"\x01" * SS, sync=False)
        assert clock.now_ns == 0
        assert disk.pending_writes == 1

    def test_async_data_immediately_readable(self):
        disk = make_disk()
        disk.write(3, b"\xaa" * SS, sync=False)
        assert disk.peek(3, 1) == b"\xaa" * SS

    def test_requests_queue_behind_each_other(self):
        clock = Clock()
        disk = make_disk(clock=clock)
        disk.write(0, b"\x01" * SS, sync=False)
        busy_after_one = disk.busy_until_ns
        disk.write(100, b"\x02" * SS, sync=False)
        assert disk.busy_until_ns > busy_after_one

    def test_sequential_access_is_cheaper(self):
        clock = Clock()
        disk = make_disk(clock=clock)
        disk.write(0, b"\x01" * SS, sync=True)
        t0 = clock.now_ns
        disk.write(1, b"\x02" * SS, sync=True)  # continues previous access
        sequential_cost = clock.now_ns - t0
        t1 = clock.now_ns
        disk.write(500, b"\x03" * SS, sync=True)  # random access
        random_cost = clock.now_ns - t1
        assert sequential_cost < random_cost

    def test_service_time_scales_with_size(self):
        params = DiskParameters()
        small = params.service_ns(SS, sequential=False)
        large = params.service_ns(64 * SS, sequential=False)
        assert large > small

    def test_drain_completes_all(self):
        clock = Clock()
        disk = make_disk(clock=clock)
        completions = []
        for i in range(5):
            disk.write(i * 10, b"\x01" * SS, sync=False, on_complete=completions.append)
        disk.drain()
        assert len(completions) == 5
        assert disk.pending_writes == 0

    def test_completion_callback_fires_when_time_passes(self):
        clock = Clock()
        disk = make_disk(clock=clock)
        done = []
        req = disk.write(0, b"\x01" * SS, sync=False, on_complete=done.append)
        assert not done
        clock.advance_to(req.completion_ns)
        assert done == [req]

    def test_read_waits_for_queue(self):
        clock = Clock()
        disk = make_disk(clock=clock)
        disk.write(0, b"\x01" * SS, sync=False)
        busy = disk.busy_until_ns
        disk.read(50, 1)
        assert clock.now_ns > busy  # read was serviced after the write


class TestCrashSemantics:
    def test_completed_write_survives_crash(self):
        clock = Clock()
        disk = make_disk(clock=clock)
        req = disk.write(0, b"\x07" * SS, sync=False)
        clock.advance_to(req.completion_ns)
        disk.crash()
        assert disk.peek(0, 1) == b"\x07" * SS

    def test_never_started_write_rolls_back(self):
        clock = Clock()
        disk = make_disk(clock=clock)
        disk.poke(0, b"\x01" * SS)
        first = disk.write(50, b"\x02" * SS, sync=False)
        disk.write(0, b"\x03" * SS, sync=False)  # queued behind `first`
        # Crash before even the first request starts transferring is hard
        # (start == now); crash midway through `first` instead: the second
        # request has not started and must roll back fully.
        clock.advance_to(first.start_ns + (first.completion_ns - first.start_ns) // 2)
        disk.crash()
        assert disk.peek(0, 1) == b"\x01" * SS
        assert disk.stats.lost_writes >= 1

    def test_in_flight_multisector_write_is_torn(self):
        clock = Clock()
        disk = make_disk(clock=clock)
        old = b"\x11" * (8 * SS)
        new = b"\x22" * (8 * SS)
        disk.poke(0, old)
        req = disk.write(0, new, sync=False)
        midpoint = req.start_ns + (req.completion_ns - req.start_ns) * 3 // 4
        clock_target = midpoint
        clock.advance_to(clock_target)
        disk.crash()
        contents = disk.peek(0, 8)
        sectors = [contents[i * SS : (i + 1) * SS] for i in range(8)]
        assert sectors[0] == b"\x22" * SS  # written before the crash
        assert sectors[-1] == b"\x11" * SS  # never reached
        torn = [s for s in sectors if s != b"\x11" * SS and s != b"\x22" * SS]
        assert len(torn) == 1  # exactly one sector under the head
        assert disk.stats.torn_sectors == 1

    def test_overlapping_queued_writes_roll_back_in_order(self):
        clock = Clock()
        disk = make_disk(clock=clock)
        disk.poke(0, b"\x01" * SS)
        first = disk.write(0, b"\x02" * SS, sync=False)
        disk.write(0, b"\x03" * SS, sync=False)
        clock.advance_to(first.completion_ns)  # first lands, second queued
        disk.crash()
        assert disk.peek(0, 1) == b"\x02" * SS

    def test_reset_clears_queue_keeps_platter(self):
        clock = Clock()
        disk = make_disk(clock=clock)
        disk.write(0, b"\x09" * SS, sync=True)
        disk.write(1, b"\x0a" * SS, sync=False)
        disk.crash()
        disk.reset()
        assert disk.pending_writes == 0
        assert disk.peek(0, 1) == b"\x09" * SS


class TestSwapPartition:
    def test_dump_and_read_image(self):
        clock = Clock()
        disk = make_disk(sectors=4096, clock=clock)
        swap = SwapPartition(disk, start_sector=1024, num_sectors=2048)
        image = bytes(range(256)) * 100  # 25600 bytes, not sector aligned
        swap.dump_memory_image(image)
        assert swap.read_memory_image(len(image)) == image

    def test_rejects_oversized_image(self):
        disk = make_disk(sectors=64)
        swap = SwapPartition(disk, 0, 4)
        with pytest.raises(ConfigurationError):
            swap.dump_memory_image(b"\x00" * (5 * SS))

    def test_rejects_bad_geometry(self):
        disk = make_disk(sectors=64)
        with pytest.raises(ConfigurationError):
            SwapPartition(disk, 60, 10)

    def test_dump_takes_time(self):
        clock = Clock()
        disk = make_disk(sectors=4096, clock=clock)
        swap = SwapPartition(disk, 0, 4096)
        t0 = clock.now_ns
        swap.dump_memory_image(b"\xff" * (1024 * 1024))
        # 1 MB at 5 MB/s is ~200 ms of transfer.
        assert clock.now_ns - t0 > 100 * NS_PER_MS
