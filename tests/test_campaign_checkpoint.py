"""Checkpoint journal robustness and CrashTestResult serializability.

The journal contract: a damaged checkpoint can cost re-run time, never
correctness — truncated or garbled lines are skipped with a
JournalWarning and their trials re-run; nothing corrupt is ever counted.
"""

import json
import pickle

import pytest

from repro.faults import FaultType
from repro.reliability import (
    CampaignEngine,
    CampaignResumeError,
    CrashTestConfig,
    CrashTestResult,
    JournalWarning,
    run_crash_test,
    run_table1_campaign,
    table1_digest,
)
from repro.workloads.memtest import MemTestParams

FAST = dict(
    max_ops_after_injection=80,
    sim_budget_s=30.0,
    andrew_copies=1,
    inject_after_ops=(5, 15),
    memtest=MemTestParams(
        max_files=8, max_dirs=2, max_file_bytes=16 * 1024, max_io_bytes=4 * 1024
    ),
)

ONE_CELL = dict(
    crashes_per_cell=2,
    systems=("rio_prot",),
    fault_types=(FaultType.KERNEL_TEXT,),
    base_seed=7100,
    max_attempts_factor=3,
    config_overrides=FAST,
)


@pytest.fixture(scope="module")
def crash_result():
    """One real crashed-and-recovered trial, with the live system kept."""
    result = run_crash_test(
        CrashTestConfig(
            system="rio_prot",
            fault_type=FaultType.KERNEL_TEXT,
            seed=3,
            keep_system=True,
            **FAST,
        )
    )
    assert result.crashed
    assert result._system is not None
    return result


class TestResultSerialization:
    def test_pickle_round_trip_drops_system(self, crash_result):
        clone = pickle.loads(pickle.dumps(crash_result))
        assert clone._system is None
        assert crash_result._system is not None, "pickling must not mutate the original"
        assert clone.to_json_dict() == crash_result.to_json_dict()
        assert clone.crash_kind == crash_result.crash_kind
        assert clone.config.seed == crash_result.config.seed

    def test_json_round_trip(self, crash_result):
        wire = json.loads(json.dumps(crash_result.to_json_dict()))
        clone = CrashTestResult.from_json_dict(wire)
        assert clone.to_json_dict() == crash_result.to_json_dict()
        # Tuples inside params are restored (JSON has only lists).
        assert isinstance(clone.config.inject_after_ops, tuple)
        assert isinstance(clone.config.memtest.weights, tuple)
        assert isinstance(clone.config.faults.kmalloc_interval, tuple)
        assert clone.config.fault_type is FaultType.KERNEL_TEXT
        assert clone.corrupted == crash_result.corrupted

    def test_detach_is_explicit_and_returns_self(self, crash_result):
        wire = crash_result.to_json_dict()
        clone = CrashTestResult.from_json_dict(wire)
        assert clone.detach() is clone and clone._system is None

    def test_without_keep_system_no_backreference(self):
        result = run_crash_test(
            CrashTestConfig(
                system="rio_prot", fault_type=FaultType.KERNEL_TEXT, seed=3, **FAST
            )
        )
        assert result._system is None


class TestJournalCorruption:
    @pytest.fixture()
    def finished_journal(self, tmp_path):
        """A completed one-cell campaign and its checkpoint."""
        journal = str(tmp_path / "ckpt.jsonl")
        engine = CampaignEngine(**ONE_CELL, jobs=1, checkpoint=journal)
        table = engine.run()
        assert engine.complete and engine.stats.executed >= 2
        return journal, table1_digest(table), engine.stats.executed

    def resume(self, journal):
        engine = CampaignEngine(**ONE_CELL, jobs=1, checkpoint=journal)
        table = engine.run()
        return engine, table

    def test_clean_resume_runs_nothing(self, finished_journal):
        journal, want, _ = finished_journal
        engine, table = self.resume(journal)
        assert engine.stats.executed == 0
        assert table1_digest(table) == want

    def test_truncated_line_skipped_and_rerun(self, finished_journal):
        journal, want, _ = finished_journal
        lines = open(journal).read().splitlines()
        lines[1] = lines[1][: len(lines[1]) // 2]  # torn mid-write
        open(journal, "w").write("\n".join(lines) + "\n")
        with pytest.warns(JournalWarning, match="unparseable JSON"):
            engine, table = self.resume(journal)
        assert engine.stats.checkpoint_lines_skipped == 1
        assert engine.stats.executed == 1, "exactly the damaged trial re-runs"
        assert table1_digest(table) == want

    def test_bad_checksum_skipped_and_rerun(self, finished_journal):
        journal, want, _ = finished_journal
        lines = open(journal).read().splitlines()
        record = json.loads(lines[2])
        record["result"]["crashed"] = not record["result"]["crashed"]  # garbled
        lines[2] = json.dumps(record)
        open(journal, "w").write("\n".join(lines) + "\n")
        with pytest.warns(JournalWarning, match="checksum mismatch"):
            engine, table = self.resume(journal)
        assert engine.stats.executed == 1
        assert table1_digest(table) == want, "a garbled result must never be counted"

    def test_garbage_line_skipped(self, finished_journal):
        journal, want, _ = finished_journal
        with open(journal, "a") as fh:
            fh.write("}}not json at all{{\n")
        with pytest.warns(JournalWarning):
            engine, table = self.resume(journal)
        assert engine.stats.executed == 0
        assert table1_digest(table) == want

    def test_wrong_seed_entry_rerun(self, finished_journal):
        journal, want, _ = finished_journal
        from repro.reliability.journal import _crc

        lines = open(journal).read().splitlines()
        record = json.loads(lines[1])
        record["seed"] += 1  # valid line, wrong schedule position
        record["crc"] = _crc(record)
        lines[1] = json.dumps(record)
        open(journal, "w").write("\n".join(lines) + "\n")
        with pytest.warns(JournalWarning, match="seed"):
            engine, table = self.resume(journal)
        assert engine.stats.executed == 1
        assert table1_digest(table) == want

    def test_repaired_journal_resumes_free_after_rerun(self, finished_journal):
        # A re-run appends a fresh line that supersedes the damaged one
        # (last valid wins), so the *next* resume is free again.
        journal, want, _ = finished_journal
        lines = open(journal).read().splitlines()
        lines[1] = lines[1][:30]
        open(journal, "w").write("\n".join(lines) + "\n")
        with pytest.warns(JournalWarning):
            engine, _ = self.resume(journal)
        assert engine.stats.executed == 1
        # The damaged line stays in the file (append-only journal), so it
        # still warns — but the superseding line makes the resume free.
        with pytest.warns(JournalWarning):
            engine2, table2 = self.resume(journal)
        assert engine2.stats.executed == 0
        assert table1_digest(table2) == want

    def test_mismatched_campaign_refuses_to_resume(self, finished_journal):
        journal, _, _ = finished_journal
        other = dict(ONE_CELL, base_seed=9999)
        engine = CampaignEngine(**other, jobs=1, checkpoint=journal)
        with pytest.raises(CampaignResumeError, match="different campaign"):
            engine.run()
