"""Tests for the kernel heap allocator and locks."""

import pytest

from repro.errors import KernelPanic, NoSpace, WatchdogTimeout
from repro.hw import Machine, MachineConfig
from repro.kernel.kmalloc import HEADER_BYTES, KernelHeap
from repro.kernel.locks import LockManager

PAGE = 8192


@pytest.fixture
def heap():
    machine = Machine(MachineConfig(memory_bytes=16 * PAGE, boot_time_ns=0))
    for vpn in range(4):
        machine.mmu.map(vpn, vpn)
    return KernelHeap(machine.bus, 0, 4 * PAGE)


class TestKernelHeap:
    def test_alloc_and_free(self, heap):
        addr = heap.kmalloc(100)
        assert heap.is_live(addr)
        heap.kfree(addr)
        assert not heap.is_live(addr)

    def test_allocations_do_not_overlap(self, heap):
        blocks = [(heap.kmalloc(64), 64) for _ in range(20)]
        spans = sorted((a, a + n) for a, n in blocks)
        for (a_start, a_end), (b_start, b_end) in zip(spans, spans[1:]):
            assert a_end <= b_start

    def test_data_survives_other_allocations(self, heap):
        a = heap.kmalloc(32)
        heap.bus.store(a, b"keep me around..")
        for _ in range(10):
            heap.kmalloc(48)
        assert heap.bus.load(a, 16) == b"keep me around.."

    def test_free_reuses_space(self, heap):
        a = heap.kmalloc(256)
        heap.kfree(a)
        b = heap.kmalloc(256)
        assert b == a  # first-fit finds the same hole

    def test_coalescing(self, heap):
        addrs = [heap.kmalloc(1000) for _ in range(3)]
        for addr in addrs:
            heap.kfree(addr)
        big = heap.kmalloc(2800)  # only fits if the three holes merged
        assert heap.is_live(big)

    def test_exhaustion_raises(self, heap):
        with pytest.raises(NoSpace):
            for _ in range(10_000):
                heap.kmalloc(4096)

    def test_corrupted_header_panics_on_free(self, heap):
        addr = heap.kmalloc(64)
        # A heap fault clobbers the allocation header.
        heap.bus.store(addr - HEADER_BYTES, b"\xde\xad\xbe\xef")
        with pytest.raises(KernelPanic, match="magic"):
            heap.kfree(addr)

    def test_double_free_panics(self, heap):
        addr = heap.kmalloc(64)
        heap.kfree(addr)
        with pytest.raises(KernelPanic):
            heap.kfree(addr)

    def test_alloc_hook_fires(self, heap):
        calls = []
        heap.alloc_hook = lambda addr, size: calls.append((addr, size))
        addr = heap.kmalloc(40)
        assert calls == [(addr, 40)]

    def test_rejects_nonpositive_size(self, heap):
        with pytest.raises(ValueError):
            heap.kmalloc(0)

    def test_stats(self, heap):
        a = heap.kmalloc(8)
        heap.kmalloc(8)
        heap.kfree(a)
        assert heap.stat_allocs == 2
        assert heap.stat_frees == 1
        assert heap.live_blocks == 1


class TestLocks:
    def test_acquire_release(self):
        manager = LockManager()
        lock = manager.lock("buf")
        lock.acquire()
        assert lock.held
        lock.release()
        assert not lock.held

    def test_same_name_same_lock(self):
        manager = LockManager()
        assert manager.lock("x") is manager.lock("x")

    def test_context_manager(self):
        manager = LockManager()
        with manager.lock("y") as lock:
            assert lock.held
        assert not lock.held

    def test_reacquire_deadlocks(self):
        manager = LockManager()
        lock = manager.lock("a")
        lock.acquire()
        with pytest.raises(WatchdogTimeout, match="deadlock"):
            lock.acquire()

    def test_unlock_unheld_panics(self):
        manager = LockManager()
        with pytest.raises(KernelPanic, match="unheld"):
            manager.lock("b").release()

    def test_elided_release_leaves_lock_held(self):
        manager = LockManager()
        manager.elision_hook = lambda lock, op: op == "release"
        lock = manager.lock("c")
        lock.acquire()
        lock.release()  # elided!
        assert lock.held
        with pytest.raises(WatchdogTimeout):
            lock.acquire()

    def test_elided_acquire_opens_race_window(self):
        manager = LockManager()
        elide_next = [True]

        def hook(lock, op):
            if op == "acquire" and elide_next[0]:
                elide_next[0] = False
                return True
            return False

        manager.elision_hook = hook
        lock = manager.lock("d")
        lock.acquire()  # elided: section runs unprotected
        assert manager.any_racing()
        assert manager.racy_sections == 1
        lock.release()  # balanced: no panic, race window closes
        assert not manager.any_racing()
        assert not lock.held
