"""Tests for the Rio registry: format, entries, post-crash discovery."""

import pytest

from repro.core.registry import (
    ENTRY_SIZE,
    FLAG_CHANGING,
    FLAG_DIRTY,
    FLAG_META,
    FLAG_VALID,
    Registry,
    RegistryEntry,
    capacity_for,
    find_registry_in_image,
    read_entries_from_image,
)
from repro.errors import NoSpace
from repro.hw import Machine, MachineConfig

PAGE = 8192


@pytest.fixture
def machine():
    return Machine(MachineConfig(memory_bytes=32 * PAGE, boot_time_ns=0))


@pytest.fixture
def registry(machine):
    # Registry in the top two frames, as the kernel would place it.
    base = (machine.memory.num_pages - 2) * PAGE
    reg = Registry(machine.bus, base, 2 * PAGE)
    reg.format()
    return reg


class TestEntryCodec:
    def test_roundtrip(self):
        entry = RegistryEntry(
            slot=3,
            phys_addr=0x4000,
            dev=1,
            ino=42,
            file_offset=81920,
            size=8192,
            flags=FLAG_VALID | FLAG_DIRTY,
            disk_block=77,
            checksum=0xABCD1234,
        )
        parsed = RegistryEntry.from_bytes(3, entry.to_bytes())
        assert parsed == entry

    def test_entry_size_is_48_bytes(self):
        """The paper says ~40 bytes per 8 KB page; ours is 48."""
        assert ENTRY_SIZE == 48
        assert len(RegistryEntry(slot=0).to_bytes()) == 48

    def test_none_disk_block_roundtrip(self):
        entry = RegistryEntry(slot=0, flags=FLAG_VALID, disk_block=None)
        assert RegistryEntry.from_bytes(0, entry.to_bytes()).disk_block is None

    def test_flag_properties(self):
        entry = RegistryEntry(slot=0, flags=FLAG_VALID | FLAG_META | FLAG_CHANGING)
        assert entry.valid and entry.is_metadata and entry.changing
        assert not entry.dirty


class TestLiveRegistry:
    def test_capacity(self, registry):
        assert registry.capacity == capacity_for(2 * PAGE)
        assert registry.capacity > 300

    def test_alloc_write_read(self, registry):
        slot = registry.alloc_slot()
        registry.write_entry(
            RegistryEntry(slot=slot, phys_addr=0x2000, dev=0, ino=5, flags=FLAG_VALID)
        )
        entry = registry.read_entry(slot)
        assert entry.valid and entry.ino == 5

    def test_free_slot_invalidates(self, registry):
        slot = registry.alloc_slot()
        registry.write_entry(RegistryEntry(slot=slot, flags=FLAG_VALID))
        registry.free_slot(slot)
        assert not registry.read_entry(slot).valid

    def test_update_flags(self, registry):
        slot = registry.alloc_slot()
        registry.write_entry(RegistryEntry(slot=slot, flags=FLAG_VALID))
        registry.update_flags(slot, set_flags=FLAG_DIRTY | FLAG_CHANGING)
        registry.update_flags(slot, clear_flags=FLAG_CHANGING)
        entry = registry.read_entry(slot)
        assert entry.dirty and not entry.changing and entry.valid

    def test_update_fields(self, registry):
        slot = registry.alloc_slot()
        registry.write_entry(RegistryEntry(slot=slot, flags=FLAG_VALID))
        registry.update_fields(slot, ino=9, disk_block=123)
        entry = registry.read_entry(slot)
        assert entry.ino == 9 and entry.disk_block == 123

    def test_exhaustion(self, registry):
        for _ in range(registry.capacity):
            registry.alloc_slot()
        with pytest.raises(NoSpace):
            registry.alloc_slot()

    def test_valid_entries_listing(self, registry):
        slots = [registry.alloc_slot() for _ in range(3)]
        for slot in slots[:2]:
            registry.write_entry(RegistryEntry(slot=slot, flags=FLAG_VALID))
        assert {e.slot for e in registry.valid_entries()} == set(slots[:2])


class TestPostCrashDiscovery:
    def test_find_in_image(self, machine, registry):
        image = machine.memory.dump_image()
        found = find_registry_in_image(image, PAGE)
        assert found is not None
        base, capacity = found
        assert base == registry.base_paddr
        assert capacity == registry.capacity

    def test_entries_from_image(self, machine, registry):
        slot = registry.alloc_slot()
        registry.write_entry(
            RegistryEntry(slot=slot, phys_addr=0x6000, dev=0, ino=7, flags=FLAG_VALID)
        )
        image = machine.memory.dump_image()
        entries = read_entries_from_image(image, registry.base_paddr, registry.capacity)
        assert len(entries) == 1
        assert entries[0].ino == 7

    def test_no_registry_in_scrubbed_memory(self, machine, registry):
        machine.memory.erase()  # PC-style reset
        image = machine.memory.dump_image()
        assert find_registry_in_image(image, PAGE) is None

    def test_survives_machine_reset(self, machine, registry):
        """The registry is memory contents, so an Alpha-style reset keeps it."""
        slot = registry.alloc_slot()
        registry.write_entry(RegistryEntry(slot=slot, flags=FLAG_VALID, ino=3))
        machine.crash("boom")
        machine.reset(preserve_memory=True)
        image = machine.memory.dump_image()
        entries = read_entries_from_image(image, registry.base_paddr, registry.capacity)
        assert entries[0].ino == 3
