"""Smoke tests: the shipped examples must run end to end.

(The two campaign-style examples — fault_injection and performance_table —
are exercised by the benchmarks instead; they take minutes.)
"""

import importlib.util
import pathlib
import re

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"
README = pathlib.Path(__file__).parent.parent / "README.md"


def run_example(name: str) -> None:
    spec = importlib.util.spec_from_file_location(name, EXAMPLES / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    module.main()


@pytest.mark.parametrize(
    "name",
    [
        "quickstart",
        "inspect_rio",
        "transaction_processing",
        "file_server",
        "crash_survival",
        "load_and_crash",
    ],
)
def test_example_runs(name, capsys):
    run_example(name)
    out = capsys.readouterr().out
    assert out.strip()  # produced some narrative
    assert "Traceback" not in out


def test_readme_quickstart_block():
    # The README promises this block is executed verbatim; here it is.
    text = README.read_text()
    blocks = re.findall(r"```python\n(.*?)```", text, re.S)
    assert blocks, "README lost its quickstart block"
    exec(compile(blocks[0], "README.md[quickstart]", "exec"), {})
