"""Tests for extensions: Phoenix checkpointing, the debit/credit
workload, and the section-5 memory-board transplant."""

import pytest

from repro.core import RioConfig
from repro.hw import Machine, MachineConfig
from repro.system import SystemSpec, build_system
from repro.workloads.debit_credit import (
    DebitCreditParams,
    DebitCreditWorkload,
    RECORD,
    RECORD_SIZE,
)


class TestPhoenix:
    def make(self):
        return build_system(SystemSpec(policy="rio", phoenix=True, fs_blocks=512))

    def test_checkpointed_data_survives(self):
        system = self.make()
        fd = system.vfs.open("/kept", create=True)
        system.vfs.write(fd, b"checkpointed")
        system.vfs.close(fd)
        system.phoenix.checkpoint()
        system.crash("boom")
        system.reboot()
        assert system.vfs.exists("/kept")
        assert system.fs.read(system.fs.namei("/kept"), 0, 16) == b"checkpointed"

    def test_post_checkpoint_writes_lost(self):
        """The paper's contrast #1: Phoenix does not ensure the
        reliability of every write."""
        system = self.make()
        system.phoenix.checkpoint()
        fd = system.vfs.open("/lost", create=True)
        system.vfs.write(fd, b"since checkpoint")
        system.vfs.close(fd)
        system.crash("boom")
        system.reboot()
        assert not system.vfs.exists("/lost")

    def test_rio_keeps_the_same_write_phoenix_loses(self):
        rio = build_system(
            SystemSpec(policy="rio", rio=RioConfig.with_protection(), fs_blocks=512)
        )
        phoenix = self.make()
        phoenix.phoenix.checkpoint()
        for system in (rio, phoenix):
            fd = system.vfs.open("/recent", create=True)
            system.vfs.write(fd, b"last second")
            system.vfs.close(fd)
            system.crash("boom")
            system.reboot()
        assert rio.vfs.exists("/recent")
        assert not phoenix.vfs.exists("/recent")

    def test_phoenix_holds_double_copies(self):
        """The paper's contrast #2: multiple copies of modified pages."""
        system = self.make()
        fd = system.vfs.open("/pages", create=True)
        system.vfs.write(fd, b"x" * 32768)
        system.vfs.close(fd)
        assert system.phoenix.snapshot_frames == 0  # Rio-like before checkpoint
        captured = system.phoenix.checkpoint()
        assert captured > 0
        assert system.phoenix.snapshot_frames == captured

    def test_recheckpoint_frees_obsolete_snapshots(self):
        system = self.make()
        fd = system.vfs.open("/f", create=True)
        system.vfs.write(fd, b"v1")
        system.vfs.close(fd)
        system.phoenix.checkpoint()
        free_after_first = system.kernel.frames.free_count
        fd = system.vfs.open("/f")
        system.vfs.pwrite(fd, b"v2", 0)
        system.vfs.close(fd)
        system.phoenix.checkpoint()
        # Same pages captured again: obsolete snapshots freed, so the
        # frame count is (approximately) stable rather than growing.
        assert system.kernel.frames.free_count == free_after_first

    def test_latest_checkpoint_wins(self):
        system = self.make()
        fd = system.vfs.open("/versioned", create=True)
        system.vfs.write(fd, b"first version ")
        system.vfs.close(fd)
        system.phoenix.checkpoint()
        fd = system.vfs.open("/versioned")
        system.vfs.pwrite(fd, b"SECOND version", 0)
        system.vfs.close(fd)
        system.phoenix.checkpoint()
        system.crash("boom")
        system.reboot()
        assert system.fs.read(system.fs.namei("/versioned"), 0, 14) == b"SECOND version"


class TestDebitCredit:
    def make(self, policy, rio=None):
        return build_system(SystemSpec(policy=policy, rio=rio, fs_blocks=512))

    def test_transactions_update_balances(self):
        system = self.make("rio", RioConfig.with_protection())
        bench = DebitCreditWorkload(
            system.vfs, system.kernel, DebitCreditParams(accounts=16, transactions=40)
        )
        bench.setup()
        result = bench.run()
        assert result.transactions == 40
        assert bench.verify()
        fd = system.vfs.open("/bank/accounts")
        updated = 0
        for account in range(16):
            raw = system.vfs.pread(fd, RECORD.size, account * RECORD_SIZE)
            updated += RECORD.unpack(raw)[2]
        assert updated == 40

    def test_rio_commits_faster_than_write_through(self):
        """The paper's motivation: synchronous commits at memory speed."""
        params = DebitCreditParams(accounts=32, transactions=60)
        rio = self.make("rio", RioConfig.with_protection())
        wt = self.make("wt_write")
        bench_rio = DebitCreditWorkload(rio.vfs, rio.kernel, params)
        bench_rio.setup()
        rio_result = bench_rio.run()
        bench_wt = DebitCreditWorkload(wt.vfs, wt.kernel, params)
        bench_wt.setup()
        wt_result = bench_wt.run()
        assert rio_result.tps > 5 * wt_result.tps
        assert rio.disk.stats.writes == 0

    def test_committed_transactions_survive_crash_on_rio(self):
        system = self.make("rio", RioConfig.with_protection())
        bench = DebitCreditWorkload(
            system.vfs, system.kernel, DebitCreditParams(accounts=8, transactions=25)
        )
        bench.setup()
        bench.run()
        system.crash("mid-day outage")
        system.reboot()
        replay = DebitCreditWorkload(
            system.vfs, system.kernel, DebitCreditParams(accounts=8, transactions=25)
        )
        assert replay.verify()
        fd = system.vfs.open("/bank/accounts")
        total_updates = sum(
            RECORD.unpack(system.vfs.pread(fd, RECORD.size, a * RECORD_SIZE))[2]
            for a in range(8)
        )
        assert total_updates == 25  # every committed transaction survived


class TestMemoryBoardTransplant:
    def test_memory_moves_to_a_new_machine(self):
        """Section 5: "If the system board fails, it should be possible to
        move the memory board to a different system without losing power
        or data."""
        system = build_system(
            SystemSpec(policy="rio", rio=RioConfig.with_protection(), fs_blocks=512)
        )
        fd = system.vfs.open("/on-the-board", create=True)
        system.vfs.write(fd, b"moved with the DIMMs")
        system.vfs.close(fd)
        system.crash("system board failure")

        # Pull the board and seat it in a replacement chassis.
        board = system.machine.memory
        replacement = Machine(MachineConfig(**vars(system.spec.machine)), memory=board)
        replacement.crashed = True  # arrives in crashed state, pre-reset
        system.machine = replacement
        # The disks move too (they are external peripherals).
        replacement.disks = {"rz0": system.disk, "rz1": system.swap.disk}
        for disk in replacement.disks.values():
            disk.attach(replacement.clock)

        report = system.reboot()
        assert report.warm.registry_found
        assert system.vfs.exists("/on-the-board")
        assert (
            system.fs.read(system.fs.namei("/on-the-board"), 0, 32)
            == b"moved with the DIMMs"
        )

    def test_wrong_sized_board_rejected(self):
        small = Machine(MachineConfig(memory_bytes=8 * 1024 * 1024))
        with pytest.raises(ValueError):
            Machine(MachineConfig(memory_bytes=16 * 1024 * 1024), memory=small.memory)
