"""Tests for hard links and symbolic links (UFS + MFS + VFS)."""

import pytest

from repro.core import RioConfig
from repro.errors import FileExists, FileNotFound, InvalidArgument, IsADirectory
from repro.fs.validate import validate
from repro.system import SystemSpec, build_system


@pytest.fixture(params=["ufs", "mfs"])
def system(request):
    if request.param == "mfs":
        return build_system(SystemSpec(fs_type="mfs"))
    return build_system(SystemSpec(policy="ufs_delayed", fs_blocks=512))


class TestHardLinks:
    def test_link_shares_content(self, system):
        vfs = system.vfs
        fd = vfs.open("/original", create=True)
        vfs.write(fd, b"shared bytes")
        vfs.close(fd)
        vfs.link("/original", "/alias")
        assert vfs.read(vfs.open("/alias"), 32) == b"shared bytes"
        # Writes through one name are visible through the other.
        fd = vfs.open("/alias")
        system.vfs.pwrite(fd, b"SHARED", 0)
        vfs.close(fd)
        assert vfs.read(vfs.open("/original"), 32) == b"SHARED bytes"

    def test_link_bumps_nlink(self, system):
        vfs = system.vfs
        fd = vfs.open("/a", create=True)
        vfs.close(fd)
        vfs.link("/a", "/b")
        assert system.fs.stat("/a").nlink == 2

    def test_unlink_one_name_keeps_data(self, system):
        vfs = system.vfs
        fd = vfs.open("/a", create=True)
        vfs.write(fd, b"keep")
        vfs.close(fd)
        vfs.link("/a", "/b")
        vfs.unlink("/a")
        assert not vfs.exists("/a")
        assert vfs.read(vfs.open("/b"), 8) == b"keep"
        assert system.fs.stat("/b").nlink == 1

    def test_unlink_last_name_frees(self, system):
        vfs = system.vfs
        fd = vfs.open("/a", create=True)
        vfs.close(fd)
        vfs.link("/a", "/b")
        vfs.unlink("/a")
        vfs.unlink("/b")
        assert not vfs.exists("/b")

    def test_link_to_directory_rejected(self, system):
        system.vfs.mkdir("/d")
        with pytest.raises(IsADirectory):
            system.vfs.link("/d", "/d2")

    def test_link_target_collision(self, system):
        vfs = system.vfs
        vfs.close(vfs.open("/a", create=True))
        vfs.close(vfs.open("/b", create=True))
        with pytest.raises(FileExists):
            vfs.link("/a", "/b")


class TestSymlinks:
    def test_follow_on_open(self, system):
        vfs = system.vfs
        fd = vfs.open("/real", create=True)
        vfs.write(fd, b"through the link")
        vfs.close(fd)
        vfs.symlink("/real", "/sym")
        assert vfs.read(vfs.open("/sym"), 32) == b"through the link"

    def test_readlink(self, system):
        system.vfs.symlink("/somewhere/else", "/sym")
        assert system.vfs.readlink("/sym") == "/somewhere/else"

    def test_readlink_of_regular_file_fails(self, system):
        system.vfs.close(system.vfs.open("/f", create=True))
        with pytest.raises(InvalidArgument):
            system.vfs.readlink("/f")

    def test_relative_target(self, system):
        vfs = system.vfs
        vfs.mkdir("/d")
        fd = vfs.open("/d/file", create=True)
        vfs.write(fd, b"relative")
        vfs.close(fd)
        vfs.symlink("file", "/d/rel")
        assert vfs.read(vfs.open("/d/rel"), 16) == b"relative"

    def test_symlink_to_directory_traversal(self, system):
        vfs = system.vfs
        vfs.mkdir("/target")
        fd = vfs.open("/target/inner", create=True)
        vfs.write(fd, b"deep")
        vfs.close(fd)
        vfs.symlink("/target", "/shortcut")
        assert vfs.read(vfs.open("/shortcut/inner"), 8) == b"deep"

    def test_dangling_symlink(self, system):
        system.vfs.symlink("/nowhere", "/dangling")
        with pytest.raises(FileNotFound):
            system.vfs.open("/dangling")
        assert system.vfs.readlink("/dangling") == "/nowhere"

    def test_symlink_loop_detected(self, system):
        vfs = system.vfs
        vfs.symlink("/b", "/a")
        vfs.symlink("/a", "/b")
        with pytest.raises(InvalidArgument, match="too many symlinks"):
            vfs.open("/a")

    def test_unlink_symlink_not_target(self, system):
        vfs = system.vfs
        fd = vfs.open("/real", create=True)
        vfs.write(fd, b"stays")
        vfs.close(fd)
        vfs.symlink("/real", "/sym")
        vfs.unlink("/sym")
        assert not vfs.exists("/sym")
        assert vfs.read(vfs.open("/real"), 8) == b"stays"


class TestLinksAcrossCrash:
    def test_links_survive_rio_warm_reboot(self):
        system = build_system(
            SystemSpec(policy="rio", rio=RioConfig.with_protection(), fs_blocks=512)
        )
        vfs = system.vfs
        fd = vfs.open("/file", create=True)
        vfs.write(fd, b"linked data")
        vfs.close(fd)
        vfs.link("/file", "/hard")
        vfs.symlink("/file", "/soft")
        system.crash("boom")
        system.reboot()
        vfs = system.vfs
        assert vfs.read(vfs.open("/hard"), 16) == b"linked data"
        assert vfs.read(vfs.open("/soft"), 16) == b"linked data"
        assert vfs.readlink("/soft") == "/file"

    def test_fs_with_links_validates(self):
        system = build_system(SystemSpec(policy="ufs_delayed", fs_blocks=512))
        vfs = system.vfs
        vfs.close(vfs.open("/f", create=True))
        vfs.link("/f", "/g")
        vfs.symlink("/f", "/s")
        system.fs.unmount()
        report = validate(system.disk)
        assert report.consistent, report.problems
