"""Structural consistency after *fault-induced* crashes.

The crash-consistency property tests force clean crashes; here the crash
comes from real injected faults — wild stores, heap corruption, deadlocks
— which is the adversarial case: the dying kernel may have written
garbage anywhere it could reach.  The invariant is weaker than Rio's
no-data-loss (corrupted data is corrupted) but still strong: after
recovery the on-disk file system must be *structurally* consistent, and
remain usable.
"""

import pytest

from repro.faults import FaultType
from repro.fs.validate import validate
from repro.reliability import CrashTestConfig, run_crash_test

CASES = [
    ("disk", FaultType.KERNEL_TEXT),
    ("disk", FaultType.COPY_OVERRUN),
    ("disk", FaultType.ALLOCATION),
    ("rio_noprot", FaultType.KERNEL_HEAP),
    ("rio_noprot", FaultType.COPY_OVERRUN),
    ("rio_prot", FaultType.POINTER),
    ("rio_prot", FaultType.ALLOCATION),
    ("rio_prot", FaultType.OFF_BY_ONE),
]


@pytest.mark.parametrize("system_name,fault_type", CASES, ids=lambda v: getattr(v, "value", v))
def test_structure_survives_fault_induced_crash(system_name, fault_type):
    crashes_seen = 0
    for seed in range(200, 212):
        result = run_crash_test(
            CrashTestConfig(
                system=system_name, fault_type=fault_type, seed=seed, keep_system=True
            )
        )
        if not result.crashed or result.recovery_failed:
            continue
        crashes_seen += 1
        system = result._system
        report = validate(system.disk)
        assert report.consistent, (seed, report.problems[:6])
        # The recovered system is usable.
        fd = system.vfs.open("/post-fault-probe", create=True)
        system.vfs.write(fd, b"still alive")
        system.vfs.close(fd)
        if crashes_seen >= 3:
            break
    assert crashes_seen >= 1, "no usable crashes collected in 12 seeds"
