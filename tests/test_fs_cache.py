"""Tests for the page cache layer (buffer cache + UBC)."""

import pytest

from repro.errors import ConfigurationError, KernelPanic, NoSpace
from repro.fs.cache import IO_CONTEXT
from repro.fs.types import BLOCK_SIZE, FileId
from repro.hw import Machine, MachineConfig
from repro.hw.mmu import KSEG_BASE
from repro.isa.routines import HDR_DST_OFF
from repro.kernel import Kernel, KernelConfig
from repro.util import pattern_bytes


@pytest.fixture
def kernel():
    machine = Machine(MachineConfig(memory_bytes=8 * 1024 * 1024, boot_time_ns=0))
    k = Kernel(machine, KernelConfig(charge_time=False))
    k.init_caches()
    return k


class TestBufferCache:
    def test_get_zero_filled(self, kernel):
        page = kernel.buffer_cache.get(("meta", 0, 5))
        assert kernel.buffer_cache.read(page, 0, 16) == b"\x00" * 16
        assert not page.dirty

    def test_hit_returns_same_page(self, kernel):
        cache = kernel.buffer_cache
        a = cache.get(("meta", 0, 5))
        b = cache.get(("meta", 0, 5))
        assert a is b
        assert cache.stat_hits == 1
        assert cache.stat_misses == 1

    def test_write_into_and_read(self, kernel):
        cache = kernel.buffer_cache
        page = cache.get(("meta", 0, 7))
        cache.write_into(page, 100, b"metadata bytes", IO_CONTEXT)
        assert cache.read(page, 100, 14) == b"metadata bytes"
        assert page.dirty

    def test_write_records_journal_extent(self, kernel):
        cache = kernel.buffer_cache
        page = cache.get(("meta", 0, 7))
        cache.write_into(page, 64, b"x" * 10, IO_CONTEXT)
        assert page.journal_extents == [(64, 10)]

    def test_loader_invoked_on_miss(self, kernel):
        cache = kernel.buffer_cache
        payload = pattern_bytes(1, 0, BLOCK_SIZE)
        page = cache.get(("meta", 0, 9), loader=lambda p: cache.fill(p, payload))
        assert cache.read(page, 0, 64) == payload[:64]

    def test_out_of_bounds_write_rejected(self, kernel):
        cache = kernel.buffer_cache
        page = cache.get(("meta", 0, 1))
        with pytest.raises(ConfigurationError):
            cache.write_into(page, BLOCK_SIZE - 4, b"too long", IO_CONTEXT)

    def test_vaddr_is_mapped_kernel_virtual(self, kernel):
        page = kernel.buffer_cache.get(("meta", 0, 2))
        assert page.vaddr < KSEG_BASE  # buffer cache lives in mapped memory

    def test_corrupted_header_panics_write(self, kernel):
        """The buffer-header magic check is a kernel sanity check."""
        cache = kernel.buffer_cache
        page = cache.get(("meta", 0, 3))
        kernel.bus.store_u64(page.hdr_addr, 0xBAD)
        with pytest.raises(KernelPanic):
            cache.write_into(page, 0, b"x", IO_CONTEXT)

    def test_corrupted_header_dst_redirects_write(self, kernel):
        """Heap corruption of the destination pointer sends the metadata
        copy elsewhere — here, onto another mapped page."""
        cache = kernel.buffer_cache
        victim = cache.get(("meta", 0, 4))
        target = cache.get(("meta", 0, 5))
        kernel.bus.store_u64(target.hdr_addr + HDR_DST_OFF, victim.vaddr)
        cache.write_into(target, 0, b"misdirected", IO_CONTEXT)
        assert cache.read(victim, 0, 11) == b"misdirected"

    def test_drop_releases_resources(self, kernel):
        cache = kernel.buffer_cache
        free_before = kernel.frames.free_count
        live_before = kernel.heap.live_blocks
        page = cache.get(("meta", 0, 6))
        cache.drop(page)
        assert kernel.frames.free_count == free_before
        assert kernel.heap.live_blocks == live_before
        assert cache.lookup(("meta", 0, 6)) is None


class TestUBC:
    def test_pages_addressed_through_kseg(self, kernel):
        page = kernel.ubc.get(("data", 0, 10, 0))
        assert page.vaddr >= KSEG_BASE
        assert page.vaddr == KSEG_BASE + page.pfn * BLOCK_SIZE

    def test_write_and_read(self, kernel):
        ubc = kernel.ubc
        page = ubc.get(("data", 0, 10, 0), file_id=FileId(0, 10))
        data = pattern_bytes(4, 0, 500)
        ubc.write_into(page, 42, data, IO_CONTEXT)
        assert ubc.read(page, 42, 500) == data

    def test_invalidate_file(self, kernel):
        ubc = kernel.ubc
        fid = FileId(0, 11)
        for i in range(3):
            ubc.get(("data", 0, 11, i), file_id=fid)
        other = ubc.get(("data", 0, 12, 0), file_id=FileId(0, 12))
        ubc.invalidate_file(fid)
        assert len(ubc.pages) == 1
        assert ubc.lookup(("data", 0, 12, 0)) is other


class TestEvictionAndFlush:
    def make_disk_kernel(self):
        from repro.disk import SimulatedDisk

        machine = Machine(MachineConfig(memory_bytes=8 * 1024 * 1024, boot_time_ns=0))
        kernel = Kernel(machine, KernelConfig(charge_time=False))
        kernel.init_caches()
        disk = SimulatedDisk("rz0", 4096)
        machine.attach_disk("rz0", disk)
        kernel.attach_block_device(0, disk)
        return kernel, disk

    def test_flush_writes_to_disk_block(self):
        kernel, disk = self.make_disk_kernel()
        ubc = kernel.ubc
        page = ubc.get(("data", 0, 5, 0), disk_block=20)
        payload = pattern_bytes(9, 0, 100)
        ubc.write_into(page, 0, payload, IO_CONTEXT)
        ubc.flush_page(page, sync=True)
        assert disk.peek(20 * 16, 16)[:100] == payload
        assert not page.dirty

    def test_flush_without_placement_fails(self, kernel):
        page = kernel.ubc.get(("data", 0, 5, 0))
        kernel.ubc.set_dirty(page, True)
        with pytest.raises(ConfigurationError):
            kernel.ubc.flush_page(page, sync=True)

    def test_async_flush_clears_dirty_on_completion(self):
        kernel, disk = self.make_disk_kernel()
        ubc = kernel.ubc
        page = ubc.get(("data", 0, 6, 0), disk_block=30)
        ubc.write_into(page, 0, b"async", IO_CONTEXT)
        ubc.flush_page(page, sync=False)
        assert page.dirty  # not yet on the platter
        disk.drain()
        assert not page.dirty

    def test_redirtied_page_stays_dirty_after_stale_completion(self):
        kernel, disk = self.make_disk_kernel()
        ubc = kernel.ubc
        page = ubc.get(("data", 0, 7, 0), disk_block=31)
        ubc.write_into(page, 0, b"first", IO_CONTEXT)
        ubc.flush_page(page, sync=False)
        ubc.write_into(page, 0, b"newer", IO_CONTEXT)  # re-dirty before I/O done
        disk.drain()
        assert page.dirty  # the completion must not mark the newer data clean

    def test_eviction_flushes_dirty_lru(self):
        kernel, disk = self.make_disk_kernel()
        ubc = kernel.ubc
        ubc.capacity = 2
        first = ubc.get(("data", 0, 8, 0), disk_block=40)
        ubc.write_into(first, 0, b"evict me", IO_CONTEXT)
        ubc.get(("data", 0, 8, 1), disk_block=41)
        ubc.get(("data", 0, 8, 2), disk_block=42)  # forces eviction of `first`
        assert ubc.lookup(("data", 0, 8, 0)) is None
        assert disk.peek(40 * 16, 1)[:8] == b"evict me"

    def test_pinned_pages_not_evicted(self, kernel):
        ubc = kernel.ubc
        ubc.capacity = 2
        a = ubc.get(("data", 0, 9, 0))
        b = ubc.get(("data", 0, 9, 1))
        a.pin()
        b.pin()
        with pytest.raises(NoSpace):
            ubc.get(("data", 0, 9, 2))
        a.unpin()
        ubc.get(("data", 0, 9, 3))  # now eviction can proceed
