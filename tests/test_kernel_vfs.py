"""Tests for the VFS syscall layer and kernel services."""

import pytest

from repro.errors import (
    BadFileDescriptor,
    CrashedMachineError,
    FileNotFound,
    InvalidArgument,
    KernelPanic,
    SystemCrash,
)
from repro.fs.types import Whence
from repro.system import SystemSpec, build_system


@pytest.fixture
def system():
    return build_system(SystemSpec(policy="ufs_delayed", fs_blocks=512))


@pytest.fixture
def vfs(system):
    return system.vfs


class TestFileDescriptors:
    def test_open_missing_fails(self, vfs):
        with pytest.raises(FileNotFound):
            vfs.open("/missing")

    def test_open_create(self, vfs):
        fd = vfs.open("/new", create=True)
        assert fd >= 3
        vfs.close(fd)
        assert vfs.exists("/new")

    def test_fds_are_unique(self, vfs):
        a = vfs.open("/a", create=True)
        b = vfs.open("/b", create=True)
        assert a != b
        assert vfs.open_fds == [a, b]

    def test_close_invalidates(self, vfs):
        fd = vfs.open("/a", create=True)
        vfs.close(fd)
        with pytest.raises(BadFileDescriptor):
            vfs.read(fd, 1)

    def test_sequential_read_write(self, vfs):
        fd = vfs.open("/seq", create=True)
        vfs.write(fd, b"hello ")
        vfs.write(fd, b"world")
        vfs.lseek(fd, 0)
        assert vfs.read(fd, 64) == b"hello world"

    def test_open_truncate(self, vfs):
        fd = vfs.open("/t", create=True)
        vfs.write(fd, b"long old content")
        vfs.close(fd)
        fd = vfs.open("/t", truncate=True)
        vfs.write(fd, b"new")
        vfs.lseek(fd, 0)
        assert vfs.read(fd, 64) == b"new"

    def test_pread_pwrite_do_not_move_offset(self, vfs):
        fd = vfs.open("/p", create=True)
        vfs.pwrite(fd, b"0123456789", 0)
        assert vfs.pread(fd, 4, 2) == b"2345"
        assert vfs.read(fd, 3) == b"012"  # offset still at 0

    def test_lseek_whence(self, vfs):
        fd = vfs.open("/s", create=True)
        vfs.write(fd, b"0123456789")
        assert vfs.lseek(fd, 2) == 2
        assert vfs.lseek(fd, 3, Whence.CUR) == 5
        assert vfs.lseek(fd, -1, Whence.END) == 9
        assert vfs.read(fd, 10) == b"9"

    def test_negative_seek_rejected(self, vfs):
        fd = vfs.open("/s", create=True)
        with pytest.raises(InvalidArgument):
            vfs.lseek(fd, -5)

    def test_large_write_chunked_through_staging(self, vfs):
        payload = bytes(range(256)) * 1024  # 256 KB > staging region
        fd = vfs.open("/big", create=True)
        assert vfs.write(fd, payload) == len(payload)
        vfs.lseek(fd, 0)
        assert vfs.read(fd, len(payload)) == payload


class TestCrashPath:
    def test_syscall_after_crash_fails(self, system):
        system.crash("down")
        with pytest.raises(CrashedMachineError):
            system.vfs.open("/x", create=True)

    def test_kernel_goes_down_on_panic(self, system, monkeypatch):
        def explode(*args, **kwargs):
            raise KernelPanic("simulated consistency failure")

        monkeypatch.setattr(system.fs, "create", explode)
        with pytest.raises(SystemCrash):
            system.vfs.open("/x", create=True)
        assert system.machine.crashed
        assert system.machine.crash_log[-1].kind == "panic"

    def test_fs_errors_do_not_crash(self, system):
        with pytest.raises(FileNotFound):
            system.vfs.unlink("/nope")
        assert not system.machine.crashed


class TestKernelServices:
    def test_background_activity_runs_per_syscall(self, system):
        before = system.kernel.background.ticks_run
        system.vfs.exists("/")
        assert system.kernel.background.ticks_run == before + 1

    def test_syscall_overhead_charged(self, system):
        t0 = system.clock.now_ns
        system.vfs.exists("/")
        assert system.clock.now_ns > t0

    def test_update_daemon_fires_on_deadline(self, system):
        runs = system.kernel.stat_update_runs
        system.clock.consume(system.kernel.config.update_interval_ns + 1)
        system.vfs.exists("/")  # prologue notices the deadline
        assert system.kernel.stat_update_runs == runs + 1

    def test_staging_rejects_oversize(self, system):
        from repro.errors import ConfigurationError

        limit = len(system.kernel.regions.staging_frames) * 8192
        with pytest.raises(ConfigurationError):
            system.kernel.stage_data(b"\x00" * (limit + 1))

    def test_stage_data_roundtrip(self, system):
        vaddr = system.kernel.stage_data(b"user bytes")
        assert system.kernel.bus.load(vaddr, 10) == b"user bytes"

    def test_go_down_panic_sync_flushes_on_default_unix(self, system):
        """Default Unix panic writes dirty data back before dying."""
        fd = system.vfs.open("/dirty", create=True)
        system.vfs.write(fd, b"flushed by panic")
        writes_before = system.disk.stats.writes
        system.kernel.go_down(KernelPanic("die"))
        assert system.disk.stats.writes > writes_before

    def test_go_down_no_sync_when_reliability_writes_off(self):
        from repro.core import RioConfig

        system = build_system(
            SystemSpec(policy="rio", rio=RioConfig.with_protection(), fs_blocks=512)
        )
        fd = system.vfs.open("/dirty", create=True)
        system.vfs.write(fd, b"stays in memory")
        writes_before = system.disk.stats.writes
        system.kernel.go_down(KernelPanic("die"))
        assert system.disk.stats.writes == writes_before
