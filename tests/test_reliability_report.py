"""Unit coverage for reliability/report.py: the cell accounting, seed
schedule, formatting, and the canonical digest the serial≡parallel
equivalence tests compare.

No campaigns run here — results are hand-built — so these are fast.
"""

import pytest

from repro.faults import FaultType
from repro.reliability import (
    CampaignCell,
    CrashTestConfig,
    CrashTestResult,
    Table1,
    format_table1,
    seed_for,
    table1_digest,
)
from repro.reliability.report import hash_cell


def make_result(**kw) -> CrashTestResult:
    return CrashTestResult(config=CrashTestConfig(), **kw)


class TestHashCell:
    def test_stable_golden_values(self):
        # The seed schedule is built on these; a change here silently
        # re-seeds every campaign, so they are pinned.
        assert hash_cell("disk", FaultType.KERNEL_TEXT) == 29779
        assert hash_cell("disk", FaultType.POINTER) == 31860
        assert hash_cell("rio_noprot", FaultType.KERNEL_TEXT) == 40057
        assert hash_cell("rio_prot", FaultType.KERNEL_TEXT) == 12392
        assert hash_cell("rio_prot", FaultType.POINTER) == 16633

    def test_distinct_across_table1_grid(self):
        values = {
            hash_cell(s, f)
            for s in ("disk", "rio_noprot", "rio_prot")
            for f in FaultType
        }
        assert len(values) == 39

    def test_seed_for_composes_hash_cell(self):
        assert seed_for(1000, "disk", FaultType.KERNEL_TEXT, 7) == 297791007
        assert (
            seed_for(1000, "rio_prot", FaultType.POINTER, 0)
            == 1000 + hash_cell("rio_prot", FaultType.POINTER) * 10_000
        )


class TestCampaignCellRecord:
    def test_discarded_counts_only_discarded(self):
        cell = CampaignCell("disk", FaultType.KERNEL_TEXT)
        cell.record(make_result(discarded=True))
        assert cell.discarded == 1
        assert cell.crashes == 0
        assert cell.corruptions == 0
        assert cell.crash_kinds == {}

    def test_recovery_failed_is_a_corruption(self):
        cell = CampaignCell("disk", FaultType.POINTER)
        cell.record(make_result(crashed=True, crash_kind="panic", recovery_failed=True))
        assert cell.crashes == 1
        assert cell.corruptions == 1

    def test_protection_trap_counted_as_save(self):
        cell = CampaignCell("rio_prot", FaultType.COPY_OVERRUN)
        cell.record(
            make_result(crashed=True, crash_kind="protection_trap", protection_trap=True)
        )
        assert cell.protection_trap_saves == 1
        assert cell.corruptions == 0

    def test_order_key_restores_serial_order(self):
        cell = CampaignCell("disk", FaultType.KERNEL_TEXT)
        second = make_result(crashed=True, crash_kind="panic")
        first = make_result(discarded=True)
        cell.record(second, order=1)
        cell.record(first, order=0)
        assert cell.results == [first, second]
        # Counters are order-independent.
        assert cell.crashes == 1 and cell.discarded == 1

    def test_plain_appends_sort_after_keyed_inserts(self):
        cell = CampaignCell("disk", FaultType.KERNEL_TEXT)
        tail = make_result(discarded=True)
        cell.record(tail)
        head = make_result(crashed=True)
        cell.record(head, order=0)
        assert cell.results == [head, tail]


def build_sample_table() -> Table1:
    table = Table1(crashes_per_cell=2)
    cell = table.cell("disk", FaultType.KERNEL_TEXT)
    cell.record(make_result(crashed=True, crash_kind="panic"))
    cell.record(make_result(crashed=True, crash_kind="machine_check", checksum_mismatches=1))
    cell = table.cell("rio_prot", FaultType.KERNEL_TEXT)
    cell.record(make_result(crashed=True, crash_kind="protection_trap", protection_trap=True))
    cell.record(make_result(discarded=True))
    cell.record(make_result(crashed=True, crash_kind="panic"))
    cell = table.cell("disk", FaultType.POINTER)
    cell.record(make_result(crashed=True, crash_kind="panic", recovery_failed=True))
    return table


class TestTable1:
    def test_corruption_rate_zero_crashes_is_zero_not_nan(self):
        table = Table1(crashes_per_cell=50)
        table.cell("disk", FaultType.KERNEL_TEXT)  # cell exists, nothing recorded
        assert table.corruption_rate("disk") == 0.0
        assert table.corruption_rate("no_such_system") == 0.0

    def test_format_table1_golden(self):
        golden = (
            "Fault Type            Disk-Based                Rio with Protection       \n"
            "--------------------------------------------------------------------------\n"
            "kernel text           1                          [1 trapped]              \n"
            "pointer               1                         -                         \n"
            "--------------------------------------------------------------------------\n"
            "Total                 2 of 3 (66.7%)            0 of 2 (0.0%)             "
        )
        assert format_table1(build_sample_table(), systems=("disk", "rio_prot")) == golden

    def test_totals(self):
        table = build_sample_table()
        assert table.total_crashes("disk") == 3
        assert table.total_corruptions("disk") == 2
        assert table.corruption_rate("disk") == pytest.approx(2 / 3)
        assert table.trap_saves("rio_prot") == 1

    def test_digest_stable_and_order_sensitive_where_it_matters(self):
        a = build_sample_table()
        b = build_sample_table()
        assert table1_digest(a) == table1_digest(b)
        # A genuinely different outcome changes the digest.
        b.cell("disk", FaultType.KERNEL_TEXT).record(make_result(discarded=True))
        assert table1_digest(a) != table1_digest(b)

    def test_digest_ignores_cell_insertion_order(self):
        a = Table1(crashes_per_cell=1)
        a.cell("disk", FaultType.KERNEL_TEXT).record(make_result(crashed=True))
        a.cell("rio_prot", FaultType.POINTER).record(make_result(discarded=True))
        b = Table1(crashes_per_cell=1)
        b.cell("rio_prot", FaultType.POINTER).record(make_result(discarded=True))
        b.cell("disk", FaultType.KERNEL_TEXT).record(make_result(crashed=True))
        assert table1_digest(a) == table1_digest(b)
