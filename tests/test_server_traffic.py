"""Traffic-under-faults: crash storms against the file service.

The service-scale restatement of the paper's claim: N clients, M
mid-traffic kernel crashes, and not one acknowledged operation lost —
with the whole run a pure function of its seed on either execution
engine.
"""

import pytest

from repro.faults import FaultType
from repro.reliability import TrafficConfig, format_traffic_report, run_traffic_campaign
from repro.server import LoadSpec


def small_load(ops=12):
    return LoadSpec(ops_per_client=ops)


def digest_tuple(result):
    return (
        result.ack_digest,
        result.state_digest,
        result.load.acked,
        result.load.rounds,
        result.load.wall_virtual_ns,
        result.crashes_observed,
    )


def test_sixteen_clients_three_crashes_zero_lost_acks():
    result = run_traffic_campaign(
        TrafficConfig(system="rio_prot", clients=16, crashes=3, seed=1, load=small_load())
    )
    assert result.crashes_observed == 3
    assert result.recoveries == 3
    assert result.lost_acks == 0
    assert result.final_audit_ok
    assert result.ok
    assert result.load.acked > 16 * 12
    assert result.rebind_failures == 0
    report = format_traffic_report(result)
    assert "ZERO LOST ACKS" in report


def test_storm_is_deterministic_across_runs():
    config = dict(system="rio_prot", clients=6, crashes=2, seed=21, load=small_load())
    first = run_traffic_campaign(TrafficConfig(**config))
    second = run_traffic_campaign(TrafficConfig(**config))
    assert digest_tuple(first) == digest_tuple(second)
    assert first.ok and second.ok


def test_storm_digests_are_engine_independent():
    # The PR3 guarantee, load-bearing at service scale: the reference
    # and hot-path engines must produce the same acks, the same crash
    # points, the same recoveries — down to the virtual clock.
    config = dict(system="rio_prot", clients=5, crashes=2, seed=33, load=small_load(10))
    reference = run_traffic_campaign(TrafficConfig(fast_path=False, **config))
    hot = run_traffic_campaign(TrafficConfig(fast_path=True, **config))
    assert digest_tuple(reference) == digest_tuple(hot)
    assert reference.ok


def test_seed_changes_the_run():
    base = dict(system="rio_prot", clients=4, crashes=1, load=small_load(8))
    a = run_traffic_campaign(TrafficConfig(seed=1, **base))
    b = run_traffic_campaign(TrafficConfig(seed=2, **base))
    assert a.ack_digest != b.ack_digest


def test_fault_storm_recovers_cleanly():
    result = run_traffic_campaign(
        TrafficConfig(
            system="rio_prot",
            clients=6,
            crashes=2,
            seed=9,
            storm="faults",
            fault_type=FaultType.KERNEL_STACK,
            watchdog_budget=60,
            load=small_load(15),
        )
    )
    assert result.faults_injected >= 1
    # Every crash that happened was recovered with nothing lost.
    assert result.recoveries == result.crashes_observed
    assert result.lost_acks == 0 and result.final_audit_ok


def test_disk_system_loses_acks_and_repair_heals():
    # The contrast that motivates Rio: the same storm against a
    # delayed-write disk system loses acknowledged work; with
    # repair=True the service re-applies the journal and owns up to it.
    config = dict(
        system="disk", clients=6, crashes=2, seed=4, load=small_load(15)
    )
    lossy = run_traffic_campaign(TrafficConfig(repair=False, **config))
    rio = run_traffic_campaign(
        TrafficConfig(repair=False, system="rio_prot", **{k: v for k, v in config.items() if k != "system"})
    )
    assert rio.lost_acks == 0 and rio.ok
    assert lossy.lost_acks > 0 and not lossy.ok

    repaired = run_traffic_campaign(TrafficConfig(repair=True, **config))
    assert repaired.repaired_acks > 0
    # Repair reports the loss (honesty) but heals the state: the final
    # audit runs against the repaired file system and comes back clean.
    assert repaired.lost_acks > 0
    assert repaired.final_audit_ok


def test_unknown_storm_rejected():
    with pytest.raises(ValueError):
        run_traffic_campaign(TrafficConfig(storm="hurricane"))
