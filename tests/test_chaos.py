"""The chaos capability matrix: registry semantics and seed purity.

Unit tests pin the debugfs-style knob semantics (probability, interval,
times, fail-Nth, per-client/session/routine scoping) and the
lock-safety rules; end-to-end tests assert the SLO claims — zero lost
acks under every capability, and campaign digests that are bit-identical
across execution engines and worker counts.  The satellite regression
tests (EQUOTA retry planning, rolling crash-point dedupe, requeue
invariants) live here too.
"""

import pytest

from repro.errors import ConfigurationError
from repro.faults import ChaosRegistry
from repro.reliability import (
    ChaosCampaignConfig,
    ChaosSpec,
    ClusterTrafficConfig,
    TrafficConfig,
    format_chaos_report,
    rolling_crash_points,
    run_chaos_campaign,
    run_traffic_campaign,
)
from repro.server import LoadSpec
from repro.server.loadgen import LoadClient
from repro.server.protocol import Backpressure, Request, Response
from repro.server.scheduler import RequestScheduler


# ---------------------------------------------------------------------------
# Registry unit tests
# ---------------------------------------------------------------------------


def test_times_budget_exhausts():
    registry = ChaosRegistry(seed=3)
    registry.enable("fail_queue", times=3)
    fires = sum(registry.should_fail("fail_queue", client=1) for _ in range(10))
    assert fires == 3
    (snap,) = registry.snapshot()
    assert snap["fires"] == 3
    assert snap["times_left"] == 0


def test_interval_fires_every_nth_call():
    registry = ChaosRegistry(seed=3)
    registry.enable("fail_queue", interval=3)
    pattern = [registry.should_fail("fail_queue", client=1) for _ in range(9)]
    assert pattern == [False, False, True] * 3


def test_probability_is_seed_deterministic():
    def pattern(seed):
        registry = ChaosRegistry(seed=seed)
        registry.enable("fail_queue", probability=40)
        return tuple(registry.should_fail("fail_queue", client=1) for _ in range(64))

    assert pattern(7) == pattern(7)
    assert pattern(7) != pattern(8)
    assert any(pattern(7))  # 40% over 64 draws fires somewhere
    assert not all(pattern(7))


def test_scope_restricts_to_one_client():
    registry = ChaosRegistry(seed=3)
    registry.enable("fail_queue", client=1)
    for _ in range(5):
        assert not registry.should_fail("fail_queue", client=2)
    assert registry.should_fail("fail_queue", client=1)
    (snap,) = registry.snapshot()
    # Client 2's traffic neither fired nor advanced the counters.
    assert snap["fires_by_client"] == {"1": 1}
    assert snap["calls"] == 1


def test_routine_scope_and_session_scope():
    registry = ChaosRegistry(seed=3)
    registry.enable("fail_nth_syscall", nth=2, routine="write")
    with registry.request_scope(client=1, session=10, routine="read"):
        assert not registry.should_fail("fail_nth_syscall")
    with registry.request_scope(client=1, session=10, routine="write"):
        assert not registry.should_fail("fail_nth_syscall")  # 1st write
        assert registry.should_fail("fail_nth_syscall")  # 2nd write


def test_request_scoped_capabilities_decline_outside_requests():
    registry = ChaosRegistry(seed=3)
    registry.enable("fail_alloc")
    registry.enable("fail_disk_full")
    # No ambient request scope: recovery/fsck paths are never denied.
    assert not registry.should_fail("fail_alloc")
    assert not registry.should_fail("fail_disk_full")
    with registry.request_scope(client=0, session=1, routine="write"):
        assert registry.should_fail("fail_alloc")
        assert registry.should_fail("fail_disk_full")


def test_calm_suppresses_everything_without_counting():
    registry = ChaosRegistry(seed=3)
    registry.enable("fail_queue")
    registry.enable("slow_io", factor=4.0)
    with registry.calm():
        assert not registry.should_fail("fail_queue", client=1)
        assert registry.io_service_ns(1000) == 1000
    assert all(cap["calls"] == 0 for cap in registry.snapshot())
    assert registry.should_fail("fail_queue", client=1)


def test_slow_io_multiplies_service_time():
    registry = ChaosRegistry(seed=3)
    registry.enable("slow_io", factor=4.0)
    assert registry.io_service_ns(1000) == 4000


def test_bad_knobs_are_rejected():
    registry = ChaosRegistry()
    with pytest.raises(ConfigurationError):
        registry.enable("no_such_capability")
    with pytest.raises(ConfigurationError):
        registry.enable("fail_queue", probability=101)
    with pytest.raises(ConfigurationError):
        registry.enable("fail_queue", interval=0)
    with pytest.raises(ConfigurationError):
        registry.enable("fail_queue", times=-2)
    with pytest.raises(ConfigurationError):
        registry.enable("slow_io", factor=0)


# ---------------------------------------------------------------------------
# Hook-site and satellite regressions
# ---------------------------------------------------------------------------


def _request(client_id, req_id, op="stat"):
    return Request(client_id=client_id, req_id=req_id, op=op, path="f")


def _scheduler_invariant(scheduler):
    active = scheduler._active
    assert active == sorted(active), "active list must stay sorted"
    assert len(set(active)) == len(active), "no duplicate active entries"
    for cid, queue in scheduler._queues.items():
        assert (cid in active) == bool(queue), f"invariant broken for {cid}"


def test_fail_queue_forces_backpressure_before_any_mutation():
    scheduler = RequestScheduler(queue_depth=4)
    registry = ChaosRegistry(seed=3)
    registry.enable("fail_queue", client=7)
    scheduler.chaos = registry
    with pytest.raises(Backpressure, match="chaos"):
        scheduler.enqueue(_request(7, 1))
    _scheduler_invariant(scheduler)
    assert scheduler.backlog() == 0
    # Other clients are admitted normally.
    scheduler.enqueue(_request(8, 1))
    _scheduler_invariant(scheduler)
    assert scheduler.backlog(8) == 1


def test_requeue_front_keeps_active_invariant_past_queue_depth():
    scheduler = RequestScheduler(queue_depth=2)
    for req_id in (1, 2):
        scheduler.enqueue(_request(5, req_id))
    batch = scheduler.next_batch(2)
    assert len(batch) == 2
    # Refill to capacity behind the batch, then requeue the batch:
    # the queue transiently exceeds queue_depth, and the invariant
    # must hold with no phantom/duplicate active entries.
    for req_id in (3, 4):
        scheduler.enqueue(_request(5, req_id))
    scheduler.requeue_front(batch)
    _scheduler_invariant(scheduler)
    assert scheduler.backlog(5) == 4
    drained = scheduler.next_batch(10, quantum=10)
    assert [r.req_id for r in drained] == [1, 2, 3, 4]
    _scheduler_invariant(scheduler)


def test_requeue_front_onto_empty_queue_registers_active():
    scheduler = RequestScheduler(queue_depth=2)
    scheduler.requeue_front([_request(3, 1), _request(3, 2), _request(9, 1)])
    _scheduler_invariant(scheduler)
    batch = scheduler.next_batch(10)
    assert [(r.client_id, r.req_id) for r in batch] == [(3, 1), (3, 2), (9, 1)]


def test_equota_retry_goes_to_the_back_of_the_plan():
    client = LoadClient(client_id=0, seed=1, spec=LoadSpec(ops_per_client=4))
    request = client.next_request()
    assert request is not None
    planned_before = list(client._planned)
    quota = Response(
        client_id=0, req_id=request.req_id, op=request.op,
        ok=False, error="EQUOTA", retryable=True,
    )
    client.on_response(quota)
    # Never dropped: the op is back in the plan, after everything else.
    assert client._planned[-1] is request
    assert client._planned[:-1] == planned_before
    assert client.stats.retried == 1
    assert not client.done


def test_eagain_retry_stays_at_the_front():
    client = LoadClient(client_id=0, seed=1, spec=LoadSpec(ops_per_client=4))
    request = client.next_request()
    busy = Response(
        client_id=0, req_id=request.req_id, op=request.op,
        ok=False, error="EAGAIN", retryable=True,
    )
    client.on_response(busy)
    assert client._planned[0] is request
    assert client.stats.rejected == 1


def test_namespace_ops_submit_exclusively():
    # A retried namespace op must never leapfrog a dependent request:
    # the client drains its pipeline before a namespace op goes out,
    # and submits nothing else while one is in flight.  (Without the
    # barrier, a retryable failure of "rename f1 -> r1" let the
    # already-pipelined "open r1 create" execute first; the retried
    # rename then replaced the fresh file while the client kept writing
    # through its fd — acknowledged writes into a dead inode.)
    client = LoadClient(client_id=0, seed=1, spec=LoadSpec(ops_per_client=0))
    client._planned.clear()  # drop the warm-up opens
    client._pending_opens.clear()
    write = Request(client_id=0, req_id=90, op="write", fd=3, offset=0, data=b"x")
    move = Request(client_id=0, req_id=91, op="rename", path="f1", new_path="r1")
    reopen = Request(client_id=0, req_id=92, op="open", path="r1", create=True)
    client._planned.extend([write, move, reopen])
    assert client.next_request() is write
    # The rename waits for the pipeline to drain...
    assert client.next_request() is None
    client.on_response(Response(client_id=0, req_id=90, op="write", ok=True, value=1))
    assert client.next_request() is move
    # ...and blocks everything behind it while in flight.
    assert client.next_request() is None
    client.on_response(Response(client_id=0, req_id=91, op="rename", ok=True))
    assert client.next_request() is reopen


def test_rolling_crash_points_are_unique_even_on_short_storms():
    # A storm so short the naive fraction spacing would emit duplicate
    # (clustered) crash points.
    config = ClusterTrafficConfig(
        shards=2,
        clients=2,
        crashes_per_shard=4,
        load=LoadSpec(ops_per_client=2),
    )
    points = rolling_crash_points(config)
    assert set(points) == {0, 1}
    for shard_points in points.values():
        assert len(shard_points) == config.crashes_per_shard
        assert len(set(shard_points)) == config.crashes_per_shard
        assert list(shard_points) == sorted(shard_points)


# ---------------------------------------------------------------------------
# End-to-end: traffic under chaos
# ---------------------------------------------------------------------------


def _small_campaign(**overrides):
    params = dict(
        clients=4, ops_per_client=10, crashes=1, seed=7, fs_blocks=2048
    )
    params.update(overrides)
    return ChaosCampaignConfig(**params)


def test_matrix_zero_lost_acks_and_every_capability_wired():
    result = run_chaos_campaign(_small_campaign(seed=11, clients=6, ops_per_client=16))
    assert result.ok
    assert [t.trial for t in result.trials] == [
        "baseline", "fail_alloc", "fail_queue", "fail_disk_full",
        "slow_io", "fail_nth_syscall",
    ]
    by_name = {t.trial: t for t in result.trials}
    assert by_name["baseline"].chaos_fires == 0
    for trial in result.trials:
        assert trial.lost_acks == 0
        assert trial.crashes_observed == 1
        assert trial.recovery_ns > 0
    # slow_io stretches IO but denies nothing, so nothing fails.
    assert by_name["slow_io"].chaos_fires > 0
    assert by_name["slow_io"].failed == 0
    assert by_name["slow_io"].p99_ns >= by_name["baseline"].p99_ns
    report = format_chaos_report(result)
    assert "ZERO LOST ACKS UNDER CHAOS" in report


def test_campaign_digest_is_jobs_independent():
    serial = run_chaos_campaign(_small_campaign(jobs=1))
    fanned = run_chaos_campaign(_small_campaign(jobs=4))
    assert serial.digest == fanned.digest
    assert serial.ok and fanned.ok


def test_campaign_digest_is_engine_independent():
    reference = run_chaos_campaign(_small_campaign(fast_path=False))
    hot = run_chaos_campaign(_small_campaign(fast_path=True))
    assert reference.digest == hot.digest
    assert reference.ok


def test_chaos_scoped_to_one_client_never_fires_for_another():
    result = run_traffic_campaign(
        TrafficConfig(
            system="rio_prot",
            clients=4,
            crashes=1,
            seed=5,
            load=LoadSpec(ops_per_client=12),
            chaos=(ChaosSpec("fail_nth_syscall", nth=3, times=2, client=1).to_json_dict(),),
        )
    )
    assert result.ok and result.lost_acks == 0
    (snap,) = result.chaos_snapshot
    assert snap["fires"] > 0
    assert set(snap["fires_by_client"]) == {"1"}


@pytest.mark.parametrize(
    "seed,spec",
    [
        # Seed 5 once reordered a chaos-denied rename past its dependent
        # open (fixed by the loadgen namespace barrier); seeds 3 and 9
        # once resurrected a denied write's debris blocks when a later
        # write extended the file (fixed by UFS partial-write cleanup).
        (5, ChaosSpec("fail_nth_syscall", nth=9, times=4)),
        (3, ChaosSpec("fail_alloc", probability=25, interval=7, times=6)),
        (9, ChaosSpec("fail_alloc", probability=25, interval=7, times=6)),
        (7, ChaosSpec("fail_disk_full", probability=40, interval=5, times=5)),
    ],
)
def test_adversarial_seeds_lose_no_acks(seed, spec):
    result = run_traffic_campaign(
        TrafficConfig(
            system="rio_prot",
            clients=8,
            crashes=1,
            seed=seed,
            load=LoadSpec(ops_per_client=12),
            chaos=(spec.to_json_dict(),),
        )
    )
    assert result.ok
    assert result.lost_acks == 0


def test_times_budget_exhausts_end_to_end():
    result = run_traffic_campaign(
        TrafficConfig(
            system="rio_prot",
            clients=4,
            crashes=1,
            seed=5,
            load=LoadSpec(ops_per_client=12),
            chaos=(ChaosSpec("slow_io", times=3).to_json_dict(),),
        )
    )
    assert result.ok
    (snap,) = result.chaos_snapshot
    assert snap["fires"] == 3
    assert snap["times_left"] == 0
