"""Tests for the fault injector: each of the 13 types must be armed
mechanistically and produce the right class of consequences."""

import pytest

from repro.errors import SystemCrash, WatchdogTimeout
from repro.faults import FAULT_CATEGORIES, FaultInjector, FaultType
from repro.faults.injector import FaultParams
from repro.isa.encoding import Op
from repro.system import SystemSpec, build_system


@pytest.fixture
def system():
    return build_system(SystemSpec(policy="ufs_delayed", fs_blocks=512))


def injector_for(system, seed=1, **params):
    return FaultInjector(system.kernel, seed, FaultParams(**params))


class TestTaxonomy:
    def test_thirteen_types(self):
        assert len(list(FaultType)) == 13

    def test_categories_cover_all_types(self):
        covered = [t for types in FAULT_CATEGORIES.values() for t in types]
        assert sorted(covered, key=lambda t: t.value) == sorted(
            FaultType, key=lambda t: t.value
        )

    def test_table1_row_labels(self):
        assert FaultType.KERNEL_TEXT.value == "kernel text"
        assert FaultType.DELETE_RANDOM_INST.value == "delete random inst."


class TestTextMutations:
    def test_text_flips_mark_routines_corrupted(self, system):
        record = injector_for(system).inject(FaultType.KERNEL_TEXT)
        assert len(record.details) == 20
        assert system.kernel.text.corrupted_routines()

    def test_delete_branch_replaces_with_nop(self, system):
        text = system.kernel.text
        branches_before = sum(
            1
            for i in range(1, len(text.words))
            if text.read_instruction(i).is_branch
            and text.read_instruction(i).op is not Op.BR
        )
        injector_for(system).inject(FaultType.DELETE_BRANCH)
        branches_after = sum(
            1
            for i in range(1, len(text.words))
            if text.read_instruction(i).is_branch
            and text.read_instruction(i).op is not Op.BR
        )
        assert branches_after < branches_before

    def test_dst_reg_mutation_changes_register(self, system):
        record = injector_for(system).inject(FaultType.DESTINATION_REG)
        assert record.details  # at least one mutation applied

    def test_off_by_one_swaps_comparisons(self, system):
        text = system.kernel.text

        def count(op):
            return sum(
                1
                for i in range(1, len(text.words))
                if text.read_instruction(i).op is op
            )

        strict_before = count(Op.CMPULT)
        injector_for(system, seed=3).inject(FaultType.OFF_BY_ONE)
        # Some strict/non-strict comparisons flipped.
        assert count(Op.CMPULT) != strict_before or count(Op.CMPLT) != strict_before

    def test_pointer_fault_nops_setup_instruction(self, system):
        record = injector_for(system).inject(FaultType.POINTER)
        assert any("pointer" in d for d in record.details)

    def test_initialization_targets_prologues(self, system):
        record = injector_for(system).inject(FaultType.INITIALIZATION)
        assert all("NOP at word" in d for d in record.details)

    def test_corrupted_code_eventually_crashes(self, system):
        """With its data plane shredded, the kernel must go down while
        running the workload, not silently succeed."""
        injector_for(system, seed=5).inject(FaultType.DELETE_RANDOM_INST)
        with pytest.raises(SystemCrash):
            for i in range(500):
                fd = system.vfs.open(f"/f{i}", create=True)
                system.vfs.write(fd, b"payload" * 100)
                system.vfs.close(fd)
        assert system.machine.crashed


class TestDataFlips:
    def test_heap_flips_target_live_allocations(self, system):
        record = injector_for(system).inject(FaultType.KERNEL_HEAP)
        assert len(record.details) == 20

    def test_stack_flips_land_near_stack_top(self, system):
        record = injector_for(system).inject(FaultType.KERNEL_STACK)
        top = system.kernel.klib.stack_top
        for detail in record.details:
            addr = int(detail.split()[1], 16)
            assert top - 512 <= addr < top


class TestHookFaults:
    def test_allocation_fault_prematurely_frees(self, system):
        injector = injector_for(system, kmalloc_interval=(2, 2))
        injector.inject(FaultType.ALLOCATION)
        heap = system.kernel.heap
        addr = heap.kmalloc(64)
        addr2 = heap.kmalloc(64)  # every 2nd alloc arms a premature free
        system.clock.consume(300_000_000)  # 300 ms: the "thread" wakes
        assert not heap.is_live(addr2) or not heap.is_live(addr)

    def test_copy_overrun_inflates_length(self, system):
        injector = injector_for(system, bcopy_interval=(1, 1))
        injector.inject(FaultType.COPY_OVERRUN)
        hook = system.kernel.klib.overrun_hook
        assert hook is not None
        inflated = hook(100)
        assert inflated > 100

    def test_overrun_distribution_matches_paper(self, system):
        injector = injector_for(system, seed=9, bcopy_interval=(1, 1))
        injector.inject(FaultType.COPY_OVERRUN)
        hook = system.kernel.klib.overrun_hook
        extras = [hook(0) for _ in range(2000)]
        one_byte = sum(1 for e in extras if e == 1) / len(extras)
        small = sum(1 for e in extras if 2 <= e <= 1024) / len(extras)
        big = sum(1 for e in extras if e > 1024) / len(extras)
        assert 0.42 <= one_byte <= 0.58   # paper: 50%
        assert 0.36 <= small <= 0.52      # paper: 44%
        assert 0.02 <= big <= 0.12        # paper: 6%

    def test_synchronization_elides_lock_ops(self, system):
        injector = injector_for(system, lock_interval=(2, 2))
        injector.inject(FaultType.SYNCHRONIZATION)
        lock = system.kernel.locks.lock("probe")
        outcomes = []
        for _ in range(64):
            try:
                lock.acquire()
                lock.release()
            except SystemCrash as exc:
                outcomes.append(type(exc).__name__)
                break
        assert outcomes and outcomes[0] in ("WatchdogTimeout", "KernelPanic")

    def test_synchronization_deadlock_is_watchdog(self, system):
        injector = injector_for(system, seed=2, lock_interval=(2, 3))
        injector.inject(FaultType.SYNCHRONIZATION)
        lock = system.kernel.locks.lock("dl")
        with pytest.raises(SystemCrash):
            for _ in range(200):
                lock.acquire()
                lock.release()


class TestDeterminism:
    def test_same_seed_same_mutations(self, system):
        a = build_system(SystemSpec(policy="ufs_delayed", fs_blocks=512))
        b = build_system(SystemSpec(policy="ufs_delayed", fs_blocks=512))
        rec_a = FaultInjector(a.kernel, 77).inject(FaultType.KERNEL_TEXT)
        rec_b = FaultInjector(b.kernel, 77).inject(FaultType.KERNEL_TEXT)
        assert rec_a.details == rec_b.details
