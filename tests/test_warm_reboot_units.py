"""Unit tests for the warm-reboot module internals (dump, audit, restore
functions in isolation, complementing the end-to-end tests)."""

import pytest

from repro.core.registry import (
    FLAG_CHANGING,
    FLAG_DIRTY,
    FLAG_META,
    FLAG_VALID,
    RegistryEntry,
)
from repro.core.warm_reboot import (
    WarmRebootReport,
    audit_checksums,
    restore_ubc,
)
from repro.util.checksum import fletcher32

PAGE = 8192


def entry(slot, data_offset, image, **kw):
    defaults = dict(
        slot=slot,
        phys_addr=data_offset,
        dev=0,
        ino=5,
        file_offset=0,
        size=PAGE,
        flags=FLAG_VALID | FLAG_DIRTY,
        checksum=fletcher32(image[data_offset : data_offset + PAGE]),
    )
    defaults.update(kw)
    return RegistryEntry(**defaults)


class TestAuditChecksums:
    def test_intact_entries_pass(self):
        image = bytes(PAGE * 4)
        report = WarmRebootReport()
        audit_checksums(image, [entry(0, 0, image), entry(1, PAGE, image)], report)
        assert report.checksum_mismatches == []
        assert report.changing_entries == 0

    def test_mismatch_detected(self):
        image = bytearray(PAGE * 4)
        good = entry(0, 0, bytes(image))
        image[100] = 0xFF  # corruption after the checksum was recorded
        report = WarmRebootReport()
        audit_checksums(bytes(image), [good], report)
        assert report.checksum_mismatches == [0]

    def test_changing_entries_cannot_be_classified(self):
        image = bytearray(PAGE * 2)
        mid_write = entry(3, 0, bytes(image))
        mid_write.flags |= FLAG_CHANGING
        image[5] = 0x77  # differs from the checksum, but CHANGING exempts it
        report = WarmRebootReport()
        audit_checksums(bytes(image), [mid_write], report)
        assert report.checksum_mismatches == []
        assert report.changing_entries == 1


class _FakeFs:
    """Minimal restore target implementing the by-inode interface."""

    def __init__(self, sizes):
        self.sizes = sizes
        self.writes = []

    def inode_exists(self, ino):
        return ino in self.sizes

    def inode_size(self, ino):
        return self.sizes[ino]

    def write_by_ino(self, ino, offset, data):
        self.writes.append((ino, offset, len(data)))
        return len(data)


class TestRestoreUbc:
    def make_image(self):
        return bytes(range(256)) * (PAGE * 4 // 256)

    def test_restores_dirty_data_entries(self):
        image = self.make_image()
        fs = _FakeFs({5: PAGE * 2})
        report = WarmRebootReport()
        entries = [entry(0, 0, image, ino=5, file_offset=0)]
        restore_ubc(fs, image, entries, report)
        assert fs.writes == [(5, 0, PAGE)]
        assert report.ubc_restored == 1

    def test_skips_clean_entries(self):
        image = self.make_image()
        fs = _FakeFs({5: PAGE})
        report = WarmRebootReport()
        clean = entry(0, 0, image, flags=FLAG_VALID)  # not dirty
        restore_ubc(fs, image, [clean], report)
        assert fs.writes == []
        assert report.ubc_restored == 0

    def test_skips_metadata_entries(self):
        image = self.make_image()
        fs = _FakeFs({5: PAGE})
        report = WarmRebootReport()
        meta = entry(0, 0, image, flags=FLAG_VALID | FLAG_DIRTY | FLAG_META)
        restore_ubc(fs, image, [meta], report)
        assert fs.writes == []

    def test_skips_dead_inodes(self):
        image = self.make_image()
        fs = _FakeFs({})
        report = WarmRebootReport()
        restore_ubc(fs, image, [entry(0, 0, image, ino=99)], report)
        assert fs.writes == []
        assert report.ubc_skipped == 1

    def test_clamps_to_file_size(self):
        """A tail page restores only up to the inode's size."""
        image = self.make_image()
        fs = _FakeFs({5: PAGE + 100})
        report = WarmRebootReport()
        tail = entry(0, 0, image, ino=5, file_offset=PAGE)
        restore_ubc(fs, image, [tail], report)
        assert fs.writes == [(5, PAGE, 100)]

    def test_skips_entries_beyond_truncated_file(self):
        image = self.make_image()
        fs = _FakeFs({5: 100})
        report = WarmRebootReport()
        beyond = entry(0, 0, image, ino=5, file_offset=PAGE * 2)
        restore_ubc(fs, image, [beyond], report)
        assert fs.writes == []
        assert report.ubc_skipped == 1
