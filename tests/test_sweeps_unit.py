"""Unit tests for the sweep formatting helpers (the sweeps themselves are
exercised by benchmarks/bench_sweeps.py)."""

from repro.perf import format_sweep


def test_format_sweep_renders_grid():
    results = {
        ("rio", 1): 1.0,
        ("rio", 2): 1.1,
        ("wt", 1): 5.0,
        ("wt", 2): 9.5,
    }
    text = format_sweep(results, "scale")
    lines = text.splitlines()
    assert "scale" in lines[0]
    assert "rio" in lines[0] and "wt" in lines[0]
    assert len(lines) == 3  # header + one row per x value
    assert "1.00s" in lines[1]
    assert "9.50s" in lines[2]


def test_format_sweep_sorts_axes():
    results = {("b", 10): 2.0, ("a", 1): 1.0, ("a", 10): 3.0, ("b", 1): 4.0}
    text = format_sweep(results, "x")
    lines = text.splitlines()
    assert lines[0].index("a") < lines[0].index("b")
    assert lines[1].strip().startswith("1")
    assert lines[2].strip().startswith("10")
