"""Seeded corruption fuzzing of the dissect parser.

The verifier's contract is that :func:`repro.fs.dissect.dissect_image`
never raises on image *content*: any corruption — random bit flips,
byte smashes, truncation, garbage — produces typed findings, never an
exception and never an internal :data:`FindingKind.PARSER_ERROR`.

The corpus is a pure function of the seed, so a failing case is
reproducible from its parametrized test id alone.
"""

from __future__ import annotations

import random

import pytest

from repro.fs.dissect import DissectReport, FindingKind, dissect_image
from tests.test_dissect import build_flushed_image

_BASE: bytes | None = None


def base_image() -> bytes:
    """One clean flushed image shared by the whole corpus."""
    global _BASE
    if _BASE is None:
        _BASE = bytes(build_flushed_image())
    return _BASE


def corrupt(data: bytes, seed: int) -> bytes:
    """Seeded corruption: bit flips, byte smashes, runs, truncation.

    Deterministic — byte-identical output for the same ``(data, seed)``.
    """
    rng = random.Random(seed)
    out = bytearray(data)
    for _ in range(rng.randrange(1, 64)):
        mode = rng.random()
        at = rng.randrange(len(out))
        if mode < 0.45:
            out[at] ^= 1 << rng.randrange(8)
        elif mode < 0.85:
            out[at] = rng.randrange(256)
        else:
            run = min(rng.randrange(1, 512), len(out) - at)
            out[at : at + run] = bytes(rng.randrange(256) for _ in range(run))
    if rng.random() < 0.2:
        out = out[: rng.randrange(len(out) + 1)]
    return bytes(out)


def assert_well_formed(report: DissectReport) -> None:
    """Whatever the input, the report is typed and internally coherent."""
    assert isinstance(report, DissectReport)
    for finding in report.findings:
        assert isinstance(finding.kind, FindingKind)
        assert finding.where and finding.detail
    assert finding_is_not_internal_error(report)
    assert len(report.image_sha256) == 64
    assert report.findings_dropped >= 0


def finding_is_not_internal_error(report: DissectReport) -> bool:
    return all(f.kind != FindingKind.PARSER_ERROR for f in report.findings)


@pytest.mark.parametrize("seed", range(60))
def test_seeded_corruption_never_raises(seed):
    """dissect never raises and never degrades to PARSER_ERROR."""
    report = dissect_image(corrupt(base_image(), seed))
    assert_well_formed(report)


@pytest.mark.parametrize("seed", range(10))
def test_corruption_is_a_pure_function_of_the_seed(seed):
    image = base_image()
    assert corrupt(image, seed) == corrupt(image, seed)


@pytest.mark.parametrize("seed", range(10))
def test_same_corrupt_image_scans_identically(seed):
    mutant = corrupt(base_image(), seed)
    assert dissect_image(mutant).to_json() == dissect_image(mutant).to_json()


@pytest.mark.parametrize(
    "payload",
    [
        b"",
        b"\x00",
        b"RIOF",
        b"\x00" * 8192,
        b"\xff" * (8192 * 4),
        b"\xa5" * (8192 * 2 + 17),
        bytes(range(256)) * 64,
    ],
    ids=["empty", "one-byte", "magic-only", "one-zero-block", "ones", "odd-size", "ramp"],
)
def test_degenerate_inputs_never_raise(payload):
    assert_well_formed(dissect_image(payload))


def test_superblock_targeted_fuzz_never_raises():
    """Hammer the first block specifically — the richest parse surface."""
    image = bytearray(base_image())
    rng = random.Random(0x510)
    for _ in range(200):
        mutant = bytearray(image)
        for _ in range(rng.randrange(1, 16)):
            mutant[rng.randrange(8192)] = rng.randrange(256)
        assert_well_formed(dissect_image(bytes(mutant)))


def test_bitmap_and_inode_targeted_fuzz_never_raises():
    """Hammer the metadata regions the walk trusts most."""
    from tests.test_dissect import read_sb

    image = bytearray(base_image())
    sb = read_sb(image)
    rng = random.Random(0xB17)
    lo = sb.bitmap_start * 8192
    hi = (sb.inode_start + sb.inode_blocks) * 8192
    for _ in range(200):
        mutant = bytearray(image)
        for _ in range(rng.randrange(1, 24)):
            mutant[rng.randrange(lo, hi)] = rng.randrange(256)
        assert_well_formed(dissect_image(bytes(mutant)))
