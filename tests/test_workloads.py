"""Tests for the workloads: memTest, Andrew, cp+rm, Sdet."""

import pytest

from repro.system import SystemSpec, build_system
from repro.util import pattern_bytes
from repro.workloads import (
    AndrewBenchmark,
    AndrewParams,
    CpRmParams,
    CpRmWorkload,
    MemTest,
    MemTestModel,
    MemTestParams,
    SdetParams,
    SdetWorkload,
    verify_against_model,
)


@pytest.fixture
def system():
    return build_system(SystemSpec(policy="ufs_delayed", fs_blocks=1024))


class TestMemTestModel:
    def test_deterministic_generation(self):
        a = MemTestModel(99)
        b = MemTestModel(99)
        ops_a = [a.next_op() for _ in range(200)]
        ops_b = [b.next_op() for _ in range(200)]
        assert ops_a == ops_b

    def test_different_seeds_differ(self):
        a = [MemTestModel(1).next_op() for _ in range(10)]
        b = [MemTestModel(2).next_op() for _ in range(10)]
        assert a != b

    def test_replay_reaches_same_state(self):
        model = MemTestModel(5)
        for _ in range(150):
            model.next_op()
        replayed, in_flight = MemTestModel.replay(5, 150)
        assert replayed.files.keys() == model.files.keys()
        assert replayed.dirs == model.dirs
        assert in_flight.index == 150

    def test_expected_content_assembles_extents(self):
        model = MemTestModel(7)
        for _ in range(300):
            model.next_op()
        some_file = next(iter(model.files.values()))
        content = some_file.content()
        assert len(content) == some_file.size
        for offset, length in some_file.extents[-1:]:
            assert content[offset : offset + length] == pattern_bytes(
                some_file.file_key, offset, length
            )

    def test_op_mix_includes_all_kinds(self):
        model = MemTestModel(11)
        kinds = {model.next_op().kind for _ in range(1200)}
        assert kinds >= {"create", "delete", "write", "read", "mkdir", "rename"}

    def test_rmdir_reachable_with_churny_mix(self):
        """rmdir requires an empty directory; a delete-heavy mix gets there."""
        params = MemTestParams(weights=(2, 30, 1, 1, 20, 30, 0), max_dirs=6)
        model = MemTestModel(13, params)
        kinds = {model.next_op().kind for _ in range(800)}
        assert "rmdir" in kinds

    def test_rename_moves_expected_state(self):
        model = MemTestModel(17)
        for _ in range(400):
            op = model.next_op()
            if op.kind == "rename":
                assert op.path2 in model.files
                assert op.path not in model.files
                break
        else:
            raise AssertionError("no rename generated in 400 ops")


class TestMemTestExecution:
    def test_runs_against_real_fs(self, system):
        memtest = MemTest(system.vfs, 21)
        memtest.setup()
        for _ in range(250):
            memtest.step()
        assert memtest.progress == 250
        assert not memtest.read_mismatches  # online checks all passed

    def test_verify_clean_state(self, system):
        memtest = MemTest(system.vfs, 22)
        memtest.setup()
        for _ in range(200):
            memtest.step()
        model, in_flight = MemTestModel.replay(22, memtest.progress)
        problems = verify_against_model(system.fs, model, in_flight)
        assert problems == []

    def test_verify_detects_content_corruption(self, system):
        memtest = MemTest(system.vfs, 23)
        memtest.setup()
        for _ in range(200):
            memtest.step()
        # Corrupt one file behind memTest's back.
        path = sorted(memtest.model.files)[0]
        expected = memtest.model.files[path]
        if expected.size == 0:
            system.fs.write(system.fs.namei(path), 0, b"!")
        else:
            want = expected.content()
            system.fs.write(system.fs.namei(path), 0, bytes([want[0] ^ 0xFF]))
        model, _ = MemTestModel.replay(23, memtest.progress)
        problems = verify_against_model(system.fs, model, None)
        assert any(p.path == path for p in problems)

    def test_verify_detects_missing_file(self, system):
        memtest = MemTest(system.vfs, 24)
        memtest.setup()
        for _ in range(200):
            memtest.step()
        path = sorted(memtest.model.files)[-1]
        system.vfs.unlink(path)
        model, _ = MemTestModel.replay(24, memtest.progress)
        problems = verify_against_model(system.fs, model, None)
        assert any(p.path == path and p.problem == "missing" for p in problems)

    def test_verify_detects_extra_file(self, system):
        memtest = MemTest(system.vfs, 25)
        memtest.setup()
        for _ in range(100):
            memtest.step()
        fd = system.vfs.open("/memtest/impostor", create=True)
        system.vfs.close(fd)
        model, _ = MemTestModel.replay(25, memtest.progress)
        problems = verify_against_model(system.fs, model, None)
        assert any(p.problem == "extra" for p in problems)

    def test_in_flight_op_exempted(self, system):
        memtest = MemTest(system.vfs, 26)
        memtest.setup()
        for _ in range(150):
            memtest.step()
        model, in_flight = MemTestModel.replay(26, memtest.progress)
        # Manually perturb the in-flight op's path: must NOT be flagged.
        if in_flight.kind in ("write", "delete") and system.fs.exists(in_flight.path):
            system.fs.write(system.fs.namei(in_flight.path), 0, b"partial!")
        problems = verify_against_model(system.fs, model, in_flight)
        assert not any(p.path == in_flight.path for p in problems)

    def test_fsync_every_write_mode(self, system):
        memtest = MemTest(
            system.vfs, 27, MemTestParams(fsync_every_write=True)
        )
        memtest.setup()
        writes_before = system.disk.stats.writes
        for _ in range(60):
            memtest.step()
        assert system.disk.stats.writes > writes_before


class TestAndrew:
    def test_full_run(self, system):
        bench = AndrewBenchmark(system.vfs, system.kernel, AndrewParams(dirs=2, files_per_dir=3))
        seconds = bench.run()
        assert seconds > 0
        assert set(bench.phase_times) == {"mkdir", "create", "copy", "stat", "read", "compile"}
        # The object files exist and match the object ratio.
        objs = system.vfs.readdir("/andrew/obj")
        assert len(objs) == 6

    def test_compile_phase_dominated_by_cpu(self, system):
        params = AndrewParams(dirs=2, files_per_dir=3, compile_ms_per_file=200)
        bench = AndrewBenchmark(system.vfs, system.kernel, params)
        bench.run()
        assert bench.phase_times["compile"] >= 6 * 0.2

    def test_ops_stream_is_usable(self, system):
        bench = AndrewBenchmark(system.vfs, system.kernel, AndrewParams(dirs=1, files_per_dir=2))
        stream = bench.ops()
        for _ in range(10):
            next(stream)()


class TestCpRm:
    def test_copy_then_remove(self, system):
        params = CpRmParams(dirs=2, files_per_dir=3, mean_file_bytes=4096)
        bench = CpRmWorkload(system.vfs, system.kernel, params)
        bench.setup()
        result = bench.run()
        assert result.cp_seconds >= 0
        assert result.total_seconds == result.cp_seconds + result.rm_seconds
        assert not system.vfs.exists("/dst")
        assert system.vfs.exists("/src/dir000/file000")

    def test_setup_charges_no_cpu_time(self, system):
        """Setup disables CPU charging; only the handful of cold metadata
        disk reads advance the clock (timed runs measure deltas anyway)."""
        params = CpRmParams(dirs=2, files_per_dir=2)
        bench = CpRmWorkload(system.vfs, system.kernel, params)
        t0 = system.clock.now_ns
        bench.setup()
        assert system.clock.now_ns - t0 < int(0.5e9)
        assert system.kernel.config.charge_time  # restored afterwards

    def test_result_format(self):
        from repro.workloads.cp_rm import CpRmResult

        assert str(CpRmResult(76.0, 5.0)) == "81.0 (76.0+5.0)"


class TestSdet:
    def test_scripts_run_to_completion(self, system):
        bench = SdetWorkload(
            system.vfs, system.kernel, SdetParams(scripts=3, files_per_script=3)
        )
        seconds = bench.run()
        assert seconds > 0
        assert not system.vfs.exists("/sdet")  # cleaned up after itself

    def test_more_scripts_take_longer(self, system):
        light = SdetWorkload(
            build_system(SystemSpec(policy="ufs", fs_blocks=1024)).vfs,
            system.kernel,
            SdetParams(scripts=1, files_per_script=3),
        )
        # Build two separate systems so timings are independent.
        s1 = build_system(SystemSpec(policy="ufs", fs_blocks=1024))
        s2 = build_system(SystemSpec(policy="ufs", fs_blocks=1024))
        t1 = SdetWorkload(s1.vfs, s1.kernel, SdetParams(scripts=1, files_per_script=4)).run()
        t2 = SdetWorkload(s2.vfs, s2.kernel, SdetParams(scripts=4, files_per_script=4)).run()
        assert t2 > t1
