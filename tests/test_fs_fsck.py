"""Tests for fsck: detection and repair of on-disk damage."""

import pytest

from repro.fs.fsck import fsck
from repro.fs.ondisk import DIRENT_SIZE, DirEntry, INODE_SIZE, Inode
from repro.fs.types import BLOCK_SIZE, FileType, ROOT_INO, SECTORS_PER_BLOCK
from repro.system import SystemSpec, build_system


@pytest.fixture
def system():
    s = build_system(SystemSpec(policy="ufs_delayed", fs_blocks=512))
    return s


def settle(system):
    """Flush everything to disk so fsck sees a complete image."""
    system.fs.flush_data(sync=True)
    system.fs.flush_metadata(sync=True)
    system.drain_disks()


def inode_disk_location(system, ino):
    sb = system.fs.sb
    block = sb.inode_start + ino // (BLOCK_SIZE // INODE_SIZE)
    offset = (ino % (BLOCK_SIZE // INODE_SIZE)) * INODE_SIZE
    return block, offset


def read_disk_inode(system, ino):
    block, offset = inode_disk_location(system, ino)
    raw = system.disk.peek(block * SECTORS_PER_BLOCK, SECTORS_PER_BLOCK)
    return Inode.from_bytes(ino, raw[offset : offset + INODE_SIZE], strict=False)


def write_disk_bytes(system, block, offset, data):
    raw = bytearray(system.disk.peek(block * SECTORS_PER_BLOCK, SECTORS_PER_BLOCK))
    raw[offset : offset + len(data)] = data
    system.disk.poke(block * SECTORS_PER_BLOCK, bytes(raw))


class TestCleanFilesystem:
    def test_no_fixes_on_clean_fs(self, system):
        system.fs.create("/a")
        system.fs.mkdir("/d")
        system.fs.write(system.fs.namei("/a"), 0, b"content")
        settle(system)
        report = fsck(system.disk)
        assert report.fix_count == 0
        assert not report.unrecoverable

    def test_idempotent(self, system):
        system.fs.create("/a")
        settle(system)
        fsck(system.disk)
        report = fsck(system.disk)
        assert report.fix_count == 0


class TestSuperblockRepair:
    def test_restores_from_backup(self, system):
        settle(system)
        system.disk.poke(0, b"\xff" * BLOCK_SIZE)  # destroy primary
        report = fsck(system.disk)
        assert any("backup" in fix for fix in report.fixes)
        assert not report.unrecoverable
        # And now the fs mounts again.
        system.crash("sb was trashed")
        system.reboot()
        assert system.fs.mounted

    def test_unrecoverable_when_both_copies_gone(self, system):
        settle(system)
        system.disk.poke(0, b"\xff" * BLOCK_SIZE)
        last = system.fs.sb.total_blocks - 1 if system.fs.sb else 511
        system.disk.poke(last * SECTORS_PER_BLOCK, b"\xff" * BLOCK_SIZE)
        report = fsck(system.disk)
        assert report.unrecoverable


class TestInodeRepair:
    def test_mangled_inode_cleared(self, system):
        ino = system.fs.create("/victim")
        settle(system)
        block, offset = inode_disk_location(system, ino)
        write_disk_bytes(system, block, offset, b"\xde\xad")  # smash the magic
        report = fsck(system.disk)
        assert any(f"inode {ino}" in fix and "cleared" in fix for fix in report.fixes)
        # The directory entry referencing it is also removed.
        system.crash("x")
        system.reboot()
        assert not system.fs.exists("/victim")

    def test_bad_block_pointer_cleared(self, system):
        ino = system.fs.create("/badptr")
        system.fs.write(ino, 0, b"data")
        settle(system)
        inode = read_disk_inode(system, ino)
        inode.direct[5] = system.fs.sb.total_blocks + 100  # out of range
        block, offset = inode_disk_location(system, ino)
        write_disk_bytes(system, block, offset, inode.to_bytes())
        report = fsck(system.disk)
        assert any("bad block pointer" in fix for fix in report.fixes)
        assert read_disk_inode(system, ino).direct[5] == 0

    def test_duplicate_block_claim_resolved(self, system):
        a = system.fs.create("/first")
        b = system.fs.create("/second")
        system.fs.write(a, 0, b"a data")
        system.fs.write(b, 0, b"b data")
        settle(system)
        inode_a = read_disk_inode(system, a)
        inode_b = read_disk_inode(system, b)
        inode_b.direct[0] = inode_a.direct[0]  # b now claims a's block
        block, offset = inode_disk_location(system, b)
        write_disk_bytes(system, block, offset, inode_b.to_bytes())
        report = fsck(system.disk)
        assert any("already claimed" in fix for fix in report.fixes)

    def test_impossible_size_reset(self, system):
        ino = system.fs.create("/huge")
        settle(system)
        inode = read_disk_inode(system, ino)
        inode.size = 1 << 60
        block, offset = inode_disk_location(system, ino)
        write_disk_bytes(system, block, offset, inode.to_bytes())
        report = fsck(system.disk)
        assert any("impossible size" in fix for fix in report.fixes)


class TestDirectoryRepair:
    def test_dangling_dirent_removed(self, system):
        system.fs.create("/real")
        settle(system)
        # Forge an entry in the root directory pointing at a free inode.
        root = read_disk_inode(system, ROOT_INO)
        root_block = root.direct[0]
        raw = bytearray(system.disk.peek(root_block * SECTORS_PER_BLOCK, SECTORS_PER_BLOCK))
        for off in range(0, BLOCK_SIZE, DIRENT_SIZE):
            if raw[off : off + 4] == b"\x00\x00\x00\x00":
                raw[off : off + DIRENT_SIZE] = DirEntry(400, "phantom").to_bytes()
                break
        system.disk.poke(root_block * SECTORS_PER_BLOCK, bytes(raw))
        report = fsck(system.disk)
        assert any("phantom" in fix for fix in report.fixes)
        system.crash("x")
        system.reboot()
        assert not system.fs.exists("/phantom")

    def test_orphan_reconnected_to_lost_found(self, system):
        ino = system.fs.create("/doomed")
        system.fs.write(ino, 0, b"orphan data")
        settle(system)
        # Remove the directory entry directly on disk, leaving the inode
        # allocated but unreachable.
        root = read_disk_inode(system, ROOT_INO)
        root_block = root.direct[0]
        raw = bytearray(system.disk.peek(root_block * SECTORS_PER_BLOCK, SECTORS_PER_BLOCK))
        for off in range(0, BLOCK_SIZE, DIRENT_SIZE):
            entry = DirEntry.from_bytes(bytes(raw[off : off + DIRENT_SIZE]))
            if entry is not None and entry.name == "doomed":
                raw[off : off + DIRENT_SIZE] = b"\x00" * DIRENT_SIZE
        system.disk.poke(root_block * SECTORS_PER_BLOCK, bytes(raw))
        report = fsck(system.disk)
        assert report.orphans_reconnected == 1
        system.crash("x")
        system.reboot()
        assert system.fs.exists(f"/lost+found/#{ino}")
        assert system.fs.read(system.fs.namei(f"/lost+found/#{ino}"), 0, 16) == b"orphan data"

    def test_link_count_repaired(self, system):
        ino = system.fs.create("/miscounted")
        settle(system)
        inode = read_disk_inode(system, ino)
        inode.nlink = 7
        block, offset = inode_disk_location(system, ino)
        write_disk_bytes(system, block, offset, inode.to_bytes())
        report = fsck(system.disk)
        assert any("link count" in fix for fix in report.fixes)
        assert read_disk_inode(system, ino).nlink == 1

    def test_bitmap_rebuilt_after_leak(self, system):
        """Blocks marked used but claimed by nobody are reclaimed."""
        ino = system.fs.create("/leaky")
        system.fs.write(ino, 0, b"x" * BLOCK_SIZE)
        settle(system)
        inode = read_disk_inode(system, ino)
        inode.direct[0] = 0  # drop the claim; the bitmap still says used
        inode.size = 0
        block, offset = inode_disk_location(system, ino)
        write_disk_bytes(system, block, offset, inode.to_bytes())
        report = fsck(system.disk)
        assert any("bitmap" in fix for fix in report.fixes)
