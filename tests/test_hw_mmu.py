"""Tests for the MMU: protection, KSEG semantics, the ABOX bit."""

import pytest

from repro.errors import MachineCheck, ProtectionTrap
from repro.hw.memory import PhysicalMemory
from repro.hw.mmu import KSEG_BASE, MMU

PAGE = 8192


@pytest.fixture
def mmu():
    return MMU(PhysicalMemory(8 * PAGE, PAGE))


class TestMappedTranslation:
    def test_identity_mapping(self, mmu):
        mmu.map(3, 5)
        assert mmu.translate(3 * PAGE + 17, write=False) == 5 * PAGE + 17

    def test_unmapped_raises_machine_check(self, mmu):
        with pytest.raises(MachineCheck):
            mmu.translate(7 * PAGE, write=False)

    def test_negative_address(self, mmu):
        with pytest.raises(MachineCheck):
            mmu.translate(-8, write=False)

    def test_write_protection_traps(self, mmu):
        mmu.map(2, 2, writable=False)
        assert mmu.translate(2 * PAGE, write=False) == 2 * PAGE  # reads fine
        with pytest.raises(ProtectionTrap):
            mmu.translate(2 * PAGE, write=True)
        assert mmu.stat_protection_traps == 1

    def test_set_writable_opens_window(self, mmu):
        mmu.map(2, 2, writable=False)
        mmu.set_writable(2, True)
        assert mmu.translate(2 * PAGE, write=True) == 2 * PAGE
        mmu.set_writable(2, False)
        with pytest.raises(ProtectionTrap):
            mmu.translate(2 * PAGE, write=True)

    def test_set_writable_on_unmapped_raises(self, mmu):
        with pytest.raises(MachineCheck):
            mmu.set_writable(9, True)

    def test_unmap(self, mmu):
        mmu.map(1, 1)
        mmu.unmap(1)
        with pytest.raises(MachineCheck):
            mmu.translate(1 * PAGE, write=False)

    def test_map_to_bad_frame(self, mmu):
        with pytest.raises(MachineCheck):
            mmu.map(0, 99)

    def test_pte_toggle_counter(self, mmu):
        mmu.map(0, 0, writable=True)
        mmu.set_writable(0, False)
        mmu.set_writable(0, False)  # no-op, same value
        mmu.set_writable(0, True)
        assert mmu.stat_pte_toggles == 2


class TestKseg:
    """KSEG: the physical window that bypasses the TLB (section 2.1)."""

    def test_kseg_maps_to_physical(self, mmu):
        assert mmu.translate(KSEG_BASE + 123, write=False) == 123

    def test_kseg_beyond_memory_is_illegal(self, mmu):
        with pytest.raises(MachineCheck):
            mmu.translate(KSEG_BASE + 8 * PAGE, write=False)

    def test_kseg_bypasses_protection_by_default(self, mmu):
        """Without the ABOX bit, KSEG stores ignore page protection —
        the vulnerability Rio's protection scheme must close."""
        mmu.set_kseg_writable(1, False)
        # kseg_through_tlb is False: the store goes through anyway.
        assert mmu.translate(KSEG_BASE + 1 * PAGE, write=True) == 1 * PAGE

    def test_abox_bit_forces_kseg_through_tlb(self, mmu):
        mmu.kseg_through_tlb = True
        mmu.set_kseg_writable(1, False)
        with pytest.raises(ProtectionTrap):
            mmu.translate(KSEG_BASE + 1 * PAGE, write=True)
        # Reads are still allowed.
        assert mmu.translate(KSEG_BASE + 1 * PAGE, write=False) == 1 * PAGE

    def test_kseg_window_reopens(self, mmu):
        mmu.kseg_through_tlb = True
        mmu.set_kseg_writable(2, False)
        mmu.set_kseg_writable(2, True)
        assert mmu.translate(KSEG_BASE + 2 * PAGE + 8, write=True) == 2 * PAGE + 8

    def test_kseg_address_helper(self, mmu):
        assert mmu.kseg_address(500) == KSEG_BASE + 500
        with pytest.raises(MachineCheck):
            mmu.kseg_address(8 * PAGE)

    def test_random_wild_address_is_illegal(self, mmu):
        """On a 64-bit machine most wild pointers hit unmapped space; the
        paper credits this for memory's crash safety."""
        for addr in (0xDEAD_BEEF_0000, 1 << 55, KSEG_BASE - PAGE, 0x4242_4242):
            with pytest.raises(MachineCheck):
                mmu.translate(addr, write=True)


class TestTranslateRange:
    def test_contiguous_run(self, mmu):
        mmu.map(0, 4)
        runs = mmu.translate_range(0, 100, write=False)
        assert runs == [(4 * PAGE, 100)]

    def test_cross_page_noncontiguous(self, mmu):
        mmu.map(0, 4)
        mmu.map(1, 2)
        runs = mmu.translate_range(PAGE - 10, 20, write=False)
        assert runs == [(4 * PAGE + PAGE - 10, 10), (2 * PAGE, 10)]

    def test_write_protection_checked_per_page(self, mmu):
        mmu.map(0, 0, writable=True)
        mmu.map(1, 1, writable=False)
        with pytest.raises(ProtectionTrap):
            mmu.translate_range(PAGE - 4, 8, write=True)
