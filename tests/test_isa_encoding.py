"""Tests for instruction encoding/decoding and the assembler."""

import pytest
from hypothesis import given, strategies as st

from repro.isa import AssemblyError, Instruction, Op, assemble, decode, encode
from repro.isa.encoding import REG_NUMBERS, sext16, to_signed64


class TestEncoding:
    def test_roundtrip_memory_format(self):
        inst = Instruction(opcode=Op.LDQ, ra=5, rb=30, imm=0xFFF8)  # -8
        assert decode(encode(inst)) == inst

    def test_roundtrip_operate_format(self):
        inst = Instruction(opcode=Op.ADDQ, ra=1, rb=2, rc=3)
        assert decode(encode(inst)) == inst

    def test_illegal_opcode_preserved(self):
        word = 0x3D << 26  # 0x3D is not a defined opcode
        inst = decode(word)
        assert inst.op is None
        assert inst.opcode == 0x3D

    def test_operate_ignores_function_bits(self):
        """Bits 15..5 of operate format are don't-care, as a bit flip there
        should not change semantics."""
        word = encode(Instruction(opcode=Op.XOR, ra=1, rb=2, rc=3))
        flipped = word | (1 << 9)
        assert decode(flipped) == decode(word)

    def test_writes_register(self):
        assert Instruction(opcode=Op.ADDQ, ra=1, rb=2, rc=3).writes_register() == 3
        assert Instruction(opcode=Op.LDQ, ra=4, rb=5).writes_register() == 4
        assert Instruction(opcode=Op.STQ, ra=4, rb=5).writes_register() is None
        assert Instruction(opcode=Op.ADDQ, ra=1, rb=2, rc=31).writes_register() is None

    def test_predicates(self):
        assert Instruction(opcode=Op.STQ, ra=0, rb=0).is_store
        assert Instruction(opcode=Op.LDB, ra=0, rb=0).is_load
        assert Instruction(opcode=Op.BEQ, ra=0, rb=31).is_branch
        assert not Instruction(opcode=Op.ADDQ, ra=0, rb=0).is_branch

    def test_sext16(self):
        assert sext16(0x7FFF) == 32767
        assert sext16(0x8000) == -32768
        assert sext16(0xFFFF) == -1

    def test_to_signed64(self):
        assert to_signed64((1 << 64) - 1) == -1
        assert to_signed64(5) == 5

    @given(st.integers(0, (1 << 32) - 1))
    def test_decode_never_raises(self, word):
        decode(word)  # must not raise for any 32-bit pattern

    def test_str_smoke(self):
        assert "ldq" in str(Instruction(opcode=Op.LDQ, ra=2, rb=30, imm=8))
        assert "panic" in str(Instruction(opcode=Op.PANIC, ra=31, rb=31, imm=3))


class TestAssembler:
    def test_simple_program(self):
        words, labels = assemble(
            """
            start:
                lda t0, 5(zero)
                addq t0, t0, v0
                ret
            """
        )
        assert len(words) == 3
        assert labels == {"start": 0}
        assert decode(words[0]).op is Op.LDA
        assert decode(words[1]).op is Op.ADDQ
        assert decode(words[2]).op is Op.RET

    def test_branch_displacement(self):
        words, labels = assemble(
            """
            loop:
                lda t0, -1(t0)
                bne t0, loop
                ret
            """
        )
        branch = decode(words[1])
        assert branch.op is Op.BNE
        assert sext16(branch.imm) == -2  # back to loop from pc+1

    def test_forward_branch(self):
        words, _ = assemble(
            """
                beq a0, done
                lda v0, 1(zero)
            done:
                ret
            """
        )
        assert sext16(decode(words[0]).imm) == 1

    def test_br_without_link(self):
        words, _ = assemble("target: br target")
        inst = decode(words[0])
        assert inst.op is Op.BR
        assert inst.ra == REG_NUMBERS["zero"]

    def test_panic(self):
        words, _ = assemble("panic #42")
        inst = decode(words[0])
        assert inst.op is Op.PANIC
        assert inst.imm == 42

    def test_jsr_and_ret_reg(self):
        words, _ = assemble(
            """
            jsr ra, (pv)
            ret (t0)
            """
        )
        assert decode(words[0]).op is Op.JSR
        assert decode(words[1]).rb == REG_NUMBERS["t0"]

    def test_hex_and_negative_displacements(self):
        words, _ = assemble("ldq t0, 0x10(sp)\nstq t0, -8(sp)")
        assert sext16(decode(words[0]).imm) == 16
        assert sext16(decode(words[1]).imm) == -8

    def test_comments_and_blank_lines(self):
        words, _ = assemble("; a comment\n\n  ret  ; trailing\n")
        assert len(words) == 1

    def test_unknown_mnemonic(self):
        with pytest.raises(AssemblyError):
            assemble("frobnicate t0, t1")

    def test_unknown_register(self):
        with pytest.raises(AssemblyError):
            assemble("lda t99, 0(zero)")

    def test_undefined_label(self):
        with pytest.raises(AssemblyError):
            assemble("beq t0, nowhere")

    def test_duplicate_label(self):
        with pytest.raises(AssemblyError):
            assemble("a:\n ret\na:\n ret")

    def test_displacement_range_checked(self):
        with pytest.raises(AssemblyError):
            assemble("lda t0, 40000(zero)")

    def test_bad_memory_operand(self):
        with pytest.raises(AssemblyError):
            assemble("ldq t0, t1")
