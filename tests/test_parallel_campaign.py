"""Serial ≡ parallel: the campaign engine's defining property.

A 3-system × 3-fault mini-campaign is run once serially (the oracle)
and then through the engine at ``jobs=1``, ``jobs=4``, and with a forced
mid-campaign interruption and resume.  Every variant must produce a
``Table1`` whose canonical digest — every cell's crashes, corruptions,
trap saves, discards, and per-trial results, in serial order — equals
the oracle's.

The trial configs are shrunk (small memTest, tight post-injection
budget) so the whole module stays in tier-1 time; equivalence does not
depend on trial size.
"""

import os

import pytest

from repro.faults import FaultType
from repro.reliability import (
    CampaignEngine,
    run_table1_campaign,
    run_table1_campaign_parallel,
    table1_digest,
)
from repro.workloads.memtest import MemTestParams

MINI_CAMPAIGN = dict(
    crashes_per_cell=1,
    systems=("disk", "rio_noprot", "rio_prot"),
    fault_types=(FaultType.KERNEL_TEXT, FaultType.KERNEL_STACK, FaultType.POINTER),
    base_seed=4200,
    max_attempts_factor=3,
    config_overrides=dict(
        max_ops_after_injection=80,
        sim_budget_s=30.0,
        andrew_copies=1,
        inject_after_ops=(5, 15),
        memtest=MemTestParams(
            max_files=8, max_dirs=2, max_file_bytes=16 * 1024, max_io_bytes=4 * 1024
        ),
    ),
)

#: One cheap single-cell campaign for the worker-death tests.
ONE_CELL = dict(
    crashes_per_cell=1,
    systems=("rio_prot",),
    fault_types=(FaultType.KERNEL_TEXT,),
    base_seed=4200,
    max_attempts_factor=3,
    config_overrides=MINI_CAMPAIGN["config_overrides"],
)


@pytest.fixture(scope="module")
def serial_oracle():
    table = run_table1_campaign(**MINI_CAMPAIGN)
    return table, table1_digest(table)


class TestEquivalence:
    def test_jobs_1_matches_serial(self, serial_oracle):
        _, want = serial_oracle
        table = run_table1_campaign_parallel(**MINI_CAMPAIGN, jobs=1)
        assert table1_digest(table) == want

    def test_jobs_4_matches_serial(self, serial_oracle):
        _, want = serial_oracle
        engine = CampaignEngine(**MINI_CAMPAIGN, jobs=4)
        table = engine.run()
        assert table1_digest(table) == want
        assert engine.complete
        # Speculation may run extra trials but never changes the table:
        # at least one executed trial per counted crash, possibly more.
        assert engine.stats.executed >= table.total_crashes("disk") + table.total_crashes(
            "rio_noprot"
        ) + table.total_crashes("rio_prot")

    def test_cell_counters_match_serial_cell_by_cell(self, serial_oracle):
        oracle, _ = serial_oracle
        table = run_table1_campaign_parallel(**MINI_CAMPAIGN, jobs=4)
        for key, cell in oracle.cells.items():
            other = table.cells[key]
            assert (
                cell.crashes,
                cell.corruptions,
                cell.discarded,
                cell.protection_trap_saves,
                cell.crash_kinds,
            ) == (
                other.crashes,
                other.corruptions,
                other.discarded,
                other.protection_trap_saves,
                other.crash_kinds,
            ), key

    def test_interrupt_and_resume_matches_serial(self, serial_oracle, tmp_path):
        _, want = serial_oracle
        journal = str(tmp_path / "checkpoint.jsonl")

        first = CampaignEngine(**MINI_CAMPAIGN, jobs=1, checkpoint=journal, max_trials=4)
        first.run()
        assert not first.complete, "interruption budget was not reached"
        assert first.stats.executed == 4

        resumed = CampaignEngine(**MINI_CAMPAIGN, jobs=4, checkpoint=journal)
        table = resumed.run()
        assert resumed.complete
        assert table1_digest(table) == want
        assert resumed.stats.from_checkpoint == 4, "journaled trials must not re-run"

        resumed_again = CampaignEngine(**MINI_CAMPAIGN, jobs=1, checkpoint=journal)
        table3 = resumed_again.run()
        assert table1_digest(table3) == want
        assert resumed_again.stats.executed == 0, "a finished campaign must resume for free"


class TestWorkerDeath:
    @pytest.fixture()
    def oracle_one_cell(self):
        table = run_table1_campaign(**ONE_CELL)
        return table1_digest(table)

    def test_killed_worker_retries_and_output_is_unchanged(
        self, oracle_one_cell, tmp_path, monkeypatch
    ):
        fault = FaultType.KERNEL_TEXT.value
        monkeypatch.setenv(
            "RIO_ENGINE_TEST_KILL", f"rio_prot|{fault}|0|1|{tmp_path / 'kills'}"
        )
        engine = CampaignEngine(**ONE_CELL, jobs=2)
        table = engine.run()
        assert engine.stats.worker_crashes == 1
        assert engine.stats.quarantined == []
        assert table1_digest(table) == oracle_one_cell

    def test_repeat_killer_is_quarantined(self, tmp_path, monkeypatch):
        fault = FaultType.KERNEL_TEXT.value
        monkeypatch.setenv(
            "RIO_ENGINE_TEST_KILL", f"rio_prot|{fault}|0|2|{tmp_path / 'kills'}"
        )
        engine = CampaignEngine(**ONE_CELL, jobs=2)
        table = engine.run()
        assert engine.complete, "quarantine must let the campaign finish"
        assert engine.stats.worker_crashes == 2
        assert engine.stats.quarantined == [("rio_prot", fault, 0)]
        cell = table.cell("rio_prot", FaultType.KERNEL_TEXT)
        quarantined = [r for r in cell.results if r.crash_kind == "worker_crashed"]
        assert len(quarantined) == 1
        assert quarantined[0].discarded and not quarantined[0].crashed
        # The campaign still collected its counted crash from a later attempt.
        assert cell.crashes == 1


class TestEngineSurface:
    def test_progress_lines_emitted(self):
        lines = []
        run_table1_campaign_parallel(
            **ONE_CELL, jobs=1, progress=lines.append, progress_interval_s=0.0
        )
        assert any("crashes counted" in line for line in lines)
        assert any("rio_prot/kernel text:" in line for line in lines)

    def test_max_trials_zero_runs_nothing(self):
        engine = CampaignEngine(**ONE_CELL, jobs=1, max_trials=0)
        table = engine.run()
        assert engine.stats.executed == 0
        assert not engine.complete
        assert table.total_crashes("rio_prot") == 0

    def test_worker_env_flag_absent_is_inert(self, monkeypatch):
        monkeypatch.delenv("RIO_ENGINE_TEST_KILL", raising=False)
        engine = CampaignEngine(**ONE_CELL, jobs=2)
        engine.run()
        assert engine.stats.worker_crashes == 0
