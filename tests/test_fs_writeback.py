"""Tests for the write-back policies: when data reaches the disk."""

import pytest

from repro.fs.types import BLOCK_SIZE
from repro.fs.writeback import WRITE_POLICIES, make_policy
from repro.system import SystemSpec, build_system


def make(policy: str, **kw):
    return build_system(SystemSpec(policy=policy, fs_blocks=512, **kw))


def durable(policy: str, actions) -> bool:
    """Run ``actions`` against a fresh system, crash it, reboot, and
    report whether '/probe' survived with the expected content."""
    system = make(policy)
    actions(system)
    system.crash("policy probe")
    system.reboot()
    if not system.fs.exists("/probe"):
        return False
    return system.fs.read(system.fs.namei("/probe"), 0, 64) == b"probe data"


def write_probe(system):
    fd = system.vfs.open("/probe", create=True)
    system.vfs.write(fd, b"probe data")
    system.vfs.close(fd)


class TestPolicyRegistry:
    def test_all_policies_registered(self):
        assert set(WRITE_POLICIES) == {
            "rio",
            "ufs",
            "ufs_delayed",
            "wt_close",
            "wt_write",
            "advfs",
        }

    def test_make_policy_unknown(self):
        with pytest.raises(KeyError):
            make_policy("zfs")

    def test_instances_are_fresh(self):
        assert make_policy("ufs") is not make_policy("ufs")


class TestDurabilitySemantics:
    def test_wt_write_survives_without_fsync(self):
        assert durable("wt_write", write_probe)

    def test_wt_close_survives_after_close(self):
        assert durable("wt_close", write_probe)

    def test_ufs_loses_unflushed_data(self):
        """Default UFS: a small write not yet at the 64 KB threshold is
        asynchronous-pending and dies with the crash (the paper: "many
        runs would lose asynchronously written data" without fsync)."""

        def actions(system):
            fd = system.vfs.open("/probe", create=True)
            system.vfs.write(fd, b"probe data")
            system.vfs.close(fd)

        assert not durable("ufs", actions)

    def test_ufs_64kb_threshold_triggers_flush(self):
        system = make("ufs")
        fd = system.vfs.open("/big", create=True)
        system.vfs.write(fd, b"x" * (70 * 1024))
        before_drain = system.disk.stats.async_writes
        assert before_drain > 0  # crossing 64 KB queued data writes

    def test_ufs_nonsequential_write_triggers_flush(self):
        system = make("ufs")
        fd = system.vfs.open("/rand", create=True)
        system.vfs.pwrite(fd, b"a", 0)
        async_before = system.disk.stats.async_writes
        system.vfs.pwrite(fd, b"b", 5 * BLOCK_SIZE)  # non-sequential
        assert system.disk.stats.async_writes > async_before

    def test_delayed_loses_everything_recent(self):
        assert not durable("ufs_delayed", write_probe)

    def test_delayed_keeps_data_after_daemon(self):
        def actions(system):
            write_probe(system)
            system.clock.consume(31 * 10**9)
            system.kernel.maybe_run_update()
            system.drain_disks()

        assert durable("ufs_delayed", actions)

    def test_rio_without_warm_reboot_loses_data(self):
        """The Rio *policy* alone (reliability writes off) is unsafe
        without the warm reboot — this is what distinguishes Rio from
        simply disabling writes."""
        assert not durable("rio", write_probe)

    def test_rio_policy_fsync_is_noop(self):
        system = make("rio")
        fd = system.vfs.open("/probe", create=True)
        system.vfs.write(fd, b"probe data")
        system.vfs.fsync(fd)
        assert system.disk.stats.writes == 0

    def test_ufs_fsync_is_durable(self):
        def actions(system):
            fd = system.vfs.open("/probe", create=True)
            system.vfs.write(fd, b"probe data")
            system.vfs.fsync(fd)
            system.vfs.close(fd)

        assert durable("ufs", actions)


class TestSyncWriteCounts:
    def test_wt_write_issues_more_sync_writes_than_wt_close(self):
        def count_sync(policy):
            system = make(policy)
            fd = system.vfs.open("/f", create=True)
            for _ in range(8):
                system.vfs.write(fd, b"c" * 512)
            system.vfs.close(fd)
            return system.disk.stats.sync_writes

        assert count_sync("wt_write") > count_sync("wt_close")

    def test_rio_never_writes(self):
        system = make("rio", rio=None)
        fd = system.vfs.open("/f", create=True)
        system.vfs.write(fd, b"data" * 1000)
        system.vfs.fsync(fd)
        system.vfs.close(fd)
        system.vfs.sync()
        assert system.disk.stats.writes == 0

    def test_ufs_metadata_synchronous(self):
        system = make("ufs")
        before = system.disk.stats.sync_writes
        system.vfs.mkdir("/newdir")  # directory + inode updates
        assert system.disk.stats.sync_writes > before
