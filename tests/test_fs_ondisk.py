"""Tests for on-disk structure serialization."""

import pytest
from hypothesis import given, strategies as st

from repro.fs.ondisk import (
    CorruptStructure,
    DIRENT_SIZE,
    DirEntry,
    INODE_SIZE,
    Inode,
    Superblock,
    pack_dirents,
    parse_dirents,
)
from repro.fs.types import BLOCK_SIZE, FileType, N_DIRECT


def sample_superblock(**overrides):
    fields = dict(
        total_blocks=1024,
        bitmap_start=1,
        bitmap_blocks=1,
        inode_start=2,
        inode_blocks=8,
        data_start=10,
    )
    fields.update(overrides)
    return Superblock(**fields)


class TestSuperblock:
    def test_roundtrip(self):
        sb = sample_superblock(journal_start=10, journal_blocks=4, clean=False, mount_count=3)
        parsed = Superblock.from_bytes(sb.to_bytes())
        assert parsed == sb

    def test_block_sized(self):
        assert len(sample_superblock().to_bytes()) == BLOCK_SIZE

    def test_bad_magic_raises(self):
        data = bytearray(sample_superblock().to_bytes())
        data[0] ^= 0xFF
        with pytest.raises(CorruptStructure):
            Superblock.from_bytes(bytes(data))

    def test_bad_geometry_raises(self):
        data = bytearray(sample_superblock().to_bytes())
        # Zero out data_start (field 7, offset 24).
        data[24:28] = b"\x00\x00\x00\x00"
        with pytest.raises(CorruptStructure):
            Superblock.from_bytes(bytes(data))

    def test_num_inodes(self):
        assert sample_superblock().num_inodes == 8 * (BLOCK_SIZE // INODE_SIZE)


class TestInode:
    def test_roundtrip(self):
        inode = Inode(
            ino=7,
            ftype=FileType.REGULAR,
            nlink=2,
            size=123456,
            mtime_ns=999,
            direct=[3, 0, 5] + [0] * (N_DIRECT - 3),
            indirect=77,
            generation=4,
        )
        parsed = Inode.from_bytes(7, inode.to_bytes())
        assert parsed == inode

    def test_fixed_size(self):
        assert len(Inode(ino=1).to_bytes()) == INODE_SIZE

    def test_bad_magic_strict_raises(self):
        data = bytearray(Inode(ino=1, ftype=FileType.REGULAR).to_bytes())
        data[0] ^= 0x55
        with pytest.raises(CorruptStructure):
            Inode.from_bytes(1, bytes(data), strict=True)

    def test_bad_magic_lenient_returns_free(self):
        data = bytearray(Inode(ino=1, ftype=FileType.REGULAR).to_bytes())
        data[0] ^= 0x55
        inode = Inode.from_bytes(1, bytes(data), strict=False)
        assert not inode.is_allocated

    def test_bad_type_strict_raises(self):
        data = bytearray(Inode(ino=1, ftype=FileType.REGULAR).to_bytes())
        data[2] = 0x7F
        with pytest.raises(CorruptStructure):
            Inode.from_bytes(1, bytes(data), strict=True)

    @given(st.integers(0, 2**63), st.integers(0, 65535))
    def test_size_nlink_roundtrip(self, size, nlink):
        inode = Inode(ino=1, ftype=FileType.REGULAR, nlink=nlink, size=size)
        parsed = Inode.from_bytes(1, inode.to_bytes())
        assert parsed.size == size and parsed.nlink == nlink


class TestDirEntry:
    def test_roundtrip(self):
        entry = DirEntry(42, "hello.txt")
        assert DirEntry.from_bytes(entry.to_bytes()) == entry

    def test_fixed_size(self):
        assert len(DirEntry(1, "x").to_bytes()) == DIRENT_SIZE

    def test_empty_slot_is_none(self):
        assert DirEntry.from_bytes(b"\x00" * DIRENT_SIZE) is None

    def test_name_too_long_rejected(self):
        with pytest.raises(Exception):
            DirEntry(1, "x" * 28).to_bytes()

    def test_max_name_ok(self):
        entry = DirEntry(1, "y" * 27)
        assert DirEntry.from_bytes(entry.to_bytes()) == entry

    def test_garbled_name_length_is_none(self):
        data = bytearray(DirEntry(5, "ok").to_bytes())
        data[4] = 200  # impossible name length
        assert DirEntry.from_bytes(bytes(data)) is None

    def test_pack_and_parse(self):
        entries = [DirEntry(2, "."), DirEntry(2, ".."), DirEntry(9, "file")]
        data = pack_dirents(entries, 1)
        assert len(data) == BLOCK_SIZE
        assert parse_dirents(data) == entries

    def test_parse_skips_holes(self):
        data = DirEntry(1, "a").to_bytes() + b"\x00" * DIRENT_SIZE + DirEntry(2, "b").to_bytes()
        assert [e.name for e in parse_dirents(data)] == ["a", "b"]
