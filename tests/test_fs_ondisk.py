"""Tests for on-disk structure serialization (layout version 2).

Covers the satellite requirements of the verifier work: every
deserializer turns truncated/oversized/garbage input into
``CorruptStructure`` (or a None slot for directory records) — never a
bare ``struct.error`` — and every structure round-trips bit-exactly
under Hypothesis, version and checksum fields included.
"""

import struct

import pytest
from hypothesis import given, strategies as st

from repro.fs.ondisk import (
    CorruptStructure,
    DIRENT_SIZE,
    DirEntry,
    INODE_SIZE,
    Inode,
    ONDISK_VERSION,
    REGION_SUMMARY_OFFSET,
    RegionKind,
    SUPERBLOCK_CHECKSUM_OFFSET,
    SUPERBLOCK_HEADER_SIZE,
    Superblock,
    pack_dirents,
    parse_dirents,
)
from repro.fs.types import BLOCK_SIZE, FileType, N_DIRECT


def sample_superblock(**overrides):
    fields = dict(
        total_blocks=1024,
        bitmap_start=1,
        bitmap_blocks=1,
        inode_start=2,
        inode_blocks=8,
        data_start=10,
    )
    fields.update(overrides)
    return Superblock(**fields)


class TestSuperblock:
    def test_roundtrip(self):
        sb = sample_superblock(
            journal_start=10, journal_blocks=4, data_start=14, clean=False, mount_count=3
        )
        parsed = Superblock.from_bytes(sb.to_bytes())
        assert parsed == sb

    def test_block_sized(self):
        assert len(sample_superblock().to_bytes()) == BLOCK_SIZE

    def test_version_field_serialized(self):
        data = sample_superblock().to_bytes()
        version = struct.unpack_from("<H", data, 4)[0]
        assert version == ONDISK_VERSION == 2

    def test_bad_magic_raises(self):
        data = bytearray(sample_superblock().to_bytes())
        data[0] ^= 0xFF
        with pytest.raises(CorruptStructure):
            Superblock.from_bytes(bytes(data))

    def test_bad_version_raises(self):
        data = bytearray(sample_superblock().to_bytes())
        struct.pack_into("<H", data, 4, ONDISK_VERSION + 1)
        with pytest.raises(CorruptStructure, match="version"):
            Superblock.from_bytes(bytes(data))

    def test_checksum_detects_any_header_flip(self):
        data = bytearray(sample_superblock().to_bytes())
        # Flip a byte in the clean/mount area: magic and geometry still
        # parse, only the checksum can catch it.
        data[45] ^= 0x01
        with pytest.raises(CorruptStructure, match="checksum"):
            Superblock.from_bytes(bytes(data))

    def test_torn_header_detected(self):
        # A torn sector write scrambles the first half of the header the
        # way the disk model does (XOR 0xA5); magic dies with it.
        data = bytearray(sample_superblock().to_bytes())
        for i in range(256):
            data[i] ^= 0xA5
        with pytest.raises(CorruptStructure):
            Superblock.from_bytes(bytes(data))

    def test_bad_geometry_raises(self):
        sb = sample_superblock(data_start=0)
        with pytest.raises(CorruptStructure):
            Superblock.from_bytes(sb.to_bytes())

    def test_overlapping_regions_raise(self):
        sb = sample_superblock(inode_start=1)  # overlaps the bitmap
        with pytest.raises(CorruptStructure):
            Superblock.from_bytes(sb.to_bytes())

    def test_summary_mismatch_raises(self):
        # Rewrite one summary record and re-seal the checksum: only the
        # summary-vs-geometry cross-check can notice.
        from repro.util.checksum import fletcher32

        data = bytearray(sample_superblock().to_bytes())
        struct.pack_into("<I", data, REGION_SUMMARY_OFFSET + 4, 999)
        data[SUPERBLOCK_CHECKSUM_OFFSET : SUPERBLOCK_CHECKSUM_OFFSET + 4] = b"\x00" * 4
        struct.pack_into(
            "<I",
            data,
            SUPERBLOCK_CHECKSUM_OFFSET,
            fletcher32(bytes(data[:SUPERBLOCK_HEADER_SIZE])),
        )
        with pytest.raises(CorruptStructure, match="summary"):
            Superblock.from_bytes(bytes(data))

    def test_truncated_raises(self):
        data = sample_superblock().to_bytes()
        for cut in (0, 1, 63, SUPERBLOCK_HEADER_SIZE - 1):
            with pytest.raises(CorruptStructure):
                Superblock.from_bytes(data[:cut])

    def test_garbage_raises_not_struct_error(self):
        for filler in (b"\x00", b"\xff", b"\xa5"):
            with pytest.raises(CorruptStructure):
                Superblock.from_bytes(filler * BLOCK_SIZE)

    def test_region_summaries_cover_layout(self):
        sb = sample_superblock(journal_start=10, journal_blocks=4, data_start=14)
        kinds = [kind for kind, _, _ in sb.region_summaries()]
        assert kinds == [
            RegionKind.SUPER,
            RegionKind.BITMAP,
            RegionKind.INODE,
            RegionKind.JOURNAL,
            RegionKind.DATA,
            RegionKind.BACKUP,
        ]

    def test_num_inodes(self):
        assert sample_superblock().num_inodes == 8 * (BLOCK_SIZE // INODE_SIZE)

    @given(
        inode_blocks=st.integers(1, 32),
        journal_blocks=st.integers(0, 16),
        clean=st.booleans(),
        mount_count=st.integers(0, 255),
    )
    def test_property_roundtrip_byte_identical(
        self, inode_blocks, journal_blocks, clean, mount_count
    ):
        inode_start = 2
        journal_start = inode_start + inode_blocks if journal_blocks else 0
        data_start = inode_start + inode_blocks + journal_blocks
        sb = Superblock(
            total_blocks=data_start + 64,
            bitmap_start=1,
            bitmap_blocks=1,
            inode_start=inode_start,
            inode_blocks=inode_blocks,
            data_start=data_start,
            journal_start=journal_start,
            journal_blocks=journal_blocks,
            clean=clean,
            mount_count=mount_count,
        )
        packed = sb.to_bytes()
        parsed = Superblock.from_bytes(packed)
        assert parsed == sb
        assert parsed.to_bytes() == packed  # pack -> unpack -> pack


class TestInode:
    def test_roundtrip(self):
        inode = Inode(
            ino=7,
            ftype=FileType.REGULAR,
            nlink=2,
            size=123456,
            mtime_ns=999,
            direct=[3, 0, 5] + [0] * (N_DIRECT - 3),
            indirect=77,
            generation=4,
        )
        parsed = Inode.from_bytes(7, inode.to_bytes())
        assert parsed == inode

    def test_fixed_size(self):
        assert len(Inode(ino=1).to_bytes()) == INODE_SIZE

    def test_bad_magic_strict_raises(self):
        data = bytearray(Inode(ino=1, ftype=FileType.REGULAR).to_bytes())
        data[0] ^= 0x55
        with pytest.raises(CorruptStructure):
            Inode.from_bytes(1, bytes(data), strict=True)

    def test_bad_magic_lenient_returns_free(self):
        data = bytearray(Inode(ino=1, ftype=FileType.REGULAR).to_bytes())
        data[0] ^= 0x55
        inode = Inode.from_bytes(1, bytes(data), strict=False)
        assert not inode.is_allocated

    def test_bad_type_strict_raises(self):
        data = bytearray(Inode(ino=1, ftype=FileType.REGULAR).to_bytes())
        data[2] = 0x7F
        with pytest.raises(CorruptStructure):
            Inode.from_bytes(1, bytes(data), strict=True)

    def test_truncated_raises(self):
        data = Inode(ino=1, ftype=FileType.REGULAR).to_bytes()
        for cut in (0, 1, 79):
            with pytest.raises(CorruptStructure):
                Inode.from_bytes(1, data[:cut])

    def test_garbage_never_struct_error(self):
        for filler in (b"\xff", b"\xa5"):
            with pytest.raises(CorruptStructure):
                Inode.from_bytes(1, filler * INODE_SIZE, strict=True)

    def test_wrong_direct_count_rejected_at_pack(self):
        inode = Inode(ino=1, ftype=FileType.REGULAR, direct=[0] * (N_DIRECT - 1))
        with pytest.raises(Exception):
            inode.to_bytes()

    @given(st.integers(0, 2**63), st.integers(0, 65535))
    def test_size_nlink_roundtrip(self, size, nlink):
        inode = Inode(ino=1, ftype=FileType.REGULAR, nlink=nlink, size=size)
        parsed = Inode.from_bytes(1, inode.to_bytes())
        assert parsed.size == size and parsed.nlink == nlink

    @given(
        ftype=st.sampled_from([FileType.REGULAR, FileType.DIRECTORY, FileType.SYMLINK]),
        nlink=st.integers(0, 65535),
        size=st.integers(0, 2**64 - 1),
        mtime_ns=st.integers(0, 2**64 - 1),
        direct=st.lists(st.integers(0, 2**32 - 1), min_size=N_DIRECT, max_size=N_DIRECT),
        indirect=st.integers(0, 2**32 - 1),
        generation=st.integers(0, 2**32 - 1),
    )
    def test_property_roundtrip_byte_identical(
        self, ftype, nlink, size, mtime_ns, direct, indirect, generation
    ):
        inode = Inode(
            ino=5,
            ftype=ftype,
            nlink=nlink,
            size=size,
            mtime_ns=mtime_ns,
            direct=direct,
            indirect=indirect,
            generation=generation,
        )
        packed = inode.to_bytes()
        parsed = Inode.from_bytes(5, packed)
        assert parsed == inode
        assert parsed.to_bytes() == packed


class TestDirEntry:
    def test_roundtrip(self):
        entry = DirEntry(42, "hello.txt")
        assert DirEntry.from_bytes(entry.to_bytes()) == entry

    def test_fixed_size(self):
        assert len(DirEntry(1, "x").to_bytes()) == DIRENT_SIZE

    def test_empty_slot_is_none(self):
        assert DirEntry.from_bytes(b"\x00" * DIRENT_SIZE) is None

    def test_name_too_long_rejected(self):
        with pytest.raises(Exception):
            DirEntry(1, "x" * 28).to_bytes()

    def test_nul_in_name_rejected(self):
        with pytest.raises(Exception):
            DirEntry(1, "a\x00b").to_bytes()

    def test_max_name_ok(self):
        entry = DirEntry(1, "y" * 27)
        assert DirEntry.from_bytes(entry.to_bytes()) == entry

    def test_garbled_name_length_is_none(self):
        data = bytearray(DirEntry(5, "ok").to_bytes())
        data[4] = 200  # impossible name length
        assert DirEntry.from_bytes(bytes(data)) is None

    def test_nul_spanning_name_is_none(self):
        data = bytearray(DirEntry(5, "ab").to_bytes())
        data[4] = 10  # name_len now covers the zero padding
        assert DirEntry.from_bytes(bytes(data)) is None

    def test_truncated_is_none(self):
        assert DirEntry.from_bytes(DirEntry(3, "abc").to_bytes()[:-1]) is None

    @given(
        ino=st.integers(1, 2**32 - 1),
        name=st.text(
            alphabet=st.characters(min_codepoint=33, max_codepoint=126), min_size=1, max_size=27
        ),
    )
    def test_property_roundtrip_byte_identical(self, ino, name):
        entry = DirEntry(ino, name)
        packed = entry.to_bytes()
        parsed = DirEntry.from_bytes(packed)
        assert parsed == entry
        assert parsed.to_bytes() == packed

    def test_pack_and_parse(self):
        entries = [DirEntry(2, "."), DirEntry(2, ".."), DirEntry(9, "file")]
        data = pack_dirents(entries, 1)
        assert len(data) == BLOCK_SIZE
        assert parse_dirents(data) == entries

    def test_parse_skips_holes(self):
        data = DirEntry(1, "a").to_bytes() + b"\x00" * DIRENT_SIZE + DirEntry(2, "b").to_bytes()
        assert [e.name for e in parse_dirents(data)] == ["a", "b"]
