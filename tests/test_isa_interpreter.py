"""Tests for the interpreter and the kernel routines.

The central property checked here: native fast paths and interpreted
execution are behaviourally identical (same memory effects, same return
values, same panics) — they may only differ in speed.
"""

import pytest

from repro.errors import (
    IllegalInstruction,
    KernelPanic,
    MachineCheck,
    ProtectionTrap,
    SystemCrash,
    WatchdogTimeout,
)
from repro.isa.encoding import Instruction, Op, decode
from repro.isa.routines import (
    CACHE_HDR_MAGIC,
    HDR_DST_OFF,
    HDR_MAGIC_OFF,
    HDR_SIZE_OFF,
    PROC_MAGIC,
    VNODE_MAGIC,
)
from repro.util import pattern_bytes


def write_header(env, hdr_addr, dst, size):
    env.bus.store_u64(hdr_addr + HDR_MAGIC_OFF, CACHE_HDR_MAGIC)
    env.bus.store_u64(hdr_addr + HDR_DST_OFF, dst)
    env.bus.store_u64(hdr_addr + HDR_SIZE_OFF, size)


class TestBcopy:
    @pytest.mark.parametrize("length", [0, 1, 7, 8, 9, 63, 64, 100, 1000])
    @pytest.mark.parametrize("interpreted", [False, True])
    def test_copies_exactly(self, env, length, interpreted):
        src = env.heap
        dst = env.heap + 0x2000
        data = pattern_bytes(1, 0, length)
        env.bus.store(src, data) if length else None
        env.interp.force_interpret = interpreted
        result = env.interp.call("bcopy", [src, dst, length], sp=env.stack_top)
        assert result.interpreted == interpreted
        assert result.value == length
        assert env.bus.load(dst, length) == data if length else True

    def test_native_and_interpreted_same_stores(self, env):
        """Interpreted run must produce identical memory to native run."""
        data = pattern_bytes(2, 0, 123)
        env.bus.store(env.heap, data)
        env.interp.call("bcopy", [env.heap, env.heap + 0x1000, 123])
        native_result = env.bus.load(env.heap + 0x1000, 123)
        env.interp.force_interpret = True
        env.interp.call("bcopy", [env.heap, env.heap + 0x3000, 123], sp=env.stack_top)
        assert env.bus.load(env.heap + 0x3000, 123) == native_result == data

    def test_step_estimate_matches_interpreter(self, env):
        """The native cost formula must match real interpreted step counts."""
        for length in (0, 5, 8, 17, 64):
            env.interp.force_interpret = True
            interpreted = env.interp.call(
                "bcopy", [env.heap, env.heap + 0x1000, length], sp=env.stack_top
            )
            env.interp.force_interpret = False
            native = env.interp.call("bcopy", [env.heap, env.heap + 0x1000, length])
            assert abs(native.steps - interpreted.steps) <= 4, length

    def test_store_count_matches(self, env):
        env.interp.force_interpret = True
        interpreted = env.interp.call("bcopy", [env.heap, env.heap + 0x1000, 29], sp=env.stack_top)
        env.interp.force_interpret = False
        native = env.interp.call("bcopy", [env.heap, env.heap + 0x1000, 29])
        assert native.stores == interpreted.stores

    @pytest.mark.parametrize("interpreted", [False, True])
    def test_protected_destination_traps(self, env, interpreted):
        protected_vpn = 33
        env.mmu.set_writable(protected_vpn, False)
        env.interp.force_interpret = interpreted
        with pytest.raises(ProtectionTrap):
            env.interp.call(
                "bcopy", [env.heap, protected_vpn * env.page, 16], sp=env.stack_top
            )

    @pytest.mark.parametrize("interpreted", [False, True])
    def test_wild_destination_machine_checks(self, env, interpreted):
        env.interp.force_interpret = interpreted
        with pytest.raises(MachineCheck):
            env.interp.call("bcopy", [env.heap, 0xBAD0000000, 16], sp=env.stack_top)


class TestBzero:
    @pytest.mark.parametrize("interpreted", [False, True])
    def test_zeroes(self, env, interpreted):
        env.bus.store(env.heap, b"\xff" * 40)
        env.interp.force_interpret = interpreted
        env.interp.call("bzero", [env.heap + 4, 21], sp=env.stack_top)
        assert env.bus.load(env.heap, 40) == b"\xff" * 4 + b"\x00" * 21 + b"\xff" * 15


class TestCacheCopy:
    @pytest.mark.parametrize("interpreted", [False, True])
    def test_copies_through_header(self, env, interpreted):
        hdr = env.heap
        dst = env.heap + 0x4000
        src = env.heap + 0x1000
        write_header(env, hdr, dst, 0x1000)
        data = pattern_bytes(3, 0, 200)
        env.bus.store(src, data)
        env.interp.force_interpret = interpreted
        result = env.interp.call("cache_copy", [hdr, src, 64, 200], sp=env.stack_top)
        assert result.value == 200
        assert env.bus.load(dst + 64, 200) == data

    @pytest.mark.parametrize("interpreted", [False, True])
    def test_bad_magic_panics(self, env, interpreted):
        hdr = env.heap
        write_header(env, hdr, env.heap + 0x4000, 0x1000)
        env.bus.store_u64(hdr + HDR_MAGIC_OFF, 0x1234)  # corrupt the magic
        env.interp.force_interpret = interpreted
        with pytest.raises(KernelPanic, match="magic"):
            env.interp.call("cache_copy", [hdr, env.heap + 0x1000, 0, 8], sp=env.stack_top)

    @pytest.mark.parametrize("interpreted", [False, True])
    def test_bounds_check_panics(self, env, interpreted):
        hdr = env.heap
        write_header(env, hdr, env.heap + 0x4000, 128)
        env.interp.force_interpret = interpreted
        with pytest.raises(KernelPanic, match="beyond buffer end"):
            env.interp.call("cache_copy", [hdr, env.heap + 0x1000, 64, 128], sp=env.stack_top)

    def test_corrupted_dst_pointer_goes_wild(self, env):
        """A heap bit flip in the header's destination field redirects the
        copy — the classic direct-corruption path of section 3.2."""
        hdr = env.heap
        write_header(env, hdr, env.heap + 0x4000, 0x1000)
        # Flip a high bit of dst_base: the store lands far away.
        paddr = env.mmu.translate(hdr + HDR_DST_OFF, write=False)
        env.memory.flip_bit(paddr + 5, 7)  # flip bit 47 of the pointer
        with pytest.raises(MachineCheck):
            env.interp.call("cache_copy", [hdr, env.heap + 0x1000, 0, 8], sp=env.stack_top)


class TestBackgroundRoutines:
    def build_runqueue(self, env, nodes):
        head_ptr = env.heap + 0x7000
        addrs = [env.heap + 0x7100 + 32 * i for i in range(nodes)]
        env.bus.store_u64(head_ptr, addrs[0] if addrs else 0)
        for i, addr in enumerate(addrs):
            env.bus.store_u64(addr, PROC_MAGIC)
            env.bus.store_u64(addr + 8, addrs[i + 1] if i + 1 < nodes else 0)
            env.bus.store_u64(addr + 16, 0)
        return head_ptr, addrs

    @pytest.mark.parametrize("interpreted", [False, True])
    def test_sched_tick_increments(self, env, interpreted):
        head_ptr, addrs = self.build_runqueue(env, 3)
        env.interp.force_interpret = interpreted
        env.interp.call("sched_tick", [head_ptr], sp=env.stack_top)
        for addr in addrs:
            assert env.bus.load_u64(addr + 16) == 1

    @pytest.mark.parametrize("interpreted", [False, True])
    def test_sched_tick_detects_corruption(self, env, interpreted):
        head_ptr, addrs = self.build_runqueue(env, 2)
        env.bus.store_u64(addrs[1], 0xBAD)
        env.interp.force_interpret = interpreted
        with pytest.raises(KernelPanic, match="runqueue"):
            env.interp.call("sched_tick", [head_ptr], sp=env.stack_top)

    @pytest.mark.parametrize("interpreted", [False, True])
    def test_vnode_scan(self, env, interpreted):
        table = env.heap + 0x8000
        node = env.heap + 0x8100
        env.bus.store_u64(table, node)
        env.bus.store_u64(table + 8, 0)
        env.bus.store_u64(node, VNODE_MAGIC)
        env.bus.store_u64(node + 8, 0)
        env.bus.store_u64(node + 16, 7)
        env.interp.force_interpret = interpreted
        env.interp.call("vnode_scan", [table, 2], sp=env.stack_top)
        assert env.bus.load_u64(node + 16) == 8


class TestChecksumBlock:
    @pytest.mark.parametrize("interpreted", [False, True])
    def test_sums_quadwords(self, env, interpreted):
        env.bus.store_u64(env.heap, 10)
        env.bus.store_u64(env.heap + 8, 32)
        env.interp.force_interpret = interpreted
        result = env.interp.call("checksum_block", [env.heap, 16], sp=env.stack_top)
        assert result.value == 42

    def test_checksum_changes_with_data(self, env):
        env.bus.store(env.heap, pattern_bytes(9, 0, 64))
        before = env.interp.call("checksum_block", [env.heap, 64]).value
        env.bus.store_u64(env.heap + 16, 0x999)
        after = env.interp.call("checksum_block", [env.heap, 64]).value
        assert before != after


class TestFaultedExecution:
    """Corrupted text must run interpreted and crash in realistic ways."""

    def find_instruction(self, env, routine, predicate):
        r = env.text.routines[routine]
        for idx in range(r.start_index, r.start_index + r.num_words):
            if predicate(env.text.read_instruction(idx)):
                return idx
        raise AssertionError("instruction not found")

    def test_corruption_disables_native_path(self, env):
        idx = env.text.routines["bcopy"].start_index
        env.text.write_word(idx, env.text.read_word(idx))  # rewrite same word
        assert not env.text.routines["bcopy"].pristine
        result = env.interp.call("bcopy", [env.heap, env.heap + 0x1000, 8], sp=env.stack_top)
        assert result.interpreted

    def test_deleted_loop_exit_crashes(self, env):
        """Deleting the branch that exits the copy loop makes bcopy run off
        the end of mapped memory or trip the watchdog — a crash either way,
        never a silent success."""
        idx = self.find_instruction(
            env, "bcopy", lambda i: i.op is Op.BNE
        )
        env.text.write_instruction(idx, Instruction(opcode=Op.NOP, ra=31, rb=31))
        with pytest.raises(SystemCrash):
            env.interp.call(
                "bcopy", [env.heap, env.heap + 0x1000, 16], sp=env.stack_top, max_steps=50_000
            )

    def test_illegal_opcode_crashes(self, env):
        idx = env.text.routines["bzero"].start_index + 1
        env.text.write_word(idx, 0x3D << 26)
        with pytest.raises(IllegalInstruction):
            env.interp.call("bzero", [env.heap, 8], sp=env.stack_top)

    def test_wild_return_address_from_stack(self, env):
        """Corrupting the saved return address on the stack sends RET into
        the weeds: fetch from an unmapped address -> machine check."""
        hdr = env.heap
        write_header(env, hdr, env.heap + 0x4000, 0x1000)
        # Pre-corrupt where cache_copy will save ra: it stores ra at sp-32.
        # Instead run normally but patch the reload: easier — corrupt the
        # stack slot between spill and reload using a text mutation that
        # skips the reload is complex; here we simply verify RET to a wild
        # target machine-checks via a crafted program.
        idx = self.find_instruction(env, "cache_copy", lambda i: i.op is Op.RET)
        # Make the final ret jump through t3 (holds a data value, not text).
        env.text.write_instruction(idx, Instruction(opcode=Op.RET, ra=31, rb=3))
        with pytest.raises(SystemCrash):
            env.interp.call("cache_copy", [hdr, env.heap + 0x1000, 0, 8], sp=env.stack_top)

    def test_watchdog_fires_on_infinite_loop(self, env):
        idx = self.find_instruction(env, "sched_tick", lambda i: i.op is Op.LDQ and i.imm == 8)
        # Deleting the "advance to next node" load makes the walk spin on
        # the same node forever.
        env.text.write_instruction(idx, Instruction(opcode=Op.NOP, ra=31, rb=31))
        head_ptr = env.heap + 0x7000
        node = env.heap + 0x7100
        env.bus.store_u64(head_ptr, node)
        env.bus.store_u64(node, PROC_MAGIC)
        env.bus.store_u64(node + 8, node)  # self-loop not even needed
        with pytest.raises(WatchdogTimeout):
            env.interp.call("sched_tick", [head_ptr], sp=env.stack_top, max_steps=5000)

    def test_halt_outside_sentinel_panics(self, env):
        idx = env.text.routines["bzero"].start_index
        env.text.write_instruction(idx, Instruction(opcode=Op.HALT, ra=31, rb=31))
        with pytest.raises(KernelPanic, match="unexpected halt"):
            env.interp.call("bzero", [env.heap, 8], sp=env.stack_top)
