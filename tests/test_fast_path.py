"""Tests for the hot-path execution engine's cache-invalidation edges.

The fast engine caches three kinds of derived state — predecoded text
pages (keyed on frame write-generations), soft-TLB translations (keyed on
the MMU generation), and the dispatch table — and every test here attacks
one of the invalidation edges: corruption of an already-predecoded page,
protection toggles between accesses, ABOX bit flips, and unmapping.  All
of these assertions are engine-independent semantics, so the whole file
also passes under ``RIO_FAST_PATH=0`` (the differential CI leg).
"""

from __future__ import annotations

from types import SimpleNamespace

import pytest

from repro.errors import IllegalInstruction, MachineCheck, ProtectionTrap
from repro.hw import Machine, MachineConfig
from repro.hw.bus import DEFAULT_TRACE_CAP, TraceRing
from repro.hw.mmu import KSEG_BASE
from repro.isa import Interpreter
from repro.isa.routines import build_kernel_text


def build_env(fast_path: bool) -> SimpleNamespace:
    """The conftest ``env`` layout, with an explicit fast-path setting."""
    machine = Machine(
        MachineConfig(memory_bytes=2 * 1024 * 1024, boot_time_ns=0, fast_path=fast_path)
    )
    text = build_kernel_text()
    page = machine.memory.page_size
    text_pages = -(-text.size_bytes // page)
    text.load(machine.memory, base_paddr=1 * page, base_vaddr=1 * page)
    for i in range(text_pages):
        machine.mmu.map(1 + i, 1 + i, writable=False)
    for i in range(8):
        machine.mmu.map(32 + i, 32 + i)
    for i in range(2):
        machine.mmu.map(48 + i, 48 + i)
    interp = Interpreter(machine.bus, text)
    interp.force_interpret = True
    return SimpleNamespace(
        machine=machine,
        bus=machine.bus,
        mmu=machine.mmu,
        memory=machine.memory,
        text=text,
        interp=interp,
        page=page,
        heap=32 * page,
        stack_top=50 * page - 64,
    )


@pytest.fixture(params=[True, False], ids=["fast", "ref"])
def xenv(request):
    """Both engines: every invalidation edge must hold on each."""
    return build_env(request.param)


class TestPredecodeInvalidation:
    def test_bit_flip_in_predecoded_page_redecodes(self, xenv):
        """A bit flipped into a text page *after* it has been predecoded
        must be seen by the very next call — the stale predecode entries
        may not survive the frame-generation bump."""
        env = xenv
        env.interp.call("bzero", [env.heap, 64], sp=env.stack_top)  # warm caches
        idx = env.text.routines["bzero"].start_index + 1
        word = env.text.read_word(idx)
        paddr = env.page + idx * 4  # text lives at physical page 1
        # Flip a high opcode bit so the word becomes undecodable.
        target = 0x3D << 26
        for bit in range(32):
            if (word ^ target) >> bit & 1:
                env.memory.flip_bit(paddr + bit // 8, bit % 8)
        with pytest.raises(IllegalInstruction):
            env.interp.call("bzero", [env.heap, 64], sp=env.stack_top)

    def test_write_word_in_predecoded_page_redecodes(self, xenv):
        env = xenv
        env.interp.call("bzero", [env.heap, 64], sp=env.stack_top)
        idx = env.text.routines["bzero"].start_index + 1
        env.text.write_word(idx, 0x3D << 26)
        with pytest.raises(IllegalInstruction):
            env.interp.call("bzero", [env.heap, 64], sp=env.stack_top)

    def test_restored_word_runs_again(self, xenv):
        """Corrupt, observe the trap, restore the original bytes: the
        routine must work again (a third generation bump re-decodes)."""
        env = xenv
        idx = env.text.routines["bzero"].start_index + 1
        original = env.text.read_word(idx)
        baseline = env.interp.call("bzero", [env.heap, 64], sp=env.stack_top)
        env.text.write_word(idx, 0x3D << 26)
        with pytest.raises(IllegalInstruction):
            env.interp.call("bzero", [env.heap, 64], sp=env.stack_top)
        env.text.write_word(idx, original)
        again = env.interp.call("bzero", [env.heap, 64], sp=env.stack_top)
        assert again.value == baseline.value
        assert again.steps == baseline.steps

    def test_memory_generation_accessor(self, xenv):
        env = xenv
        g0 = env.memory.generation(32)
        env.bus.store_u64(env.heap, 1)
        g1 = env.memory.generation(32)
        assert g1 > g0
        env.memory.flip_bit(32 * env.page, 0)
        assert env.memory.generation(32) > g1
        with pytest.raises(MachineCheck):
            env.memory.generation(env.memory.num_pages)


class TestSoftTlbInvalidation:
    def test_pte_writability_toggle_traps_next_store(self, xenv):
        """set_writable(False) must take effect on the very next store,
        even though the previous store cached the translation."""
        env = xenv
        env.bus.store_u64(env.heap, 1)  # warms the (vpn, write) TLB entry
        env.mmu.set_writable(32, False)
        with pytest.raises(ProtectionTrap, match="store to protected vpn 32"):
            env.bus.store_u64(env.heap, 2)
        assert env.bus.load_u64(env.heap) == 1  # nothing written
        env.mmu.set_writable(32, True)
        env.bus.store_u64(env.heap, 3)  # and the un-protect is live too
        assert env.bus.load_u64(env.heap) == 3

    def test_kseg_through_tlb_flip_effective_immediately(self, xenv):
        """Flipping the ABOX bit changes the outcome of the very next
        KSEG store — with no other MMU traffic in between."""
        env = xenv
        frame = 33
        kaddr = KSEG_BASE + frame * env.page
        env.mmu.set_kseg_writable(frame, False)
        env.bus.store_u64(kaddr, 0xAA)  # bypasses the TLB: succeeds
        env.mmu.kseg_through_tlb = True
        with pytest.raises(ProtectionTrap, match=f"protected KSEG frame {frame}"):
            env.bus.store_u64(kaddr, 0xBB)
        env.mmu.kseg_through_tlb = False
        env.bus.store_u64(kaddr, 0xCC)  # bypass again
        assert env.bus.load_u64(kaddr) == 0xCC

    def test_unmap_invalidates_cached_translation(self, xenv):
        env = xenv
        assert env.bus.load_u64(env.heap + 8) == 0  # caches the read entry
        env.mmu.unmap(32)
        with pytest.raises(MachineCheck, match="invalid virtual address"):
            env.bus.load_u64(env.heap + 8)

    def test_remap_redirects_cached_translation(self, xenv):
        """Remapping a vpn to a different frame redirects the next access
        even though the old translation was cached."""
        env = xenv
        env.bus.store_u64(env.heap, 0x1111)
        env.mmu.map(32, 40)  # point vpn 32 at a fresh frame
        assert env.bus.load_u64(env.heap) == 0
        env.mmu.map(32, 32)
        assert env.bus.load_u64(env.heap) == 0x1111

    def test_protection_trap_during_interpretation(self, xenv):
        """The interpreter's fast store path must honour a toggle that
        happened after a previous interpreted run warmed every cache."""
        env = xenv
        env.interp.call("bzero", [env.heap, 32], sp=env.stack_top)
        env.mmu.set_writable(32, False)
        with pytest.raises(ProtectionTrap):
            env.interp.call("bzero", [env.heap, 32], sp=env.stack_top)


class TestTraceRing:
    def test_default_is_unbounded_in_practice(self):
        ring = TraceRing()
        assert ring.cap == DEFAULT_TRACE_CAP
        assert ring == []
        assert ring.dropped == 0

    def test_drops_oldest_beyond_cap(self):
        ring = TraceRing(cap=3)
        for i in range(5):
            ring.append(i)
        assert list(ring) == [2, 3, 4]
        assert ring.dropped == 2

    def test_clear_resets_dropped(self):
        ring = TraceRing(cap=2)
        for i in range(4):
            ring.append(i)
        ring.clear()
        assert ring == [] and ring.dropped == 0

    def test_rejects_nonpositive_cap(self):
        with pytest.raises(ValueError):
            TraceRing(cap=0)

    def test_extend_is_ring_aware(self):
        ring = TraceRing(cap=3)
        ring.extend(range(5))
        assert list(ring) == [2, 3, 4]
        assert ring.dropped == 2

    def test_iadd_is_ring_aware(self):
        ring = TraceRing(cap=2)
        ring.append(0)
        ring += [1, 2, 3]
        assert isinstance(ring, TraceRing)
        assert list(ring) == [2, 3]
        assert ring.dropped == 2

    def test_listlike_reads(self):
        ring = TraceRing(cap=4)
        ring.extend([1, 2, 3])
        assert ring[0] == 1 and ring[-1] == 3
        assert ring[1:] == [2, 3]
        assert 2 in ring and 9 not in ring
        assert len(ring) == 3
        assert list(iter(ring)) == [1, 2, 3]
        assert ring == [1, 2, 3]
        assert ring != [1, 2]

    def test_enable_tracing_rebounds_ring(self, xenv):
        env = xenv
        env.bus.enable_tracing(True, cap=4)
        for i in range(6):
            env.bus.store_u8(env.heap + i, i)
        trace = env.bus.stats.trace
        assert len(trace) == 4
        assert trace.dropped == 2
        assert trace[-1] == ("store", env.heap + 5, 1, "kernel")
        env.bus.enable_tracing(False)
        assert env.bus.stats.trace == [] and env.bus.stats.trace.dropped == 0

    def test_tracing_forces_reference_sequence(self, xenv):
        """Traced interpreted runs must record per-fetch loads — i.e. the
        fast engine may not swallow fetches while tracing is on."""
        env = xenv
        env.bus.enable_tracing(True)
        result = env.interp.call("bzero", [env.heap, 16], sp=env.stack_top)
        fetch_loads = [
            t for t in env.bus.stats.trace if t[0] == "load" and t[2] == 4
        ]
        assert len(fetch_loads) == result.steps


class TestFastPathKnob:
    def test_machine_config_flag_reaches_bus(self):
        assert build_env(True).bus.fast_path is True
        assert build_env(False).bus.fast_path is False

    def test_env_var_disables_default(self, monkeypatch):
        monkeypatch.setenv("RIO_FAST_PATH", "0")
        assert MachineConfig().fast_path is False
        monkeypatch.setenv("RIO_FAST_PATH", "off")
        assert MachineConfig().fast_path is False
        monkeypatch.setenv("RIO_FAST_PATH", "1")
        assert MachineConfig().fast_path is True
        monkeypatch.delenv("RIO_FAST_PATH")
        assert MachineConfig().fast_path is True

    def test_reset_preserves_flag(self):
        env = build_env(False)
        env.machine.reset()
        assert env.machine.bus.fast_path is False


class TestEngineEquivalence:
    """Spot checks that the two engines are observably identical (the
    broad randomised version lives in test_fast_path_differential.py)."""

    CALLS = [
        ("bzero", lambda e: [e.heap, 200]),
        ("bcopy", lambda e: [e.heap, e.heap + 0x1000, 123]),
        ("checksum_block", lambda e: [e.heap, 128]),
    ]

    @pytest.mark.parametrize("name,argf", CALLS, ids=[c[0] for c in CALLS])
    def test_result_and_stats_match(self, name, argf):
        fast, ref = build_env(True), build_env(False)
        rf = fast.interp.call(name, argf(fast), sp=fast.stack_top)
        rr = ref.interp.call(name, argf(ref), sp=ref.stack_top)
        assert rf == rr
        sf, sr = fast.bus.stats, ref.bus.stats
        assert (sf.loads, sf.stores, sf.bytes_loaded, sf.bytes_stored) == (
            sr.loads,
            sr.stores,
            sr.bytes_loaded,
            sr.bytes_stored,
        )
        assert [fast.memory.page_checksum(p) for p in range(32, 40)] == [
            ref.memory.page_checksum(p) for p in range(32, 40)
        ]
