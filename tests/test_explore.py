"""The exhaustive crash-point explorer: spec clauses, boundary
enumeration, and the end-to-end sweep.

Three layers:

* **Spec units** — every clause of the declared crash-consistency spec
  is constructed in both a violating and a clean configuration, with no
  live system underneath (the clauses skip absent fields by contract).
* **Enumeration** — the boundary extractor over hand-built streams, and
  the golden cross-engine check: both execution engines enumerate the
  identical boundary list (same digest, same census) for one seed.
* **End to end** — a full sweep of the small basic workload: 100%
  coverage, zero violations on the clean rio_prot kernel, a serial
  report digest identical to the ``--jobs 4`` digest, and a checkpoint
  journal that resumes without re-running anything.
"""

from __future__ import annotations

from types import SimpleNamespace

import pytest

from repro.errors import FileSystemError, NotADirectory
from repro.explore import (
    Boundary,
    CrashContext,
    ExploreConfig,
    boundary_census,
    default_spec,
    enumerate_boundaries,
    explore,
    run_enumeration,
)
from repro.explore.spec import (
    AckedDataDurable,
    FsckDissectAgree,
    MetadataAtomic,
    RecoverySucceeds,
    ShadowPagesNeverTorn,
)


def ctx(**kwargs) -> CrashContext:
    base = dict(workload="unit", seed=3, event_index=17)
    base.update(kwargs)
    return CrashContext(**base)


class TestRecoverySucceeds:
    def test_violates_on_recovery_error(self):
        details = RecoverySucceeds().check(ctx(recovery_error="reboot failed: boom"))
        assert details == ["recovery failed: reboot failed: boom"]

    def test_violates_on_unrecoverable_fsck(self):
        reboot = SimpleNamespace(fsck=SimpleNamespace(unrecoverable=True))
        assert "unrecoverable" in RecoverySucceeds().check(ctx(reboot=reboot))[0]

    def test_clean(self):
        reboot = SimpleNamespace(fsck=SimpleNamespace(unrecoverable=False))
        assert RecoverySucceeds().check(ctx(reboot=reboot)) == []
        assert RecoverySucceeds().check(ctx()) == []  # no reboot: skip


class TestAckedDataDurable:
    def test_violates_per_lost_ack(self):
        details = AckedDataDurable().check(ctx(lost=["file /a: gone", "dir /b"]))
        assert len(details) == 2
        assert details[0] == "lost acknowledgement: file /a: gone"

    def test_clean(self):
        assert AckedDataDurable().check(ctx()) == []


class _FakeVFS:
    """A namespace of dirs (name -> child list) and plain files."""

    def __init__(self, dirs, broken=()):
        self.dirs = dirs
        self.broken = set(broken)

    def readdir(self, path):
        if path in self.broken:
            raise FileSystemError(f"torn directory {path}")
        if path in self.dirs:
            return list(self.dirs[path])
        raise NotADirectory(path)

    def stat(self, path):
        if path in self.broken:
            raise FileSystemError(f"unreachable inode {path}")
        return SimpleNamespace(path=path)


class TestMetadataAtomic:
    def test_violates_on_unreadable_directory(self):
        vfs = _FakeVFS({"/": ["d"], "/d": []}, broken=["/d"])
        details = MetadataAtomic().check(ctx(system=SimpleNamespace(vfs=vfs)))
        assert details and "failed after recovery" in details[0]

    def test_clean_walk(self):
        vfs = _FakeVFS({"/": ["d", "f"], "/d": ["g"]})
        assert MetadataAtomic().check(ctx(system=SimpleNamespace(vfs=vfs))) == []

    def test_skips_without_a_system(self):
        assert MetadataAtomic().check(ctx()) == []


class TestShadowPagesNeverTorn:
    def test_violates_on_checksum_mismatch(self):
        reboot = SimpleNamespace(warm=SimpleNamespace(checksum_mismatches=[4, 9]))
        details = ShadowPagesNeverTorn().check(ctx(reboot=reboot))
        assert details == ["warm reboot found 2 torn page(s) (registry slot(s) 4, 9)"]

    def test_clean(self):
        reboot = SimpleNamespace(warm=SimpleNamespace(checksum_mismatches=[]))
        assert ShadowPagesNeverTorn().check(ctx(reboot=reboot)) == []
        assert ShadowPagesNeverTorn().check(ctx()) == []


class TestFsckDissectAgree:
    def test_violates_on_divergence(self):
        divergence = SimpleNamespace(agreed=False, details=["fsck blessed garbage"])
        details = FsckDissectAgree().check(ctx(divergence=divergence))
        assert details == ["fsck/dissect divergence: fsck blessed garbage"]

    def test_clean(self):
        agreed = SimpleNamespace(agreed=True, details=[])
        assert FsckDissectAgree().check(ctx(divergence=agreed)) == []
        assert FsckDissectAgree().check(ctx()) == []  # no scan ran: skip


class TestCrashSpec:
    def test_default_spec_clause_order(self):
        assert default_spec().clause_ids() == [
            "recovery-succeeds",
            "acked-data-durable",
            "metadata-atomic",
            "shadow-never-torn",
            "fsck-dissect-agree",
            "remote-tier-consistent",
        ]

    def test_violations_carry_the_replay_identity(self):
        violations = default_spec().check(
            ctx(lost=["file /a"], recovery_error="x", workload="basic", seed=9)
        )
        assert {v.clause for v in violations} == {
            "recovery-succeeds",
            "acked-data-durable",
        }
        for violation in violations:
            assert (violation.seed, violation.event_index) == (9, 17)
            assert violation.workload == "basic"
            round_tripped = type(violation).from_json_dict(violation.to_json_dict())
            assert round_tripped == violation


def ev(seq, kind, op, **payload):
    return {"seq": seq, "kind": kind, "op": op, "vtime": 0, "payload": payload}


class TestEnumeration:
    def test_extracts_only_boundary_events(self):
        stream = [
            ev(0, "syscall", "write", phase="enter"),
            ev(1, "cache", "write", page=1),
            ev(2, "wb", "flush", page=1),
            ev(3, "shadow", "begin-write", slot=2),
            ev(4, "shadow", "end-write", slot=2),
            ev(5, "registry", "update", slot=2),
            ev(6, "server", "ack", req=0),
            ev(7, "trap", "protection", page=1),
        ]
        boundaries = enumerate_boundaries(stream)
        assert [b.index for b in boundaries] == [1, 2, 3, 4, 5, 6]
        assert boundaries[0] == Boundary(index=1, kind="cache", op="write")
        census = boundary_census(boundaries)
        assert census == {
            "cache/write": 1,
            "registry/update": 1,
            "server/ack": 1,
            "shadow/begin-write": 1,
            "shadow/end-write": 1,
            "wb/flush": 1,
        }

    def test_boundary_round_trips(self):
        boundary = Boundary(index=12, kind="shadow", op="end-write")
        assert Boundary.from_json_dict(boundary.to_json_dict()) == boundary
        assert boundary.key() == "shadow/end-write"

    def test_enumeration_golden_across_engines(self):
        """Both execution engines enumerate the identical crash-point
        list for one seed: same stream digest, same census — the
        foundation of the (seed, event_index) replay identity."""
        results = {}
        for fast in (True, False):
            config = ExploreConfig(workload="basic", ops=1, seed=5, fast_path=fast)
            enumeration = run_enumeration(config)
            results[fast] = (
                enumeration.digest,
                boundary_census(enumeration.boundaries),
                [b.to_json_dict() for b in enumeration.boundaries],
            )
        assert results[True] == results[False]
        digest, census, boundaries = results[True]
        assert len(boundaries) > 100
        # The taxonomy the sweep must cover on a rio system (a rio
        # cache never writes back, so wb/flush is absent by design).
        for key in (
            "cache/write",
            "cache/fill",
            "registry/update",
            "shadow/begin-write",
            "shadow/end-write",
        ):
            assert census[key] > 0, f"lost the {key} boundary kind"
        assert "wb/flush" not in census


@pytest.mark.slow
class TestEndToEnd:
    def test_sweep_serial_equals_parallel(self, tmp_path):
        """Full sweep of the small basic workload: 100% coverage, zero
        violations on the clean kernel, and a report digest identical
        between the serial and the ``--jobs 4`` sweep.  Re-running
        against the checkpoint re-runs nothing and keeps the digest."""
        config = ExploreConfig(workload="basic", ops=0)
        checkpoint = str(tmp_path / "explore.jsonl")

        serial = explore(config, jobs=1, checkpoint=checkpoint)
        assert serial.complete and serial.coverage_percent == 100.0
        assert serial.violations == []
        assert serial.executed == serial.boundaries_total
        assert serial.crashed_count == serial.boundaries_total

        parallel = explore(config, jobs=4)
        assert parallel.complete and parallel.violations == []
        assert parallel.report_digest() == serial.report_digest()

        resumed = explore(config, jobs=1, checkpoint=checkpoint)
        assert resumed.executed == 0
        assert resumed.from_checkpoint == serial.boundaries_total
        assert resumed.report_digest() == serial.report_digest()
