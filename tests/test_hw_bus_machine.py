"""Tests for the memory bus and the machine crash/reset lifecycle."""

import pytest

from repro.errors import CrashedMachineError, MachineCheck, ProtectionTrap
from repro.hw import KSEG_BASE, Machine, MachineConfig
from repro.hw.bus import AccessContext

PAGE = 8192


@pytest.fixture
def machine():
    return Machine(MachineConfig(memory_bytes=16 * PAGE, boot_time_ns=1000))


class TestBus:
    def test_store_load_roundtrip(self, machine):
        machine.mmu.map(0, 3)
        machine.bus.store(100, b"rio")
        assert machine.bus.load(100, 3) == b"rio"
        assert machine.memory.read(3 * PAGE + 100, 3) == b"rio"

    def test_u64_helpers(self, machine):
        machine.mmu.map(0, 0)
        machine.bus.store_u64(8, 0xABCDEF)
        assert machine.bus.load_u64(8) == 0xABCDEF
        machine.bus.store_u8(3, 0x7F)
        assert machine.bus.load_u8(3) == 0x7F

    def test_kseg_access(self, machine):
        machine.bus.store(KSEG_BASE + 2 * PAGE, b"ubc page")
        assert machine.memory.read(2 * PAGE, 8) == b"ubc page"

    def test_stats_accumulate(self, machine):
        machine.mmu.map(0, 0)
        machine.bus.store(0, b"abcd")
        machine.bus.load(0, 4)
        assert machine.bus.stats.stores == 1
        assert machine.bus.stats.loads == 1
        assert machine.bus.stats.bytes_stored == 4
        assert machine.bus.stats.bytes_loaded == 4

    def test_store_checker_invoked(self, machine):
        """The code-patching hook: every store is pre-checked."""
        machine.mmu.map(0, 0)
        seen = []

        def checker(vaddr, length, ctx):
            seen.append((vaddr, length, ctx.procedure))
            if vaddr == 64:
                raise ProtectionTrap("code patch check", address=vaddr)

        machine.bus.store_checker = checker
        machine.bus.store(0, b"ok", AccessContext(procedure="test"))
        with pytest.raises(ProtectionTrap):
            machine.bus.store(64, b"blocked")
        assert seen[0] == (0, 2, "test")
        assert machine.bus.stats.checked_stores == 2
        # The blocked store must not have written anything.
        assert machine.memory.read(64, 1) == b"\x00"

    def test_tracing(self, machine):
        machine.mmu.map(0, 0)
        machine.bus.enable_tracing()
        machine.bus.store(16, b"x")
        machine.bus.load(16, 1)
        assert ("store", 16, 1, "kernel") in machine.bus.stats.trace
        machine.bus.enable_tracing(False)
        assert machine.bus.stats.trace == []

    def test_protection_trap_propagates(self, machine):
        machine.mmu.map(1, 1, writable=False)
        with pytest.raises(ProtectionTrap):
            machine.bus.store(PAGE, b"nope")

    def test_illegal_address_machine_check(self, machine):
        with pytest.raises(MachineCheck):
            machine.bus.load(0xDEADBEEF000, 8)


class TestMachineLifecycle:
    def test_crash_freezes_bus(self, machine):
        machine.mmu.map(0, 0)
        machine.bus.store(0, b"before")
        machine.crash("test crash")
        with pytest.raises(CrashedMachineError):
            machine.bus.store(0, b"after")
        with pytest.raises(CrashedMachineError):
            machine.bus.load(0, 1)

    def test_crash_is_recorded(self, machine):
        machine.crash("kernel panic: test", kind="panic")
        assert machine.crashed
        assert machine.crash_log[-1].reason == "kernel panic: test"
        assert machine.crash_log[-1].kind == "panic"

    def test_double_crash_records_once(self, machine):
        machine.crash("first")
        machine.crash("second")
        assert len(machine.crash_log) == 1

    def test_reset_preserves_memory_alpha_semantics(self, machine):
        machine.memory.write(5 * PAGE, b"warm reboot data")
        machine.crash("boom")
        machine.reset(preserve_memory=True)
        assert not machine.crashed
        assert machine.memory.read(5 * PAGE, 16) == b"warm reboot data"

    def test_reset_erases_memory_pc_semantics(self, machine):
        machine.memory.write(5 * PAGE, b"warm reboot data")
        machine.crash("boom")
        machine.reset(preserve_memory=False)
        assert machine.memory.read(5 * PAGE, 16) == b"\x00" * 16

    def test_reset_clears_mmu_state(self, machine):
        machine.mmu.map(0, 0)
        machine.mmu.kseg_through_tlb = True
        machine.crash("boom")
        machine.reset()
        assert not machine.mmu.kseg_through_tlb  # ABOX bit is CPU state
        with pytest.raises(MachineCheck):
            machine.mmu.translate(0, write=False)

    def test_reset_consumes_boot_time(self, machine):
        t0 = machine.clock.now_ns
        machine.crash("boom")
        machine.reset()
        assert machine.clock.now_ns == t0 + 1000

    def test_require_up(self, machine):
        machine.require_up()
        machine.crash("down")
        with pytest.raises(CrashedMachineError):
            machine.require_up()


class TestClock:
    def test_consume_and_listeners(self, machine):
        ticks = []
        machine.clock.on_advance(ticks.append)
        machine.clock.consume(500)
        machine.clock.advance_to(2000)
        machine.clock.advance_to(1000)  # in the past: no-op
        assert ticks == [500, 2000]
        assert machine.clock.now_ns == 2000

    def test_negative_consume_rejected(self, machine):
        with pytest.raises(ValueError):
            machine.clock.consume(-1)

    def test_remove_listener(self, machine):
        ticks = []
        machine.clock.on_advance(ticks.append)
        machine.clock.remove_listener(ticks.append)
        machine.clock.consume(10)
        assert ticks == []
