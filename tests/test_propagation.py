"""Tests for the fault-propagation analysis (footnote 2, implemented)."""

from repro.faults import FaultType
from repro.reliability import run_table1_campaign
from repro.reliability.propagation import (
    PropagationSummary,
    format_propagation,
    summarize_propagation,
)


class TestSummary:
    def test_add_and_median(self):
        summary = PropagationSummary()
        for ops in (10, 50, 20):
            summary.add(FaultType.POINTER, "machine_check", ops, False)
        summary.add(FaultType.POINTER, "panic", 5, True)
        assert summary.matrix[(FaultType.POINTER, "machine_check")] == 3
        assert summary.matrix[(FaultType.POINTER, "panic")] == 1
        assert summary.median_incubation(FaultType.POINTER) == 20
        assert summary.corruptions[FaultType.POINTER] == 1

    def test_empty_median(self):
        assert PropagationSummary().median_incubation(FaultType.POINTER) == 0


class TestEndToEnd:
    def test_campaign_propagation(self):
        table = run_table1_campaign(
            crashes_per_cell=2,
            systems=("rio_prot",),
            fault_types=(FaultType.KERNEL_TEXT, FaultType.SYNCHRONIZATION),
            base_seed=1300,
        )
        summary = summarize_propagation(table, "rio_prot")
        assert sum(summary.matrix.values()) == 4
        text = format_propagation(summary)
        assert "kernel text" in text
        assert "median ops" in text

    def test_incubation_uses_injection_offset(self):
        table = run_table1_campaign(
            crashes_per_cell=1,
            systems=("rio_prot",),
            fault_types=(FaultType.SYNCHRONIZATION,),
            base_seed=1400,
        )
        summary = summarize_propagation(table, "rio_prot")
        (ops_list,) = summary.incubation_ops.values()
        cell = table.cell("rio_prot", FaultType.SYNCHRONIZATION)
        result = next(r for r in cell.results if r.crashed)
        assert ops_list[0] == result.ops_run - result.injected_at_op
