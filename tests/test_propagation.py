"""Tests for the fault-propagation analysis (footnote 2, implemented)."""

from repro.faults import FaultType
from repro.reliability import run_table1_campaign
from repro.reliability.propagation import (
    PropagationSummary,
    format_propagation,
    summarize_propagation,
)


class TestSummary:
    def test_add_and_median(self):
        summary = PropagationSummary()
        for ops in (10, 50, 20):
            summary.add(FaultType.POINTER, "machine_check", ops, False)
        summary.add(FaultType.POINTER, "panic", 5, True)
        assert summary.matrix[(FaultType.POINTER, "machine_check")] == 3
        assert summary.matrix[(FaultType.POINTER, "panic")] == 1
        # Sorted samples are [5, 10, 20, 50]: even length, so median_low
        # is the lower middle element (the old code returned the upper).
        assert summary.median_incubation(FaultType.POINTER) == 10
        assert summary.corruptions[FaultType.POINTER] == 1

    def test_median_odd_parity(self):
        summary = PropagationSummary()
        for ops in (50, 10, 20):
            summary.add(FaultType.POINTER, "machine_check", ops, False)
        assert summary.median_incubation(FaultType.POINTER) == 20

    def test_median_even_parity_is_lower_middle(self):
        summary = PropagationSummary()
        for ops in (40, 10, 30, 20):
            summary.add(FaultType.POINTER, "machine_check", ops, False)
        # median_low keeps the statistic an *observed* op count (20)
        # rather than interpolating 25, and never the upper element (30).
        assert summary.median_incubation(FaultType.POINTER) == 20

    def test_empty_median(self):
        assert PropagationSummary().median_incubation(FaultType.POINTER) == 0

    def test_uninjected_bucket(self):
        summary = PropagationSummary()
        summary.add_uninjected(FaultType.POINTER)
        summary.add_uninjected(FaultType.POINTER)
        assert summary.uninjected[FaultType.POINTER] == 2
        assert summary.incubation_ops == {}

    def test_format_empty_matrix_is_typed(self):
        """An all-uninjected summary (every crash predated its injection,
        as in crash-point-explorer trials) renders the typed one-liner,
        not a bare header over zero rows."""
        text = format_propagation(PropagationSummary())
        assert "no crashed trials with an injected fault" in text

    def test_format_empty_matrix_counts_uninjected(self):
        summary = PropagationSummary()
        summary.add_uninjected(FaultType.POINTER)
        text = format_propagation(summary)
        assert "no propagation to attribute" in text
        assert "1 crashed trial(s) with no fault injected" in text


class TestUninjectedCrashes:
    def test_summarize_excludes_uninjected_trials(self):
        """A trial that crashed before its injection point (e.g. a latent
        bug) has injected_at_op == -1; it must not contribute ops_run -
        (-1) to the incubation distribution (the old behavior)."""
        from repro.reliability.campaign import CrashTestConfig, CrashTestResult
        from repro.reliability.report import Table1

        table = Table1(crashes_per_cell=2)
        cell = table.cell("rio_prot", FaultType.POINTER)
        config = CrashTestConfig(system="rio_prot", fault_type=FaultType.POINTER)
        uninjected = CrashTestResult(
            config=config, crashed=True, crash_kind="panic",
            ops_run=37, injected_at_op=-1,
        )
        normal = CrashTestResult(
            config=config, crashed=True, crash_kind="machine_check",
            ops_run=50, injected_at_op=40,
        )
        cell.record(uninjected, order=0)
        cell.record(normal, order=1)
        summary = summarize_propagation(table, "rio_prot")
        assert summary.uninjected[FaultType.POINTER] == 1
        assert summary.incubation_ops[FaultType.POINTER] == [10]
        assert summary.median_incubation(FaultType.POINTER) == 10
        text = format_propagation(summary)
        assert "no fault injected" in text


class TestEndToEnd:
    def test_campaign_propagation(self):
        table = run_table1_campaign(
            crashes_per_cell=2,
            systems=("rio_prot",),
            fault_types=(FaultType.KERNEL_TEXT, FaultType.SYNCHRONIZATION),
            base_seed=1300,
        )
        summary = summarize_propagation(table, "rio_prot")
        assert sum(summary.matrix.values()) == 4
        text = format_propagation(summary)
        assert "kernel text" in text
        assert "median ops" in text

    def test_incubation_uses_injection_offset(self):
        table = run_table1_campaign(
            crashes_per_cell=1,
            systems=("rio_prot",),
            fault_types=(FaultType.SYNCHRONIZATION,),
            base_seed=1400,
        )
        summary = summarize_propagation(table, "rio_prot")
        (ops_list,) = summary.incubation_ops.values()
        cell = table.cell("rio_prot", FaultType.SYNCHRONIZATION)
        result = next(r for r in cell.results if r.crashed)
        assert ops_list[0] == result.ops_run - result.injected_at_op
