"""The explorer finds the planted ordering bug — and only the bug.

``ServiceConfig(ack_before_execute=True)`` is a deliberately planted
durability bug: the file service journals, answers, and **acks a write
before executing it**.  The ack-to-execute window is invisible to every
clean run and to any test that only samples crash timing; the
exhaustive sweep hits it by construction, because ``server/ack`` is an
enumerated boundary kind.

The contract under test:

* the explorer names the exact ``(seed, event_index)`` of the lost ack;
* replaying that pair reproduces the identical violation and dumps a
  byte-identical post-recovery image (``RIOIMG1``, read back and
  digest-checked here);
* the identical sweep **without** the planted bug is violation-free —
  the counterexample is the bug's, not the harness's.
"""

from __future__ import annotations

import hashlib

import pytest

from repro.explore import (
    ExploreConfig,
    replay,
    replay_command,
    run_boundary_trial,
    run_enumeration,
)
from repro.fs.dissect import load_image

BUGGED = ExploreConfig(
    workload="traffic", clients=1, ops_per_client=3, plant_ack_bug=True
)
CONTROL = ExploreConfig(
    workload="traffic", clients=1, ops_per_client=3, plant_ack_bug=False
)


def ack_boundaries(config):
    boundaries = [
        b for b in run_enumeration(config).boundaries if b.key() == "server/ack"
    ]
    assert boundaries, "the traffic workload stopped emitting server/ack events"
    return boundaries


@pytest.fixture(scope="module")
def bug_verdicts():
    """Crash the bugged service at every acknowledgement boundary."""
    return [(b, run_boundary_trial(BUGGED, b)) for b in ack_boundaries(BUGGED)]


class TestPlantedBugIsFound:
    def test_sweep_finds_lost_acks(self, bug_verdicts):
        lost = [v for _, v in bug_verdicts if v.violations]
        assert lost, "the sweep missed the planted ack-before-execute bug"
        clauses = {vi.clause for _, v in bug_verdicts for vi in v.violations}
        assert clauses == {"acked-data-durable"}

    def test_counterexample_names_the_exact_event(self, bug_verdicts):
        for boundary, verdict in bug_verdicts:
            for violation in verdict.violations:
                assert violation.event_index == boundary.index
                assert violation.seed == BUGGED.seed
                assert violation.workload == "traffic"
                assert "lost acknowledgement" in violation.detail

    def test_replay_reproduces_the_violation(self, bug_verdicts, tmp_path):
        boundary, sweep_verdict = next(
            (b, v) for b, v in bug_verdicts if v.violations
        )
        replayed = replay(BUGGED, boundary.index, artifact_dir=str(tmp_path))
        assert not replayed.ok
        assert [v.to_json_dict() for v in replayed.violations] == [
            v.to_json_dict() for v in sweep_verdict.violations
        ]
        # Identical recovered reality, not merely an identical verdict.
        assert replayed.image_sha256 == sweep_verdict.image_sha256

    def test_dumped_image_replays_to_the_same_state(self, bug_verdicts, tmp_path):
        boundary, _ = next((b, v) for b, v in bug_verdicts if v.violations)
        replayed = replay(BUGGED, boundary.index, artifact_dir=str(tmp_path))
        assert replayed.artifact_image and replayed.artifact_report
        payload, meta = load_image(replayed.artifact_image)
        assert hashlib.sha256(payload).hexdigest() == replayed.image_sha256
        assert meta["event_index"] == boundary.index
        assert meta["boundary"] == "server/ack"
        report_text = open(replayed.artifact_report, encoding="utf-8").read()
        assert "acked-data-durable" in report_text
        assert replay_command(BUGGED, boundary.index) in report_text
        assert "--plant-ack-bug" in report_text  # the hint must reproduce

    def test_replay_rejects_a_non_boundary_index(self):
        from repro.explore import ExploreError

        with pytest.raises(ExploreError, match="not a boundary"):
            replay(BUGGED, 0)


class TestControlStaysClean:
    def test_unplanted_service_survives_every_ack_boundary(self):
        """The same sweep over the correct service: every ack boundary
        recovers with zero violations, so the counterexamples above are
        attributable to the planted ordering bug alone."""
        for boundary in ack_boundaries(CONTROL):
            verdict = run_boundary_trial(CONTROL, boundary)
            assert verdict.fired
            assert verdict.ok, [v.detail for v in verdict.violations]
