"""Tests for the binary static-analysis subsystem (disasm, CFG, dataflow, lint)."""

import pytest

from repro.isa.analysis import (
    DisassemblyError,
    Liveness,
    ReachingDefs,
    RewalkAnalysis,
    Val,
    ValueAnalysis,
    build_cfg,
    disassemble_routine,
    disassemble_words,
    lint_routines,
    lint_source,
    lint_words,
)
from repro.isa.analysis.dataflow import ENTRY, ENTRY_DEFINED
from repro.isa.assembler import assemble
from repro.isa.encoding import Op, encode
from repro.isa.routines import ROUTINE_SOURCES
from repro.isa.text import KernelText


def disassemble_source(source: str, name: str = "prog"):
    words, labels = assemble(source)
    return disassemble_words(words, labels=labels, name=name)


def cfg_of(source: str):
    return build_cfg(disassemble_source(source))


class TestDisassembler:
    @pytest.mark.parametrize("name", sorted(ROUTINE_SOURCES))
    def test_roundtrip_every_kernel_routine(self, name):
        words, labels = assemble(ROUTINE_SOURCES[name])
        dis = disassemble_words(words, labels=labels, name=name)
        rewords, relabels = assemble(dis.source)
        assert rewords == words
        assert relabels == labels

    def test_labels_recovered_without_symbols(self):
        words, _ = assemble(ROUTINE_SOURCES["bcopy"])
        dis = disassemble_words(words)  # no label table supplied
        # Every branch target got a synthetic label, and it reassembles.
        assert dis.labels
        rewords, _ = assemble(dis.source)
        assert rewords == words

    def test_unknown_opcode_rejected(self):
        with pytest.raises(DisassemblyError):
            disassemble_words([0x3E << 26])  # opcode 0x3E is not assigned

    def test_noncanonical_operate_bits_rejected(self):
        word = encode(encode_addq())
        assert disassemble_words([word, RET_WORD])  # canonical form is fine
        with pytest.raises(DisassemblyError):
            disassemble_words([word | (1 << 7), RET_WORD])  # junk in ignored bits

    def test_branch_out_of_range_rejected(self):
        words, _ = assemble("br done\ndone: ret")
        with pytest.raises(DisassemblyError):
            disassemble_words(words[:1])  # target now past the end

    def test_disassemble_routine_reads_current_text(self):
        from repro.hw import Machine, MachineConfig

        machine = Machine(MachineConfig(memory_bytes=64 * 8192, boot_time_ns=0))
        text = KernelText({"prog": "bis a0, zero, v0\nret"})
        text.load(machine.memory, 8192, 8192)
        machine.mmu.map(1, 1, writable=False)
        dis = disassemble_routine(text, "prog")
        assert dis.num_words == 2
        assert "bis" in dis.lines[0].text


def encode_addq():
    from repro.isa.encoding import Instruction

    return Instruction(opcode=Op.ADDQ, ra=16, rb=17, imm=0, rc=0)


RET_WORD = assemble("ret")[0][0]


class TestCFG:
    def test_straight_line_single_block(self):
        cfg = cfg_of("bis a0, zero, v0\nret")
        assert len(cfg.blocks) == 1
        assert cfg.blocks[0].terminates

    def test_loop_blocks_and_edges(self):
        cfg = cfg_of(
            """
            bis zero, zero, v0
        loop:
            beq a0, done
            lda a0, -1(a0)
            br loop
        done:
            ret
        """
        )
        # Entry, loop head, loop body, exit.
        assert set(cfg.blocks) == {0, 1, 2, 4}
        assert set(cfg.blocks[1].succs) == {2, 4}
        assert set(cfg.blocks[2].succs) == {1}
        assert cfg.reachable() == {0, 1, 2, 4}
        assert cfg.loops_without_exit() == []

    def test_br_is_always_taken(self):
        # A linking br (ra != zero) is still unconditional.
        cfg = cfg_of("br t0, skip\nstq zero, 0(a0)\nskip: ret")
        assert set(cfg.blocks[0].succs) == {2}
        assert 1 not in cfg.reachable()

    def test_inescapable_loop_detected(self):
        cfg = cfg_of("loop: lda a0, 1(a0)\nbr loop")
        loops = cfg.loops_without_exit()
        assert loops and 0 in loops[0]

    def test_loop_with_terminator_not_flagged(self):
        cfg = cfg_of("loop: beq a0, done\nbr loop\ndone: ret")
        assert cfg.loops_without_exit() == []

    def test_falls_off_end(self):
        assert cfg_of("bis a0, zero, v0").falls_off_end
        assert not cfg_of("ret").falls_off_end


class TestReachingDefs:
    def test_entry_defs_reach_first_use(self):
        cfg = cfg_of("bis a0, zero, v0\nret")
        rd = ReachingDefs(cfg)
        assert rd.defs_of(0, 16) == {ENTRY}

    def test_local_def_kills_entry_def(self):
        cfg = cfg_of("lda t0, 5(zero)\nbis t0, zero, v0\nret")
        rd = ReachingDefs(cfg)
        assert rd.defs_of(1, 1) == {0}

    def test_merge_point_sees_both_defs(self):
        cfg = cfg_of(
            """
            beq a0, other
            lda t0, 1(zero)
            br join
        other:
            lda t0, 2(zero)
        join:
            bis t0, zero, v0
            ret
        """
        )
        rd = ReachingDefs(cfg)
        assert rd.defs_of(4, 1) == {1, 3}


class TestLiveness:
    def test_result_register_live_to_exit(self):
        cfg = cfg_of("bis a0, zero, v0\nret")
        lv = Liveness(cfg)
        assert 0 not in lv.dead_at(1)  # v0 is part of the exit contract

    def test_scratch_dead_after_last_use(self):
        cfg = cfg_of("lda t0, 5(zero)\naddq t0, a0, v0\nret")
        lv = Liveness(cfg)
        assert 1 in lv.dead_at(2)  # t0 never read again
        assert 1 not in lv.dead_at(1)  # about to be read

    def test_loop_carried_register_stays_live(self):
        cfg = cfg_of(
            """
        loop:
            beq a0, done
            lda a0, -1(a0)
            br loop
        done:
            ret
        """
        )
        lv = Liveness(cfg)
        assert 16 not in lv.dead_at(1)  # a0 read at the loop head next trip


class TestValueAnalysis:
    def test_stack_pointer_tracked_through_frame(self):
        cfg = cfg_of("lda sp, -32(sp)\nstq ra, 0(sp)\nlda sp, 32(sp)\nret")
        va = ValueAnalysis(cfg)
        assert va.store_target(1) == Val(30, -32)
        assert va.value_before(3, 30) == Val(30, 0)

    def test_spill_reload_recovers_value(self):
        cfg = cfg_of(
            "lda sp, -16(sp)\nstq a0, 0(sp)\nldq t0, 0(sp)\nlda sp, 16(sp)\nret"
        )
        va = ValueAnalysis(cfg)
        assert va.value_before(3, 1) == Val(16, 0)  # t0 holds entry a0

    def test_join_loses_conflicting_values(self):
        cfg = cfg_of(
            """
            beq a0, other
            lda t0, 1(zero)
            br join
        other:
            lda t0, 2(zero)
        join:
            bis t0, zero, v0
            ret
        """
        )
        va = ValueAnalysis(cfg)
        assert va.value_before(4, 1) is None


class TestRewalkAnalysis:
    def test_descending_rewalk_covered(self):
        cfg = cfg_of(
            "stq zero, 16(a0)\nstq zero, 8(a0)\nstq zero, 0(a0)\nret"
        )
        rw = RewalkAnalysis(cfg)
        assert not rw.covered(0)  # first touch certifies
        assert rw.covered(1)
        assert rw.covered(2)

    def test_higher_displacement_not_covered(self):
        cfg = cfg_of("stq zero, 0(a0)\nstq zero, 8(a0)\nret")
        rw = RewalkAnalysis(cfg)
        assert not rw.covered(1)

    def test_pointer_shift_adjusts_ceiling(self):
        # After the base advances by 8, offset 8 from the old base is 0.
        cfg = cfg_of("stq zero, 8(a0)\nlda a0, 8(a0)\nstq zero, 0(a0)\nret")
        rw = RewalkAnalysis(cfg)
        assert rw.covered(2)

    def test_clobbered_base_kills_certification(self):
        cfg = cfg_of("stq zero, 8(a0)\nldq a0, 0(a1)\nstq zero, 0(a0)\nret")
        rw = RewalkAnalysis(cfg)
        assert not rw.covered(2)

    def test_ascending_loop_converges_uncovered(self):
        # The widening case: the walked pointer ascends each trip.
        cfg = cfg_of(
            """
        loop:
            beq a1, done
            stq zero, 0(a0)
            lda a0, 8(a0)
            lda a1, -1(a1)
            br loop
        done:
            ret
        """
        )
        rw = RewalkAnalysis(cfg)
        assert not rw.covered(1)


class TestLint:
    def test_shipped_routines_clean(self):
        assert lint_routines() == []

    def test_unreachable_code(self):
        findings = lint_source("bad", "br done\nstq zero, 0(a0)\ndone: ret")
        assert any(f.check == "unreachable" for f in findings)

    def test_no_exit_loop(self):
        findings = lint_source("bad", "loop: lda a0, 1(a0)\nbr loop")
        assert any(f.check == "no-exit-loop" for f in findings)

    def test_undefined_register_read(self):
        findings = lint_source("bad", "bis t0, zero, v0\nret")
        assert any(f.check == "undefined-read" for f in findings)
        # Arguments and sp are defined at entry — no finding.
        assert lint_source("ok", "bis a0, zero, v0\nret") == []

    def test_unbalanced_stack(self):
        findings = lint_source("bad", "lda sp, -16(sp)\nret")
        assert any(f.check == "stack-discipline" for f in findings)

    def test_clobbered_return_address(self):
        findings = lint_source("bad", "lda ra, 0(zero)\nret")
        assert any(f.check == "stack-discipline" for f in findings)

    def test_fall_off_end(self):
        findings = lint_source("bad", "bis a0, zero, v0")
        assert any(f.check == "stack-discipline" for f in findings)

    def test_unknown_panic_code(self):
        findings = lint_source("bad", "panic #77")
        assert any(f.check == "panic-code" for f in findings)

    def test_reserved_register_use(self):
        findings = lint_source("bad", "lda gp, 0(zero)\nret")
        assert any(f.check == "reserved-register" for f in findings)

    def test_undisassemblable_routine(self):
        findings = lint_words("bad", [0x3E << 26])
        assert len(findings) == 1
        assert findings[0].check == "undisassemblable"

    def test_selected_passes_only(self):
        findings = lint_source(
            "bad", "lda sp, -16(sp)\nret", passes=("panic-code",)
        )
        assert findings == []


class TestEntryContract:
    def test_entry_defined_matches_call_convention(self):
        # The interpreter seeds args (a0-a5), ra, gp, sp, zero.
        assert ENTRY_DEFINED == frozenset({16, 17, 18, 19, 20, 21, 26, 29, 30, 31})
