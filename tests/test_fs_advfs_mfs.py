"""Tests for AdvFS journaling and the memory file system."""

import pytest

from repro.errors import FileExists, FileNotFound, IsADirectory, DirectoryNotEmpty
from repro.fs.advfs import advfs_recover
from repro.fs.types import BLOCK_SIZE
from repro.system import SystemSpec, build_system


@pytest.fixture
def advfs_system():
    return build_system(SystemSpec(fs_type="advfs", policy="advfs", fs_blocks=512))


@pytest.fixture
def mfs_system():
    return build_system(SystemSpec(fs_type="mfs"))


class TestAdvFSJournal:
    def test_metadata_recoverable_from_journal_alone(self, advfs_system):
        """Metadata never written in place must be reconstructible by
        replaying the log after a crash."""
        s = advfs_system
        fd = s.vfs.open("/journaled", create=True)
        s.vfs.write(fd, b"file body")
        s.vfs.close(fd)
        s.fs.flush_data(sync=True)  # data to disk; metadata only in the log
        s.fs.journal_commit()
        s.crash("before any checkpoint")
        report = s.reboot()
        assert report.journal_records_applied > 0
        assert s.vfs.exists("/journaled")
        assert s.vfs.read(s.vfs.open("/journaled"), 16) == b"file body"

    def test_journal_writes_are_sequential(self, advfs_system):
        """The point of the log: consecutive records continue the previous
        disk access and skip the seek penalty."""
        s = advfs_system
        for i in range(10):
            fd = s.vfs.open(f"/seq{i}", create=True)
            s.vfs.close(fd)
        stats = s.disk.stats
        assert stats.async_writes > 0

    def test_checkpoint_truncates_log(self, advfs_system):
        s = advfs_system
        fd = s.vfs.open("/cp", create=True)
        s.vfs.close(fd)
        s.fs.journal_checkpoint()
        s.fs.flush_data(sync=True)
        s.drain_disks()
        s.crash("after checkpoint")
        report = s.reboot()
        # Nothing to replay: the checkpoint already applied everything.
        assert report.journal_records_applied == 0
        assert s.vfs.exists("/cp")

    def test_torn_record_ends_replay(self, advfs_system):
        s = advfs_system
        for i in range(5):
            fd = s.vfs.open(f"/t{i}", create=True)
            s.vfs.close(fd)
        s.fs.journal_commit()
        # Corrupt the second record's payload on disk.
        area = (s.fs.sb.journal_start + 1) * (BLOCK_SIZE // 512)
        second_record = area + 2  # first record header + payload sector
        s.disk.poke(second_record + 1, b"\xff" * 512)
        applied = advfs_recover(s.disk)
        assert applied >= 1  # replay stopped at the damage, did not raise

    def test_journal_wraps_via_checkpoint(self, advfs_system):
        """Filling the log region forces a checkpoint, not an overflow."""
        s = advfs_system
        for i in range(300):
            fd = s.vfs.open(f"/w{i % 7}", create=True) if not s.vfs.exists(f"/w{i % 7}") else s.vfs.open(f"/w{i % 7}")
            s.vfs.pwrite(fd, b"z" * 64, 0)
            s.vfs.close(fd)
        # Survived without ConfigurationError: checkpoints recycled the log.
        assert s.fs._epoch >= 1


class TestMemoryFileSystem:
    def test_basic_io(self, mfs_system):
        vfs = mfs_system.vfs
        fd = vfs.open("/f", create=True)
        vfs.write(fd, b"memory resident")
        vfs.close(fd)
        fd = vfs.open("/f")
        assert vfs.read(fd, 32) == b"memory resident"

    def test_no_disk_io_at_all(self, mfs_system):
        assert mfs_system.disk is None

    def test_directories(self, mfs_system):
        vfs = mfs_system.vfs
        vfs.mkdir("/d")
        vfs.mkdir("/d/e")
        fd = vfs.open("/d/e/f", create=True)
        vfs.close(fd)
        assert vfs.readdir("/d") == ["e"]
        assert vfs.readdir("/d/e") == ["f"]

    def test_errors(self, mfs_system):
        fs = mfs_system.fs
        fs.mkdir("/d")
        fs.create("/d/x")
        with pytest.raises(FileExists):
            fs.create("/d/x")
        with pytest.raises(FileNotFound):
            fs.unlink("/d/y")
        with pytest.raises(IsADirectory):
            fs.unlink("/d")
        with pytest.raises(DirectoryNotEmpty):
            fs.rmdir("/d")

    def test_rename(self, mfs_system):
        fs = mfs_system.fs
        ino = fs.create("/a")
        fs.write(ino, 0, b"body")
        fs.rename("/a", "/b")
        assert not fs.exists("/a")
        assert fs.read(fs.namei("/b"), 0, 8) == b"body"

    def test_sparse_write(self, mfs_system):
        fs = mfs_system.fs
        ino = fs.create("/sparse")
        fs.write(ino, 100, b"tail")
        assert fs.read(ino, 0, 4) == b"\x00" * 4
        assert fs.size_of(ino) == 104

    def test_truncate(self, mfs_system):
        fs = mfs_system.fs
        ino = fs.create("/t")
        fs.write(ino, 0, b"0123456789")
        fs.truncate(ino, 4)
        assert fs.read(ino, 0, 10) == b"0123"

    def test_nothing_survives_crash(self, mfs_system):
        vfs = mfs_system.vfs
        fd = vfs.open("/gone", create=True)
        vfs.write(fd, b"poof")
        vfs.close(fd)
        mfs_system.crash("power button")
        mfs_system.reboot()
        assert not mfs_system.vfs.exists("/gone")

    def test_write_charges_cpu_time(self, mfs_system):
        clock = mfs_system.clock
        fd = mfs_system.vfs.open("/cpu", create=True)
        t0 = clock.now_ns
        mfs_system.vfs.write(fd, b"x" * 100_000)
        assert clock.now_ns > t0


class TestMfsMount:
    def test_mfs_mounted_alongside_ufs(self):
        system = build_system(SystemSpec(policy="ufs_delayed", mfs_mount="/mfs"))
        vfs = system.vfs
        fd = vfs.open("/ondisk", create=True)
        vfs.write(fd, b"ufs file")
        vfs.close(fd)
        vfs.mkdir("/mfs/dir")
        fd = vfs.open("/mfs/dir/inram", create=True)
        vfs.write(fd, b"mfs file")
        vfs.close(fd)
        assert vfs.readdir("/mfs/dir") == ["inram"]
        assert vfs.read(vfs.open("/mfs/dir/inram"), 16) == b"mfs file"
        assert vfs.read(vfs.open("/ondisk"), 16) == b"ufs file"

    def test_rename_across_mounts_rejected(self):
        from repro.errors import CrossDevice

        system = build_system(SystemSpec(policy="ufs_delayed", mfs_mount="/mfs"))
        fd = system.vfs.open("/a", create=True)
        system.vfs.close(fd)
        with pytest.raises(CrossDevice):
            system.vfs.rename("/a", "/mfs/a")
