"""The independent on-disk-format verifier (``repro.fs.dissect``).

Covers the cstruct compiler, the layout declarations, every finding
kind the parser can emit, the divergence protocol against fsck, the
image container, and — mechanically — the verifier's independence from
the kernel-side serializers it exists to double-check.
"""

from __future__ import annotations

import ast
import pathlib
import struct

import pytest

import repro.fs.dissect as dissect_pkg
from repro.fs.dissect import (
    DivergenceReport,
    DissectReport,
    Finding,
    FindingKind,
    ImageFormatError,
    MAX_FINDINGS,
    compare_verdicts,
    dissect_image,
    dump_image,
    image_sha256,
    install,
    load_image,
    snapshot,
)
from repro.fs.dissect import layout
from repro.fs.dissect.cstructs import CStruct, CStructError, TruncatedRecord
from repro.fs.ondisk import (
    BLOCK_SIZE,
    DIRENT_SIZE,
    INODE_SIZE,
    INODES_PER_BLOCK,
    N_DIRECT,
    DirEntry,
    FileType,
    Inode,
    Superblock,
)
from repro.reliability.campaign import system_spec_for
from repro.system import build_system

# -- image-building helpers ---------------------------------------------------


def build_flushed_image(system: str = "rio_prot", blocks: int = 128) -> bytearray:
    """A small populated file system, fully flushed, as raw image bytes."""
    sys_ = build_system(system_spec_for(system, fs_blocks=blocks))
    fd = sys_.vfs.open("/hello", create=True)
    sys_.vfs.write(fd, b"rio file cache")
    sys_.vfs.close(fd)
    sys_.vfs.mkdir("/sub")
    fd = sys_.vfs.open("/sub/big", create=True)
    sys_.vfs.write(fd, b"x" * (BLOCK_SIZE + 100))  # spans two data blocks
    sys_.vfs.close(fd)
    sys_.fs.flush_data(sync=True)
    sys_.fs.flush_metadata(sync=True)
    sys_.drain_disks()
    return bytearray(snapshot(sys_.disk))


_BASE_IMAGE: bytearray | None = None


@pytest.fixture
def image() -> bytearray:
    """A fresh mutable copy of one shared clean base image."""
    global _BASE_IMAGE
    if _BASE_IMAGE is None:
        _BASE_IMAGE = build_flushed_image()
    return bytearray(_BASE_IMAGE)


def read_sb(image: bytearray) -> Superblock:
    return Superblock.from_bytes(bytes(image[:BLOCK_SIZE]))


def inode_offset(sb: Superblock, ino: int) -> int:
    return sb.inode_start * BLOCK_SIZE + ino * INODE_SIZE


def read_inode(image: bytearray, sb: Superblock, ino: int) -> Inode:
    off = inode_offset(sb, ino)
    return Inode.from_bytes(ino, bytes(image[off : off + INODE_SIZE]))


def write_inode(image: bytearray, sb: Superblock, inode: Inode) -> None:
    off = inode_offset(sb, inode.ino)
    image[off : off + INODE_SIZE] = inode.to_bytes()


def find_free_ino(image: bytearray, sb: Superblock) -> int:
    for ino in range(1, sb.inode_blocks * INODES_PER_BLOCK):
        off = inode_offset(sb, ino)
        if image[off : off + INODE_SIZE] == b"\x00" * INODE_SIZE:
            return ino
    raise AssertionError("no free inode slot in the test image")


def bitmap_bit(image: bytearray, sb: Superblock, block: int) -> int:
    base = sb.bitmap_start * BLOCK_SIZE
    return image[base + block // 8] >> (block % 8) & 1


def set_bitmap_bit(image: bytearray, sb: Superblock, block: int, value: int) -> None:
    base = sb.bitmap_start * BLOCK_SIZE
    if value:
        image[base + block // 8] |= 1 << (block % 8)
    else:
        image[base + block // 8] &= ~(1 << (block % 8)) & 0xFF


def find_free_data_block(image: bytearray, sb: Superblock) -> int:
    for block in range(sb.data_start, sb.total_blocks - 1):
        if not bitmap_bit(image, sb, block):
            return block
    raise AssertionError("no free data block in the test image")


def add_root_dirent(image: bytearray, sb: Superblock, entry: DirEntry) -> None:
    """Write a directory record into the root directory's first free slot."""
    root = read_inode(image, sb, sb.root_ino)
    block = root.direct[0]
    base = block * BLOCK_SIZE
    for off in range(base, base + BLOCK_SIZE, DIRENT_SIZE):
        if image[off : off + 4] == b"\x00\x00\x00\x00":
            image[off : off + DIRENT_SIZE] = entry.to_bytes()
            return
    raise AssertionError("root directory block is full")


def add_ghost_inode(
    image: bytearray, sb: Superblock, *, size: int = 0, claim_block: int | None = None
) -> int:
    """Link a new inode as /ghost with one claimed data block.

    With ``size=0`` the claimed block lies wholly beyond end-of-file —
    structural damage fsck does not look for but dissect does, which is
    the canonical divergent image.
    """
    ino = find_free_ino(image, sb)
    block = claim_block if claim_block is not None else find_free_data_block(image, sb)
    direct = [0] * N_DIRECT
    direct[0] = block
    write_inode(
        image,
        sb,
        Inode(ino=ino, ftype=FileType.REGULAR, nlink=1, size=size, direct=direct),
    )
    set_bitmap_bit(image, sb, block, 1)
    add_root_dirent(image, sb, DirEntry(ino, "ghost"))
    return ino


def kinds(report: DissectReport) -> set:
    return {f.kind for f in report.findings}


# -- the cstruct compiler -----------------------------------------------------


class TestCStructs:
    def test_offsets_and_size(self):
        cs = CStruct("demo", "uint32 a;\nuint16 b;\nuint8 c[2];\nuint64 d;")
        assert (cs.offset_of("a"), cs.offset_of("b"), cs.offset_of("c")) == (0, 4, 6)
        assert cs.offset_of("d") == 8 and cs.size == 16

    def test_unpack_values_arrays_and_char(self):
        cs = CStruct("demo", "uint16 x;\nuint32 arr[3];\nchar tag[4];")
        data = struct.pack("<HIII4s", 7, 1, 2, 3, b"RIOF")
        rec = cs.unpack(data)
        assert rec.x == 7 and rec.arr == (1, 2, 3) and rec.tag == b"RIOF"

    def test_pad_fields_parsed_but_dropped(self):
        cs = CStruct("demo", "uint32 a;\nchar pad0[4];\nuint32 b;")
        rec = cs.unpack(struct.pack("<I4sI", 1, b"\xff" * 4, 2))
        assert rec.a == 1 and rec.b == 2
        assert not hasattr(rec, "pad0")

    def test_comments_and_blank_lines_ignored(self):
        cs = CStruct("demo", "\n// header\nuint32 a;  // the a\n\nuint32 b;\n")
        assert cs.size == 8

    def test_truncated_raises_truncated_record(self):
        cs = CStruct("demo", "uint64 a;")
        with pytest.raises(TruncatedRecord):
            cs.unpack(b"\x00" * 7)

    def test_extra_bytes_are_ignored(self):
        cs = CStruct("demo", "uint16 a;")
        assert cs.unpack(b"\x05\x00" + b"junk").a == 5

    def test_bad_definitions_raise_compile_time(self):
        with pytest.raises(CStructError):
            CStruct("demo", "float x;")
        with pytest.raises(CStructError):
            CStruct("demo", "uint32;")


# -- the layout declarations --------------------------------------------------


class TestLayout:
    def test_record_sizes_match_the_documented_layout(self):
        assert layout.SUPERBLOCK.size == 64
        assert layout.REGION_SUMMARY.size == 16
        assert layout.INODE.size == 80
        assert layout.DIRENT.size == 32

    def test_own_fletcher32_matches_the_documented_checksum(self):
        # The verifier re-implements Fletcher-32; it must agree with the
        # kernel's implementation on arbitrary data (same algorithm, two
        # codebases) or every checksummed header would read as torn.
        from repro.util.checksum import fletcher32 as kernel_fletcher32

        for blob in (b"", b"a", b"ab", b"rio" * 1000, bytes(range(256))):
            assert layout.fletcher32(blob) == kernel_fletcher32(blob)

    def test_superblock_cstruct_agrees_with_ondisk_serializer(self, image):
        sb = read_sb(image)
        rec = layout.SUPERBLOCK.unpack(bytes(image[:BLOCK_SIZE]))
        assert rec.magic == layout.SUPERBLOCK_MAGIC
        assert rec.version == layout.ONDISK_VERSION
        assert rec.total_blocks == sb.total_blocks
        assert rec.inode_start == sb.inode_start
        assert rec.data_start == sb.data_start
        assert rec.root_ino == sb.root_ino

    def test_inode_cstruct_agrees_with_ondisk_serializer(self, image):
        sb = read_sb(image)
        root = read_inode(image, sb, sb.root_ino)
        off = inode_offset(sb, sb.root_ino)
        rec = layout.INODE.unpack(bytes(image[off : off + INODE_SIZE]))
        assert rec.ftype == layout.FTYPE_DIRECTORY
        assert rec.size == root.size
        assert list(rec.direct) == list(root.direct)


# -- the parser: one test per finding kind ------------------------------------


class TestParser:
    def test_clean_image_is_clean(self, image):
        report = dissect_image(bytes(image))
        assert report.clean and report.walk_completed
        assert report.inodes_allocated >= 3  # root, /hello, /sub, /sub/big
        assert report.directories_walked >= 2
        assert report.image_sha256 == image_sha256(bytes(image))

    def test_truncated_image(self, image):
        report = dissect_image(bytes(image[: BLOCK_SIZE + 100]))
        assert FindingKind.TRUNCATED_IMAGE in kinds(report)
        assert not report.walk_completed

    def test_bad_magic_falls_back_to_backup(self, image):
        image[0:4] = b"\x00\x00\x00\x00"
        report = dissect_image(bytes(image))
        assert FindingKind.BAD_MAGIC in kinds(report)
        # The backup superblock rescues the walk.
        assert report.walk_completed

    def test_bad_version(self, image):
        image[4:6] = (99).to_bytes(2, "little")
        report = dissect_image(bytes(image))
        assert FindingKind.BAD_VERSION in kinds(report)

    def test_torn_superblock_page(self, image):
        # Magic and version intact, one geometry byte flipped without
        # resealing: the checksum no longer verifies.
        image[20] ^= 0xFF
        report = dissect_image(bytes(image))
        assert FindingKind.TORN_PAGE in kinds(report)

    def test_bad_geometry_total_blocks_vs_image(self, image):
        sb = read_sb(image)
        sb.total_blocks += 64
        image[:BLOCK_SIZE] = sb.to_bytes()
        report = dissect_image(bytes(image))
        assert FindingKind.BAD_GEOMETRY in kinds(report)
        assert not report.walk_completed

    def test_mangled_inode(self, image):
        sb = read_sb(image)
        off = inode_offset(sb, sb.root_ino + 1)
        image[off : off + INODE_SIZE] = b"\xff" * INODE_SIZE
        report = dissect_image(bytes(image))
        assert FindingKind.MANGLED_INODE in kinds(report)

    def test_bad_pointer(self, image):
        sb = read_sb(image)
        ino = add_ghost_inode(image, sb, size=BLOCK_SIZE)
        ghost = read_inode(image, sb, ino)
        block = ghost.direct[0]
        set_bitmap_bit(image, sb, block, 0)
        ghost.direct[0] = sb.total_blocks + 5  # outside the data region
        write_inode(image, sb, ghost)
        report = dissect_image(bytes(image))
        assert FindingKind.BAD_POINTER in kinds(report)

    def test_duplicate_claim(self, image):
        sb = read_sb(image)
        # Find /hello's data block through the root directory, then claim
        # it a second time from the ghost inode.
        root = read_inode(image, sb, sb.root_ino)
        victim = None
        base = root.direct[0] * BLOCK_SIZE
        for off in range(base, base + BLOCK_SIZE, DIRENT_SIZE):
            entry = DirEntry.from_bytes(bytes(image[off : off + DIRENT_SIZE]))
            if entry is not None and entry.name == "hello":
                victim = read_inode(image, sb, entry.ino)
        assert victim is not None and victim.direct[0]
        add_ghost_inode(image, sb, size=BLOCK_SIZE, claim_block=victim.direct[0])
        report = dissect_image(bytes(image))
        assert FindingKind.DUPLICATE_CLAIM in kinds(report)

    def test_size_mismatch_block_beyond_eof(self, image):
        sb = read_sb(image)
        add_ghost_inode(image, sb, size=0)  # one block mapped, size says none
        report = dissect_image(bytes(image))
        assert FindingKind.SIZE_MISMATCH in kinds(report)

    def test_size_mismatch_impossible_size(self, image):
        sb = read_sb(image)
        ino = add_ghost_inode(image, sb, size=BLOCK_SIZE)
        ghost = read_inode(image, sb, ino)
        ghost.size = (layout.MAX_FILE_BLOCKS + 1) * BLOCK_SIZE
        write_inode(image, sb, ghost)
        report = dissect_image(bytes(image))
        assert FindingKind.SIZE_MISMATCH in kinds(report)

    def test_dangling_dirent(self, image):
        sb = read_sb(image)
        add_root_dirent(image, sb, DirEntry(find_free_ino(image, sb), "dangle"))
        report = dissect_image(bytes(image))
        assert FindingKind.DANGLING_DIRENT in kinds(report)

    def test_garbled_dirent(self, image):
        sb = read_sb(image)
        root = read_inode(image, sb, sb.root_ino)
        base = root.direct[0] * BLOCK_SIZE
        for off in range(base, base + BLOCK_SIZE, DIRENT_SIZE):
            if image[off : off + 4] == b"\x00\x00\x00\x00":
                image[off : off + DIRENT_SIZE] = b"\xff" * DIRENT_SIZE
                break
        report = dissect_image(bytes(image))
        assert FindingKind.GARBLED_DIRENT in kinds(report)

    def test_zeroed_slots_are_not_garbled(self, image):
        # fsck zeroes only the ino word of a slot it clears; a slot whose
        # first 4 bytes are zero is an empty slot whatever the tail says.
        sb = read_sb(image)
        root = read_inode(image, sb, sb.root_ino)
        base = root.direct[0] * BLOCK_SIZE
        for off in range(base, base + BLOCK_SIZE, DIRENT_SIZE):
            if image[off : off + 4] == b"\x00\x00\x00\x00":
                image[off + 4 : off + DIRENT_SIZE] = b"\xee" * (DIRENT_SIZE - 4)
                break
        assert dissect_image(bytes(image)).clean

    def test_bad_dot_entry(self, image):
        sb = read_sb(image)
        # Corrupt "." in /sub: find /sub through the root block.
        root = read_inode(image, sb, sb.root_ino)
        base = root.direct[0] * BLOCK_SIZE
        sub_ino = None
        for off in range(base, base + BLOCK_SIZE, DIRENT_SIZE):
            entry = DirEntry.from_bytes(bytes(image[off : off + DIRENT_SIZE]))
            if entry is not None and entry.name == "sub":
                sub_ino = entry.ino
        assert sub_ino is not None
        sub = read_inode(image, sb, sub_ino)
        sub_base = sub.direct[0] * BLOCK_SIZE
        for off in range(sub_base, sub_base + BLOCK_SIZE, DIRENT_SIZE):
            entry = DirEntry.from_bytes(bytes(image[off : off + DIRENT_SIZE]))
            if entry is not None and entry.name == ".":
                image[off : off + DIRENT_SIZE] = DirEntry(sb.root_ino, ".").to_bytes()
        report = dissect_image(bytes(image))
        assert FindingKind.BAD_DOT_ENTRY in kinds(report)

    def test_directory_cycle(self, image):
        sb = read_sb(image)
        add_root_dirent(image, sb, DirEntry(sb.root_ino, "loop"))
        report = dissect_image(bytes(image))
        assert FindingKind.DIRECTORY_CYCLE in kinds(report)

    def test_unreachable_inode(self, image):
        sb = read_sb(image)
        ino = find_free_ino(image, sb)
        block = find_free_data_block(image, sb)
        direct = [0] * N_DIRECT
        direct[0] = block
        write_inode(
            image,
            sb,
            Inode(
                ino=ino,
                ftype=FileType.REGULAR,
                nlink=1,
                size=BLOCK_SIZE,
                direct=direct,
            ),
        )
        set_bitmap_bit(image, sb, block, 1)
        report = dissect_image(bytes(image))
        assert FindingKind.UNREACHABLE_INODE in kinds(report)

    def test_bitmap_disagreement_leaked_block(self, image):
        sb = read_sb(image)
        set_bitmap_bit(image, sb, find_free_data_block(image, sb), 1)
        report = dissect_image(bytes(image))
        assert FindingKind.BITMAP_DISAGREEMENT in kinds(report)

    def test_bitmap_disagreement_lost_block(self, image):
        sb = read_sb(image)
        root = read_inode(image, sb, sb.root_ino)
        set_bitmap_bit(image, sb, root.direct[0], 0)
        report = dissect_image(bytes(image))
        assert FindingKind.BITMAP_DISAGREEMENT in kinds(report)

    def test_findings_are_capped(self, image):
        sb = read_sb(image)
        # Mangle every inode slot after the populated ones: far more
        # anomalies than the report will hold.
        for ino in range(1, sb.inode_blocks * INODES_PER_BLOCK):
            off = inode_offset(sb, ino)
            if image[off : off + INODE_SIZE] == b"\x00" * INODE_SIZE:
                image[off : off + INODE_SIZE] = b"\xff" * INODE_SIZE
        report = dissect_image(bytes(image))
        assert len(report.findings) == MAX_FINDINGS
        assert report.findings_dropped > 0

    def test_never_raises_and_never_mutates(self, image):
        before = bytes(image)
        dissect_image(before)
        assert bytes(image) == before


# -- report / finding serialization -------------------------------------------


class TestReports:
    def test_finding_json_roundtrip(self):
        finding = Finding(FindingKind.BAD_POINTER, "inode 7", "points at 999", block=999)
        assert Finding.from_json_dict(finding.to_json_dict()) == finding

    def test_report_json_roundtrip(self, image):
        image[0:4] = b"\x00\x00\x00\x00"
        report = dissect_image(bytes(image))
        back = DissectReport.from_json_dict(report.to_json_dict())
        assert back.to_json() == report.to_json()
        assert back.findings == report.findings

    def test_format_mentions_verdict(self, image):
        assert "CLEAN" in dissect_image(bytes(image)).format()
        image[0:4] = b"\x00\x00\x00\x00"
        image[-BLOCK_SIZE : -BLOCK_SIZE + 4] = b"\x00\x00\x00\x00"
        assert "CORRUPT" in dissect_image(bytes(image)).format()


# -- the divergence protocol --------------------------------------------------


class TestDivergence:
    def _clean_report(self) -> DissectReport:
        report = DissectReport(image_sha256="x" * 64, walk_completed=True)
        return report

    def _dirty_report(self) -> DissectReport:
        report = self._clean_report()
        report.add(Finding(FindingKind.SIZE_MISMATCH, "inode 9", "beyond eof"))
        return report

    def test_both_clean_agree(self):
        verdict = compare_verdicts(
            fsck_unrecoverable=False, fsck_fix_count=0, report=self._clean_report()
        )
        assert verdict.agreed and verdict.dissect_clean and verdict.fsck_consistent

    def test_fsck_repaired_and_dissect_clean_agree(self):
        verdict = compare_verdicts(
            fsck_unrecoverable=False, fsck_fix_count=3, report=self._clean_report()
        )
        assert verdict.agreed

    def test_fsck_clean_but_dissect_dirty_diverges(self):
        verdict = compare_verdicts(
            fsck_unrecoverable=False, fsck_fix_count=0, report=self._dirty_report()
        )
        assert not verdict.agreed and verdict.details
        assert "size_mismatch" in verdict.details[0]

    def test_fsck_unrecoverable_but_dissect_clean_diverges(self):
        verdict = compare_verdicts(
            fsck_unrecoverable=True, fsck_fix_count=0, report=self._clean_report()
        )
        assert not verdict.agreed

    def test_both_report_damage_agree(self):
        verdict = compare_verdicts(
            fsck_unrecoverable=True, fsck_fix_count=0, report=self._dirty_report()
        )
        assert verdict.agreed

    def test_no_usable_superblock_on_repaired_image_diverges(self):
        report = DissectReport(image_sha256="x" * 64, walk_completed=False)
        report.add(Finding(FindingKind.BAD_MAGIC, "superblock", "magic 0"))
        report.add(Finding(FindingKind.BAD_MAGIC, "backup superblock", "magic 0"))
        verdict = compare_verdicts(
            fsck_unrecoverable=False, fsck_fix_count=1, report=report
        )
        assert not verdict.agreed and len(verdict.details) == 2

    def test_json_roundtrip_and_format(self):
        verdict = compare_verdicts(
            fsck_unrecoverable=False, fsck_fix_count=0, report=self._dirty_report()
        )
        back = DivergenceReport.from_json_dict(verdict.to_json_dict())
        assert back == verdict
        assert "DIVERGENCE" in verdict.format()


# -- the image container ------------------------------------------------------


class TestImageContainer:
    def test_dump_load_roundtrip(self, image, tmp_path):
        path = tmp_path / "disk.rio"
        digest = dump_image(str(path), bytes(image), meta={"label": "test"})
        payload, meta = load_image(str(path))
        assert payload == bytes(image)
        assert digest == image_sha256(payload)
        assert meta["sha256"] == digest and meta["label"] == "test"

    def test_tampered_payload_is_rejected(self, image, tmp_path):
        path = tmp_path / "disk.rio"
        dump_image(str(path), bytes(image))
        blob = bytearray(path.read_bytes())
        blob[-1] ^= 0x01
        path.write_bytes(bytes(blob))
        with pytest.raises(ImageFormatError):
            load_image(str(path))

    def test_truncated_container_is_rejected(self, image, tmp_path):
        path = tmp_path / "disk.rio"
        dump_image(str(path), bytes(image))
        path.write_bytes(path.read_bytes()[:-100])
        with pytest.raises(ImageFormatError):
            load_image(str(path))

    def test_bad_magic_is_rejected(self, tmp_path):
        path = tmp_path / "disk.rio"
        path.write_bytes(b"NOTANIMG" + b"\x00" * 100)
        with pytest.raises(ImageFormatError):
            load_image(str(path))

    def test_install_size_mismatch_is_rejected(self, image):
        from repro.disk.device import SimulatedDisk

        disk = SimulatedDisk("t", num_sectors=len(image) // 512 + 1)
        with pytest.raises(ImageFormatError):
            install(disk, bytes(image))

    def test_snapshot_install_roundtrip(self, image):
        from repro.disk.device import SimulatedDisk

        disk = SimulatedDisk("t", num_sectors=len(image) // 512)
        install(disk, bytes(image))
        assert snapshot(disk) == bytes(image)


# -- independence: enforced mechanically over the module graph ----------------

FORBIDDEN_MODULES = {
    "repro.fs.ufs",
    "repro.fs.cache",
    "repro.fs.writeback",
    "repro.fs.fsck",
    "repro.fs.ondisk",
}


def _repro_imports(path: pathlib.Path) -> set:
    """Every ``repro.*`` module a source file imports, by static AST walk."""
    out: set = set()
    tree = ast.parse(path.read_text())
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            out.update(alias.name for alias in node.names)
        elif isinstance(node, ast.ImportFrom) and node.module:
            out.add(node.module)
            # "from repro.fs import dissect" style: the names may be
            # submodules; count them as imports too (conservative).
            out.update(f"{node.module}.{alias.name}" for alias in node.names)
    return {name for name in out if name.split(".")[0] == "repro"}


def test_dissect_module_graph_is_independent():
    """The verifier's transitive imports never touch the kernel-side fs
    modules whose bugs it exists to catch (ISSUE 6 acceptance check)."""
    pkg_dir = pathlib.Path(dissect_pkg.__file__).parent
    src_root = pkg_dir.parent.parent.parent  # .../src
    seen: set = set()
    queue = sorted(pkg_dir.glob("*.py"))
    transitive: set = set()
    while queue:
        path = queue.pop()
        if path in seen:
            continue
        seen.add(path)
        for module in _repro_imports(path):
            transitive.add(module)
            candidate = src_root / (module.replace(".", "/") + ".py")
            package = src_root / module.replace(".", "/") / "__init__.py"
            for target in (candidate, package):
                if target.exists() and target not in seen:
                    queue.append(target)
    bad = {
        module
        for module in transitive
        for forbidden in FORBIDDEN_MODULES
        if module == forbidden or module.startswith(forbidden + ".")
    }
    assert not bad, f"dissect transitively imports kernel-side fs modules: {bad}"
    # Stronger: everything repro.* it imports lives inside the package.
    outside = {m for m in transitive if not m.startswith("repro.fs.dissect")}
    assert not outside, f"dissect imports outside its own package: {outside}"


def test_dissect_package_is_importable_standalone():
    for name in ("dissect_image", "compare_verdicts", "dump_image", "snapshot"):
        assert hasattr(dissect_pkg, name)


# -- end to end: the second opinion inside real campaigns ---------------------


class TestSecondOpinionEndToEnd:
    def test_constructed_divergent_image_fires_divergence(self, image):
        """The acceptance criterion's deliberately divergent image: fsck
        blesses it (nothing it checks is wrong) while dissect finds the
        beyond-EOF block — and the DivergenceReport fires."""
        from repro.disk.device import SimulatedDisk
        from repro.fs.fsck import fsck

        sb = read_sb(image)
        add_ghost_inode(image, sb, size=0)
        scan = dissect_image(bytes(image))
        assert FindingKind.SIZE_MISMATCH in kinds(scan)

        disk = SimulatedDisk("img", num_sectors=len(image) // 512)
        install(disk, bytes(image))
        report = fsck(disk)
        assert not report.unrecoverable

        verdict = compare_verdicts(
            fsck_unrecoverable=report.unrecoverable,
            fsck_fix_count=report.fix_count,
            report=scan,
        )
        assert not verdict.agreed
        assert verdict.fsck_consistent and not verdict.dissect_clean
        assert "size_mismatch" in verdict.details[0]

    def test_crash_trials_carry_agreeing_second_opinions(self):
        """Seeded crash trials: every trial that recovered carries a
        dissect second opinion, and fsck and dissect agree on it."""
        from repro.faults import FaultType
        from repro.reliability.campaign import CrashTestConfig, run_crash_test

        scanned = 0
        for system in ("rio_prot", "disk"):
            for seed in (1, 2):
                result = run_crash_test(
                    CrashTestConfig(
                        system=system, fault_type=FaultType.KERNEL_STACK, seed=seed
                    )
                )
                if result.discarded or result.recovery_failed:
                    continue
                assert result.divergence is not None
                assert result.image_sha256
                assert result.divergence["agreed"], result.divergence["details"]
                assert not result.diverged
                scanned += 1
        assert scanned >= 2

    def test_traffic_campaign_runs_dissect_scans(self):
        from repro.reliability.traffic import TrafficConfig, run_traffic_campaign
        from repro.server import LoadSpec

        result = run_traffic_campaign(
            TrafficConfig(
                system="rio_prot",
                clients=2,
                crashes=1,
                seed=3,
                load=LoadSpec(ops_per_client=8),
                fs_blocks=256,
            )
        )
        assert result.ok
        # One scan per storm recovery plus the final flushed-image scan.
        assert result.dissect_scans >= 2
        assert result.dissect_divergences == 0, result.divergence_details
        assert result.final_dissect_clean, result.final_dissect_findings
        assert len(result.final_image_sha256) == 64
        blob = result.to_json_dict()
        assert blob["final_dissect_clean"] is True
        assert blob["dissect_scans"] == result.dissect_scans
