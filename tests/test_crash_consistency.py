"""Property-based crash-consistency tests.

The central invariant: *no matter where a crash lands, the recovery chain
leaves a consistent file system.*  We drive a workload, crash at an
arbitrary operation index, run the system's recovery (journal replay /
fsck / warm reboot), and then judge the disk with the independent
validator — which shares no code with fsck's repair logic.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import RioConfig
from repro.fs.validate import validate
from repro.system import SystemSpec, build_system
from repro.workloads.memtest import MemTest, MemTestParams

FAST_MEMTEST = MemTestParams(max_files=10, max_file_bytes=32 * 1024, max_io_bytes=4096)

CONFIGS = {
    "ufs": SystemSpec(policy="ufs", fs_blocks=512),
    "ufs_delayed": SystemSpec(policy="ufs_delayed", fs_blocks=512),
    "wt_write": SystemSpec(policy="wt_write", fs_blocks=512),
    "advfs": SystemSpec(fs_type="advfs", policy="advfs", fs_blocks=512),
    "rio": SystemSpec(policy="rio", rio=RioConfig.with_protection(), fs_blocks=512),
    "rio_noprot": SystemSpec(
        policy="rio", rio=RioConfig.without_protection(), fs_blocks=512
    ),
}


def crash_recover_validate(config_name: str, seed: int, crash_after: int):
    spec = CONFIGS[config_name]
    system = build_system(spec)
    memtest = MemTest(system.vfs, seed, FAST_MEMTEST)
    memtest.setup()
    for _ in range(crash_after):
        memtest.step()
    system.crash("property-test crash")
    system.reboot()
    report = validate(system.disk)
    return system, memtest, report


class TestValidatorBaseline:
    def test_fresh_fs_is_consistent(self):
        system = build_system(SystemSpec(policy="ufs", fs_blocks=512))
        system.fs.unmount()
        assert validate(system.disk).consistent

    def test_validator_catches_planted_damage(self):
        from repro.fs.ondisk import INODE_SIZE
        from repro.fs.types import SECTORS_PER_BLOCK

        system = build_system(SystemSpec(policy="ufs", fs_blocks=512))
        ino = system.fs.create("/x")
        system.fs.unmount()
        # Plant damage: clear the root dirent's target inode on disk.
        sb = system.fs.sb
        block = sb.inode_start + ino // (8192 // INODE_SIZE)
        raw = bytearray(system.disk.peek(block * SECTORS_PER_BLOCK, SECTORS_PER_BLOCK))
        offset = (ino % (8192 // INODE_SIZE)) * INODE_SIZE
        raw[offset : offset + INODE_SIZE] = b"\x00" * INODE_SIZE
        system.disk.poke(block * SECTORS_PER_BLOCK, bytes(raw))
        report = validate(system.disk)
        assert not report.consistent


@pytest.mark.parametrize("config_name", sorted(CONFIGS))
class TestCrashConsistencyPerConfig:
    @settings(
        max_examples=6,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
    )
    @given(seed=st.integers(1, 10_000), crash_after=st.integers(0, 120))
    def test_recovery_leaves_consistent_fs(self, config_name, seed, crash_after):
        system, _memtest, report = crash_recover_validate(config_name, seed, crash_after)
        assert report.consistent, report.problems[:8]

    @settings(
        max_examples=4,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
    )
    @given(seed=st.integers(1, 10_000), crash_after=st.integers(0, 80))
    def test_fs_usable_after_recovery(self, config_name, seed, crash_after):
        system, _memtest, _report = crash_recover_validate(config_name, seed, crash_after)
        vfs = system.vfs
        fd = vfs.open("/post-crash-probe", create=True)
        vfs.write(fd, b"life goes on")
        vfs.close(fd)
        assert vfs.read(vfs.open("/post-crash-probe"), 32) == b"life goes on"


class TestRioStrongConsistency:
    """Rio's stronger invariant: recovery loses NOTHING, not merely
    nothing structural."""

    @settings(
        max_examples=6,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
    )
    @given(seed=st.integers(1, 10_000), crash_after=st.integers(1, 120))
    def test_every_completed_op_survives(self, seed, crash_after):
        from repro.workloads.memtest import MemTestModel, verify_against_model

        system, memtest, report = crash_recover_validate("rio", seed, crash_after)
        assert report.consistent, report.problems[:8]
        model, in_flight = MemTestModel.replay(seed, memtest.progress, FAST_MEMTEST)
        problems = verify_against_model(system.fs, model, in_flight)
        assert problems == []
