# Convenience targets for the Rio reproduction.

PY ?= python

.PHONY: install test lint docstrings serve-smoke cluster-smoke chaos-smoke backend-smoke verify-disk bench bench-full bench-interp bench-server bench-cluster bench-backend forensics-smoke explore-smoke examples table1 table1-par table2 clean

install:
	pip install -e . --no-build-isolation || $(PY) setup.py develop

test:
	$(PY) -m pytest tests/

# Static-analysis lint over every kernel routine; fails on any finding.
lint:
	PYTHONPATH=src $(PY) -m repro lint

# Docstring-coverage gate over the gated packages (see the script).
docstrings:
	$(PY) scripts/check_docstrings.py

# The file service under a crash storm: 16 clients, 3 mid-traffic
# kernel crashes, exit 1 if a single acknowledged op is lost.
serve-smoke:
	PYTHONPATH=src $(PY) -m repro serve --clients 16 --crashes 3

# The multi-kernel cluster smoke: 2 shards under a rolling storm (zero
# lost acks, storm acks == calm acks), cross-engine digest equality,
# and the 64-client perf floor (the cliff stays dead).
cluster-smoke:
	$(PY) scripts/cluster_smoke.py

# The chaos capability matrix smoke: a seeded 16-client chaos storm
# (every fault capability armed, forced crashes on top), zero lost
# acks, every capability fired, and campaign digests bit-identical
# across execution engines and worker counts.
chaos-smoke:
	$(PY) scripts/chaos_smoke.py

# The tiered backing-store smoke: a tiered crash storm keeps every ack
# and passes the remote-only audit, an object-store outage across a
# reboot defers then reconciles under one --batch pass, and the tiered
# campaign digests are bit-identical across execution engines.
backend-smoke:
	$(PY) scripts/backend_smoke.py

# Independent on-disk-format verification: clean image dissects clean,
# injected damage is found, the constructed divergent image fires a
# DivergenceReport, and a mini crash campaign's fsck verdicts all agree
# with the dissect second opinion.
verify-disk:
	$(PY) scripts/verify_disk.py

bench:
	$(PY) -m pytest benchmarks/ --benchmark-only

# The paper-scale campaign: 50 counted crashes per Table 1 cell.
bench-full:
	RIO_BENCH_CRASHES=50 $(PY) -m pytest benchmarks/ --benchmark-only

# Interpreter microbenchmark: hot-path engine vs reference engine
# (plain timing, no pytest-benchmark needed; fails below RIO_MIN_SPEEDUP).
bench-interp:
	PYTHONPATH=src $(PY) -m pytest benchmarks/bench_interpreter.py -q -s

# File-service scaling grid (1..64 clients, calm + 3-crash storm);
# regenerates the checked-in benchmarks/results/server_throughput.txt.
bench-server:
	$(PY) -m pytest benchmarks/bench_server.py --benchmark-only -q -s

# Cluster scaling grid at the paper-scale population (1024 clients over
# 1..8 shards, calm + rolling storm); regenerates the checked-in
# benchmarks/results/cluster_throughput.txt.
bench-cluster:
	RIO_BENCH_CLUSTER_CLIENTS=1024 $(PY) -m pytest benchmarks/bench_cluster.py --benchmark-only -q -s

# Backing-store tier cost grid (throughput per backend flavour, dedup
# rate); regenerates benchmarks/results/backend_throughput.txt.
bench-backend:
	PYTHONPATH=src $(PY) -m pytest benchmarks/bench_backend.py --benchmark-only -q -s

# Flight-recorder smoke: a tiny traced 2-job campaign (disk/pointer
# corrupts within its first attempts under the default seed schedule),
# then per-trial crash forensics over the journal it wrote.
forensics-smoke:
	rm -rf forensics-smoke.jsonl forensics-smoke.jsonl.traces forensics-smoke.out
	PYTHONPATH=src $(PY) -m repro table1 --scale 2 --jobs 2 \
		--systems disk --faults pointer \
		--resume forensics-smoke.jsonl --trace-corruptions
	PYTHONPATH=src $(PY) -m repro forensics forensics-smoke.jsonl \
		| tee forensics-smoke.out
	grep -q "first divergent store" forensics-smoke.out
	rm -rf forensics-smoke.jsonl forensics-smoke.jsonl.traces forensics-smoke.out

# Exhaustive crash-point sweep on a clean kernel: every boundary of a
# small workload crashed at --jobs 2; requires 100% coverage and zero
# spec violations (the command exits 1 on violations, 2 if incomplete).
explore-smoke:
	rm -rf explore-smoke.out
	PYTHONPATH=src $(PY) -m repro explore basic --ops 0 --jobs 2 \
		| tee explore-smoke.out
	grep -q "(100.0%)" explore-smoke.out
	grep -q "violations: none" explore-smoke.out
	rm -rf explore-smoke.out

examples:
	$(PY) examples/quickstart.py
	$(PY) examples/crash_survival.py
	$(PY) examples/inspect_rio.py
	$(PY) examples/transaction_processing.py
	$(PY) examples/file_server.py
	$(PY) examples/load_and_crash.py
	$(PY) examples/fault_injection.py
	$(PY) examples/performance_table.py

table1:
	$(PY) -m repro table1 --scale 4

# Same campaign through the parallel engine: one worker per CPU, with a
# resumable checkpoint (interrupt freely; re-run to continue).
JOBS ?= $(shell $(PY) -c "import os; print(os.cpu_count() or 1)")
table1-par:
	PYTHONPATH=src $(PY) -m repro table1 --scale 4 --jobs $(JOBS) \
		--resume table1-checkpoint.jsonl

table2:
	$(PY) -m repro table2

# benchmarks/results holds checked-in artifacts (server_throughput.txt,
# cluster_throughput.txt) — regenerate with bench-server/bench-cluster,
# never delete them here.
clean:
	rm -rf .pytest_cache .hypothesis
	rm -rf forensics-smoke.jsonl forensics-smoke.jsonl.traces explore-smoke.out
	find . -name __pycache__ -type d -exec rm -rf {} +
