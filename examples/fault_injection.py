#!/usr/bin/env python3
"""A miniature fault-injection campaign (Table 1 in the small).

Injects three fault types into the three systems of the paper's
reliability study, a few crashes per cell, and prints the corruption
counts the way Table 1 does.  Scale ``CRASHES_PER_CELL`` up (the paper
used 50) for tighter statistics; the full-scale run lives in
``benchmarks/bench_table1_reliability.py``.

Run:  python examples/fault_injection.py
"""

from repro.faults import FaultType
from repro.reliability import format_table1, run_table1_campaign

CRASHES_PER_CELL = 3
FAULTS = (FaultType.KERNEL_TEXT, FaultType.COPY_OVERRUN, FaultType.SYNCHRONIZATION)


def main() -> None:
    print("== Miniature Table 1 campaign ==")
    print(f"({CRASHES_PER_CELL} counted crashes per cell, 3 systems, {len(FAULTS)} fault types)\n")
    table = run_table1_campaign(
        crashes_per_cell=CRASHES_PER_CELL,
        fault_types=FAULTS,
        progress=lambda line: print("  " + line),
    )
    print()
    print(format_table1(table))
    print()
    for system in ("disk", "rio_noprot", "rio_prot"):
        crashes = table.total_crashes(system)
        corruptions = table.total_corruptions(system)
        print(
            f"{system:11s}: {corruptions} of {crashes} crashes corrupted file data"
            + (
                f"; protection prevented {table.trap_saves(system)}"
                if system == "rio_prot"
                else ""
            )
        )
    print(f"\ndistinct crash messages observed: {table.unique_crash_messages()}")


if __name__ == "__main__":
    main()
