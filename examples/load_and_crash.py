#!/usr/bin/env python3
"""Eight clients, two mid-traffic kernel crashes, one durability audit.

The service-scale restatement of the paper's claim, end to end: a
deterministic multi-client load drives the file service while a crash
storm brings the kernel down twice mid-batch.  On Rio with protection
the warm reboot hands every acknowledged operation back — the audit
finds nothing lost.  The same storm against a delayed-write disk system
loses acknowledged work, which is exactly why the write-through cache
was considered mandatory before Rio.

Run:  python examples/load_and_crash.py
"""

from repro.reliability import TrafficConfig, format_traffic_report, run_traffic_campaign
from repro.server import LoadSpec

CLIENTS = 8
CRASHES = 2
SEED = 1996


def storm(system: str) -> "TrafficConfig":
    return TrafficConfig(
        system=system,
        clients=CLIENTS,
        crashes=CRASHES,
        seed=SEED,
        load=LoadSpec(ops_per_client=20),
    )


def main() -> None:
    print(f"== {CLIENTS} clients, {CRASHES} kernel crashes mid-traffic ==")
    print()

    rio = run_traffic_campaign(storm("rio_prot"))
    print(format_traffic_report(rio))
    assert rio.crashes_observed == CRASHES
    assert rio.lost_acks == 0 and rio.ok

    print()
    disk = run_traffic_campaign(storm("disk"))
    print(format_traffic_report(disk))

    print()
    print("the contrast:")
    print(f"  rio_prot : {rio.load.acked} acks, {rio.lost_acks} lost")
    print(f"  disk     : {disk.load.acked} acks, {disk.lost_acks} lost")
    if disk.lost_acks > 0:
        print("  the disk system broke its durability promises; Rio kept every one")


if __name__ == "__main__":
    main()
