#!/usr/bin/env python3
"""Look inside Rio: the registry, protection traps, and shadow pages.

A tour of the machinery the other examples treat as a black box:

1. watch registry entries appear as files enter the cache;
2. fire a wild kernel store at a protected page and catch the trap;
3. crash mid-metadata-update and see the shadow page preserve atomicity.

Run:  python examples/inspect_rio.py
"""

from repro import RioConfig, SystemSpec, build_system
from repro.errors import ProtectionTrap


def show_registry(system, label: str) -> None:
    entries = system.rio.registry.valid_entries()
    print(f"  registry [{label}]: {len(entries)} valid entries")
    for entry in entries[:6]:
        kind = "meta" if entry.is_metadata else "data"
        print(
            f"    slot {entry.slot:4d}  {kind}  phys={entry.phys_addr:#09x}"
            f"  ino={entry.ino:<4d} off={entry.file_offset:<8d}"
            f" dirty={int(entry.dirty)} disk_block={entry.disk_block}"
        )
    if len(entries) > 6:
        print(f"    ... and {len(entries) - 6} more")


def main() -> None:
    system = build_system(SystemSpec(policy="rio", rio=RioConfig.with_protection()))
    vfs = system.vfs

    print("== 1. The registry tracks every file cache buffer ==")
    show_registry(system, "after boot")
    fd = vfs.open("/tracked", create=True)
    vfs.write(fd, b"x" * 20000)
    vfs.close(fd)
    show_registry(system, "after writing 20 KB to /tracked")

    print("\n== 2. Protection: a wild store traps instead of corrupting ==")
    page = next(p for p in system.kernel.ubc.pages.values())
    print(f"  target: UBC page for ino {page.file_id.ino} at KSEG {page.vaddr:#x}")
    try:
        system.kernel.bus.store(page.vaddr, b"WILD STORE")
    except ProtectionTrap as trap:
        print(f"  ProtectionTrap: {trap}")
        print(f"  traps so far: {system.kernel.mmu.stat_protection_traps}")
        print("  (Rio halts the system here; the corruption never happens)")

    print("\n== 3. Shadow pages make metadata updates atomic ==")
    cache = system.kernel.buffer_cache
    meta_page = next(iter(cache.pages.values()))
    slot = meta_page.registry_slot
    entry = system.rio.registry.read_entry(slot)
    print(f"  steady state: registry slot {slot} -> phys {entry.phys_addr:#x}")
    system.rio.guard.begin_write(meta_page)
    entry_mid = system.rio.registry.read_entry(slot)
    print(
        f"  mid-update:   registry slot {slot} -> shadow {entry_mid.phys_addr:#x}"
        " (the consistent pre-image)"
    )
    system.rio.guard.end_write(meta_page)
    entry_after = system.rio.registry.read_entry(slot)
    print(f"  after update: registry slot {slot} -> phys {entry_after.phys_addr:#x}")
    print("  a crash at any instant finds a consistent version via the registry")


if __name__ == "__main__":
    main()
