#!/usr/bin/env python3
"""Crash survival across file system designs.

Writes the same files on five systems — Rio, write-through, default UFS,
delayed-write UFS, and MFS — crashes each at the same point, reboots, and
shows what survived.  This is the reliability/performance trade-off of
the paper's introduction made concrete: before Rio you could have speed
(delayed, MFS) or safety (write-through), not both.

Run:  python examples/crash_survival.py
"""

from repro import RioConfig, SystemSpec, build_system

SYSTEMS = [
    ("Rio (protection on)", SystemSpec(policy="rio", rio=RioConfig.with_protection())),
    ("UFS write-through", SystemSpec(policy="wt_write")),
    ("UFS default", SystemSpec(policy="ufs")),
    ("UFS delayed 30s", SystemSpec(policy="ufs_delayed")),
    ("Memory FS", SystemSpec(fs_type="mfs")),
]

FILES = {
    "/report.txt": b"quarterly numbers",
    "/mail/inbox": b"unread message",
    "/src/kernel.c": b"int main() { /* ... */ }",
}


def exercise(spec: SystemSpec) -> tuple[int, float, int]:
    """Returns (files survived, virtual seconds spent writing, disk writes)."""
    system = build_system(spec)
    vfs = system.vfs
    t0 = system.clock.now_ns
    vfs.mkdir("/mail")
    vfs.mkdir("/src")
    for path, content in FILES.items():
        fd = vfs.open(path, create=True)
        vfs.write(fd, content)
        vfs.close(fd)
    elapsed = (system.clock.now_ns - t0) / 1e9
    writes = system.disk.stats.writes if system.disk else 0

    system.crash("the usual way: a kernel bug")
    system.reboot()

    survived = 0
    for path, content in FILES.items():
        try:
            if system.vfs.exists(path):
                ino = system.fs.namei(path)
                if system.fs.read(ino, 0, 64) == content:
                    survived += 1
        except Exception:
            pass
    return survived, elapsed, writes


def main() -> None:
    print("== Crash survival comparison ==")
    print(f"{'system':24s} {'survived':>9s} {'write time':>11s} {'disk writes':>12s}")
    for name, spec in SYSTEMS:
        survived, elapsed, writes = exercise(spec)
        print(
            f"{name:24s} {survived}/{len(FILES):>6d} {elapsed * 1000:>9.2f}ms {writes:>12d}"
        )
    print()
    print("Rio keeps every byte with zero reliability-induced disk writes;")
    print("write-through keeps every byte by paying a disk write per update;")
    print("the fast asynchronous systems quietly lose recent data.")


if __name__ == "__main__":
    main()
