#!/usr/bin/env python3
"""A day in the life of the paper's departmental file server.

Section 7: "we have installed a departmental file server using the Rio
file cache with protection and with reliability-induced writes to disk
turned off.  Among other things, this file server stores our kernel
source tree, this paper, and the authors' mail."

This example simulates that server: mail keeps arriving, the source tree
keeps being edited, the paper keeps being revised — and the kernel keeps
crashing.  After every crash the warm reboot brings everything back; at
the end an audit verifies that not one delivered message, saved edit, or
paper revision was lost.

Run:  python examples/file_server.py
"""

from repro import RioConfig, SystemSpec, build_system
from repro.util.prng import DeterministicRandom, pattern_bytes

DAY_CRASHES = 4
EVENTS_BETWEEN_CRASHES = 40


class DepartmentalServer:
    def __init__(self) -> None:
        self.system = build_system(
            SystemSpec(policy="rio", rio=RioConfig.with_protection(), fs_blocks=1024)
        )
        self.rng = DeterministicRandom(19960401)
        self.mail_delivered = 0
        self.edits_saved = 0
        self.paper_revision = 0
        vfs = self.system.vfs
        for path in ("/mail", "/src", "/papers"):
            vfs.mkdir(path)
        fd = vfs.open("/papers/rio.tex", create=True)
        vfs.write(fd, b"\\title{The Rio File Cache}\n")
        vfs.close(fd)

    # -- the server's workload ---------------------------------------------

    def deliver_mail(self) -> None:
        vfs = self.system.vfs
        path = f"/mail/msg{self.mail_delivered:05d}"
        fd = vfs.open(path, create=True)
        vfs.write(fd, pattern_bytes(0xA1A1 + self.mail_delivered, 0, self.rng.randint(200, 4000)))
        vfs.fsync(fd)  # the MTA insists on durability; on Rio this is free
        vfs.close(fd)
        self.mail_delivered += 1

    def edit_source(self) -> None:
        vfs = self.system.vfs
        path = f"/src/file{self.rng.randrange(12)}.c"
        fd = vfs.open(path, create=True)
        offset = self.rng.randrange(16 * 1024)
        vfs.pwrite(fd, pattern_bytes(0x50DA + self.edits_saved, offset, 512), offset)
        vfs.close(fd)
        self.edits_saved += 1

    def revise_paper(self) -> None:
        vfs = self.system.vfs
        self.paper_revision += 1
        fd = vfs.open("/papers/rio.tex")
        vfs.pwrite(
            fd,
            f"% revision {self.paper_revision}\n".encode(),
            64 * self.paper_revision,
        )
        vfs.close(fd)

    def one_event(self) -> None:
        kind = self.rng.weighted_choice(["mail", "edit", "paper"], [5, 4, 1])
        {"mail": self.deliver_mail, "edit": self.edit_source, "paper": self.revise_paper}[kind]()

    # -- the audit ----------------------------------------------------------

    def audit(self) -> bool:
        vfs = self.system.vfs
        ok = len(vfs.readdir("/mail")) == self.mail_delivered
        for i in range(self.mail_delivered):
            path = f"/mail/msg{i:05d}"
            if not vfs.exists(path):
                ok = False
        fd = vfs.open("/papers/rio.tex")
        for rev in range(1, self.paper_revision + 1):
            marker = f"% revision {rev}\n".encode()
            if vfs.pread(fd, len(marker), 64 * rev) != marker:
                ok = False
        vfs.close(fd)
        return ok


def main() -> None:
    server = DepartmentalServer()
    print("== Departmental file server on Rio (protection on, no reliability writes) ==")
    for crash_no in range(1, DAY_CRASHES + 1):
        for _ in range(EVENTS_BETWEEN_CRASHES):
            server.one_event()
        print(
            f"  [{crash_no}] served {server.mail_delivered} mails, "
            f"{server.edits_saved} edits, rev {server.paper_revision} of the paper "
            f"— and then the kernel crashed"
        )
        server.system.crash(f"crash #{crash_no} of the day")
        report = server.system.reboot()
        print(
            f"      warm reboot: {report.warm.ubc_restored} pages restored, "
            f"fsck fixes: {report.fsck.fix_count}"
        )
    print()
    intact = server.audit()
    writes = server.system.disk.stats.writes
    print(f"end-of-day audit: everything intact = {intact}")
    print(
        f"(the server also never issued a reliability-induced disk write; "
        f"total disk writes from recovery itself: {writes})"
    )
    assert intact


if __name__ == "__main__":
    main()
