#!/usr/bin/env python3
"""The paper's departmental file server, on ``repro.server``.

Section 7: "we have installed a departmental file server using the Rio
file cache with protection and with reliability-induced writes to disk
turned off.  Among other things, this file server stores our kernel
source tree, this paper, and the authors' mail."

Here that server is the real subsystem: three clients — the mail
spooler, a developer editing the source tree, and the authors revising
the paper — open sessions against a :class:`repro.server.FileService`
and push requests through admission, scheduling, and batched execution.
Twice during the day the kernel crashes mid-traffic.  The service
warm-reboots, re-binds every session's descriptors, audits its
acknowledged-write journal against the restored cache, and resumes the
very request it died inside — the clients never see the crash.

Run:  python examples/file_server.py
"""

from repro import RioConfig, SystemSpec, build_system
from repro.server import FileService, Request, ServiceConfig
from repro.util.prng import pattern_bytes

MAIL, SRC, PAPERS = 0, 1, 2


class Client:
    """A thin wrapper: one session, synchronous request/response."""

    def __init__(self, service: FileService, client_id: int) -> None:
        self.service = service
        self.client_id = client_id
        self._req_id = 0
        service.open_session(client_id)

    def call(self, op: str, **kwargs):
        self._req_id += 1
        request = Request(
            client_id=self.client_id, req_id=self._req_id, op=op, **kwargs
        )
        rejection = self.service.submit(request)
        assert rejection is None, rejection
        responses = self.service.drain()
        mine = [r for r in responses if r.req_id == self._req_id]
        assert mine and mine[0].ok, (op, mine)
        return mine[0].value


def main() -> None:
    system = build_system(
        SystemSpec(policy="rio", rio=RioConfig.with_protection(), fs_blocks=1024)
    )
    service = FileService(system, ServiceConfig())
    mail = Client(service, MAIL)
    src = Client(service, SRC)
    papers = Client(service, PAPERS)

    print("== Departmental file server on repro.server (Rio, protection on) ==")

    # The paper lives in the papers session's home; open it once and
    # keep the descriptor across the whole day — crashes included.
    paper_fd = papers.call("open", path="rio.tex", create=True)
    papers.call("write", fd=paper_fd, offset=0, data=b"\\title{The Rio File Cache}\n")

    delivered = 0
    edits = 0
    revision = 0

    def busy_hour(events: int) -> None:
        nonlocal delivered, edits, revision
        for _ in range(events):
            fd = mail.call("open", path=f"msg{delivered:04d}", create=True)
            mail.call("write", fd=fd, offset=0,
                      data=pattern_bytes(0xA1A1 + delivered, 0, 600))
            mail.call("fsync", fd=fd)  # the MTA insists; on Rio this is free
            mail.call("close", fd=fd)
            delivered += 1

            fd = src.call("open", path=f"file{edits % 8}.c", create=True)
            src.call("write", fd=fd, offset=512 * (edits % 16),
                     data=pattern_bytes(0x50DA + edits, 0, 512))
            src.call("close", fd=fd)
            edits += 1

            revision += 1
            papers.call("write", fd=paper_fd, offset=64 * revision,
                        data=f"% revision {revision}\n".encode())

    for crash_no in (1, 2):
        busy_hour(12)
        print(
            f"  [{crash_no}] {delivered} mails, {edits} edits, "
            f"rev {revision} of the paper — and then the kernel crashed"
        )
        system.machine.crash(f"crash #{crash_no} of the day", kind="panic")
        # The next request finds the machine down; the service recovers
        # in line: warm reboot, session re-bind, journal audit.
        busy_hour(4)
        audit = service.last_audit
        print(
            f"      recovered: sessions re-bound, audit over "
            f"{audit.files_checked} files, lost acks: {len(audit.lost)}"
        )

    # End of day: the paper descriptor opened this morning still works.
    tail = papers.call("read", fd=paper_fd, offset=64 * revision,
                       length=len(f"% revision {revision}\n"))
    assert tail == f"% revision {revision}\n".encode()

    final = service.audit()
    print()
    print(f"end-of-day audit: {final.files_checked} files checked, "
          f"{len(final.lost)} acknowledged operations lost")
    print(f"(served {service.stats.acked} acks through "
          f"{service.stats.recoveries} crashes; "
          f"{service.stats.transparent_retries} requests replayed transparently)")
    assert final.ok
    assert service.stats.recoveries == 2


if __name__ == "__main__":
    main()
