#!/usr/bin/env python3
"""Regenerate Table 2: workload times across eight file system designs.

Runs cp+rm, Sdet and Andrew on each configuration and prints the table
plus the paper's headline ratios.  Everything is virtual time from the
simulation's CPU and disk models — the *shape* (who wins, by what
factor) is the result, not the absolute seconds.

Run:  python examples/performance_table.py
"""

from repro.perf import Table2, format_table2, ratio_summary, run_table2
from repro.perf.report import format_ratio_summary


def main() -> None:
    print("== Table 2: performance comparison (virtual seconds) ==\n")
    table = Table2(results=run_table2())
    print(format_table2(table))
    print()
    print(format_ratio_summary(ratio_summary(table)))
    print()
    print("Paper: Rio is 4-22x write-through, 2-14x default UFS, 1-3x the")
    print("delayed/no-order system, and protection adds essentially nothing.")


if __name__ == "__main__":
    main()
