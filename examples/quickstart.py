#!/usr/bin/env python3
"""Quickstart: files in memory survive an operating system crash.

Builds a Rio system (protection on, reliability disk writes off), writes
a file, crashes the kernel, warm-reboots, and reads the file back — all
without a single reliability-induced disk write.

Run:  python examples/quickstart.py
"""

from repro import RioConfig, SystemSpec, build_system


def main() -> None:
    system = build_system(
        SystemSpec(policy="rio", rio=RioConfig.with_protection())
    )
    vfs = system.vfs

    print("== Rio quickstart ==")
    fd = vfs.open("/important.txt", create=True)
    vfs.write(fd, b"this byte string exists only in main memory\n")
    vfs.fsync(fd)  # returns immediately: memory IS the stable store
    vfs.close(fd)
    print(f"wrote /important.txt; disk writes so far: {system.disk.stats.writes}")

    print("crashing the operating system ...")
    system.crash("demo: dereferenced a wild pointer", kind="panic")

    print("warm reboot: dump memory -> swap, restore metadata, fsck, restore UBC")
    report = system.reboot()
    warm = report.warm
    print(
        f"  registry found: {warm.registry_found}; "
        f"metadata blocks restored: {warm.metadata_restored}; "
        f"file pages restored: {warm.ubc_restored}; "
        f"fsck fixes needed: {report.fsck.fix_count}"
    )

    # The reboot built a fresh kernel and VFS; use the new one.
    vfs = system.vfs
    fd = vfs.open("/important.txt")
    data = vfs.read(fd, 4096)
    vfs.close(fd)
    print(f"read back after crash: {data!r}")
    assert data == b"this byte string exists only in main memory\n"
    print("OK: the file cache survived the crash.")


if __name__ == "__main__":
    main()
