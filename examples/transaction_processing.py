#!/usr/bin/env python3
"""Transaction processing on Rio: synchronous commits at memory speed.

The paper's opening motivation: applications that need real durability
(databases) commit by writing through to disk, chaining throughput to the
disk arm.  On Rio, fsync returns when the data is in (protected,
crash-surviving) memory — so a debit/credit workload commits at memory
speed, and a crash still loses nothing that committed.

Run:  python examples/transaction_processing.py
"""

from repro import RioConfig, SystemSpec, build_system
from repro.workloads.debit_credit import DebitCreditParams, DebitCreditWorkload

PARAMS = DebitCreditParams(accounts=64, transactions=200)


def run(label: str, spec: SystemSpec) -> None:
    system = build_system(spec)
    bench = DebitCreditWorkload(system.vfs, system.kernel, PARAMS)
    bench.setup()
    result = bench.run()
    writes = system.disk.stats.writes if system.disk else 0
    print(
        f"  {label:22s}: {result.tps:9.1f} tps  "
        f"({result.seconds:7.3f}s, {writes} disk writes)"
    )
    return system


def main() -> None:
    print("== Debit/credit with synchronous commit on every transaction ==")
    rio = run("Rio (protection on)", SystemSpec(policy="rio", rio=RioConfig.with_protection()))
    run("UFS write-through", SystemSpec(policy="wt_write"))

    print("\n== Crash after the full run: Rio's commits were real ==")
    rio.crash("power stayed on; the kernel did not")
    rio.reboot()
    check = DebitCreditWorkload(rio.vfs, rio.kernel, PARAMS)
    print(f"  ledger intact after crash + warm reboot: {check.verify()}")

    from repro.workloads.debit_credit import RECORD, RECORD_SIZE

    fd = rio.vfs.open("/bank/accounts")
    survived = sum(
        RECORD.unpack(rio.vfs.pread(fd, RECORD.size, a * RECORD_SIZE))[2]
        for a in range(PARAMS.accounts)
    )
    print(f"  committed transactions recovered: {survived}/{PARAMS.transactions}")


if __name__ == "__main__":
    main()
