"""Setup shim for environments without the `wheel` package (offline installs).

Allows `pip install -e . --no-build-isolation --no-use-pep517`; all real
metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
