"""CI smoke for the chaos capability matrix (``make chaos-smoke``).

Three independent gates, each a design claim of the chaos tier:

1. **Zero lost acks under chaos** — a seeded 16-client chaos storm
   (every capability in the default matrix, two forced crashes per
   trial on top) loses zero acknowledged operations, and every armed
   capability actually fired (the hooks are wired, not decorative).
2. **Cross-engine seed purity** — the same campaign pinned to the
   reference engine (``fast_path=False``) and the hot engine
   (``fast_path=True``) produces bit-identical campaign digests.
3. **Worker-count purity** — the campaign digest at ``jobs=4`` equals
   the serial digest (chaos trials are pure functions of their
   payloads).

Exits non-zero on the first failed gate.  Pure stdlib + repro; no
pytest dependency, so CI can run it as a bare script.
"""

import sys

sys.path.insert(0, "src")

from repro.reliability import (  # noqa: E402
    ChaosCampaignConfig,
    run_chaos_campaign,
)

SEED = 11


def gate(name: str, ok: bool, detail: str) -> None:
    verdict = "ok" if ok else "FAIL"
    print(f"[chaos-smoke] {name}: {verdict} ({detail})")
    if not ok:
        sys.exit(1)


def campaign(jobs: int = 1, fast_path=None):
    return run_chaos_campaign(
        ChaosCampaignConfig(
            clients=16,
            ops_per_client=20,
            crashes=2,
            seed=SEED,
            jobs=jobs,
            fast_path=fast_path,
        )
    )


def main() -> None:
    # Gate 1: the full matrix, zero lost acks, every capability wired.
    serial = campaign(jobs=1)
    lost = sum(trial.lost_acks for trial in serial.trials)
    idle = [
        trial.trial
        for trial in serial.trials
        if trial.trial != "baseline" and trial.chaos_fires == 0
    ]
    gate(
        "zero lost acks under chaos",
        serial.ok and lost == 0 and not idle,
        f"trials={len(serial.trials)} fires={serial.total_fires} "
        f"lost={lost} idle={idle or 'none'}",
    )

    # Gate 2: cross-engine seed purity.
    reference = campaign(jobs=4, fast_path=False)
    hot = campaign(jobs=4, fast_path=True)
    gate(
        "cross-engine digest equality",
        reference.ok and hot.ok and reference.digest == hot.digest,
        f"ref={reference.digest[:16]} hot={hot.digest[:16]}",
    )

    # Gate 3: worker-count purity (serial vs jobs=4 on the same engine
    # defaults as gate 1).
    fanned = campaign(jobs=4)
    gate(
        "jobs-independent digest",
        fanned.ok and fanned.digest == serial.digest,
        f"jobs1={serial.digest[:16]} jobs4={fanned.digest[:16]}",
    )
    print("[chaos-smoke] all gates passed")


if __name__ == "__main__":
    main()
