#!/usr/bin/env python
"""Docstring-coverage gate: every public item must say what it is.

Walks the source files passed on the command line (defaults to the
gated set: ``src/repro/server/``, ``src/repro/explore/``,
``src/repro/backend/`` and ``src/repro/__main__.py``), parses
them with ``ast`` — no imports, so it runs anywhere — and fails if any
public module, class, function or method lacks a docstring.  "Public"
means not underscore-prefixed; ``__init__`` is exempt when its class is
documented, property setters and ``@overload`` stubs are exempt, and a
nested function is private by construction.

Wired to ``make docstrings`` and the CI docs job; tests/test_docs.py
runs it as a test as well.
"""

from __future__ import annotations

import ast
import pathlib
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_TARGETS = (
    "src/repro/server",
    "src/repro/explore",
    "src/repro/backend",
    "src/repro/__main__.py",
)


def _is_public(name: str) -> bool:
    return not name.startswith("_")


def _decorator_names(node: ast.AST) -> set:
    names = set()
    for dec in getattr(node, "decorator_list", []):
        target = dec.func if isinstance(dec, ast.Call) else dec
        if isinstance(target, ast.Attribute):
            names.add(target.attr)
        elif isinstance(target, ast.Name):
            names.add(target.id)
    return names


def missing_docstrings(path: pathlib.Path) -> list:
    """Return ``"file:line: item"`` strings for undocumented public items."""
    tree = ast.parse(path.read_text(), filename=str(path))
    problems = []
    rel = path.relative_to(REPO)

    if ast.get_docstring(tree) is None:
        problems.append(f"{rel}:1: module")

    def visit(node: ast.AST, prefix: str, depth: int) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                if _is_public(child.name):
                    if ast.get_docstring(child) is None:
                        problems.append(f"{rel}:{child.lineno}: class {prefix}{child.name}")
                    visit(child, f"{prefix}{child.name}.", depth + 1)
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if not _is_public(child.name) or depth >= 2:
                    continue  # private, or nested inside a function
                decorators = _decorator_names(child)
                if "overload" in decorators or "setter" in decorators:
                    continue
                if ast.get_docstring(child) is None:
                    kind = "method" if prefix else "function"
                    problems.append(f"{rel}:{child.lineno}: {kind} {prefix}{child.name}")
                visit(child, f"{prefix}{child.name}.", 99)  # nested = private
    visit(tree, "", 0)
    return problems


def gather(targets) -> list:
    """Collect the python files behind each target path."""
    files = []
    for target in targets:
        path = REPO / target
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.exists():
            files.append(path)
        else:
            raise SystemExit(f"no such target: {target}")
    return files


def main(argv) -> int:
    """Check every target; print findings; exit 1 if any."""
    targets = argv or list(DEFAULT_TARGETS)
    problems = []
    files = gather(targets)
    for path in files:
        problems.extend(missing_docstrings(path))
    for problem in problems:
        print(problem)
    if problems:
        print(f"{len(problems)} undocumented public item(s) in {len(files)} file(s)")
        return 1
    print(f"docstring coverage: {len(files)} file(s) clean")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
