"""CI smoke for the multi-kernel cluster (``make cluster-smoke``).

Three independent gates, each a design claim of the cluster layer:

1. **Crash transparency** — a 2-shard cluster under seeded load takes
   one forced kernel crash per shard (rolling, one shard down at a
   time) and loses zero acknowledged operations; every shard audit and
   the cross-shard intent audit come back clean, and the storm acks
   exactly what the calm run acks.
2. **Cross-engine determinism** — the same campaign pinned to the
   reference engine (``fast_path=False``) and the hot engine
   (``fast_path=True``) produces bit-identical cluster digests.
3. **The 64-client cliff stays dead** — single-shard calm throughput
   at 64 clients is within 10x of 16 clients (the seed repo collapsed
   ~158x here: a fixed 48-page buffer cache plus one synchronous disk
   flush per eviction).

Exits non-zero on the first failed gate.  Pure stdlib + repro; no
pytest dependency, so CI can run it as a bare script.
"""

import sys

sys.path.insert(0, "src")

from repro.reliability import (  # noqa: E402
    ClusterTrafficConfig,
    TrafficConfig,
    run_cluster_campaign,
    run_traffic_campaign,
)
from repro.server import LoadSpec  # noqa: E402

LOAD = LoadSpec(ops_per_client=12, files_per_client=2)


def gate(name: str, ok: bool, detail: str) -> None:
    verdict = "ok" if ok else "FAIL"
    print(f"[cluster-smoke] {name}: {verdict} ({detail})")
    if not ok:
        sys.exit(1)


def campaign(crashes: int, fast_path=None):
    return run_cluster_campaign(
        ClusterTrafficConfig(
            shards=2,
            clients=8,
            crashes_per_shard=crashes,
            seed=13,
            router_mode="hash",
            jobs=2,
            load=LOAD,
            fast_path=fast_path,
        )
    )


def main() -> None:
    # Gate 1: rolling storm, zero lost acks, audits clean.
    calm = campaign(crashes=0)
    storm = campaign(crashes=1)
    gate(
        "storm zero-lost-acks",
        storm.ok and storm.lost_acks == 0 and storm.recoveries >= 2,
        f"lost={storm.lost_acks} recoveries={storm.recoveries} "
        f"audits_ok={storm.shard_audits_ok} intents_ok={storm.intent_audit.get('ok')}",
    )
    gate(
        "storm acks match calm",
        storm.load.acked == calm.load.acked
        and storm.cluster_digest == calm.cluster_digest,
        f"calm={calm.load.acked} storm={storm.load.acked}",
    )

    # Gate 2: cross-engine digest equality.
    reference = campaign(crashes=1, fast_path=False)
    hot = campaign(crashes=1, fast_path=True)
    gate(
        "cross-engine digest equality",
        reference.cluster_digest == hot.cluster_digest
        and reference.ok
        and hot.ok,
        f"ref={reference.cluster_digest[:16]} hot={hot.cluster_digest[:16]}",
    )

    # Gate 3: the single-shard 64-client cliff stays dead.
    def calm_throughput(clients: int) -> float:
        result = run_traffic_campaign(
            TrafficConfig(
                system="rio_prot",
                clients=clients,
                crashes=0,
                seed=7,
                load=LoadSpec(ops_per_client=10),
            )
        )
        assert result.ok, result.to_json_dict()
        return result.load.throughput_ops_per_vsec

    thr_16 = calm_throughput(16)
    thr_64 = calm_throughput(64)
    gate(
        "64-client perf floor",
        thr_64 * 10.0 > thr_16,
        f"16 clients {thr_16:,.0f} ops/vsec, 64 clients {thr_64:,.0f} "
        f"(ratio {thr_16 / max(thr_64, 1e-9):.2f}x, floor 10x)",
    )
    print("[cluster-smoke] all gates passed")


if __name__ == "__main__":
    main()
