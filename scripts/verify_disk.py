#!/usr/bin/env python
"""Disk-image verification smoke: dissect vs fsck, end to end.

The ``make verify-disk`` gate. Exercises the whole second-opinion
pipeline without pytest:

1. build a populated file system, flush it, dump it through the image
   container, and require the dissect scan to come back CLEAN;
2. inject known structural damage (a ghost inode whose data block lies
   beyond end-of-file, a leaked bitmap bit, a mangled inode slot) and
   require dissect to report exactly those finding kinds;
3. run fsck over the ghost-inode image and require the
   fsck-vs-dissect :class:`DivergenceReport` to fire — the constructed
   divergence the campaign plumbing exists to surface;
4. run a mini crash campaign (one counted crash per system) and require
   every recovered trial's second opinion to agree with fsck.

Exits non-zero on the first failed expectation.
"""

from __future__ import annotations

import os
import sys
import tempfile

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.fs.dissect import (  # noqa: E402
    FindingKind,
    compare_verdicts,
    dissect_image,
    dump_image,
    install,
    load_image,
    snapshot,
)


def fail(message: str) -> None:
    """Print the failed expectation and exit non-zero."""
    print(f"verify-disk: FAIL: {message}")
    raise SystemExit(1)


def step(message: str) -> None:
    """Progress line for one verification step."""
    print(f"verify-disk: {message}")


def build_image() -> bytearray:
    """A small aged file system, fully flushed, as raw image bytes."""
    from repro.reliability.campaign import system_spec_for
    from repro.system import build_system

    system = build_system(system_spec_for("rio_prot", fs_blocks=128))
    for i in range(8):
        fd = system.vfs.open(f"/file{i}", create=True)
        system.vfs.write(fd, bytes([i]) * (512 * (i + 1)))
        system.vfs.close(fd)
    system.vfs.mkdir("/dir")
    fd = system.vfs.open("/dir/nested", create=True)
    system.vfs.write(fd, b"nested")
    system.vfs.close(fd)
    system.fs.flush_data(sync=True)
    system.fs.flush_metadata(sync=True)
    system.drain_disks()
    return bytearray(snapshot(system.disk))


def inject_damage(image: bytearray) -> None:
    """Ghost inode beyond EOF + leaked bitmap bit + mangled inode slot."""
    from repro.fs.ondisk import (
        BLOCK_SIZE,
        DIRENT_SIZE,
        INODE_SIZE,
        INODES_PER_BLOCK,
        N_DIRECT,
        DirEntry,
        FileType,
        Inode,
        Superblock,
    )

    sb = Superblock.from_bytes(bytes(image[:BLOCK_SIZE]))
    bitmap_base = sb.bitmap_start * BLOCK_SIZE

    def bit(block: int) -> int:
        return image[bitmap_base + block // 8] >> (block % 8) & 1

    free_blocks = [
        b for b in range(sb.data_start, sb.total_blocks - 1) if not bit(b)
    ]
    free_inos = [
        ino
        for ino in range(1, sb.inode_blocks * INODES_PER_BLOCK)
        if image[
            sb.inode_start * BLOCK_SIZE
            + ino * INODE_SIZE : sb.inode_start * BLOCK_SIZE
            + (ino + 1) * INODE_SIZE
        ]
        == b"\x00" * INODE_SIZE
    ]

    # 1. The ghost: size 0 but one data block mapped (beyond EOF).
    ghost_ino, ghost_block = free_inos[0], free_blocks[0]
    direct = [0] * N_DIRECT
    direct[0] = ghost_block
    inode = Inode(ino=ghost_ino, ftype=FileType.REGULAR, nlink=1, size=0, direct=direct)
    off = sb.inode_start * BLOCK_SIZE + ghost_ino * INODE_SIZE
    image[off : off + INODE_SIZE] = inode.to_bytes()
    image[bitmap_base + ghost_block // 8] |= 1 << (ghost_block % 8)
    root_off = sb.inode_start * BLOCK_SIZE + sb.root_ino * INODE_SIZE
    root = Inode.from_bytes(sb.root_ino, bytes(image[root_off : root_off + INODE_SIZE]))
    base = root.direct[0] * BLOCK_SIZE
    for slot in range(base, base + BLOCK_SIZE, DIRENT_SIZE):
        if image[slot : slot + 4] == b"\x00\x00\x00\x00":
            image[slot : slot + DIRENT_SIZE] = DirEntry(ghost_ino, "ghost").to_bytes()
            break

    # 2. A leaked bitmap bit: allocated but claimed by no inode.
    leaked = free_blocks[1]
    image[bitmap_base + leaked // 8] |= 1 << (leaked % 8)

    # 3. A mangled inode slot.
    off = sb.inode_start * BLOCK_SIZE + free_inos[1] * INODE_SIZE
    image[off : off + INODE_SIZE] = b"\xa5" * INODE_SIZE


def main() -> int:
    """Run the four verification steps; 0 on success."""
    step("building and dumping a flushed image ...")
    image = build_image()
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "disk.rio")
        digest = dump_image(path, bytes(image), meta={"purpose": "verify-disk"})
        payload, meta = load_image(path)
        if payload != bytes(image) or meta["sha256"] != digest:
            fail("image container round-trip changed the payload")
    report = dissect_image(bytes(image))
    if not report.clean:
        fail(f"fresh flushed image is not clean: {report.counts_by_kind()}")
    step(f"clean image OK ({report.blocks_total} blocks, sha256 {digest[:16]})")

    step("injecting structural damage ...")
    inject_damage(image)
    report = dissect_image(bytes(image))
    found = {f.kind for f in report.findings}
    expected = {
        FindingKind.SIZE_MISMATCH,
        FindingKind.BITMAP_DISAGREEMENT,
        FindingKind.MANGLED_INODE,
    }
    if not expected <= found:
        fail(f"expected findings {expected - found} missing; got {report.counts_by_kind()}")
    step(f"damage detected: {report.counts_by_kind()}")

    step("fsck-vs-dissect divergence on the damaged image ...")
    from repro.disk.device import SimulatedDisk
    from repro.fs.fsck import fsck

    disk = SimulatedDisk("verify", num_sectors=len(image) // 512)
    install(disk, bytes(image))
    fsck_report = fsck(disk)
    # fsck repairs the leaked bit and clears the mangled slot, but the
    # beyond-EOF ghost block is damage it does not look for: dissect of
    # the pre-repair image vs fsck's verdict must diverge.
    verdict = compare_verdicts(
        fsck_unrecoverable=fsck_report.unrecoverable,
        fsck_fix_count=fsck_report.fix_count,
        report=report,
    )
    if verdict.agreed:
        fail("constructed divergent image did not fire a DivergenceReport")
    step(f"divergence fired: {verdict.details[0][:80]} ...")

    step("mini crash campaign: second opinions must agree with fsck ...")
    from repro.faults import FaultType
    from repro.reliability.campaign import CrashTestConfig, run_crash_test

    scanned = 0
    for system in ("disk", "rio_noprot", "rio_prot"):
        result = run_crash_test(
            CrashTestConfig(system=system, fault_type=FaultType.KERNEL_STACK, seed=2)
        )
        if result.discarded or result.divergence is None:
            continue
        scanned += 1
        if not result.divergence["agreed"]:
            fail(
                f"{system}: fsck and dissect diverged on a real trial: "
                f"{result.divergence['details']}"
            )
    if scanned == 0:
        fail("mini campaign produced no second opinions at all")
    step(f"campaign OK ({scanned} trials cross-checked)")
    print("verify-disk: PASS")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
