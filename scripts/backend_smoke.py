"""CI smoke for the tiered backing store (``make backend-smoke``).

Three independent gates, each a design claim of the backend tier:

1. **Zero lost acks over the remote tier** — a seeded tiered traffic
   campaign (forced crash storm) keeps every acknowledged op, every
   recovery reconciles the object store, and the final remote-only
   audit (local disk thrown away) passes.
2. **Outage recovery** — a kernel crash with the upload queue still
   dirty while the object store is *down*: the mount-time reconcile
   defers (as declared), and after the store heals one ``--batch``
   pass reconciles the tier so the materialized image matches the
   local disk bit for bit.
3. **Cross-engine seed purity** — the same tiered campaign pinned to
   the reference engine and the hot engine produces bit-identical ack,
   state and remote-image digests.

Exits non-zero on the first failed gate.  Pure stdlib + repro; no
pytest dependency, so CI can run it as a bare script.
"""

import sys
from dataclasses import replace

sys.path.insert(0, "src")

from repro.backend.fsck_remote import fsck_remote  # noqa: E402
from repro.reliability import TrafficConfig, run_traffic_campaign  # noqa: E402
from repro.reliability.campaign import system_spec_for  # noqa: E402
from repro.server import LoadSpec  # noqa: E402
from repro.system import build_system  # noqa: E402

SEED = 13


def gate(name: str, ok: bool, detail: str) -> None:
    verdict = "ok" if ok else "FAIL"
    print(f"[backend-smoke] {name}: {verdict} ({detail})")
    if not ok:
        sys.exit(1)


def campaign(fast_path=None):
    return run_traffic_campaign(
        TrafficConfig(
            system="rio_prot",
            clients=8,
            crashes=1,
            seed=SEED,
            load=LoadSpec(ops_per_client=12),
            backend="tiered",
            fast_path=fast_path,
        )
    )


def churn(system, prefix: str) -> None:
    system.vfs.mkdir(prefix)
    for i in range(12):
        fd = system.vfs.open(f"{prefix}/f{i}", create=True)
        system.vfs.write(fd, bytes([i]) * (512 + 64 * i))
        system.vfs.close(fd)
    system.fs.flush_data(sync=True)
    system.fs.flush_metadata(sync=True)
    system.drain_disks()


def main() -> None:
    # Gate 1: tiered storm, zero lost acks, remote-only audit passes.
    result = campaign()
    gate(
        "tiered-storm",
        result.ok and result.remote_ok and result.remote_reconciles >= 1,
        f"lost={result.lost_acks} reconciles={result.remote_reconciles} "
        f"uploads={(result.remote_stats or {}).get('uploads', 0)} "
        f"remote_ok={result.remote_ok}",
    )

    # Gate 2: crash dirty during an outage; heal; one batch pass reconciles.
    spec = system_spec_for(
        "rio_prot", fs_blocks=256, backend="tiered", backend_seed=SEED
    )
    system = build_system(spec)
    store = system.backing
    churn(system, "/base")
    store.drain_uploads()
    store.config = replace(store.config, dirty_threshold=10**9)
    churn(system, "/late")
    stranded = len(store._dirty)
    system.crash("backend smoke outage", kind="forced")
    store.config = replace(store.config, dirty_threshold=8)
    store.remote.set_down(True)
    report = system.reboot()
    deferred = report.remote is not None and report.remote.deferred
    store.remote.set_down(False)
    import hashlib

    check = fsck_remote(store, batch=True, force=True)
    materialized = hashlib.sha256(store.materialize()).hexdigest()
    healed = check.ok and materialized == store.local_image_sha256()
    gate(
        "outage-recovery",
        stranded > 0 and deferred and healed,
        f"stranded={stranded} deferred={deferred} repairs={check.repairs} "
        f"reconciled={check.ok}",
    )

    # Gate 3: hot and reference engines, bit-identical digests.
    hot = campaign(fast_path=True)
    ref = campaign(fast_path=False)
    same = (
        hot.ack_digest == ref.ack_digest
        and hot.state_digest == ref.state_digest
        and hot.remote_audit["image_sha256"] == ref.remote_audit["image_sha256"]
    )
    gate(
        "engine-purity",
        same,
        f"ack={hot.ack_digest[:12]} state={hot.state_digest[:12]} "
        f"remote={hot.remote_audit['image_sha256'][:12]}",
    )
    print("[backend-smoke] all gates passed")


if __name__ == "__main__":
    main()
