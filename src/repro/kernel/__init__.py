"""The simulated kernel: address space, heap, locks, syscalls, daemons.

The control plane is Python (with explicit sanity checks that panic, as a
production kernel's do); the data plane runs as mini-ISA code through the
memory bus (see :mod:`repro.isa`).  Critical kernel data structures —
buffer headers, the run queue, vnode chains, allocation headers — live as
real bytes in the kernel heap region of simulated physical memory, so bit
flips and allocation faults corrupt real state with mechanistic
consequences.
"""

from repro.kernel.layout import FramePool, KernelLayout
from repro.kernel.kmalloc import KernelHeap
from repro.kernel.locks import Lock, LockManager
from repro.kernel.klib import KLib
from repro.kernel.kernel import Kernel, KernelConfig

__all__ = [
    "FramePool",
    "KernelLayout",
    "KernelHeap",
    "Lock",
    "LockManager",
    "KLib",
    "Kernel",
    "KernelConfig",
]
