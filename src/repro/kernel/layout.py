"""Kernel address-space layout and the physical frame pool.

Mirrors the Digital Unix arrangement the paper describes: kernel text,
heap and stack in *mapped* (wired) kernel virtual memory; the buffer cache
in mapped virtual pages; the UBC and the Rio registry in physical pages
reached through KSEG addresses.  The registry is placed in a fixed run of
frames at the **top of physical memory** so that a rebooting kernel can
find it without any intermediate data structures — the point of keeping a
registry at all (section 2.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError, NoSpace

# Kernel virtual region bases (all page-aligned for 8 KB pages).
KTEXT_BASE = 0x0001_0000
KHEAP_BASE = 0x0100_0000
KSTACK_BASE = 0x0200_0000
KSTAGE_BASE = 0x0300_0000
KBUF_BASE = 0x0400_0000


@dataclass
class KernelLayout:
    """Page counts for each fixed kernel region."""

    heap_pages: int = 48
    stack_pages: int = 4
    staging_pages: int = 16
    #: Buffer cache capacity (metadata pages).  ``None`` (the default)
    #: auto-sizes it to an eighth of physical memory, floored at 48
    #: pages — "usually only a few megabytes" in Digital Unix, scaled
    #: with the machine so a many-client metadata working set does not
    #: thrash a fixed-size cache.  Set an explicit page count to pin it.
    buffer_cache_pages: int | None = None
    #: Registry frames reserved at the top of physical memory.
    registry_pages: int = 4

    #: Auto-sizing floor and memory fraction for the buffer cache.
    BUFFER_CACHE_MIN_PAGES = 48
    BUFFER_CACHE_MEMORY_FRACTION = 8

    def resolve_buffer_cache_pages(self, num_frames: int) -> int:
        """Buffer cache capacity for a machine with ``num_frames`` frames."""
        if self.buffer_cache_pages is not None:
            return self.buffer_cache_pages
        return max(
            self.BUFFER_CACHE_MIN_PAGES,
            num_frames // self.BUFFER_CACHE_MEMORY_FRACTION,
        )

    def validate(self, page_size: int) -> None:
        for base in (KTEXT_BASE, KHEAP_BASE, KSTACK_BASE, KSTAGE_BASE, KBUF_BASE):
            if base % page_size:
                raise ConfigurationError("region base not page aligned")


class FramePool:
    """Allocates physical frames.

    Frame 0 is never handed out (so that a null pointer dereference is an
    access to a frame no kernel data lives in, and KSEG address 0 is
    distinguishable from real buffers).
    """

    def __init__(self, num_frames: int, reserved_top: int = 0) -> None:
        if num_frames < 2 + reserved_top:
            raise ConfigurationError("too few frames")
        self.num_frames = num_frames
        self.reserved_top = reserved_top
        self._free: list[int] = list(range(num_frames - reserved_top - 1, 0, -1))
        self._allocated: set[int] = set()

    @property
    def free_count(self) -> int:
        return len(self._free)

    def alloc(self) -> int:
        """Allocate one frame (lowest-address-first for determinism)."""
        if not self._free:
            raise NoSpace("out of physical frames")
        pfn = self._free.pop()
        self._allocated.add(pfn)
        return pfn

    def alloc_many(self, count: int) -> list[int]:
        if count > len(self._free):
            raise NoSpace(f"cannot allocate {count} frames")
        return [self.alloc() for _ in range(count)]

    def free(self, pfn: int) -> None:
        if pfn not in self._allocated:
            raise ConfigurationError(f"double free of frame {pfn}")
        self._allocated.remove(pfn)
        self._free.append(pfn)

    def top_frames(self) -> list[int]:
        """The reserved top-of-memory frames (registry home)."""
        return list(range(self.num_frames - self.reserved_top, self.num_frames))


@dataclass
class Regions:
    """Resolved placement of every fixed kernel region."""

    text_frames: list[int] = field(default_factory=list)
    heap_frames: list[int] = field(default_factory=list)
    stack_frames: list[int] = field(default_factory=list)
    staging_frames: list[int] = field(default_factory=list)
    registry_frames: list[int] = field(default_factory=list)

    @property
    def heap_base(self) -> int:
        return KHEAP_BASE

    def stack_top(self, page_size: int) -> int:
        """Initial stack pointer (stacks grow down; a small redzone is left)."""
        return KSTACK_BASE + len(self.stack_frames) * page_size - 64
