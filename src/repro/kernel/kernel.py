"""The kernel: boots over a machine and hosts the file system stack.

Boot lays out the address space (text, heap, stack, staging, buffer cache
slots), loads the ISA kernel text into physical frames, and builds the
service objects (heap allocator, lock manager, klib, background activity).
Caches are created separately via :meth:`Kernel.init_caches` so a Rio
guard can be installed between boot and cache creation.

The kernel also owns the crash path: :meth:`go_down` classifies the fatal
exception, optionally performs the default Unix panic behaviour of writing
dirty data back to disk (which Rio turns off — section 2.3), and brings
the machine down.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import (
    ConfigurationError,
    IllegalInstruction,
    KernelPanic,
    MachineCheck,
    ProtectionTrap,
    SystemCrash,
    WatchdogTimeout,
)
from repro.fs.cache import BufferCache, CacheGuard, UnifiedBufferCache
from repro.fs.types import BLOCK_SIZE
from repro.hw.clock import NS_PER_SEC
from repro.hw.machine import Machine
from repro.isa.interpreter import Interpreter
from repro.isa.routines import build_kernel_text
from repro.kernel.background import BackgroundActivity
from repro.kernel.klib import KLib
from repro.kernel.kmalloc import KernelHeap
from repro.kernel.layout import (
    KBUF_BASE,
    KHEAP_BASE,
    KSTACK_BASE,
    KSTAGE_BASE,
    KTEXT_BASE,
    FramePool,
    KernelLayout,
    Regions,
)
from repro.kernel.locks import LockManager


@dataclass
class KernelConfig:
    """Kernel-wide tunables."""

    layout: KernelLayout = field(default_factory=KernelLayout)
    #: CPU cost model: virtual nanoseconds per interpreted instruction.
    #: ~50 effective MIPS: the paper's 175 MHz Alpha 21064 spent much of
    #: its copy path stalled on memory, so the effective per-instruction
    #: cost is well above one cycle.
    ns_per_instruction: float = 20.0
    #: Fixed CPU cost of entering a system call.
    syscall_overhead_ns: int = 25_000
    #: Reduced entry cost for syscalls after the first inside a
    #: :meth:`Kernel.begin_batch` scope (trap taken once, warm caches):
    #: the file service's batched submission path relies on this.
    batch_syscall_overhead_ns: int = 2_500
    #: Charge CPU time at all (reliability campaigns turn this off).
    charge_time: bool = True
    #: The update daemon's flush interval ("once every 30 seconds").
    update_interval_ns: int = 30 * NS_PER_SEC
    #: Default Unix panic behaviour: flush dirty buffers on the way down.
    #: Rio disables this (section 2.3).
    panic_syncs_dirty: bool = True
    #: Run one quantum of background kernel activity every N syscalls.
    background_interval_ops: int = 1
    #: Frames the UBC must leave free for the rest of the kernel.
    ubc_reserve_frames: int = 16


CRASH_KINDS = {
    MachineCheck: "machine_check",
    ProtectionTrap: "protection_trap",
    KernelPanic: "panic",
    IllegalInstruction: "illegal_instruction",
    WatchdogTimeout: "watchdog",
}

#: Crash kinds on which the panic procedure still runs (and, by default,
#: syncs dirty data).  A hung machine never reaches panic.
_PANIC_PATH_KINDS = {"panic", "machine_check", "illegal_instruction", "protection_trap"}


class Kernel:
    """A booted kernel instance over a :class:`~repro.hw.Machine`."""

    def __init__(self, machine: Machine, config: KernelConfig | None = None) -> None:
        self.machine = machine
        self.config = config or KernelConfig()
        self.page_size = machine.memory.page_size
        if self.page_size != BLOCK_SIZE:
            raise ConfigurationError("kernel requires page size == fs block size")
        self.memory = machine.memory
        self.mmu = machine.mmu
        self.bus = machine.bus
        self.clock = machine.clock
        #: Flight recorder convenience handle (see :mod:`repro.obs`);
        #: ``None``-safe so hand-rolled machine doubles keep working.
        self.recorder = getattr(machine, "recorder", None)
        self.config.layout.validate(self.page_size)

        layout = self.config.layout
        # Reserve enough top-of-memory frames that the registry can hold
        # one entry per physical page (every page could be a file buffer).
        from repro.core.registry import ENTRY_SIZE, HEADER_SIZE

        needed = -(-(HEADER_SIZE + self.memory.num_pages * ENTRY_SIZE) // self.page_size)
        registry_pages = max(layout.registry_pages, needed)
        self.frames = FramePool(
            self.memory.num_pages, reserved_top=registry_pages
        )
        self.regions = Regions(registry_frames=self.frames.top_frames())
        self._boot_text()
        self._boot_region("heap_frames", KHEAP_BASE, layout.heap_pages)
        self._boot_region("stack_frames", KSTACK_BASE, layout.stack_pages)
        self._boot_region("staging_frames", KSTAGE_BASE, layout.staging_pages)

        self.interp = Interpreter(self.bus, self.text)
        self.klib = KLib(
            self.interp,
            self.clock,
            self.regions.stack_top(self.page_size),
            ns_per_instruction=self.config.ns_per_instruction,
        )
        self.klib.charge_time = self.config.charge_time
        self.heap = KernelHeap(
            self.bus, KHEAP_BASE, layout.heap_pages * self.page_size
        )
        self.locks = LockManager()
        self.background = BackgroundActivity(self)

        self.block_devices: dict[int, object] = {}
        self.filesystems: dict[int, object] = {}
        self.buffer_cache: BufferCache | None = None
        self.ubc: UnifiedBufferCache | None = None
        self.guard: CacheGuard | None = None
        self.reliability_writes_off = False
        #: Tiered backing store behind the root disk (see
        #: :mod:`repro.backend`), re-pointed by the owning System on
        #: every boot; ``None`` means the local disk is the only tier.
        self.backing = None

        self._next_update_ns = self.clock.now_ns + self.config.update_interval_ns
        self._in_update = False
        self._op_counter = 0
        self.stat_syscalls = 0
        self.stat_update_runs = 0
        self.stat_batched_syscalls = 0
        self._batch_depth = 0
        self._batch_first_charged = False

    # -- boot helpers ------------------------------------------------------

    def _boot_text(self) -> None:
        self.text = build_kernel_text()
        npages = -(-self.text.size_bytes // self.page_size)
        pfns = self.frames.alloc_many(npages)
        if pfns != list(range(pfns[0], pfns[0] + npages)):
            raise ConfigurationError("boot text frames not contiguous")
        self.regions.text_frames = pfns
        self.text.load(self.memory, pfns[0] * self.page_size, KTEXT_BASE)
        for i, pfn in enumerate(pfns):
            # Kernel text is mapped read-only, as on a real system.
            self.mmu.map(KTEXT_BASE // self.page_size + i, pfn, writable=False)

    def install_kernel_text(self, text) -> None:
        """Replace the kernel text image (e.g. with a code-patched build).

        The new image is loaded into freshly allocated contiguous frames
        and remapped at ``KTEXT_BASE`` before the old frames are released
        — allocating first keeps the pool's ascending run intact so the
        contiguity requirement holds.
        """
        npages = -(-text.size_bytes // self.page_size)
        pfns = self.frames.alloc_many(npages)
        if pfns != list(range(pfns[0], pfns[0] + npages)):
            raise ConfigurationError("replacement text frames not contiguous")
        old_pfns = self.regions.text_frames
        old_npages = len(old_pfns)
        text.load(self.memory, pfns[0] * self.page_size, KTEXT_BASE)
        for i, pfn in enumerate(pfns):
            self.mmu.map(KTEXT_BASE // self.page_size + i, pfn, writable=False)
        for i in range(npages, old_npages):  # stale tail mappings, if shrinking
            self.mmu.unmap(KTEXT_BASE // self.page_size + i)
        self.regions.text_frames = pfns
        self.text = text
        self.interp.text = text
        for pfn in old_pfns:
            self.frames.free(pfn)

    def _boot_region(self, name: str, base: int, npages: int) -> None:
        pfns = self.frames.alloc_many(npages)
        setattr(self.regions, name, pfns)
        for i, pfn in enumerate(pfns):
            self.mmu.map(base // self.page_size + i, pfn, writable=True)

    # -- cache creation ---------------------------------------------------------

    def init_caches(self, guard: CacheGuard | None = None) -> None:
        """Create the buffer cache and UBC, optionally Rio-guarded."""
        self.guard = guard or CacheGuard()
        layout = self.config.layout
        meta_capacity = layout.resolve_buffer_cache_pages(self.frames.num_frames)
        self.buffer_cache = BufferCache(
            self, meta_capacity, KBUF_BASE, self.guard
        )
        # Budget the UBC so that both caches filled to capacity still fit
        # in the frame pool (plus the reserve for transient allocations).
        ubc_capacity = max(
            8,
            self.frames.free_count
            - meta_capacity
            - self.config.ubc_reserve_frames,
        )
        self.ubc = UnifiedBufferCache(self, ubc_capacity, self.guard)

    @property
    def registry_frames(self) -> list[int]:
        return self.regions.registry_frames

    # -- devices and file systems --------------------------------------------------

    def attach_block_device(self, dev: int, disk) -> None:
        self.block_devices[dev] = disk

    def block_device(self, dev: int):
        if dev not in self.block_devices:
            raise ConfigurationError(f"no block device {dev}")
        return self.block_devices[dev]

    def register_filesystem(self, dev: int, fs) -> None:
        self.filesystems[dev] = fs

    # -- data staging (the "user buffer" the kernel copies in from) -------------------

    def charge_copy(self, nbytes: int) -> None:
        """CPU cost of moving ``nbytes`` through a kernel copy path —
        used for copy-out on reads (copy-in costs come from the ISA data
        plane) and by MFS.  ~1.25 instructions per byte, the 8-byte-loop
        bcopy rate."""
        if self.config.charge_time and nbytes:
            self.clock.consume(int(nbytes * 1.25 * self.config.ns_per_instruction))

    def stage_data(self, data: bytes) -> int:
        """Place user data in the staging region; returns its kernel vaddr.

        The store models the *user process* writing its own buffer, so it
        bypasses the kernel store path (no protection checks, no charge).
        """
        limit = len(self.regions.staging_frames) * self.page_size
        if len(data) > limit:
            raise ConfigurationError(f"staging overflow: {len(data)} > {limit}")
        vaddr = KSTAGE_BASE
        pos = 0
        while pos < len(data):
            page_off = (vaddr + pos) % self.page_size
            take = min(len(data) - pos, self.page_size - page_off)
            paddr = self.mmu.translate(vaddr + pos, write=False)
            self.memory.write(paddr, data[pos : pos + take])
            pos += take
        return vaddr

    # -- syscall bookkeeping, daemons, preemption ---------------------------------------

    def begin_batch(self) -> None:
        """Enter a batched-syscall scope (nestable).

        The first syscall inside the scope pays the full
        ``syscall_overhead_ns`` prologue; subsequent ones pay the
        reduced ``batch_syscall_overhead_ns`` — one trap, warm
        entry path.  Only the fixed entry cost changes; per-byte and
        per-instruction costs are charged as usual.
        """
        if self._batch_depth == 0:
            self._batch_first_charged = False
        self._batch_depth += 1

    def end_batch(self) -> None:
        """Leave a batched-syscall scope opened by :meth:`begin_batch`."""
        if self._batch_depth > 0:
            self._batch_depth -= 1

    def syscall_entered(self) -> None:
        """Common prologue: charge overhead, run background kernel work,
        let the update daemon fire if its deadline passed."""
        self.machine.require_up()
        self.stat_syscalls += 1
        self._op_counter += 1
        if self.config.charge_time:
            if self._batch_depth > 0 and self._batch_first_charged:
                self.stat_batched_syscalls += 1
                self.clock.consume(self.config.batch_syscall_overhead_ns)
            else:
                self._batch_first_charged = True
                self.clock.consume(self.config.syscall_overhead_ns)
        if self.config.background_interval_ops and (
            self._op_counter % self.config.background_interval_ops == 0
        ):
            self.background.run_once()
        self.maybe_run_update()

    def maybe_run_update(self) -> None:
        if self.clock.now_ns >= self._next_update_ns:
            self.run_update_daemon()

    def run_update_daemon(self) -> None:
        """The 30-second flush daemon."""
        if self._in_update:
            return
        self._in_update = True
        try:
            self.stat_update_runs += 1
            self._next_update_ns = self.clock.now_ns + self.config.update_interval_ns
            for fs in self.filesystems.values():
                fs.periodic_flush()
        finally:
            self._in_update = False

    def preemption_point(self) -> None:
        """A point inside a multi-step metadata update where, if a lock
        acquire was elided (synchronization fault), the update daemon may
        preempt and flush half-finished state to disk."""
        if self.locks.any_racing():
            self.run_update_daemon()

    # -- the crash path ---------------------------------------------------------------------

    def go_down(self, exc: SystemCrash) -> None:
        """Bring the system down on a fatal exception.

        By default the Unix panic procedure writes dirty data back to disk
        on the way down; Rio disables that (``reliability_writes_off``).
        """
        if self.machine.crashed:
            return
        kind = CRASH_KINDS.get(type(exc), "panic")
        rec = self.recorder
        if rec is not None and rec.enabled:
            rec.emit(
                "crash",
                kind,
                reason=str(exc),
                panic_code=exc.code if isinstance(exc, KernelPanic) else None,
            )
        if (
            self.config.panic_syncs_dirty
            and not self.reliability_writes_off
            and kind in _PANIC_PATH_KINDS
        ):
            try:
                if self.buffer_cache is not None:
                    self.buffer_cache.flush_all(sync=False)
                if self.ubc is not None:
                    self.ubc.flush_all(sync=False)
                # The flushes are queued asynchronously; whichever have not
                # reached the platter when machine.crash() resolves the disk
                # queue are lost or torn — a dying kernel's sync is racy.
            except Exception:
                pass  # a dying kernel's sync often fails part way
        self.machine.crash(str(exc), kind=kind)
