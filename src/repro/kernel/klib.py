"""klib: the kernel's data-movement entry points.

Every call goes through the ISA machinery (native fast path for pristine
routines, interpreted execution for corrupted ones) and charges virtual
CPU time for the instructions executed.  This is also where two of the
paper's high-level faults hook in:

* **copy overrun** — ``bcopy`` consults :attr:`KLib.overrun_hook` and may
  copy more bytes than asked ("modifying the kernel's bcopy procedure to
  occasionally increase the number of bytes it copies").

Under code-patching protection the text image itself carries the inserted
address checks (see :mod:`repro.isa.analysis.patch`), every routine runs
on the interpreter, and the 20-50% slowdown of section 2.1 emerges from
the extra instructions actually executed — nothing is surcharged here.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.hw.bus import AccessContext, KERNEL_CONTEXT
from repro.hw.clock import Clock
from repro.isa.interpreter import CallResult, Interpreter


class KLib:
    """Kernel library routines over the interpreter."""

    def __init__(
        self,
        interpreter: Interpreter,
        clock: Clock,
        stack_top: int,
        ns_per_instruction: float = 10.0,
    ) -> None:
        self.interp = interpreter
        self.clock = clock
        self.stack_top = stack_top
        self.ns_per_instruction = ns_per_instruction
        #: Copy-overrun fault hook: ``hook(length) -> possibly larger length``.
        self.overrun_hook: Optional[Callable[[int], int]] = None
        #: When False (reliability campaigns), no CPU time is charged.
        self.charge_time = True
        self.stat_instructions = 0

    # -- internals -----------------------------------------------------------

    def _run(
        self,
        name: str,
        args: list[int],
        ctx: AccessContext,
        max_steps: int | None = None,
    ) -> CallResult:
        result = self.interp.call(name, args, ctx=ctx, sp=self.stack_top, max_steps=max_steps)
        steps = result.steps
        self.stat_instructions += steps
        if self.charge_time and steps:
            self.clock.consume(int(steps * self.ns_per_instruction))
        return result

    # -- public routines -------------------------------------------------------

    def bcopy(
        self,
        src: int,
        dst: int,
        length: int,
        ctx: AccessContext = KERNEL_CONTEXT,
    ) -> int:
        """Copy ``length`` bytes — possibly more, if an overrun fault fires."""
        if self.overrun_hook is not None:
            length = self.overrun_hook(length)
        return self._run("bcopy", [src, dst, length], ctx).value

    def bzero(self, dst: int, length: int, ctx: AccessContext = KERNEL_CONTEXT) -> int:
        return self._run("bzero", [dst, length], ctx).value

    def cache_copy(
        self,
        hdr: int,
        src: int,
        offset: int,
        length: int,
        ctx: AccessContext = KERNEL_CONTEXT,
    ) -> int:
        """Copy through a buffer header (magic + bounds checked in the ISA)."""
        return self._run("cache_copy", [hdr, src, offset, length], ctx).value

    def checksum_block(self, addr: int, length: int, ctx: AccessContext = KERNEL_CONTEXT) -> int:
        return self._run("checksum_block", [addr, length], ctx).value

    def sched_tick(self, head_ptr: int, ctx: AccessContext = KERNEL_CONTEXT) -> None:
        self._run("sched_tick", [head_ptr], ctx, max_steps=100_000)

    def vnode_scan(self, table: int, nbuckets: int, ctx: AccessContext = KERNEL_CONTEXT) -> None:
        self._run("vnode_scan", [table, nbuckets], ctx, max_steps=100_000)
