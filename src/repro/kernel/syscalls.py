"""The VFS / system call layer.

Thin by design: file descriptor bookkeeping, path dispatch and the common
syscall prologue (CPU overhead, background kernel activity, the update
daemon's deadline check).  Every syscall body is wrapped so that a
:class:`~repro.errors.SystemCrash` raised anywhere below — a wild store
trapping, a consistency panic, a watchdog — takes the machine down through
:meth:`Kernel.go_down` before propagating to the workload harness.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass

from repro.errors import (
    BadFileDescriptor,
    CrossDevice,
    FileNotFound,
    FileSystemError,
    InvalidArgument,
    SystemCrash,
)
from repro.fs.types import Whence


@dataclass
class OpenFile:
    fd: int
    ino: int
    fs: object = None
    offset: int = 0


class VFS:
    """System call interface over a root file system plus optional mounts.

    ``mounts`` maps path prefixes to additional file systems (e.g. an MFS
    at ``/mfs``, as Table 2's MFS row requires: the source tree lives on
    the disk-backed root while the benchmark target is memory-resident).
    """

    #: Largest single chunk handed to the file system per write (bounded
    #: by the kernel staging region).
    MAX_IO_CHUNK = 64 * 1024

    def __init__(self, kernel, fs, mounts: dict | None = None) -> None:
        self.kernel = kernel
        self.fs = fs
        #: (prefix, fs) longest-prefix-first.
        self._mounts = sorted(
            (mounts or {}).items(), key=lambda item: -len(item[0])
        )
        self._files: dict[int, OpenFile] = {}
        self._next_fd = 3  # 0-2 reserved, as tradition demands

    # -- plumbing -----------------------------------------------------------

    def _resolve(self, path: str) -> tuple[object, str]:
        """Pick the file system owning ``path``; return (fs, subpath)."""
        for prefix, fs in self._mounts:
            if path == prefix or path.startswith(prefix + "/"):
                sub = path[len(prefix) :] or "/"
                return fs, sub
        return self.fs, path

    def _enter(self) -> None:
        self.kernel.syscall_entered()

    def _run(self, body, name: str = "syscall"):
        """Run a syscall body, converting fatal errors into a machine crash.

        Emits ``syscall`` entry/exit events into the flight recorder when
        one is attached and running; a body that raises (crash or fs
        error) leaves no exit event, so an open entry marks the syscall
        the system died inside.
        """
        rec = getattr(self.kernel, "recorder", None)
        trace = rec is not None and rec.enabled
        if trace:
            rec.emit("syscall", name, phase="enter")
        try:
            self._enter()
            out = body()
        except SystemCrash as exc:
            self.kernel.go_down(exc)
            raise
        if trace:
            rec.emit("syscall", name, phase="exit")
        return out

    def _file(self, fd: int) -> OpenFile:
        if fd not in self._files:
            raise BadFileDescriptor(f"fd {fd}")
        return self._files[fd]

    # -- batched entry ------------------------------------------------------

    @contextmanager
    def batch(self):
        """Scope in which syscalls share one trap's fixed entry cost.

        The first syscall inside the scope pays the kernel's full
        ``syscall_overhead_ns`` prologue; the rest pay the reduced
        ``batch_syscall_overhead_ns``.  Semantics are unchanged —
        errors and crashes propagate exactly as unbatched — only the
        fixed per-call CPU charge drops.  The file service wraps each
        scheduled batch in one of these scopes.
        """
        self.kernel.begin_batch()
        try:
            yield self
        finally:
            # The kernel object may have been replaced by a reboot
            # mid-scope; closing the old one's scope is still correct
            # (the new kernel boots with a zero batch depth).
            self.kernel.end_batch()

    def run_batch(self, calls: list) -> list:
        """Execute ``calls`` — ``(method_name, *args)`` tuples — batched.

        Returns one result per call, in order; a call that fails with a
        file-system error contributes the *exception object* instead of
        a result and the batch keeps going.  A crash propagates
        immediately (trailing calls never run).
        """
        results = []
        with self.batch():
            for name, *args in calls:
                method = getattr(self, name, None)
                if method is None or name.startswith("_"):
                    raise InvalidArgument(f"unknown syscall {name!r}")
                try:
                    results.append(method(*args))
                except FileSystemError as exc:
                    results.append(exc)
        return results

    # -- file descriptor syscalls ------------------------------------------------

    def open(self, path: str, *, create: bool = False, truncate: bool = False) -> int:
        """Open ``path``; optionally create or truncate.  Returns a file
        descriptor."""
        def body():
            fs, sub = self._resolve(path)
            try:
                ino = fs.namei(sub)
                if truncate:
                    fs.truncate(ino)
            except FileNotFound:
                if not create:
                    raise
                ino = fs.create(sub)
            fd = self._next_fd
            self._next_fd += 1
            self._files[fd] = OpenFile(fd=fd, ino=ino, fs=fs)
            return fd

        return self._run(body, "open")

    def creat(self, path: str) -> int:
        """Create (or open an existing) file; returns a descriptor."""
        return self.open(path, create=True, truncate=False)

    def close(self, fd: int) -> None:
        """Close a descriptor (runs the policy's close hook — the moment
        write-through-on-close systems make data permanent)."""
        def body():
            open_file = self._file(fd)
            del self._files[fd]
            open_file.fs.close_hook(open_file.ino)

        return self._run(body, "close")

    def write(self, fd: int, data: bytes) -> int:
        """Write at the current offset; returns bytes written."""
        def body():
            open_file = self._file(fd)
            written = 0
            while written < len(data):
                chunk = data[written : written + self.MAX_IO_CHUNK]
                open_file.fs.write(open_file.ino, open_file.offset, chunk)
                open_file.offset += len(chunk)
                written += len(chunk)
            return written

        return self._run(body, "write")

    def read(self, fd: int, length: int) -> bytes:
        """Read up to ``length`` bytes from the current offset."""
        def body():
            open_file = self._file(fd)
            data = open_file.fs.read(open_file.ino, open_file.offset, length)
            open_file.offset += len(data)
            return data

        return self._run(body, "read")

    def pwrite(self, fd: int, data: bytes, offset: int) -> int:
        """Positional write; the descriptor offset is not moved."""
        def body():
            open_file = self._file(fd)
            written = 0
            while written < len(data):
                chunk = data[written : written + self.MAX_IO_CHUNK]
                open_file.fs.write(open_file.ino, offset + written, chunk)
                written += len(chunk)
            return written

        return self._run(body, "pwrite")

    def pread(self, fd: int, length: int, offset: int) -> bytes:
        """Positional read; the descriptor offset is not moved."""
        def body():
            open_file = self._file(fd)
            return open_file.fs.read(open_file.ino, offset, length)

        return self._run(body, "pread")

    def lseek(self, fd: int, offset: int, whence: Whence = Whence.SET) -> int:
        """Move the descriptor offset; returns the new offset."""
        def body():
            open_file = self._file(fd)
            if whence == Whence.SET:
                new = offset
            elif whence == Whence.CUR:
                new = open_file.offset + offset
            else:
                new = open_file.fs.size_of(open_file.ino) + offset
            if new < 0:
                raise InvalidArgument("negative seek")
            open_file.offset = new
            return new

        return self._run(body, "lseek")

    def fsync(self, fd: int) -> None:
        """Force the file durable — a real disk wait on conventional
        systems; an immediate return on Rio (memory is stable)."""
        def body():
            open_file = self._file(fd)
            open_file.fs.fsync(open_file.ino)

        return self._run(body, "fsync")

    def ftruncate(self, fd: int) -> None:
        """Truncate the open file to zero length."""
        def body():
            open_file = self._file(fd)
            open_file.fs.truncate(open_file.ino)

        return self._run(body, "ftruncate")

    # -- path syscalls ----------------------------------------------------------

    def unlink(self, path: str) -> None:
        """Remove a name; the file dies with its last name."""
        fs, sub = self._resolve(path)
        return self._run(lambda: fs.unlink(sub), "unlink")

    def mkdir(self, path: str) -> None:
        """Create a directory."""
        fs, sub = self._resolve(path)
        return self._run(lambda: fs.mkdir(sub) and None, "mkdir")

    def rmdir(self, path: str) -> None:
        """Remove an empty directory."""
        fs, sub = self._resolve(path)
        return self._run(lambda: fs.rmdir(sub), "rmdir")

    def rename(self, old: str, new: str) -> None:
        """Rename within one file system (EXDEV across mounts)."""
        old_fs, old_sub = self._resolve(old)
        new_fs, new_sub = self._resolve(new)
        if old_fs is not new_fs:
            raise CrossDevice(f"rename across mounts: {old} -> {new}")
        return self._run(lambda: old_fs.rename(old_sub, new_sub), "rename")

    def symlink(self, target: str, link_path: str) -> None:
        """Create a symbolic link at ``link_path`` pointing to ``target``."""
        fs, sub = self._resolve(link_path)
        return self._run(lambda: fs.symlink(target, sub) and None, "symlink")

    def readlink(self, path: str) -> str:
        """Return a symlink's target without following it."""
        fs, sub = self._resolve(path)
        return self._run(lambda: fs.readlink(sub), "readlink")

    def link(self, existing: str, new_path: str) -> None:
        """Create a hard link (EXDEV across mounts)."""
        old_fs, old_sub = self._resolve(existing)
        new_fs, new_sub = self._resolve(new_path)
        if old_fs is not new_fs:
            raise CrossDevice(f"link across mounts: {existing} -> {new_path}")
        return self._run(lambda: old_fs.link(old_sub, new_sub), "link")

    def readdir(self, path: str) -> list[str]:
        """List a directory (sorted; "." and ".." omitted)."""
        fs, sub = self._resolve(path)
        return self._run(lambda: fs.readdir(sub), "readdir")

    def stat(self, path: str):
        """Return the inode/node behind ``path`` (follows symlinks)."""
        fs, sub = self._resolve(path)
        return self._run(lambda: fs.stat(sub), "stat")

    def exists(self, path: str) -> bool:
        """True when ``path`` resolves."""
        fs, sub = self._resolve(path)
        return self._run(lambda: fs.exists(sub), "exists")

    def sync(self) -> None:
        """Flush all mounted file systems per their policies."""
        def body():
            self.fs.sync()
            for _, fs in self._mounts:
                fs.sync()

        return self._run(body, "sync")

    @property
    def open_fds(self) -> list[int]:
        """Currently open descriptors (ascending)."""
        return sorted(self._files)
