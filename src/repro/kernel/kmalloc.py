"""The kernel heap: kmalloc/kfree over a region of simulated memory.

Allocation headers are real bytes in the heap (magic + size ahead of each
block), so heap corruption — from bit flips, copy overruns past a block's
end, or the injected *allocation management* fault that prematurely frees
a live block — has mechanistic consequences: a clobbered header turns the
next ``kfree`` into a kernel panic; a prematurely freed block gets reused
and two owners scribble over each other.

The *allocation fault hook* implements the paper's fault: "modifying the
kernel malloc procedure to occasionally ... prematurely free the newly
allocated block of memory".
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.errors import KernelPanic, NoSpace
from repro.hw.bus import AccessContext, MemoryBus

KMALLOC_MAGIC = 0x4D41_4C4C  # "MALL"
HEADER_BYTES = 16
MIN_BLOCK = 32


class KernelHeap:
    """A first-fit allocator with in-memory block headers."""

    def __init__(self, bus: MemoryBus, base: int, size: int) -> None:
        self.bus = bus
        self.base = base
        self.size = size
        #: Free list of (addr, size) spans, address-ordered.
        self._free: list[tuple[int, int]] = [(base, size)]
        self._live: dict[int, int] = {}  # user addr -> block size
        #: Hook invoked after every kmalloc: ``hook(user_addr, size)``.
        #: Used by the fault injector for allocation-management faults.
        self.alloc_hook: Optional[Callable[[int, int], None]] = None
        self.stat_allocs = 0
        self.stat_frees = 0

    def _ctx(self) -> AccessContext:
        return AccessContext(procedure="kmalloc")

    def kmalloc(self, size: int) -> int:
        """Allocate ``size`` bytes; returns the user address."""
        if size <= 0:
            raise ValueError("kmalloc size must be positive")
        need = max(MIN_BLOCK, HEADER_BYTES + ((size + 7) & ~7))
        for index, (addr, span) in enumerate(self._free):
            if span >= need:
                remainder = span - need
                if remainder >= MIN_BLOCK:
                    self._free[index] = (addr + need, remainder)
                else:
                    need = span
                    del self._free[index]
                user = addr + HEADER_BYTES
                self.bus.store_u64(addr, (need << 32) | KMALLOC_MAGIC, self._ctx())
                self._live[user] = need
                self.stat_allocs += 1
                if self.alloc_hook is not None:
                    self.alloc_hook(user, size)
                return user
        raise NoSpace("kernel heap exhausted")

    def kfree(self, user: int) -> None:
        """Free a block; panics on a corrupted or bogus header, as a real
        kernel's consistency checks would."""
        addr = user - HEADER_BYTES
        header = self.bus.load_u64(addr, self._ctx())
        if header & 0xFFFFFFFF != KMALLOC_MAGIC:
            raise KernelPanic("kfree: bad allocation header magic")
        size = header >> 32
        if self._live.get(user) != size:
            raise KernelPanic("kfree: block not allocated (double free?)")
        del self._live[user]
        self.bus.store_u64(addr, 0, self._ctx())  # poison the header
        self.stat_frees += 1
        self._insert_free(addr, size)

    def _insert_free(self, addr: int, size: int) -> None:
        """Insert a span, coalescing with address-adjacent neighbours."""
        self._free.append((addr, size))
        self._free.sort()
        merged: list[tuple[int, int]] = []
        for span_addr, span_size in self._free:
            if merged and merged[-1][0] + merged[-1][1] == span_addr:
                merged[-1] = (merged[-1][0], merged[-1][1] + span_size)
            else:
                merged.append((span_addr, span_size))
        self._free = merged

    def is_live(self, user: int) -> bool:
        return user in self._live

    @property
    def live_blocks(self) -> int:
        return len(self._live)

    @property
    def free_bytes(self) -> int:
        return sum(size for _, size in self._free)
