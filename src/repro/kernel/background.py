"""Background kernel activity: the generic-kernel-code fault surface.

On a real system, most injected faults land in code that has nothing to do
with the file cache, and most crashes come from that code tripping over
illegal addresses or its own consistency checks (section 3.3).  To give
our injector the same target surface, the kernel maintains a run queue and
a vnode hash table as real linked structures in heap memory and walks them
constantly between workload operations (``sched_tick`` / ``vnode_scan`` in
the ISA).  Faults in their text or data crash the machine in varied,
realistic ways — panics, machine checks, watchdog hangs — almost never
touching file data.
"""

from __future__ import annotations

from repro.hw.bus import AccessContext
from repro.isa.routines import PROC_MAGIC, VNODE_MAGIC

PROC_NODE_BYTES = 32
VNODE_BYTES = 32


class BackgroundActivity:
    """Builds and exercises the background kernel data structures."""

    def __init__(
        self,
        kernel,
        num_procs: int = 8,
        num_buckets: int = 8,
        vnodes_per_bucket: int = 2,
        bcopy_every: int = 4,
    ) -> None:
        self.kernel = kernel
        self.num_procs = num_procs
        self.num_buckets = num_buckets
        self.bcopy_every = bcopy_every
        ctx = AccessContext(procedure="background_init")
        heap = kernel.heap
        bus = kernel.bus

        # Run queue: singly-linked list of proc structs.
        self.runqueue_head = heap.kmalloc(8)
        proc_addrs = [heap.kmalloc(PROC_NODE_BYTES) for _ in range(num_procs)]
        bus.store_u64(self.runqueue_head, proc_addrs[0] if proc_addrs else 0, ctx)
        for i, addr in enumerate(proc_addrs):
            bus.store_u64(addr, PROC_MAGIC, ctx)
            nxt = proc_addrs[i + 1] if i + 1 < len(proc_addrs) else 0
            bus.store_u64(addr + 8, nxt, ctx)
            bus.store_u64(addr + 16, 0, ctx)

        # Vnode hash table: buckets of singly-linked chains.
        self.vnode_table = heap.kmalloc(8 * num_buckets)
        for bucket in range(num_buckets):
            prev = 0
            for _ in range(vnodes_per_bucket):
                node = heap.kmalloc(VNODE_BYTES)
                bus.store_u64(node, VNODE_MAGIC, ctx)
                bus.store_u64(node + 8, prev, ctx)
                bus.store_u64(node + 16, 0, ctx)
                prev = node
            bus.store_u64(self.vnode_table + 8 * bucket, prev, ctx)

        # A "sleeping thread's" saved context on the kernel stack.  Real
        # kernel stacks hold the frames of suspended threads, which is
        # what stack bit flips corrupt on a real machine; our interpreter
        # calls are leaf-only, so we park the context switcher's saved
        # pointers (run queue, vnode table) on the stack and reload them
        # every tick — a flip there sends the next walk into the weeds.
        self.saved_context = kernel.klib.stack_top - 256
        bus.store_u64(self.saved_context, self.runqueue_head, ctx)
        bus.store_u64(self.saved_context + 8, self.vnode_table, ctx)

        # Scratch buffers moved around by background bcopys.  On a real
        # kernel most bcopy traffic is unrelated to the file cache
        # (networking, IPC, ...), so most copy-overrun firings smash
        # kernel heap neighbours, not file pages; these copies recreate
        # that target profile.
        self.scratch_src = heap.kmalloc(160)
        self.scratch_dst = heap.kmalloc(160)

        self.ticks_run = 0

    def run_once(self) -> None:
        """One quantum of background kernel work."""
        klib = self.kernel.klib
        ctx = AccessContext(procedure="context_switch")
        # "Context switch": reload the walkers' base pointers from the
        # saved context on the kernel stack.
        runqueue_head = self.kernel.bus.load_u64(self.saved_context, ctx)
        vnode_table = self.kernel.bus.load_u64(self.saved_context + 8, ctx)
        klib.sched_tick(runqueue_head, AccessContext(procedure="sched_tick"))
        klib.vnode_scan(
            vnode_table, self.num_buckets, AccessContext(procedure="vnode_scan")
        )
        if self.bcopy_every and self.ticks_run % self.bcopy_every == 0:
            klib.bcopy(
                self.scratch_src,
                self.scratch_dst,
                160,
                AccessContext(procedure="net_softintr"),
            )
        self.ticks_run += 1
