"""Kernel locks, with the synchronization-fault surface.

The simulation is single-threaded, so locks are not needed for mutual
exclusion — they exist to give the paper's *synchronization* fault type
("randomly causing the procedures that acquire/free a lock to return
without acquiring/freeing the lock") mechanistic consequences:

* an **elided release** leaves the lock held; the next acquire of that
  lock self-deadlocks, which surfaces as a watchdog crash (a hung system);
* an **elided acquire** opens a race window: the critical section runs
  with preemption enabled, so daemons (e.g. the 30-second update flush)
  may fire at preemption points *inside* a half-finished metadata update
  and write inconsistent state to disk;
* a release of a lock that is not held trips a kernel sanity check.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.errors import KernelPanic, WatchdogTimeout


class Lock:
    """A named kernel lock."""

    def __init__(self, manager: "LockManager", name: str) -> None:
        self.manager = manager
        self.name = name
        self.held = False
        #: True while an elided acquire has left this section unprotected.
        self.elided = False

    def acquire(self) -> None:
        if self.manager.should_elide(self, "acquire"):
            self.elided = True
            self.manager.racy_sections += 1
            return
        if self.held:
            # Single-threaded: re-acquiring a held lock can never succeed.
            raise WatchdogTimeout(f"deadlock: lock {self.name!r} already held")
        self.held = True

    def release(self) -> None:
        if self.elided:
            # The matching acquire was elided; the section ran unlocked.
            self.elided = False
            return
        if self.manager.should_elide(self, "release"):
            return  # lock stays held: the next acquire deadlocks
        if not self.held:
            raise KernelPanic(f"unlock of unheld lock {self.name!r}")
        self.held = False

    def __enter__(self) -> "Lock":
        self.acquire()
        return self

    def __exit__(self, *exc) -> None:
        # On a crash unwinding through the section, the lock state is moot;
        # releasing normally keeps non-crash paths balanced.
        if not isinstance(exc[1], BaseException):
            self.release()

    @property
    def racing(self) -> bool:
        return self.elided


class LockManager:
    """Creates locks and hosts the fault-injection elision hook."""

    def __init__(self) -> None:
        self._locks: dict[str, Lock] = {}
        #: ``hook(lock, op) -> bool``; ``op`` is "acquire" or "release".
        #: Returning True makes the operation silently do nothing.
        self.elision_hook: Optional[Callable[[Lock, str], bool]] = None
        self.racy_sections = 0

    def lock(self, name: str) -> Lock:
        if name not in self._locks:
            self._locks[name] = Lock(self, name)
        return self._locks[name]

    def should_elide(self, lock: Lock, op: str) -> bool:
        if self.elision_hook is None:
            return False
        return self.elision_hook(lock, op)

    def any_racing(self) -> bool:
        return any(lock.elided for lock in self._locks.values())

    def any_held(self) -> bool:
        """True while any named lock is held.

        Chaos hooks consult this: an injected error unwinding through a
        held lock leaks it (exception unwinds model crash paths here),
        so fault capabilities decline to fire inside lock sections —
        like a kernel serving critical-section allocations from a
        reserved pool.
        """
        return any(lock.held for lock in self._locks.values())
