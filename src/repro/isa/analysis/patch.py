"""Code patching: rewrite kernel text with an address check before stores.

This is Rio's fallback protection (section 2.1) implemented the way a
real binary patcher would do it — on the assembled instruction stream,
with branch relocation — rather than as a per-store surcharge.  Two
registers are reserved for the inserted sequences, in the style of
software-fault-isolation sandboxing [Wahbe93]:

* ``gp`` (r29) holds the address of a one-quadword *descriptor* the
  interpreter loads at call entry; the descriptor holds the protection
  threshold (the lowest KSEG address of the sequestered registry region,
  which sits at the top of physical memory).
* ``at`` (r28) is the assembler temporary that receives each computed
  effective address.

Before every ``stb``/``stq`` the patcher inserts::

    ldq    S, 0(gp)        ; S = threshold
    lda    at, disp(rb)    ; at = effective address of the store
    cmpult at, S, S        ; S = (at < threshold)
    bne    S, +1           ; in-bounds: skip the trap
    panic  #42             ; PATCH_TRAP_CODE -> ProtectionTrap(address=at)

``S`` is a *dead* register chosen by liveness analysis (4 executed
instructions per store).  Without the optimizer — or when no register is
provably dead — ``S`` is a scratch register spilled to the stack redzone
and reloaded (6 executed instructions), the naive sandboxing sequence.

The elision pass then drops checks the dataflow results prove redundant:

* **stack-relative** stores (spills like ``stq ra, 0(sp)`` in
  ``cache_copy``), whose targets are frame-local and nowhere near the
  protected region;
* **rewalked** stores dominated by a checked store through the same
  pointer at an equal-or-higher displacement (the check is one-sided, so
  a lower address through a certified pointer cannot newly trap).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ReproError
from repro.isa.analysis.cfg import CFG, build_cfg
from repro.isa.analysis.dataflow import (
    Liveness,
    RewalkAnalysis,
    ValueAnalysis,
    inst_def,
    inst_uses,
)
from repro.isa.analysis.disasm import disassemble_words
from repro.isa.encoding import (
    BRANCH_OPS,
    Instruction,
    Op,
    encode,
    sext16,
)
from repro.isa.interpreter import PATCH_TRAP_CODE

#: Registers the check sequences use implicitly; routines must not touch
#: them (they never do — lint enforces it).
RESERVED_REGS = frozenset({28, 29})

#: Frame-local band: a store whose target is entry-sp + k with k in this
#: range is a spill/reload slot, provably below the protected region.
STACK_BAND = range(-16384, 32)

#: Dead-register preference: temporaries first, then v0, then saved regs.
_SCRATCH_ORDER = (
    list(range(1, 9)) + list(range(22, 26)) + [0] + list(range(9, 15)) + [15]
)


class PatchError(ReproError):
    """The routine cannot be safely patched."""


@dataclass
class StoreDecision:
    """What the patcher did about one store instruction."""

    index: int  #: original word index of the store
    action: str  #: "checked" | "elided_stack" | "elided_rewalk"
    scratch: int | None = None  #: the threshold register used, if checked
    spilled: bool = False  #: True when the scratch had to be spilled


@dataclass
class RoutinePatchReport:
    name: str
    original_words: int
    patched_words: int
    stores: int = 0
    checked: int = 0
    spilled: int = 0
    elided_stack: int = 0
    elided_rewalk: int = 0
    decisions: list[StoreDecision] = field(default_factory=list)

    @property
    def elided(self) -> int:
        return self.elided_stack + self.elided_rewalk

    @property
    def added_words(self) -> int:
        return self.patched_words - self.original_words


def _check_sequence(store: Instruction, scratch: int, spill: bool) -> list[Instruction]:
    disp = sext16(store.imm)
    seq = [
        Instruction(opcode=Op.LDQ, ra=scratch, rb=29, imm=0),
        Instruction(opcode=Op.LDA, ra=28, rb=store.rb, imm=disp & 0xFFFF),
        Instruction(opcode=Op.CMPULT, ra=28, rb=scratch, rc=scratch),
        Instruction(opcode=Op.BNE, ra=scratch, rb=31, imm=1),
        Instruction(opcode=Op.PANIC, ra=31, rb=31, imm=PATCH_TRAP_CODE),
    ]
    if spill:
        seq.insert(0, Instruction(opcode=Op.STQ, ra=scratch, rb=30, imm=(-8) & 0xFFFF))
        seq.append(Instruction(opcode=Op.LDQ, ra=scratch, rb=30, imm=(-8) & 0xFFFF))
    return seq


def _decide(cfg: CFG, optimize: bool) -> list[StoreDecision]:
    lines = cfg.dis.lines
    values = ValueAnalysis(cfg)
    rewalk = RewalkAnalysis(cfg) if optimize else None
    liveness = Liveness(cfg) if optimize else None

    decisions: list[StoreDecision] = []
    for line in lines:
        if not line.inst.is_store:
            continue
        if optimize:
            target = values.store_target(line.index)
            if target is not None and target.base == 30 and target.off in STACK_BAND:
                decisions.append(StoreDecision(line.index, "elided_stack"))
                continue
            if rewalk.covered(line.index):
                decisions.append(StoreDecision(line.index, "elided_rewalk"))
                continue
            dead = liveness.dead_at(line.index) - RESERVED_REGS - {30, line.inst.rb}
            for candidate in _SCRATCH_ORDER:
                if candidate in dead:
                    decisions.append(
                        StoreDecision(line.index, "checked", scratch=candidate)
                    )
                    break
            else:  # no provably-dead register: fall back to spilling
                scratch = 24 if line.inst.rb == 25 else 25
                decisions.append(
                    StoreDecision(line.index, "checked", scratch=scratch, spilled=True)
                )
        else:
            scratch = 24 if line.inst.rb == 25 else 25
            decisions.append(
                StoreDecision(line.index, "checked", scratch=scratch, spilled=True)
            )
    return decisions


def patch_routine(
    name: str,
    words: list[int],
    labels: dict[str, int] | None = None,
    optimize: bool = True,
) -> tuple[list[int], dict[str, int], RoutinePatchReport]:
    """Rewrite one routine body; returns ``(words, labels, report)``.

    Branch displacements are relocated; a branch whose target instruction
    grew a check sequence lands at the *start* of the sequence, so checks
    cannot be jumped over.
    """
    dis = disassemble_words(words, labels=labels, name=name)
    for line in dis.lines:
        if inst_regs(line.inst) & RESERVED_REGS:
            raise PatchError(
                f"{name}: word {line.index} uses reserved register "
                f"(at/gp are dedicated to the patcher)"
            )
    cfg = build_cfg(dis)
    decisions = {d.index: d for d in _decide(cfg, optimize)}

    # Emit, remembering where each original instruction and its check
    # sequence landed.
    new_insts: list[Instruction] = []
    group_start: list[int] = []  # new index of instruction i's group
    final_pos: list[int] = []  # new index of original instruction i
    for line in dis.lines:
        group_start.append(len(new_insts))
        decision = decisions.get(line.index)
        if decision is not None and decision.action == "checked":
            new_insts.extend(
                _check_sequence(line.inst, decision.scratch, decision.spilled)
            )
        final_pos.append(len(new_insts))
        new_insts.append(line.inst)

    # Relocate branches (the intra-check `bne +1` needs none: both ends
    # of its hop are inside the same group).
    for i, line in enumerate(dis.lines):
        inst = new_insts[final_pos[i]]
        if inst.op in BRANCH_OPS:
            disp = group_start[line.target] - (final_pos[i] + 1)
            if not -0x8000 <= disp <= 0x7FFF:
                raise PatchError(f"{name}: relocated branch at word {i} out of range")
            new_insts[final_pos[i]] = Instruction(
                opcode=inst.opcode, ra=inst.ra, rb=inst.rb, imm=disp & 0xFFFF
            )
    new_words = [encode(inst) for inst in new_insts]

    new_labels = {
        lbl: (group_start[index] if index < len(words) else len(new_words))
        for lbl, index in (labels or {}).items()
    }

    report = RoutinePatchReport(
        name=name,
        original_words=len(words),
        patched_words=len(new_words),
        decisions=sorted(decisions.values(), key=lambda d: d.index),
    )
    for decision in report.decisions:
        report.stores += 1
        if decision.action == "checked":
            report.checked += 1
            report.spilled += decision.spilled
        elif decision.action == "elided_stack":
            report.elided_stack += 1
        else:
            report.elided_rewalk += 1
    return new_words, new_labels, report


def inst_regs(inst: Instruction) -> set[int]:
    """Every register an instruction names (reads or writes)."""
    regs = set(inst_uses(inst))
    target = inst_def(inst)
    if target is not None:
        regs.add(target)
    return regs


class CodePatcher:
    """A :class:`~repro.isa.text.KernelText` transform inserting store
    checks into every routine, collecting per-routine reports."""

    def __init__(self, optimize: bool = True) -> None:
        self.optimize = optimize
        self.reports: dict[str, RoutinePatchReport] = {}

    def __call__(
        self, name: str, words: list[int], labels: dict[str, int]
    ) -> tuple[list[int], dict[str, int]]:
        new_words, new_labels, report = patch_routine(
            name, words, labels, optimize=self.optimize
        )
        self.reports[name] = report
        return new_words, new_labels

    @property
    def total_added_words(self) -> int:
        return sum(r.added_words for r in self.reports.values())
