"""Basic blocks and the control-flow graph over disassembled routines.

Kernel routines here are leaf procedures with structured control flow
(conditional branches, backward loops, ``ret``/``panic`` exits), so the
CFG is small and exact: every branch target is a label recovered by the
disassembler, ``jsr`` falls through (the callee returns), and
``ret``/``panic``/``halt`` terminate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.analysis.disasm import Disassembly
from repro.isa.encoding import BRANCH_OPS, Op

#: Opcodes after which control does not continue to the next instruction.
TERMINATORS = frozenset({Op.RET, Op.PANIC, Op.HALT})


@dataclass
class BasicBlock:
    """A maximal straight-line run of instructions.

    ``start``/``end`` are word indices into the routine (``end`` is
    exclusive).  ``succs``/``preds`` hold the *start* indices of
    neighbouring blocks.
    """

    start: int
    end: int
    succs: list[int] = field(default_factory=list)
    preds: list[int] = field(default_factory=list)
    #: True when the block ends in ret/panic/halt (leaves the routine).
    terminates: bool = False

    @property
    def indices(self) -> range:
        return range(self.start, self.end)


@dataclass
class CFG:
    """The control-flow graph of one disassembled routine."""

    dis: Disassembly
    blocks: dict[int, BasicBlock]
    entry: int = 0
    #: True when the last instruction can fall through past the end of the
    #: routine (into whatever follows in the text image).
    falls_off_end: bool = False

    def block_of(self, index: int) -> BasicBlock:
        for block in self.blocks.values():
            if block.start <= index < block.end:
                return block
        raise KeyError(index)

    def reachable(self) -> set[int]:
        """Start indices of blocks reachable from the entry."""
        seen: set[int] = set()
        work = [self.entry]
        while work:
            start = work.pop()
            if start in seen or start not in self.blocks:
                continue
            seen.add(start)
            work.extend(self.blocks[start].succs)
        return seen

    def sccs(self) -> list[list[int]]:
        """Strongly connected components (Tarjan), as lists of block starts."""
        index_of: dict[int, int] = {}
        low: dict[int, int] = {}
        on_stack: set[int] = set()
        stack: list[int] = []
        out: list[list[int]] = []
        counter = [0]

        def strongconnect(v: int) -> None:
            # Iterative Tarjan: (node, iterator position) frames.
            frames = [(v, 0)]
            while frames:
                node, pos = frames.pop()
                if pos == 0:
                    index_of[node] = low[node] = counter[0]
                    counter[0] += 1
                    stack.append(node)
                    on_stack.add(node)
                succs = self.blocks[node].succs
                advanced = False
                for i in range(pos, len(succs)):
                    succ = succs[i]
                    if succ not in index_of:
                        frames.append((node, i + 1))
                        frames.append((succ, 0))
                        advanced = True
                        break
                    if succ in on_stack:
                        low[node] = min(low[node], index_of[succ])
                if advanced:
                    continue
                if low[node] == index_of[node]:
                    component = []
                    while True:
                        w = stack.pop()
                        on_stack.discard(w)
                        component.append(w)
                        if w == node:
                            break
                    out.append(component)
                if frames:
                    parent = frames[-1][0]
                    low[parent] = min(low[parent], low[node])

        for start in self.blocks:
            if start not in index_of:
                strongconnect(start)
        return out

    def loops_without_exit(self) -> list[list[int]]:
        """SCCs forming loops from which control can never leave.

        A component is inescapable when it is a real loop (more than one
        block, or one block with a self edge) and no block in it either
        terminates or branches outside the component.
        """
        bad: list[list[int]] = []
        for component in self.sccs():
            members = set(component)
            is_loop = len(component) > 1 or any(
                s in members for s in self.blocks[component[0]].succs
            )
            if not is_loop:
                continue
            escapes = any(
                self.blocks[start].terminates
                or any(succ not in members for succ in self.blocks[start].succs)
                for start in component
            )
            if not escapes:
                bad.append(sorted(component))
        return bad


def build_cfg(dis: Disassembly) -> CFG:
    """Construct the CFG of a disassembled routine."""
    n = dis.num_words
    leaders: set[int] = {0} if n else set()
    for line in dis.lines:
        op = line.inst.op
        if op in BRANCH_OPS:
            leaders.add(line.target)
            if line.index + 1 < n:
                leaders.add(line.index + 1)
        elif op in TERMINATORS or op is Op.JSR:
            if line.index + 1 < n:
                leaders.add(line.index + 1)

    starts = sorted(leaders)
    blocks: dict[int, BasicBlock] = {}
    for i, start in enumerate(starts):
        end = starts[i + 1] if i + 1 < len(starts) else n
        blocks[start] = BasicBlock(start=start, end=end)

    falls_off_end = False
    for block in blocks.values():
        last = dis.lines[block.end - 1]
        op = last.inst.op
        if op in TERMINATORS:
            block.terminates = True
        elif op is Op.BR:  # unconditional (the link register is just written)
            block.succs.append(last.target)
        elif op in BRANCH_OPS:  # conditional: may fall through
            block.succs.append(last.target)
            if block.end < n:
                block.succs.append(block.end)
            else:
                falls_off_end = True
        else:  # straight-line fall-through (incl. jsr: the callee returns)
            if block.end < n:
                block.succs.append(block.end)
            else:
                falls_off_end = True

    for block in blocks.values():
        for succ in block.succs:
            blocks[succ].preds.append(block.start)
    return CFG(dis=dis, blocks=blocks, falls_off_end=falls_off_end)
