"""Register dataflow over the CFG: reaching definitions, liveness, and a
symbolic value analysis.

All three are classic iterative fixpoint analyses.  Routines are tiny
(tens of words), so results are materialized per instruction rather than
per block — callers index by word offset.

The value analysis tracks each register as an offset from the *entry*
value of some register (``Val(base=30, off=-32)`` is "entry sp minus 32"),
as a compile-time constant (``base is None``), or as unknown (``None``).
Stack slots addressed relative to entry sp are tracked through
spill/reload pairs; stores through non-stack pointers are assumed not to
alias the stack, which holds by construction in this kernel (the stack
region is disjoint from heap, staging and cache regions).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.analysis.cfg import CFG
from repro.isa.encoding import (
    BRANCH_OPS,
    LOAD_OPS,
    OPERATE_OPS,
    STORE_OPS,
    Instruction,
    Op,
    sext16,
)

#: Definition site meaning "held this value at routine entry".
ENTRY = -1

#: Registers carrying meaningful values at entry: arguments a0-a5, the
#: return address (ra), the patch descriptor pointer (gp), the stack
#: pointer (sp), and the hardwired zero.
ENTRY_DEFINED = frozenset({16, 17, 18, 19, 20, 21, 26, 29, 30, 31})

#: Registers assumed read after return: the return value, the
#: callee-saved registers + frame pointer, the return address and sp.
DEFAULT_EXIT_LIVE = frozenset({0, 9, 10, 11, 12, 13, 14, 15, 26, 30})


def inst_uses(inst: Instruction) -> set[int]:
    """Registers an instruction reads (the hardwired zero excluded)."""
    op = inst.op
    uses: set[int] = set()
    if op in OPERATE_OPS:
        uses = {inst.ra, inst.rb}
    elif op in (Op.LDA, *LOAD_OPS):
        uses = {inst.rb}
    elif op in STORE_OPS:
        uses = {inst.ra, inst.rb}
    elif op in BRANCH_OPS and op is not Op.BR:
        uses = {inst.ra}
    elif op in (Op.JSR, Op.RET):
        uses = {inst.rb}
    return uses - {31}


def inst_def(inst: Instruction) -> int | None:
    """The register an instruction writes, or ``None``."""
    return inst.writes_register()


# ---------------------------------------------------------------------------
# Reaching definitions
# ---------------------------------------------------------------------------


class ReachingDefs:
    """For each instruction, which definition sites can reach each use.

    A definition site is a word index, or :data:`ENTRY` for the value a
    register held when the routine was called.
    """

    def __init__(self, cfg: CFG) -> None:
        self.cfg = cfg
        lines = cfg.dis.lines
        entry_defs = frozenset((reg, ENTRY) for reg in range(31))

        def transfer(defs: set, start: int, end: int) -> set:
            out = set(defs)
            for i in range(start, end):
                target = inst_def(lines[i].inst)
                if target is not None:
                    out = {(reg, site) for reg, site in out if reg != target}
                    out.add((target, i))
            return out

        block_in: dict[int, set] = {s: set() for s in cfg.blocks}
        block_in[cfg.entry] = set(entry_defs)
        changed = True
        while changed:
            changed = False
            for start, block in cfg.blocks.items():
                acc = set(entry_defs) if start == cfg.entry else set()
                for pred in block.preds:
                    acc |= transfer(
                        block_in[pred], cfg.blocks[pred].start, cfg.blocks[pred].end
                    )
                if acc != block_in[start]:
                    block_in[start] = acc
                    changed = True

        #: reaching-definition sets *before* each instruction.
        self.before: list[set] = [set() for _ in lines]
        for start, block in cfg.blocks.items():
            defs = set(block_in[start])
            for i in range(block.start, block.end):
                self.before[i] = set(defs)
                defs = transfer(defs, i, i + 1)

    def defs_of(self, index: int, reg: int) -> set[int]:
        """Definition sites of ``reg`` that reach instruction ``index``."""
        return {site for r, site in self.before[index] if r == reg}


# ---------------------------------------------------------------------------
# Liveness
# ---------------------------------------------------------------------------


class Liveness:
    """Backward liveness; ``live_in[i]`` is the set of registers whose
    current value may still be read at or after instruction ``i``."""

    def __init__(self, cfg: CFG, exit_live: frozenset = DEFAULT_EXIT_LIVE) -> None:
        self.cfg = cfg
        lines = cfg.dis.lines
        exit_set = set(exit_live) - {31}

        def transfer(live: set, start: int, end: int) -> set:
            out = set(live)
            for i in range(end - 1, start - 1, -1):
                inst = lines[i].inst
                target = inst_def(inst)
                if target is not None:
                    out.discard(target)
                out |= inst_uses(inst)
            return out

        block_out: dict[int, set] = {s: set() for s in cfg.blocks}
        changed = True
        while changed:
            changed = False
            for start, block in cfg.blocks.items():
                acc = set(exit_set) if block.terminates or not block.succs else set()
                for succ in block.succs:
                    acc |= transfer(
                        block_out[succ], cfg.blocks[succ].start, cfg.blocks[succ].end
                    )
                if acc != block_out[start]:
                    block_out[start] = acc
                    changed = True

        self.live_in: list[set] = [set() for _ in lines]
        for start, block in cfg.blocks.items():
            live = set(block_out[start])
            for i in range(block.end - 1, block.start - 1, -1):
                inst = lines[i].inst
                target = inst_def(inst)
                if target is not None:
                    live.discard(target)
                live |= inst_uses(inst)
                self.live_in[i] = set(live)

    def dead_at(self, index: int) -> set[int]:
        """Registers whose value is provably unused at instruction ``index``
        (safe for an inserted sequence to clobber)."""
        return set(range(31)) - self.live_in[index]


# ---------------------------------------------------------------------------
# Symbolic value analysis
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Val:
    """``base is None``: the constant ``off``.  Otherwise: the value the
    register ``base`` held at routine entry, plus ``off``."""

    base: int | None
    off: int

    def __add__(self, delta: int) -> "Val":
        return Val(self.base, self.off + delta)

    def __str__(self) -> str:
        if self.base is None:
            return f"{self.off:#x}"
        from repro.isa.encoding import REG_NAMES

        reg = REG_NAMES.get(self.base, f"r{self.base}")
        return f"{reg}0{self.off:+d}" if self.off else f"{reg}0"


def _join(a: Val | None, b: Val | None) -> Val | None:
    return a if a == b else None


class ValueAnalysis:
    """Forward symbolic evaluation; ``None`` is the unknown (top) value.

    Results: ``before[i]`` maps register -> :class:`Val` for every
    register with a known symbolic value just before instruction ``i``;
    ``slots_before[i]`` maps entry-sp-relative byte offsets of stack
    slots to the value spilled there.
    """

    def __init__(self, cfg: CFG) -> None:
        self.cfg = cfg
        lines = cfg.dis.lines
        entry_regs = {reg: Val(reg, 0) for reg in range(31)}
        entry_regs[31] = Val(None, 0)
        entry_state = (entry_regs, {})

        def transfer_one(regs: dict, slots: dict, inst: Instruction):
            regs = dict(regs)
            slots = dict(slots)
            op = inst.op

            def get(reg: int) -> Val | None:
                return Val(None, 0) if reg == 31 else regs.get(reg)

            def put(reg: int, value: Val | None) -> None:
                if reg == 31:
                    return
                if value is None:
                    regs.pop(reg, None)
                else:
                    regs[reg] = value

            if op is Op.LDA:
                base = get(inst.rb)
                put(inst.ra, None if base is None else base + sext16(inst.imm))
            elif op in STORE_OPS:
                base = get(inst.rb)
                if base is not None and base.base == 30 and op is Op.STQ:
                    slots[base.off + sext16(inst.imm)] = get(inst.ra)
                # Non-stack stores are assumed not to alias stack slots
                # (the kernel stack region is disjoint by construction).
            elif op in LOAD_OPS:
                base = get(inst.rb)
                value = None
                if op is Op.LDQ and base is not None and base.base == 30:
                    value = slots.get(base.off + sext16(inst.imm))
                put(inst.ra, value)
            elif op in OPERATE_OPS:
                a, b = get(inst.ra), get(inst.rb)
                value: Val | None = None
                if op is Op.ADDQ:
                    if a is not None and b is not None and b.base is None:
                        value = a + b.off
                    elif a is not None and b is not None and a.base is None:
                        value = b + a.off
                elif op is Op.SUBQ:
                    if a is not None and b is not None and b.base is None:
                        value = a + (-b.off)
                elif op is Op.BIS:
                    if inst.rb == 31:
                        value = a
                    elif inst.ra == 31:
                        value = b
                put(inst.rc, value)
            elif op in (Op.BR, Op.JSR):
                put(inst.ra, None)
                if op is Op.JSR:  # a callee may clobber anything
                    regs = {}
                    slots = {}
            return regs, slots

        def transfer_block(state, start: int, end: int):
            regs, slots = state
            for i in range(start, end):
                regs, slots = transfer_one(regs, slots, lines[i].inst)
            return regs, slots

        def join_states(a, b):
            if a is None:
                return b
            if b is None:
                return a
            regs = {
                reg: a[0][reg]
                for reg in a[0].keys() & b[0].keys()
                if _join(a[0][reg], b[0].get(reg)) is not None
            }
            slots = {
                off: a[1][off]
                for off in a[1].keys() & b[1].keys()
                if _join(a[1][off], b[1].get(off)) is not None
            }
            return regs, slots

        block_in: dict[int, tuple | None] = {s: None for s in cfg.blocks}
        block_in[cfg.entry] = entry_state
        changed = True
        while changed:
            changed = False
            for start, block in cfg.blocks.items():
                acc = entry_state if start == cfg.entry else None
                for pred in block.preds:
                    if block_in[pred] is None:
                        continue
                    pred_block = cfg.blocks[pred]
                    acc = join_states(
                        acc,
                        transfer_block(block_in[pred], pred_block.start, pred_block.end),
                    )
                if acc is not None and acc != block_in[start]:
                    block_in[start] = acc
                    changed = True

        self.before: list[dict] = [{} for _ in lines]
        self.slots_before: list[dict] = [{} for _ in lines]
        for start, block in cfg.blocks.items():
            state = block_in[start]
            if state is None:  # unreachable block: nothing known
                continue
            regs, slots = state
            for i in range(block.start, block.end):
                self.before[i] = dict(regs)
                self.slots_before[i] = dict(slots)
                regs, slots = transfer_one(regs, slots, lines[i].inst)

    def value_before(self, index: int, reg: int) -> Val | None:
        if reg == 31:
            return Val(None, 0)
        return self.before[index].get(reg)

    def store_target(self, index: int) -> Val | None:
        """The symbolic effective address of the store at ``index``."""
        inst = self.cfg.dis.lines[index].inst
        if inst.op not in STORE_OPS:
            return None
        base = self.value_before(index, inst.rb)
        return None if base is None else base + sext16(inst.imm)


# ---------------------------------------------------------------------------
# Rewalk analysis (check-elision support)
# ---------------------------------------------------------------------------


class RewalkAnalysis:
    """Tracks, per register, the highest store displacement already checked
    against the protection threshold through the *current* register value.

    The inserted address check is one-sided — it traps when the effective
    address is at or above the threshold — so once a store through ``r``
    at displacement ``d`` has executed (checked, or itself elided), any
    later store through the same pointer at an effective address *no
    higher* needs no check: had it been in the protected range, the
    earlier store would already have trapped.  ``lda r, k(r)`` walks the
    pointer and shifts the certified displacement by ``-k``; any other
    write to ``r`` discards it.

    ``ceiling_before[i][r]`` is the certified displacement (relative to
    the value of ``r`` at instruction ``i``), when one exists on every
    path.
    """

    def __init__(self, cfg: CFG) -> None:
        self.cfg = cfg
        lines = cfg.dis.lines

        def transfer_one(state: dict, inst: Instruction) -> dict:
            state = dict(state)
            op = inst.op
            if op in STORE_OPS and inst.rb != 31:
                disp = sext16(inst.imm)
                prior = state.get(inst.rb)
                state[inst.rb] = disp if prior is None else max(prior, disp)
            if op is Op.JSR:
                return {}
            target = inst_def(inst)
            if target is not None:
                if op is Op.LDA and inst.ra == inst.rb and inst.ra in state:
                    state[inst.ra] -= sext16(inst.imm)
                else:
                    state.pop(target, None)
            return state

        def transfer_block(state: dict, start: int, end: int) -> dict:
            for i in range(start, end):
                state = transfer_one(state, lines[i].inst)
            return state

        def join(a: dict | None, b: dict | None) -> dict | None:
            if a is None:
                return b
            if b is None:
                return a
            return {r: min(a[r], b[r]) for r in a.keys() & b.keys()}

        block_in: dict[int, dict | None] = {s: None for s in cfg.blocks}
        block_in[cfg.entry] = {}
        changed = True
        while changed:
            changed = False
            for start, block in cfg.blocks.items():
                acc: dict | None = {} if start == cfg.entry else None
                for pred in block.preds:
                    if block_in[pred] is None:
                        continue
                    pred_block = cfg.blocks[pred]
                    acc = join(
                        acc,
                        transfer_block(
                            dict(block_in[pred]), pred_block.start, pred_block.end
                        ),
                    )
                prev = block_in[start]
                if acc is not None and prev is not None:
                    # Widening: a ceiling that keeps descending (a pointer
                    # walked upward around a loop) never stabilizes — drop it.
                    acc = {r: v for r, v in acc.items() if not (r in prev and v < prev[r])}
                if acc is not None and acc != prev:
                    block_in[start] = acc
                    changed = True

        self.ceiling_before: list[dict] = [{} for _ in lines]
        for start, block in cfg.blocks.items():
            state = block_in[start]
            if state is None:
                continue
            state = dict(state)
            for i in range(block.start, block.end):
                self.ceiling_before[i] = dict(state)
                state = transfer_one(state, lines[i].inst)

    def covered(self, index: int) -> bool:
        """True when the store at ``index`` is dominated by an equal-or-
        higher store through the same pointer."""
        inst = self.cfg.dis.lines[index].inst
        if inst.op not in STORE_OPS or inst.rb == 31:
            return False
        ceiling = self.ceiling_before[index].get(inst.rb)
        return ceiling is not None and sext16(inst.imm) <= ceiling
