"""Binary static analysis over assembled kernel routines.

The pipeline layers, bottom to top:

* :mod:`~repro.isa.analysis.disasm` — a strict disassembler, the inverse
  of :func:`repro.isa.encoding.decode`, with label recovery and
  reassemblable output;
* :mod:`~repro.isa.analysis.cfg` — basic blocks and the control-flow
  graph;
* :mod:`~repro.isa.analysis.dataflow` — reaching definitions, liveness
  and a symbolic value analysis (with stack-slot tracking);
* :mod:`~repro.isa.analysis.patch` — the real code-patching pass: an
  address check injected before every store, with liveness-chosen
  scratch registers and dataflow-proven check elision;
* :mod:`~repro.isa.analysis.lint` — consistency checks over the same IR,
  run by ``make lint`` and the ``repro lint`` CLI.

See ``docs/INTERNALS.md`` ("ISA static analysis & code patching").
"""

from repro.isa.analysis.cfg import CFG, BasicBlock, build_cfg
from repro.isa.analysis.dataflow import (
    Liveness,
    ReachingDefs,
    RewalkAnalysis,
    Val,
    ValueAnalysis,
)
from repro.isa.analysis.disasm import (
    DisassemblyError,
    Disassembly,
    DisasmLine,
    disassemble_routine,
    disassemble_words,
)
from repro.isa.analysis.lint import Finding, lint_routines, lint_source, lint_words
from repro.isa.analysis.patch import (
    CodePatcher,
    PatchError,
    RoutinePatchReport,
    StoreDecision,
    patch_routine,
)

__all__ = [
    "BasicBlock",
    "CFG",
    "CodePatcher",
    "DisasmLine",
    "Disassembly",
    "DisassemblyError",
    "Finding",
    "Liveness",
    "PatchError",
    "ReachingDefs",
    "RewalkAnalysis",
    "RoutinePatchReport",
    "StoreDecision",
    "Val",
    "ValueAnalysis",
    "build_cfg",
    "disassemble_routine",
    "disassemble_words",
    "lint_routines",
    "lint_source",
    "lint_words",
    "patch_routine",
]
