"""A strict disassembler: the inverse of :func:`repro.isa.encoding.decode`.

Where :func:`decode` is deliberately lenient (fault-corrupted words must
still execute, or crash, the way hardware would), the disassembler is the
opposite: it refuses words that are not the canonical encoding of an
assemblable statement.  That strictness is what makes it useful — the
static-analysis pipeline (CFG, dataflow, patching, lint) only reasons
about text it can faithfully round-trip, and ``DisassemblyError`` on
kernel text is itself a corruption signal.

Round-trip guarantee: for any assembled routine,
``assemble(disassemble_words(words, labels).source) == (words, labels)``
up to label *names* (offsets are preserved exactly; recovered labels are
named ``L<index>`` when no name is provided).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ReproError
from repro.isa.encoding import (
    BRANCH_OPS,
    MEMORY_FORMAT_OPS,
    OPERATE_OPS,
    REG_NAMES,
    Instruction,
    Op,
    decode,
    encode,
    sext16,
)


class DisassemblyError(ReproError):
    """A word is not the canonical encoding of any assembly statement."""


@dataclass(frozen=True)
class DisasmLine:
    """One disassembled instruction."""

    index: int  #: word offset from the start of the routine
    word: int
    inst: Instruction
    text: str  #: the assembly statement, without any label prefix
    target: int | None = None  #: branch target index, for branch ops


@dataclass
class Disassembly:
    """A fully disassembled routine."""

    name: str
    lines: list[DisasmLine]
    labels: dict[str, int]  #: label name -> word index

    @property
    def num_words(self) -> int:
        return len(self.lines)

    @property
    def source(self) -> str:
        """Reassemblable assembly source (labels on their own lines)."""
        by_index: dict[int, list[str]] = {}
        for label, index in self.labels.items():
            by_index.setdefault(index, []).append(label)
        out: list[str] = []
        for line in self.lines:
            for label in sorted(by_index.get(line.index, [])):
                out.append(f"{label}:")
            out.append(f"    {line.text}")
        for label in sorted(by_index.get(len(self.lines), [])):
            out.append(f"{label}:")
        return "\n".join(out) + "\n"


def _reg(num: int) -> str:
    return REG_NAMES.get(num, f"r{num}")


def _check(cond: bool, index: int, word: int, why: str) -> None:
    if not cond:
        raise DisassemblyError(f"word {index} ({word:#010x}): {why}")


def _render(index: int, word: int, inst: Instruction, label_of: dict[int, str]):
    """Return ``(text, target)`` for one canonical instruction."""
    op = inst.op
    _check(op is not None, index, word, f"illegal opcode {inst.opcode:#x}")
    name = op.name.lower()

    if op in MEMORY_FORMAT_OPS:
        return f"{name} {_reg(inst.ra)}, {sext16(inst.imm)}({_reg(inst.rb)})", None

    if op in OPERATE_OPS:
        return f"{name} {_reg(inst.ra)}, {_reg(inst.rb)}, {_reg(inst.rc)}", None

    if op in BRANCH_OPS:
        _check(inst.rb == 31, index, word, "branch with nonzero rb field")
        target = index + 1 + sext16(inst.imm)
        label = label_of.get(target)
        _check(label is not None, index, word, f"branch to unlabelled index {target}")
        if op is Op.BR and inst.ra == 31:
            return f"br {label}", target
        return f"{name} {_reg(inst.ra)}, {label}", target

    if op is Op.JSR:
        _check(inst.imm == 0, index, word, "jsr with nonzero displacement field")
        return f"jsr {_reg(inst.ra)}, ({_reg(inst.rb)})", None

    if op is Op.RET:
        _check(inst.ra == 31 and inst.imm == 0, index, word, "noncanonical ret")
        return ("ret" if inst.rb == 26 else f"ret ({_reg(inst.rb)})"), None

    if op is Op.PANIC:
        _check(inst.ra == 31 and inst.rb == 31, index, word, "noncanonical panic")
        return f"panic #{inst.imm}", None

    if op in (Op.HALT, Op.NOP):
        _check(
            inst.ra == 31 and inst.rb == 31 and inst.imm == 0,
            index,
            word,
            f"noncanonical {name}",
        )
        return name, None

    raise DisassemblyError(f"word {index} ({word:#010x}): unrenderable op {op!r}")


def disassemble_words(
    words: list[int],
    labels: dict[str, int] | None = None,
    name: str = "<words>",
) -> Disassembly:
    """Disassemble a routine body.

    ``labels`` maps known label names to word indices (as returned by
    :func:`repro.isa.assembler.assemble`); branch targets without a known
    label get a recovered ``L<index>`` name.  Raises
    :class:`DisassemblyError` on illegal opcodes, noncanonical encodings,
    or branches leaving the routine.
    """
    insts = [decode(word) for word in words]

    # Pass 1: canonicality + collect branch targets so labels exist.
    label_of: dict[int, str] = {}
    for lbl, index in (labels or {}).items():
        if not 0 <= index <= len(words):
            raise DisassemblyError(f"label {lbl!r} index {index} out of range")
        label_of[index] = lbl
    for index, (word, inst) in enumerate(zip(words, insts)):
        op = inst.op
        _check(op is not None, index, word, f"illegal opcode {inst.opcode:#x}")
        if op in BRANCH_OPS:
            target = index + 1 + sext16(inst.imm)
            _check(
                0 <= target < len(words),
                index,
                word,
                f"branch leaves routine (target index {target})",
            )
            label_of.setdefault(target, f"L{target}")
        if op in OPERATE_OPS:
            _check(
                encode(inst) == word, index, word, "nonzero function-code bits"
            )

    # Pass 2: render.
    lines = []
    for index, (word, inst) in enumerate(zip(words, insts)):
        text, target = _render(index, word, inst, label_of)
        lines.append(DisasmLine(index=index, word=word, inst=inst, text=text, target=target))
    return Disassembly(
        name=name,
        lines=lines,
        labels={lbl: index for index, lbl in label_of.items()},
    )


def disassemble_routine(text, name: str) -> Disassembly:
    """Disassemble routine ``name`` out of a loaded :class:`KernelText`.

    Reads the *current* words from simulated memory, so fault-injected
    corruption surfaces as a :class:`DisassemblyError`.
    """
    routine = text.routines[name]
    words = [
        text.read_word(routine.start_index + i) for i in range(routine.num_words)
    ]
    labels = {
        lbl: off - routine.start_index
        for lbl, off in routine.labels.items()
        if routine.start_index <= off <= routine.start_index + routine.num_words
    }
    return disassemble_words(words, labels=labels, name=name)
