"""A lint suite over the kernel-text IR.

Each pass runs on the disassembly/CFG/dataflow of one routine and yields
:class:`Finding`\\ s.  The suite must run clean over every shipped routine
(``make lint`` fails the build otherwise) — the passes encode the
invariants the interpreter, the patcher and the crash model rely on:

* ``unreachable``       — basic blocks no path from the entry reaches;
* ``no-exit-loop``      — a loop with no exit edge and no terminator
                          (would spin until the watchdog fires);
* ``undefined-read``    — a register read whose reaching definitions
                          include routine entry, for a register that
                          carries no value at entry;
* ``stack-discipline``  — ``ret`` with the stack pointer not restored to
                          its entry value, a provably clobbered return
                          address, or control falling off the end of the
                          routine;
* ``panic-code``        — a ``panic`` whose error code has no message in
                          :data:`~repro.isa.interpreter.PANIC_MESSAGES`;
* ``reserved-register`` — use of ``at``/``gp``, which the code patcher
                          owns;
* ``undisassemblable``  — text the strict disassembler rejects (for lint
                          over in-memory, possibly corrupted routines).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.isa.analysis.cfg import CFG, build_cfg
from repro.isa.analysis.dataflow import (
    ENTRY,
    ENTRY_DEFINED,
    ReachingDefs,
    Val,
    ValueAnalysis,
    inst_uses,
)
from repro.isa.analysis.disasm import DisassemblyError, disassemble_words
from repro.isa.analysis.patch import RESERVED_REGS, inst_regs
from repro.isa.assembler import assemble
from repro.isa.encoding import REG_NAMES, Op
from repro.isa.interpreter import PANIC_MESSAGES

ALL_PASSES = (
    "unreachable",
    "no-exit-loop",
    "undefined-read",
    "stack-discipline",
    "panic-code",
    "reserved-register",
)


@dataclass(frozen=True)
class Finding:
    """One lint diagnostic."""

    routine: str
    check: str
    index: int  #: word index the finding anchors to (-1 = whole routine)
    message: str

    def __str__(self) -> str:
        where = f"word {self.index}" if self.index >= 0 else "routine"
        return f"{self.routine}: [{self.check}] {where}: {self.message}"


def _lint_unreachable(cfg: CFG) -> Iterable[Finding]:
    reachable = cfg.reachable()
    for start, block in sorted(cfg.blocks.items()):
        if start not in reachable:
            yield Finding(
                cfg.dis.name,
                "unreachable",
                start,
                f"block [{block.start}, {block.end}) is unreachable from the entry",
            )


def _lint_no_exit_loop(cfg: CFG) -> Iterable[Finding]:
    for component in cfg.loops_without_exit():
        yield Finding(
            cfg.dis.name,
            "no-exit-loop",
            component[0],
            "loop over blocks "
            + ", ".join(str(s) for s in component)
            + " has no exit edge (watchdog bait)",
        )


def _lint_undefined_read(cfg: CFG) -> Iterable[Finding]:
    reaching = ReachingDefs(cfg)
    reachable_indices = {
        i for start in cfg.reachable() for i in cfg.blocks[start].indices
    }
    for line in cfg.dis.lines:
        if line.index not in reachable_indices:
            continue  # covered by the unreachable pass
        for reg in sorted(inst_uses(line.inst)):
            if reg in ENTRY_DEFINED:
                continue
            if ENTRY in reaching.defs_of(line.index, reg):
                name = REG_NAMES.get(reg, f"r{reg}")
                yield Finding(
                    cfg.dis.name,
                    "undefined-read",
                    line.index,
                    f"{name} may be read before any definition ({line.text!r})",
                )


def _lint_stack_discipline(cfg: CFG) -> Iterable[Finding]:
    if cfg.falls_off_end:
        yield Finding(
            cfg.dis.name,
            "stack-discipline",
            cfg.dis.num_words - 1,
            "control can fall off the end of the routine",
        )
    values = ValueAnalysis(cfg)
    reachable_indices = {
        i for start in cfg.reachable() for i in cfg.blocks[start].indices
    }
    for line in cfg.dis.lines:
        if line.inst.op is not Op.RET or line.index not in reachable_indices:
            continue
        sp = values.value_before(line.index, 30)
        if sp is not None and sp != Val(30, 0):
            yield Finding(
                cfg.dis.name,
                "stack-discipline",
                line.index,
                f"ret with sp = {sp} (frame not popped)",
            )
        target = values.value_before(line.index, line.inst.rb)
        if target is not None and target != Val(26, 0):
            name = REG_NAMES.get(line.inst.rb, f"r{line.inst.rb}")
            yield Finding(
                cfg.dis.name,
                "stack-discipline",
                line.index,
                f"ret through {name} = {target}, not the entry return address",
            )


def _lint_panic_code(cfg: CFG) -> Iterable[Finding]:
    for line in cfg.dis.lines:
        if line.inst.op is Op.PANIC and line.inst.imm not in PANIC_MESSAGES:
            yield Finding(
                cfg.dis.name,
                "panic-code",
                line.index,
                f"panic #{line.inst.imm} has no entry in PANIC_MESSAGES",
            )


def _lint_reserved_register(cfg: CFG) -> Iterable[Finding]:
    for line in cfg.dis.lines:
        for reg in sorted(inst_regs(line.inst) & RESERVED_REGS):
            name = REG_NAMES.get(reg, f"r{reg}")
            yield Finding(
                cfg.dis.name,
                "reserved-register",
                line.index,
                f"{name} is reserved for the code patcher ({line.text!r})",
            )


_PASSES = {
    "unreachable": _lint_unreachable,
    "no-exit-loop": _lint_no_exit_loop,
    "undefined-read": _lint_undefined_read,
    "stack-discipline": _lint_stack_discipline,
    "panic-code": _lint_panic_code,
    "reserved-register": _lint_reserved_register,
}


def lint_words(
    name: str,
    words: list[int],
    labels: dict[str, int] | None = None,
    passes: Iterable[str] = ALL_PASSES,
) -> list[Finding]:
    """Run the lint passes over one routine body."""
    try:
        dis = disassemble_words(words, labels=labels, name=name)
    except DisassemblyError as exc:
        return [Finding(name, "undisassemblable", -1, str(exc))]
    cfg = build_cfg(dis)
    findings: list[Finding] = []
    for pass_name in passes:
        findings.extend(_PASSES[pass_name](cfg))
    return findings


def lint_source(
    name: str, source: str, passes: Iterable[str] = ALL_PASSES
) -> list[Finding]:
    """Assemble one routine source and lint the result."""
    words, labels = assemble(source)
    return lint_words(name, words, labels=labels, passes=passes)


def lint_routines(sources: dict[str, str] | None = None) -> list[Finding]:
    """Lint every kernel routine (the shipped set by default)."""
    if sources is None:
        from repro.isa.routines import ROUTINE_SOURCES

        sources = ROUTINE_SOURCES
    findings: list[Finding] = []
    for name, source in sources.items():
        findings.extend(lint_source(name, source))
    return findings
