"""The kernel text segment: assembled routines living in simulated memory.

At boot the kernel assembles its routine sources into one contiguous image
(word 0 is a ``HALT`` sentinel used as the top-level return address) and
copies it into physical frames; the MMU maps those frames read-only at a
fixed kernel virtual address.  The fault injector mutates instruction words
*in that memory* — through hardware-level writes that bypass the MMU, like
a real bit flip would — and calls :meth:`KernelText.mark_corrupted` so the
affected routine loses its "pristine" status and must thereafter run on the
interpreter rather than any registered native fast path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.errors import ConfigurationError
from repro.hw.memory import PhysicalMemory
from repro.isa.assembler import assemble
from repro.isa.encoding import Instruction, decode, encode

WORD_BYTES = 4

#: Signature of a native fast-path: ``native(bus, args, ctx) -> return value``.
NativeFn = Callable[..., int]
#: Signature of cost estimators: ``fn(args) -> count``.
CostFn = Callable[[list[int]], int]


@dataclass
class Routine:
    """One kernel routine within the text image."""

    name: str
    start_index: int  # word index of the entry point within the image
    num_words: int
    pristine: bool = True
    native: Optional[NativeFn] = None
    steps_fn: Optional[CostFn] = None
    stores_fn: Optional[CostFn] = None
    labels: dict[str, int] = field(default_factory=dict)

    def contains_index(self, word_index: int) -> bool:
        return self.start_index <= word_index < self.start_index + self.num_words


#: Signature of a per-routine rewriting pass applied after assembly:
#: ``transform(name, words, labels) -> (new_words, new_labels)`` with
#: labels as routine-relative word indices (e.g. the code patcher,
#: :class:`repro.isa.analysis.patch.CodePatcher`).
TransformFn = Callable[[str, list, dict], tuple]


class KernelText:
    """Assembles routine sources and manages the in-memory text image."""

    def __init__(self, sources: dict[str, str], transform: TransformFn | None = None) -> None:
        self.words: list[int] = [encode(Instruction(opcode=0, ra=31, rb=31))]  # HALT sentinel
        self.routines: dict[str, Routine] = {}
        for name, source in sources.items():
            body, labels = assemble(source)
            if transform is not None:
                body, labels = transform(name, body, labels)
            start = len(self.words)
            self.routines[name] = Routine(
                name=name,
                start_index=start,
                num_words=len(body),
                labels={lbl: start + off for lbl, off in labels.items()},
            )
            self.words.extend(body)
        self.base_vaddr: int | None = None
        self.base_paddr: int | None = None
        self._memory: PhysicalMemory | None = None

    # -- construction -----------------------------------------------------

    def register_native(
        self,
        name: str,
        native: NativeFn,
        steps_fn: CostFn,
        stores_fn: CostFn,
    ) -> None:
        """Attach a native fast-path to a routine.

        The native function must issue the *same bus stores* as the
        assembly (possibly batched) so protection semantics are identical;
        ``steps_fn``/``stores_fn`` report the instruction and store counts
        the interpreted version would have executed, for the cost model.
        """
        routine = self.routines[name]
        routine.native = native
        routine.steps_fn = steps_fn
        routine.stores_fn = stores_fn

    @property
    def size_bytes(self) -> int:
        return len(self.words) * WORD_BYTES

    # -- loading into memory ------------------------------------------------

    def load(self, memory: PhysicalMemory, base_paddr: int, base_vaddr: int) -> None:
        """Copy the image into physical memory and record its placement."""
        image = b"".join(word.to_bytes(WORD_BYTES, "little") for word in self.words)
        memory.write(base_paddr, image)
        self.base_paddr = base_paddr
        self.base_vaddr = base_vaddr
        self._memory = memory

    def _require_loaded(self) -> None:
        if self.base_vaddr is None or self._memory is None:
            raise ConfigurationError("kernel text has not been loaded into memory")

    # -- addressing ----------------------------------------------------------

    def entry_vaddr(self, name: str) -> int:
        self._require_loaded()
        return self.base_vaddr + self.routines[name].start_index * WORD_BYTES

    @property
    def sentinel_vaddr(self) -> int:
        """Virtual address of the HALT sentinel (top-level return target)."""
        self._require_loaded()
        return self.base_vaddr

    def contains_vaddr(self, vaddr: int) -> bool:
        return (
            self.base_vaddr is not None
            and self.base_vaddr <= vaddr < self.base_vaddr + self.size_bytes
        )

    def word_index_of_vaddr(self, vaddr: int) -> int:
        self._require_loaded()
        if not self.contains_vaddr(vaddr):
            raise ConfigurationError(f"vaddr {vaddr:#x} not in kernel text")
        return (vaddr - self.base_vaddr) // WORD_BYTES

    def routine_at_index(self, word_index: int) -> Routine | None:
        for routine in self.routines.values():
            if routine.contains_index(word_index):
                return routine
        return None

    # -- mutation (used by the fault injector) --------------------------------

    def read_word(self, word_index: int) -> int:
        self._require_loaded()
        return int.from_bytes(
            self._memory.read(self.base_paddr + word_index * WORD_BYTES, WORD_BYTES),
            "little",
        )

    def read_instruction(self, word_index: int) -> Instruction:
        return decode(self.read_word(word_index))

    def write_word(self, word_index: int, word: int) -> None:
        """Hardware-level text mutation (bypasses the MMU), marking the
        containing routine as corrupted."""
        self._require_loaded()
        self._memory.write(
            self.base_paddr + word_index * WORD_BYTES,
            (word & 0xFFFFFFFF).to_bytes(WORD_BYTES, "little"),
        )
        self.mark_corrupted(word_index)

    def write_instruction(self, word_index: int, inst: Instruction) -> None:
        self.write_word(word_index, encode(inst))

    def mark_corrupted(self, word_index: int) -> None:
        routine = self.routine_at_index(word_index)
        if routine is not None:
            routine.pristine = False

    def corrupted_routines(self) -> list[str]:
        return [r.name for r in self.routines.values() if not r.pristine]
