"""Instruction encoding for the mini-ISA.

Instructions are 32-bit words in two formats, loosely following the Alpha:

* **Memory / branch format**: ``opcode[31:26] ra[25:21] rb[20:16] imm[15:0]``
  — loads, stores, ``LDA`` (add-immediate), conditional branches (with a
  signed word displacement relative to the next instruction) and ``PANIC``
  (whose immediate is a consistency-check error code).
* **Operate format**: ``opcode[31:26] ra[25:21] rb[20:16] zero[15:5] rc[4:0]``
  — three-register ALU operations.  Bits 15..5 are ignored on decode, as a
  real implementation would treat them as a function-code field; this
  matters for bit-flip faults, which may set them arbitrarily.

Register 31 reads as zero and ignores writes, as on the Alpha.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Op(enum.IntEnum):
    """Opcodes.  Values are stable — they are baked into kernel text images."""

    HALT = 0x00
    NOP = 0x01
    # Memory format
    LDA = 0x08  # ra <- rb + sext(imm)
    LDB = 0x0A  # ra <- zext(mem8[rb + sext(imm)])
    STB = 0x0E  # mem8[rb + sext(imm)] <- ra & 0xff
    LDQ = 0x28  # ra <- mem64[rb + sext(imm)]
    STQ = 0x2C  # mem64[rb + sext(imm)] <- ra
    # Operate format
    ADDQ = 0x10
    SUBQ = 0x11
    MULQ = 0x12
    AND = 0x13
    BIS = 0x14  # bitwise or
    XOR = 0x15
    SLL = 0x16
    SRL = 0x17
    CMPEQ = 0x18
    CMPLT = 0x19  # signed
    CMPLE = 0x1A  # signed
    CMPULT = 0x1B
    CMPULE = 0x1C
    # Branch format (displacement in words, relative to next instruction)
    BR = 0x30  # ra <- return address; pc += disp
    BEQ = 0x31
    BNE = 0x32
    BLT = 0x33
    BGE = 0x34
    BGT = 0x35
    BLE = 0x36
    # Jumps (byte-address targets in registers)
    JSR = 0x3A  # ra <- return address; pc <- rb
    RET = 0x3B  # pc <- rb
    PANIC = 0x3F  # kernel consistency check failed; imm = error code


MEMORY_FORMAT_OPS = frozenset({Op.LDA, Op.LDB, Op.STB, Op.LDQ, Op.STQ})
BRANCH_OPS = frozenset({Op.BR, Op.BEQ, Op.BNE, Op.BLT, Op.BGE, Op.BGT, Op.BLE})
OPERATE_OPS = frozenset(
    {
        Op.ADDQ,
        Op.SUBQ,
        Op.MULQ,
        Op.AND,
        Op.BIS,
        Op.XOR,
        Op.SLL,
        Op.SRL,
        Op.CMPEQ,
        Op.CMPLT,
        Op.CMPLE,
        Op.CMPULT,
        Op.CMPULE,
    }
)
STORE_OPS = frozenset({Op.STB, Op.STQ})
LOAD_OPS = frozenset({Op.LDB, Op.LDQ})

_VALID_OPCODES = {int(op) for op in Op}

#: Conventional register names (Alpha calling convention, simplified).
REG_NAMES = {
    0: "v0",
    **{i: f"t{i - 1}" for i in range(1, 9)},
    **{i: f"s{i - 9}" for i in range(9, 15)},
    15: "fp",
    **{i: f"a{i - 16}" for i in range(16, 22)},
    **{i: f"t{i - 14}" for i in range(22, 26)},
    26: "ra",
    27: "pv",
    28: "at",
    29: "gp",
    30: "sp",
    31: "zero",
}
REG_NUMBERS = {name: num for num, name in REG_NAMES.items()}
REG_NUMBERS.update({f"r{i}": i for i in range(32)})

MASK64 = (1 << 64) - 1


def sext16(value: int) -> int:
    """Sign-extend a 16-bit value to a Python int."""
    value &= 0xFFFF
    return value - 0x10000 if value & 0x8000 else value


def to_signed64(value: int) -> int:
    value &= MASK64
    return value - (1 << 64) if value >> 63 else value


@dataclass(frozen=True)
class Instruction:
    """A decoded instruction.

    ``opcode`` may be an :class:`Op` member or a raw int for illegal
    opcodes (which the interpreter turns into an
    :class:`~repro.errors.IllegalInstruction` crash when executed).
    """

    opcode: int
    ra: int
    rb: int
    rc: int = 0
    imm: int = 0

    @property
    def op(self) -> Op | None:
        try:
            return Op(self.opcode)
        except ValueError:
            return None

    @property
    def is_store(self) -> bool:
        return self.op in STORE_OPS

    @property
    def is_load(self) -> bool:
        return self.op in LOAD_OPS

    @property
    def is_branch(self) -> bool:
        return self.op in BRANCH_OPS

    def writes_register(self) -> int | None:
        """Return the register this instruction writes, or ``None``."""
        op = self.op
        if op in OPERATE_OPS:
            return self.rc if self.rc != 31 else None
        if op in (Op.LDA, Op.LDB, Op.LDQ):
            return self.ra if self.ra != 31 else None
        if op in (Op.BR, Op.JSR):
            return self.ra if self.ra != 31 else None
        return None

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        op = self.op
        name = op.name.lower() if op else f"op{self.opcode:#x}"
        ra, rb, rc = (REG_NAMES.get(r, f"r{r}") for r in (self.ra, self.rb, self.rc))
        if op in MEMORY_FORMAT_OPS:
            return f"{name} {ra}, {sext16(self.imm)}({rb})"
        if op in BRANCH_OPS:
            return f"{name} {ra}, {sext16(self.imm):+d}"
        if op in OPERATE_OPS:
            return f"{name} {ra}, {rb}, {rc}"
        if op in (Op.JSR, Op.RET):
            return f"{name} {ra}, ({rb})"
        if op is Op.PANIC:
            return f"panic #{self.imm}"
        return name


def encode(inst: Instruction) -> int:
    """Encode an instruction into its 32-bit word."""
    word = (inst.opcode & 0x3F) << 26 | (inst.ra & 0x1F) << 21 | (inst.rb & 0x1F) << 16
    op = inst.op
    if op in OPERATE_OPS:
        return word | (inst.rc & 0x1F)
    return word | (inst.imm & 0xFFFF)


def decode(word: int) -> Instruction:
    """Decode a 32-bit word.  Never raises — illegal opcodes are preserved."""
    opcode = (word >> 26) & 0x3F
    ra = (word >> 21) & 0x1F
    rb = (word >> 16) & 0x1F
    if opcode in _VALID_OPCODES and Op(opcode) in OPERATE_OPS:
        return Instruction(opcode=opcode, ra=ra, rb=rb, rc=word & 0x1F)
    return Instruction(opcode=opcode, ra=ra, rb=rb, imm=word & 0xFFFF)
