"""A two-pass assembler for the mini-ISA.

Supports the syntax used by the kernel routine sources in
:mod:`repro.isa.routines`::

    routine_entry:               ; labels end with ':'
        lda   t0, 8(zero)        ; ra <- rb + imm
        ldq   t2, 0(a0)          ; memory ops: reg, disp(base)
        addq  a2, t0, a2         ; operate ops: ra, rb, rc
        beq   a2, done           ; branches target labels
        br    loop               ; unconditional (link register omitted)
        jsr   ra, (pv)           ; call through register
        ret                      ; return via ra
        panic #12                ; consistency check failure, error code 12
        halt

Comments start with ``;`` (``#`` is reserved for panic codes).
Displacements may be decimal (optionally negative) or ``0x`` hex.
"""

from __future__ import annotations

import re

from repro.errors import ReproError
from repro.isa.encoding import (
    BRANCH_OPS,
    MEMORY_FORMAT_OPS,
    OPERATE_OPS,
    Instruction,
    Op,
    REG_NUMBERS,
    encode,
)


class AssemblyError(ReproError):
    """Raised for malformed assembly source."""


_LABEL_RE = re.compile(r"^([A-Za-z_][\w.]*):$")
_MEM_OPERAND_RE = re.compile(r"^(-?(?:0x[0-9a-fA-F]+|\d+))\(([\w$]+)\)$")


def _parse_int(token: str) -> int:
    token = token.strip()
    negative = token.startswith("-")
    if negative:
        token = token[1:]
    value = int(token, 16) if token.lower().startswith("0x") else int(token)
    return -value if negative else value


def _reg(token: str, line_no: int) -> int:
    token = token.strip().lower()
    if token not in REG_NUMBERS:
        raise AssemblyError(f"line {line_no}: unknown register {token!r}")
    return REG_NUMBERS[token]


def _split_operands(rest: str) -> list[str]:
    return [part.strip() for part in rest.split(",")] if rest.strip() else []


def assemble(source: str) -> tuple[list[int], dict[str, int]]:
    """Assemble ``source``; return ``(words, labels)``.

    ``labels`` maps label name to instruction index (word offset from the
    start of the assembled block).
    """
    # Pass 1: strip comments, collect labels and raw statements.
    statements: list[tuple[int, str, str]] = []  # (line_no, mnemonic, rest)
    labels: dict[str, int] = {}
    for line_no, raw in enumerate(source.splitlines(), start=1):
        line = raw.split(";", 1)[0].strip()
        if not line:
            continue
        while True:
            match = _LABEL_RE.match(line.split(None, 1)[0]) if line else None
            if match:
                label = match.group(1)
                if label in labels:
                    raise AssemblyError(f"line {line_no}: duplicate label {label!r}")
                labels[label] = len(statements)
                line = line.split(None, 1)[1].strip() if len(line.split(None, 1)) > 1 else ""
                if not line:
                    break
            else:
                break
        if not line:
            continue
        parts = line.split(None, 1)
        mnemonic = parts[0].lower()
        rest = parts[1] if len(parts) > 1 else ""
        statements.append((line_no, mnemonic, rest))

    # Pass 2: encode.
    words: list[int] = []
    for index, (line_no, mnemonic, rest) in enumerate(statements):
        words.append(encode(_encode_statement(index, line_no, mnemonic, rest, labels)))
    return words, labels


def _encode_statement(
    index: int, line_no: int, mnemonic: str, rest: str, labels: dict[str, int]
) -> Instruction:
    operands = _split_operands(rest)

    if mnemonic == "panic":
        if len(operands) != 1 or not operands[0].startswith("#"):
            raise AssemblyError(f"line {line_no}: panic requires '#code'")
        return Instruction(opcode=Op.PANIC, ra=31, rb=31, imm=_parse_int(operands[0][1:]) & 0xFFFF)

    if mnemonic in ("halt", "nop"):
        if operands:
            raise AssemblyError(f"line {line_no}: {mnemonic} takes no operands")
        return Instruction(opcode=Op[mnemonic.upper()], ra=31, rb=31)

    if mnemonic == "ret":
        # ret | ret (rb)
        if not operands:
            return Instruction(opcode=Op.RET, ra=31, rb=REG_NUMBERS["ra"])
        match = re.match(r"^\(([\w$]+)\)$", operands[0])
        if len(operands) != 1 or not match:
            raise AssemblyError(f"line {line_no}: ret takes '(reg)'")
        return Instruction(opcode=Op.RET, ra=31, rb=_reg(match.group(1), line_no))

    if mnemonic == "jsr":
        # jsr ra, (rb)
        if len(operands) != 2:
            raise AssemblyError(f"line {line_no}: jsr takes 'ra, (rb)'")
        match = re.match(r"^\(([\w$]+)\)$", operands[1])
        if not match:
            raise AssemblyError(f"line {line_no}: jsr target must be '(reg)'")
        return Instruction(opcode=Op.JSR, ra=_reg(operands[0], line_no), rb=_reg(match.group(1), line_no))

    try:
        op = Op[mnemonic.upper()]
    except KeyError:
        raise AssemblyError(f"line {line_no}: unknown mnemonic {mnemonic!r}") from None

    if op in MEMORY_FORMAT_OPS:
        if len(operands) != 2:
            raise AssemblyError(f"line {line_no}: {mnemonic} takes 'reg, disp(base)'")
        match = _MEM_OPERAND_RE.match(operands[1])
        if not match:
            raise AssemblyError(f"line {line_no}: bad memory operand {operands[1]!r}")
        disp = _parse_int(match.group(1))
        if not -0x8000 <= disp <= 0x7FFF:
            raise AssemblyError(f"line {line_no}: displacement {disp} out of range")
        return Instruction(
            opcode=op,
            ra=_reg(operands[0], line_no),
            rb=_reg(match.group(2), line_no),
            imm=disp & 0xFFFF,
        )

    if op in OPERATE_OPS:
        if len(operands) != 3:
            raise AssemblyError(f"line {line_no}: {mnemonic} takes 'ra, rb, rc'")
        return Instruction(
            opcode=op,
            ra=_reg(operands[0], line_no),
            rb=_reg(operands[1], line_no),
            rc=_reg(operands[2], line_no),
        )

    if op in BRANCH_OPS:
        if op is Op.BR and len(operands) == 1:
            link, target = "zero", operands[0]
        elif len(operands) == 2:
            link, target = operands
        else:
            raise AssemblyError(f"line {line_no}: {mnemonic} takes 'reg, label'")
        if target not in labels:
            raise AssemblyError(f"line {line_no}: undefined label {target!r}")
        disp = labels[target] - (index + 1)
        if not -0x8000 <= disp <= 0x7FFF:
            raise AssemblyError(f"line {line_no}: branch to {target!r} out of range")
        return Instruction(opcode=op, ra=_reg(link, line_no), rb=31, imm=disp & 0xFFFF)

    raise AssemblyError(f"line {line_no}: cannot encode {mnemonic!r}")
