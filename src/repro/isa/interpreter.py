"""The instruction interpreter.

Executes routines from the kernel text image through the memory bus, which
means every load, store and instruction fetch is subject to MMU translation
and protection — wild stores from fault-corrupted code trap or corrupt in
exactly the way hardware would arrange.

Crash surfaces, matching section 3.3's observation that production kernels
stop quickly after a fault:

* fetch or data access to an illegal address → :class:`MachineCheck`;
* store to a protected page → :class:`ProtectionTrap` (Rio's mechanism);
* undecodable opcode or a ``HALT`` outside the sentinel →
  :class:`IllegalInstruction` / :class:`KernelPanic`;
* a ``PANIC`` instruction (assembly-level consistency check) →
  :class:`KernelPanic` with its error code;
* exceeding the step budget (e.g. a deleted loop exit) →
  :class:`WatchdogTimeout`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import (
    ConfigurationError,
    IllegalInstruction,
    KernelPanic,
    MachineCheck,
    ProtectionTrap,
    WatchdogTimeout,
)
from repro.hw.bus import AccessContext, KERNEL_CONTEXT, MemoryBus
from repro.isa.encoding import (
    MASK64,
    Op,
    decode,
    sext16,
    to_signed64,
)
from repro.isa.text import KernelText, WORD_BYTES

#: The PANIC code the code patcher plants behind its address checks: not a
#: consistency failure but Rio's protection firing, so the interpreter
#: raises :class:`~repro.errors.ProtectionTrap` (a corruption *prevented*)
#: rather than :class:`~repro.errors.KernelPanic`.
PATCH_TRAP_CODE = 42

#: Error-code → message table for PANIC instructions; gives the campaign the
#: "distinct kernel consistency error messages" flavour of the paper.
PANIC_MESSAGES = {
    21: "cache_copy: bad buffer header magic",
    22: "cache_copy: write beyond buffer end",
    31: "sched_tick: runqueue corrupted",
    33: "vnode_scan: vnode chain corrupted",
    34: "vnode_scan: refcount overflow",
    41: "lock: lock order violation",
    PATCH_TRAP_CODE: "code patch: store to protected address",
    99: "unexpected halt in kernel text",
}


@dataclass
class InterpreterLimits:
    """Execution guards.  ``max_steps`` is the software watchdog."""

    max_steps: int = 500_000


@dataclass
class CallResult:
    value: int
    steps: int
    stores: int
    interpreted: bool


class Interpreter:
    """Runs kernel routines, natively when pristine, interpreted otherwise."""

    def __init__(
        self,
        bus: MemoryBus,
        text: KernelText,
        limits: InterpreterLimits | None = None,
    ) -> None:
        self.bus = bus
        self.text = text
        self.limits = limits or InterpreterLimits()
        #: When True, even pristine routines are interpreted (used by tests
        #: and the code-patching overhead bench).
        self.force_interpret = False
        #: Address of the code patcher's descriptor quadword, loaded into
        #: ``gp`` (r29) at every call — see :mod:`repro.isa.analysis.patch`.
        self.global_pointer = 0

    def call(
        self,
        name: str,
        args: list[int] | tuple[int, ...] = (),
        ctx: AccessContext = KERNEL_CONTEXT,
        sp: int = 0,
        max_steps: int | None = None,
    ) -> CallResult:
        """Invoke routine ``name`` with up to six integer arguments."""
        try:
            routine = self.text.routines[name]
        except KeyError:
            known = ", ".join(sorted(self.text.routines))
            raise ConfigurationError(
                f"unknown kernel routine {name!r}; known routines: {known}"
            ) from None
        args = list(args)
        if len(args) > 6:
            raise ValueError("at most 6 register arguments supported")
        if routine.pristine and routine.native is not None and not self.force_interpret:
            value = routine.native(self.bus, args, ctx)
            steps = routine.steps_fn(args) if routine.steps_fn else 0
            stores = routine.stores_fn(args) if routine.stores_fn else 0
            return CallResult(value=value & MASK64, steps=steps, stores=stores, interpreted=False)
        return self._interpret(name, args, ctx, sp, max_steps)

    # -- the interpreter proper ------------------------------------------

    def _interpret(
        self,
        name: str,
        args: list[int],
        ctx: AccessContext,
        sp: int,
        max_steps: int | None,
    ) -> CallResult:
        regs = [0] * 32
        for i, arg in enumerate(args):
            regs[16 + i] = arg & MASK64
        regs[29] = self.global_pointer & MASK64
        regs[30] = sp & MASK64
        sentinel = self.text.sentinel_vaddr
        regs[26] = sentinel
        pc = self.text.entry_vaddr(name)
        budget = max_steps if max_steps is not None else self.limits.max_steps
        steps = 0
        stores = 0

        def set_reg(index: int, value: int) -> None:
            if index != 31:
                regs[index] = value & MASK64

        while True:
            if steps >= budget:
                raise WatchdogTimeout(f"watchdog: {name} exceeded {budget} steps")
            steps += 1
            if pc % WORD_BYTES:
                raise MachineCheck(f"unaligned instruction fetch at {pc:#x}")
            word = int.from_bytes(self.bus.load(pc, WORD_BYTES, ctx), "little")
            inst = decode(word)
            op = inst.op
            next_pc = pc + WORD_BYTES

            if op is None:
                raise IllegalInstruction(f"illegal opcode {inst.opcode:#x} at pc {pc:#x}")

            if op is Op.HALT:
                if pc == sentinel:
                    return CallResult(value=regs[0], steps=steps, stores=stores, interpreted=True)
                raise KernelPanic(PANIC_MESSAGES[99], code=99)

            if op is Op.NOP:
                pass
            elif op is Op.PANIC:
                code = inst.imm
                if code == PATCH_TRAP_CODE:
                    # The patcher's inline check fired: the store target
                    # (still in ``at``) is inside the protected region.
                    raise ProtectionTrap(
                        PANIC_MESSAGES[PATCH_TRAP_CODE], address=regs[28]
                    )
                raise KernelPanic(
                    PANIC_MESSAGES.get(code, f"kernel consistency check #{code}"),
                    code=code,
                )
            elif op is Op.LDA:
                set_reg(inst.ra, regs[inst.rb] + sext16(inst.imm))
            elif op is Op.LDB:
                addr = (regs[inst.rb] + sext16(inst.imm)) & MASK64
                set_reg(inst.ra, self.bus.load(addr, 1, ctx)[0])
            elif op is Op.LDQ:
                addr = (regs[inst.rb] + sext16(inst.imm)) & MASK64
                set_reg(inst.ra, int.from_bytes(self.bus.load(addr, 8, ctx), "little"))
            elif op is Op.STB:
                addr = (regs[inst.rb] + sext16(inst.imm)) & MASK64
                self.bus.store(addr, bytes([regs[inst.ra] & 0xFF]), ctx)
                stores += 1
            elif op is Op.STQ:
                addr = (regs[inst.rb] + sext16(inst.imm)) & MASK64
                self.bus.store(addr, regs[inst.ra].to_bytes(8, "little"), ctx)
                stores += 1
            elif op is Op.ADDQ:
                set_reg(inst.rc, regs[inst.ra] + regs[inst.rb])
            elif op is Op.SUBQ:
                set_reg(inst.rc, regs[inst.ra] - regs[inst.rb])
            elif op is Op.MULQ:
                set_reg(inst.rc, regs[inst.ra] * regs[inst.rb])
            elif op is Op.AND:
                set_reg(inst.rc, regs[inst.ra] & regs[inst.rb])
            elif op is Op.BIS:
                set_reg(inst.rc, regs[inst.ra] | regs[inst.rb])
            elif op is Op.XOR:
                set_reg(inst.rc, regs[inst.ra] ^ regs[inst.rb])
            elif op is Op.SLL:
                set_reg(inst.rc, regs[inst.ra] << (regs[inst.rb] & 63))
            elif op is Op.SRL:
                set_reg(inst.rc, regs[inst.ra] >> (regs[inst.rb] & 63))
            elif op is Op.CMPEQ:
                set_reg(inst.rc, int(regs[inst.ra] == regs[inst.rb]))
            elif op is Op.CMPLT:
                set_reg(inst.rc, int(to_signed64(regs[inst.ra]) < to_signed64(regs[inst.rb])))
            elif op is Op.CMPLE:
                set_reg(inst.rc, int(to_signed64(regs[inst.ra]) <= to_signed64(regs[inst.rb])))
            elif op is Op.CMPULT:
                set_reg(inst.rc, int(regs[inst.ra] < regs[inst.rb]))
            elif op is Op.CMPULE:
                set_reg(inst.rc, int(regs[inst.ra] <= regs[inst.rb]))
            elif op is Op.BR:
                set_reg(inst.ra, next_pc)
                pc = next_pc + sext16(inst.imm) * WORD_BYTES
                continue
            elif op in (Op.BEQ, Op.BNE, Op.BLT, Op.BGE, Op.BGT, Op.BLE):
                value = regs[inst.ra]
                signed = to_signed64(value)
                taken = {
                    Op.BEQ: value == 0,
                    Op.BNE: value != 0,
                    Op.BLT: signed < 0,
                    Op.BGE: signed >= 0,
                    Op.BGT: signed > 0,
                    Op.BLE: signed <= 0,
                }[op]
                if taken:
                    pc = next_pc + sext16(inst.imm) * WORD_BYTES
                    continue
            elif op is Op.JSR:
                target = regs[inst.rb]
                set_reg(inst.ra, next_pc)
                pc = target
                continue
            elif op is Op.RET:
                pc = regs[inst.rb]
                continue
            else:  # pragma: no cover - all ops handled above
                raise IllegalInstruction(f"unhandled opcode {op!r}")
            pc = next_pc
