"""The instruction interpreter.

Executes routines from the kernel text image through the memory bus, which
means every load, store and instruction fetch is subject to MMU translation
and protection — wild stores from fault-corrupted code trap or corrupt in
exactly the way hardware would arrange.

Crash surfaces, matching section 3.3's observation that production kernels
stop quickly after a fault:

* fetch or data access to an illegal address → :class:`MachineCheck`;
* store to a protected page → :class:`ProtectionTrap` (Rio's mechanism);
* undecodable opcode or a ``HALT`` outside the sentinel →
  :class:`IllegalInstruction` / :class:`KernelPanic`;
* a ``PANIC`` instruction (assembly-level consistency check) →
  :class:`KernelPanic` with its error code;
* exceeding the step budget (e.g. a deleted loop exit) →
  :class:`WatchdogTimeout`.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.errors import (
    ConfigurationError,
    CrashedMachineError,
    IllegalInstruction,
    KernelPanic,
    MachineCheck,
    ProtectionTrap,
    WatchdogTimeout,
)
from repro.hw.bus import AccessContext, KERNEL_CONTEXT, MemoryBus
from repro.isa.encoding import (
    BRANCH_OPS,
    MASK64,
    OPERATE_OPS,
    Op,
    decode,
    sext16,
    to_signed64,
)
from repro.isa.text import KernelText, WORD_BYTES

#: The PANIC code the code patcher plants behind its address checks: not a
#: consistency failure but Rio's protection firing, so the interpreter
#: raises :class:`~repro.errors.ProtectionTrap` (a corruption *prevented*)
#: rather than :class:`~repro.errors.KernelPanic`.
PATCH_TRAP_CODE = 42

#: Error-code → message table for PANIC instructions; gives the campaign the
#: "distinct kernel consistency error messages" flavour of the paper.
PANIC_MESSAGES = {
    21: "cache_copy: bad buffer header magic",
    22: "cache_copy: write beyond buffer end",
    31: "sched_tick: runqueue corrupted",
    33: "vnode_scan: vnode chain corrupted",
    34: "vnode_scan: refcount overflow",
    41: "lock: lock order violation",
    PATCH_TRAP_CODE: "code patch: store to protected address",
    99: "unexpected halt in kernel text",
}


# -- predecode ----------------------------------------------------------
#
# The fast engine decodes each kernel-text page once into a list of small
# tuples — one per 32-bit word — whose first element indexes a dispatch
# table of per-op handlers and whose remaining elements are the fully
# unpacked operands (registers, sign-extended immediates, branch byte
# displacements).  An undecodable word predecodes to a "raise
# IllegalInstruction" entry, so a corrupted page keeps its lazy-fault
# semantics: the trap fires only if and when the word is executed.

(
    _K_HALT,
    _K_NOP,
    _K_ILL,
    _K_PANIC,
    _K_LDA,
    _K_LDB,
    _K_LDQ,
    _K_STB,
    _K_STQ,
    _K_ADDQ,
    _K_SUBQ,
    _K_MULQ,
    _K_AND,
    _K_BIS,
    _K_XOR,
    _K_SLL,
    _K_SRL,
    _K_CMPEQ,
    _K_CMPLT,
    _K_CMPLE,
    _K_CMPULT,
    _K_CMPULE,
    _K_BR,
    _K_BEQ,
    _K_BNE,
    _K_BLT,
    _K_BGE,
    _K_BGT,
    _K_BLE,
    _K_JSR,
    _K_RET,
) = range(31)
_NUM_KINDS = 31

_NOP_ENTRY = (_K_NOP,)
_HALT_ENTRY = (_K_HALT,)

_ALU_KIND = {
    Op.ADDQ: _K_ADDQ,
    Op.SUBQ: _K_SUBQ,
    Op.MULQ: _K_MULQ,
    Op.AND: _K_AND,
    Op.BIS: _K_BIS,
    Op.XOR: _K_XOR,
    Op.SLL: _K_SLL,
    Op.SRL: _K_SRL,
    Op.CMPEQ: _K_CMPEQ,
    Op.CMPLT: _K_CMPLT,
    Op.CMPLE: _K_CMPLE,
    Op.CMPULT: _K_CMPULT,
    Op.CMPULE: _K_CMPULE,
}
_BRANCH_KIND = {
    Op.BEQ: _K_BEQ,
    Op.BNE: _K_BNE,
    Op.BLT: _K_BLT,
    Op.BGE: _K_BGE,
    Op.BGT: _K_BGT,
    Op.BLE: _K_BLE,
}


def _predecode_word(word: int) -> tuple:
    """One 32-bit word -> its dispatch entry (mirrors :func:`decode`)."""
    opcode = (word >> 26) & 0x3F
    try:
        op = Op(opcode)
    except ValueError:
        return (_K_ILL, opcode)
    ra = (word >> 21) & 0x1F
    rb = (word >> 16) & 0x1F
    if op in OPERATE_OPS:
        rc = word & 0x1F
        if rc == 31:  # r31 ignores writes and ALU ops have no other effect
            return _NOP_ENTRY
        return (_ALU_KIND[op], rc, ra, rb)
    imm = word & 0xFFFF
    if op is Op.LDA:
        if ra == 31:
            return _NOP_ENTRY
        return (_K_LDA, ra, rb, sext16(imm))
    if op is Op.LDB:
        return (_K_LDB, ra, rb, sext16(imm))
    if op is Op.LDQ:
        return (_K_LDQ, ra, rb, sext16(imm))
    if op is Op.STB:
        return (_K_STB, ra, rb, sext16(imm))
    if op is Op.STQ:
        return (_K_STQ, ra, rb, sext16(imm))
    if op is Op.BR:
        return (_K_BR, ra, sext16(imm) * WORD_BYTES)
    if op in BRANCH_OPS:
        return (_BRANCH_KIND[op], ra, sext16(imm) * WORD_BYTES)
    if op is Op.JSR:
        return (_K_JSR, ra, rb)
    if op is Op.RET:
        return (_K_RET, rb)
    if op is Op.PANIC:
        return (_K_PANIC, imm)
    if op is Op.NOP:
        return _NOP_ENTRY
    return _HALT_ENTRY  # Op.HALT


#: Word -> entry memo shared across interpreters: campaign trials rebuild
#: the same text image thousands of times, so predecoding a page is mostly
#: memo hits.  Entries are immutable tuples, safe to share; the cap bounds
#: pollution from predecoding random data pages after wild jumps.
_WORD_MEMO: dict[int, tuple] = {}
_WORD_MEMO_CAP = 1 << 16


def _predecode_words(words) -> list[tuple]:
    memo = _WORD_MEMO
    entries = []
    append = entries.append
    for word in words:
        entry = memo.get(word)
        if entry is None:
            entry = _predecode_word(word)
            if len(memo) < _WORD_MEMO_CAP:
                memo[word] = entry
        append(entry)
    return entries


class _HaltSignal(Exception):
    """Internal: the fast engine's HALT-at-sentinel unwind."""


@dataclass
class InterpreterLimits:
    """Execution guards.  ``max_steps`` is the software watchdog."""

    max_steps: int = 500_000


@dataclass
class CallResult:
    value: int
    steps: int
    stores: int
    interpreted: bool


class Interpreter:
    """Runs kernel routines, natively when pristine, interpreted otherwise."""

    def __init__(
        self,
        bus: MemoryBus,
        text: KernelText,
        limits: InterpreterLimits | None = None,
    ) -> None:
        self.bus = bus
        self.text = text
        self.limits = limits or InterpreterLimits()
        #: When True, even pristine routines are interpreted (used by tests
        #: and the code-patching overhead bench).
        self.force_interpret = False
        #: Address of the code patcher's descriptor quadword, loaded into
        #: ``gp`` (r29) at every call — see :mod:`repro.isa.analysis.patch`.
        self.global_pointer = 0
        #: Per-interpreter override of the hot-path engine; AND-ed with the
        #: bus-level (machine config) flag.  Differential tests flip this
        #: to run the reference engine against the same machine.
        self.fast_path = True
        #: Predecode cache: virtual page base -> (pfn, frame generation,
        #: entries).  Entries revalidate against the frame's
        #: ``PhysicalMemory`` generation on every fetch, so a bit flipped
        #: into an already-predecoded text page forces a re-decode of
        #: exactly that page before its next instruction executes.
        self._predecode: dict[int, tuple[int, int, list]] = {}
        self._predecode_cap = 64
        self._dispatch: list | None = None
        self._regs = [0] * 32
        #: Per-call cell read by the dispatch closures: [ctx, sentinel].
        self._st: list = [KERNEL_CONTEXT, 0]

    def call(
        self,
        name: str,
        args: list[int] | tuple[int, ...] = (),
        ctx: AccessContext = KERNEL_CONTEXT,
        sp: int = 0,
        max_steps: int | None = None,
    ) -> CallResult:
        """Invoke routine ``name`` with up to six integer arguments."""
        try:
            routine = self.text.routines[name]
        except KeyError:
            known = ", ".join(sorted(self.text.routines))
            raise ConfigurationError(
                f"unknown kernel routine {name!r}; known routines: {known}"
            ) from None
        args = list(args)
        if len(args) > 6:
            raise ValueError("at most 6 register arguments supported")
        if routine.pristine and routine.native is not None and not self.force_interpret:
            value = routine.native(self.bus, args, ctx)
            steps = routine.steps_fn(args) if routine.steps_fn else 0
            stores = routine.stores_fn(args) if routine.stores_fn else 0
            return CallResult(value=value & MASK64, steps=steps, stores=stores, interpreted=False)
        return self._interpret(name, args, ctx, sp, max_steps)

    # -- the interpreter proper ------------------------------------------

    def _interpret(
        self,
        name: str,
        args: list[int],
        ctx: AccessContext,
        sp: int,
        max_steps: int | None,
    ) -> CallResult:
        """Pick an engine.  The fast engine requires the bus-level knob,
        runs only untraced (so traces record the reference fetch/access
        sequence), and needs word-aligned pages for the predecode index."""
        bus = self.bus
        if (
            self.fast_path
            and bus.fast_path
            and not bus._tracing
            and bus.memory.page_size % WORD_BYTES == 0
        ):
            return self._interpret_fast(name, args, ctx, sp, max_steps)
        return self._interpret_ref(name, args, ctx, sp, max_steps)

    def _interpret_ref(
        self,
        name: str,
        args: list[int],
        ctx: AccessContext,
        sp: int,
        max_steps: int | None,
    ) -> CallResult:
        regs = [0] * 32
        for i, arg in enumerate(args):
            regs[16 + i] = arg & MASK64
        regs[29] = self.global_pointer & MASK64
        regs[30] = sp & MASK64
        sentinel = self.text.sentinel_vaddr
        regs[26] = sentinel
        pc = self.text.entry_vaddr(name)
        budget = max_steps if max_steps is not None else self.limits.max_steps
        steps = 0
        stores = 0

        def set_reg(index: int, value: int) -> None:
            if index != 31:
                regs[index] = value & MASK64

        while True:
            if steps >= budget:
                raise WatchdogTimeout(f"watchdog: {name} exceeded {budget} steps")
            steps += 1
            if pc % WORD_BYTES:
                raise MachineCheck(f"unaligned instruction fetch at {pc:#x}")
            word = int.from_bytes(self.bus.load(pc, WORD_BYTES, ctx), "little")
            inst = decode(word)
            op = inst.op
            next_pc = pc + WORD_BYTES

            if op is None:
                raise IllegalInstruction(f"illegal opcode {inst.opcode:#x} at pc {pc:#x}")

            if op is Op.HALT:
                if pc == sentinel:
                    return CallResult(value=regs[0], steps=steps, stores=stores, interpreted=True)
                raise KernelPanic(PANIC_MESSAGES[99], code=99)

            if op is Op.NOP:
                pass
            elif op is Op.PANIC:
                code = inst.imm
                if code == PATCH_TRAP_CODE:
                    # The patcher's inline check fired: the store target
                    # (still in ``at``) is inside the protected region.
                    raise ProtectionTrap(
                        PANIC_MESSAGES[PATCH_TRAP_CODE], address=regs[28]
                    )
                raise KernelPanic(
                    PANIC_MESSAGES.get(code, f"kernel consistency check #{code}"),
                    code=code,
                )
            elif op is Op.LDA:
                set_reg(inst.ra, regs[inst.rb] + sext16(inst.imm))
            elif op is Op.LDB:
                addr = (regs[inst.rb] + sext16(inst.imm)) & MASK64
                set_reg(inst.ra, self.bus.load(addr, 1, ctx)[0])
            elif op is Op.LDQ:
                addr = (regs[inst.rb] + sext16(inst.imm)) & MASK64
                set_reg(inst.ra, int.from_bytes(self.bus.load(addr, 8, ctx), "little"))
            elif op is Op.STB:
                addr = (regs[inst.rb] + sext16(inst.imm)) & MASK64
                self.bus.store(addr, bytes([regs[inst.ra] & 0xFF]), ctx)
                stores += 1
            elif op is Op.STQ:
                addr = (regs[inst.rb] + sext16(inst.imm)) & MASK64
                self.bus.store(addr, regs[inst.ra].to_bytes(8, "little"), ctx)
                stores += 1
            elif op is Op.ADDQ:
                set_reg(inst.rc, regs[inst.ra] + regs[inst.rb])
            elif op is Op.SUBQ:
                set_reg(inst.rc, regs[inst.ra] - regs[inst.rb])
            elif op is Op.MULQ:
                set_reg(inst.rc, regs[inst.ra] * regs[inst.rb])
            elif op is Op.AND:
                set_reg(inst.rc, regs[inst.ra] & regs[inst.rb])
            elif op is Op.BIS:
                set_reg(inst.rc, regs[inst.ra] | regs[inst.rb])
            elif op is Op.XOR:
                set_reg(inst.rc, regs[inst.ra] ^ regs[inst.rb])
            elif op is Op.SLL:
                set_reg(inst.rc, regs[inst.ra] << (regs[inst.rb] & 63))
            elif op is Op.SRL:
                set_reg(inst.rc, regs[inst.ra] >> (regs[inst.rb] & 63))
            elif op is Op.CMPEQ:
                set_reg(inst.rc, int(regs[inst.ra] == regs[inst.rb]))
            elif op is Op.CMPLT:
                set_reg(inst.rc, int(to_signed64(regs[inst.ra]) < to_signed64(regs[inst.rb])))
            elif op is Op.CMPLE:
                set_reg(inst.rc, int(to_signed64(regs[inst.ra]) <= to_signed64(regs[inst.rb])))
            elif op is Op.CMPULT:
                set_reg(inst.rc, int(regs[inst.ra] < regs[inst.rb]))
            elif op is Op.CMPULE:
                set_reg(inst.rc, int(regs[inst.ra] <= regs[inst.rb]))
            elif op is Op.BR:
                set_reg(inst.ra, next_pc)
                pc = next_pc + sext16(inst.imm) * WORD_BYTES
                continue
            elif op in (Op.BEQ, Op.BNE, Op.BLT, Op.BGE, Op.BGT, Op.BLE):
                value = regs[inst.ra]
                signed = to_signed64(value)
                taken = {
                    Op.BEQ: value == 0,
                    Op.BNE: value != 0,
                    Op.BLT: signed < 0,
                    Op.BGE: signed >= 0,
                    Op.BGT: signed > 0,
                    Op.BLE: signed <= 0,
                }[op]
                if taken:
                    pc = next_pc + sext16(inst.imm) * WORD_BYTES
                    continue
            elif op is Op.JSR:
                target = regs[inst.rb]
                set_reg(inst.ra, next_pc)
                pc = target
                continue
            elif op is Op.RET:
                pc = regs[inst.rb]
                continue
            else:  # pragma: no cover - all ops handled above
                raise IllegalInstruction(f"unhandled opcode {op!r}")
            pc = next_pc

    # -- the fast engine --------------------------------------------------

    def _text_page(self, pc: int) -> tuple[int, int, int, int, int, list]:
        """Translate ``pc``'s page and return its predecoded entries.

        Returns ``(page_lo, page_hi, pfn, mem_gen, mmu_gen, entries)``
        where ``page_lo``/``page_hi`` bound the virtual page.  Raises the
        same :class:`MachineCheck` the reference fetch would (the
        translation is the MMU's own, called with the faulting ``pc``).
        """
        bus = self.bus
        memory = bus.memory
        ps = memory.page_size
        mmu = bus.mmu
        mmu_gen = mmu.generation
        paddr = mmu.translate(pc, write=False)
        off = paddr % ps
        pfn = (paddr - off) // ps
        page_lo = pc - off
        mem_gen = memory._page_gens[pfn]
        cached = self._predecode.get(page_lo)
        if cached is not None and cached[0] == pfn and cached[1] == mem_gen:
            entries = cached[2]
        else:
            words = struct.unpack(f"<{ps // WORD_BYTES}I", memory.page(pfn))
            entries = _predecode_words(words)
            if len(self._predecode) >= self._predecode_cap:
                self._predecode.clear()
            self._predecode[page_lo] = (pfn, mem_gen, entries)
        return page_lo, page_lo + ps, pfn, mem_gen, mmu_gen, entries

    def _build_dispatch(self) -> list:
        """The dispatch table: one bound handler per predecode kind.

        Handlers close over the interpreter's persistent register file and
        the per-call state cell; each takes ``(entry, next_pc)`` and
        returns the next pc.  Built once per interpreter (calls never
        nest: handlers only touch the bus, which never re-enters here).
        """
        regs = self._regs
        st = self._st  # [ctx, sentinel] — refreshed by every call
        bus = self.bus
        load_u64 = bus.load_u64
        load_u8 = bus.load_u8
        store_u64 = bus.store_u64
        store_u8 = bus.store_u8
        M = MASK64

        def h_halt(e, npc):
            if npc - WORD_BYTES == st[1]:
                raise _HaltSignal
            raise KernelPanic(PANIC_MESSAGES[99], code=99)

        def h_nop(e, npc):
            return npc

        def h_ill(e, npc):
            raise IllegalInstruction(
                f"illegal opcode {e[1]:#x} at pc {npc - WORD_BYTES:#x}"
            )

        def h_panic(e, npc):
            code = e[1]
            if code == PATCH_TRAP_CODE:
                raise ProtectionTrap(
                    PANIC_MESSAGES[PATCH_TRAP_CODE], address=regs[28]
                )
            raise KernelPanic(
                PANIC_MESSAGES.get(code, f"kernel consistency check #{code}"),
                code=code,
            )

        def h_lda(e, npc):
            regs[e[1]] = (regs[e[2]] + e[3]) & M
            return npc

        def h_ldb(e, npc):
            value = load_u8((regs[e[2]] + e[3]) & M, st[0])
            if e[1] != 31:
                regs[e[1]] = value
            return npc

        def h_ldq(e, npc):
            value = load_u64((regs[e[2]] + e[3]) & M, st[0])
            if e[1] != 31:
                regs[e[1]] = value
            return npc

        def h_stb(e, npc):
            store_u8((regs[e[2]] + e[3]) & M, regs[e[1]], st[0])
            return npc

        def h_stq(e, npc):
            store_u64((regs[e[2]] + e[3]) & M, regs[e[1]], st[0])
            return npc

        def h_addq(e, npc):
            regs[e[1]] = (regs[e[2]] + regs[e[3]]) & M
            return npc

        def h_subq(e, npc):
            regs[e[1]] = (regs[e[2]] - regs[e[3]]) & M
            return npc

        def h_mulq(e, npc):
            regs[e[1]] = (regs[e[2]] * regs[e[3]]) & M
            return npc

        def h_and(e, npc):
            regs[e[1]] = regs[e[2]] & regs[e[3]]
            return npc

        def h_bis(e, npc):
            regs[e[1]] = regs[e[2]] | regs[e[3]]
            return npc

        def h_xor(e, npc):
            regs[e[1]] = regs[e[2]] ^ regs[e[3]]
            return npc

        def h_sll(e, npc):
            regs[e[1]] = (regs[e[2]] << (regs[e[3]] & 63)) & M
            return npc

        def h_srl(e, npc):
            regs[e[1]] = regs[e[2]] >> (regs[e[3]] & 63)
            return npc

        def h_cmpeq(e, npc):
            regs[e[1]] = 1 if regs[e[2]] == regs[e[3]] else 0
            return npc

        def h_cmplt(e, npc):
            a, b = regs[e[2]], regs[e[3]]
            if a >> 63:
                a -= 1 << 64
            if b >> 63:
                b -= 1 << 64
            regs[e[1]] = 1 if a < b else 0
            return npc

        def h_cmple(e, npc):
            a, b = regs[e[2]], regs[e[3]]
            if a >> 63:
                a -= 1 << 64
            if b >> 63:
                b -= 1 << 64
            regs[e[1]] = 1 if a <= b else 0
            return npc

        def h_cmpult(e, npc):
            regs[e[1]] = 1 if regs[e[2]] < regs[e[3]] else 0
            return npc

        def h_cmpule(e, npc):
            regs[e[1]] = 1 if regs[e[2]] <= regs[e[3]] else 0
            return npc

        def h_br(e, npc):
            if e[1] != 31:
                regs[e[1]] = npc & M
            return npc + e[2]

        def h_beq(e, npc):
            return npc + e[2] if regs[e[1]] == 0 else npc

        def h_bne(e, npc):
            return npc + e[2] if regs[e[1]] != 0 else npc

        def h_blt(e, npc):
            return npc + e[2] if regs[e[1]] >> 63 else npc

        def h_bge(e, npc):
            return npc if regs[e[1]] >> 63 else npc + e[2]

        def h_bgt(e, npc):
            value = regs[e[1]]
            return npc + e[2] if value and not value >> 63 else npc

        def h_ble(e, npc):
            value = regs[e[1]]
            return npc + e[2] if value == 0 or value >> 63 else npc

        def h_jsr(e, npc):
            target = regs[e[2]]
            if e[1] != 31:
                regs[e[1]] = npc & M
            return target

        def h_ret(e, npc):
            return regs[e[1]]

        table = [None] * _NUM_KINDS
        table[_K_HALT] = h_halt
        table[_K_NOP] = h_nop
        table[_K_ILL] = h_ill
        table[_K_PANIC] = h_panic
        table[_K_LDA] = h_lda
        table[_K_LDB] = h_ldb
        table[_K_LDQ] = h_ldq
        table[_K_STB] = h_stb
        table[_K_STQ] = h_stq
        table[_K_ADDQ] = h_addq
        table[_K_SUBQ] = h_subq
        table[_K_MULQ] = h_mulq
        table[_K_AND] = h_and
        table[_K_BIS] = h_bis
        table[_K_XOR] = h_xor
        table[_K_SLL] = h_sll
        table[_K_SRL] = h_srl
        table[_K_CMPEQ] = h_cmpeq
        table[_K_CMPLT] = h_cmplt
        table[_K_CMPLE] = h_cmple
        table[_K_CMPULT] = h_cmpult
        table[_K_CMPULE] = h_cmpule
        table[_K_BR] = h_br
        table[_K_BEQ] = h_beq
        table[_K_BNE] = h_bne
        table[_K_BLT] = h_blt
        table[_K_BGE] = h_bge
        table[_K_BGT] = h_bgt
        table[_K_BLE] = h_ble
        table[_K_JSR] = h_jsr
        table[_K_RET] = h_ret
        return table

    def _interpret_fast(
        self,
        name: str,
        args: list[int],
        ctx: AccessContext,
        sp: int,
        max_steps: int | None,
    ) -> CallResult:
        """The hot path: predecoded pages + dispatch table.

        Observable behaviour is bit-identical to :meth:`_interpret_ref`:
        same return values, step and store counts, ``BusStats`` totals
        (fetch loads are batched into the stats on exit), and the same
        trap types, messages and ordering.  Fetch validity is re-checked
        every instruction against the MMU and frame generation counters,
        so remaps, protection flips and text corruption (even by the
        executing code's own wild stores) take effect exactly where the
        reference engine would see them.
        """
        bus = self.bus
        memory = bus.memory
        mmu = bus.mmu
        stats = bus.stats
        dispatch = self._dispatch
        if dispatch is None:
            dispatch = self._dispatch = self._build_dispatch()
        regs = self._regs
        for i in range(32):
            regs[i] = 0
        for i, arg in enumerate(args):
            regs[16 + i] = arg & MASK64
        regs[29] = self.global_pointer & MASK64
        regs[30] = sp & MASK64
        sentinel = self.text.sentinel_vaddr
        regs[26] = sentinel
        st = self._st
        st[0] = ctx
        st[1] = sentinel
        pc = self.text.entry_vaddr(name)
        budget = max_steps if max_steps is not None else self.limits.max_steps
        steps = 0
        fetches = 0
        stores_before = stats.stores
        page_gens = memory._page_gens
        crashed = bus._crashed_check
        page_lo = 0
        page_hi = 0
        pfn = 0
        mem_gen = -1
        mmu_gen = -1
        entries: list = []
        try:
            while True:
                if steps >= budget:
                    raise WatchdogTimeout(f"watchdog: {name} exceeded {budget} steps")
                steps += 1
                if pc & 3:
                    raise MachineCheck(f"unaligned instruction fetch at {pc:#x}")
                if (
                    page_lo <= pc < page_hi
                    and page_gens[pfn] == mem_gen
                    and mmu.generation == mmu_gen
                ):
                    fetches += 1
                else:
                    # Same order as a reference fetch through bus.load:
                    # crash guard, then the stats bump, then translation.
                    if crashed():
                        raise CrashedMachineError("memory access on crashed machine")
                    fetches += 1
                    page_lo, page_hi, pfn, mem_gen, mmu_gen, entries = (
                        self._text_page(pc)
                    )
                entry = entries[(pc - page_lo) >> 2]
                pc = dispatch[entry[0]](entry, pc + 4)
        except _HaltSignal:
            return CallResult(
                value=regs[0],
                steps=steps,
                stores=stats.stores - stores_before,
                interpreted=True,
            )
        finally:
            # The reference engine pays one 4-byte bus load per fetch;
            # settle the identical totals in one batch (also on the
            # exception path, so a crashing run's stats match too).
            stats.loads += fetches
            stats.bytes_loaded += fetches * WORD_BYTES
