"""Kernel routines: assembly sources and native fast-path equivalents.

The data-movement plane of the simulated kernel is written here in the
mini-ISA:

* ``bcopy`` / ``bzero`` — the kernel copy/zero primitives.  The paper's
  *copy overrun* fault targets exactly ``bcopy``.
* ``cache_copy`` — the file cache write path: loads the destination buffer
  address out of a buffer *header in kernel heap memory* (so heap bit flips
  genuinely redirect stores), performs magic-number and bounds sanity
  checks (``panic #21``/``#22``), spills and reloads registers on the
  kernel stack (so stack bit flips genuinely corrupt pointers and return
  addresses), then copies.
* ``checksum_block`` — quadword additive checksum used for registry
  auditing.
* ``sched_tick`` / ``vnode_scan`` — background kernel activity: linked-list
  and hash-chain walks with consistency checks (``panic #31``/``#33``).
  These run constantly between workload operations, giving injected faults
  the large "generic kernel code" target surface they have on a real
  system, where most faults crash the machine without going anywhere near
  the file cache.

Each native registered via :func:`build_kernel_text` issues the same bus
traffic as its assembly and raises the same panics, so a run behaves
identically whether a routine executes natively (pristine text) or on the
interpreter (corrupted text) — only speed differs.
"""

from __future__ import annotations

from repro.errors import KernelPanic
from repro.hw.bus import AccessContext, MemoryBus
from repro.isa.interpreter import PANIC_MESSAGES
from repro.isa.text import KernelText

CACHE_HDR_MAGIC = 0x7B0F
PROC_MAGIC = 0x50C5
VNODE_MAGIC = 0x7A0D

#: Buffer header layout used by ``cache_copy`` (offsets in bytes).
HDR_MAGIC_OFF = 0
HDR_DST_OFF = 8
HDR_SIZE_OFF = 16
HDR_FLAGS_OFF = 24
HDR_BYTES = 32

ROUTINE_SOURCES: dict[str, str] = {
    "bcopy": """
        ; bcopy(a0=src, a1=dst, a2=len) -> v0 = bytes copied
        bis   a2, zero, v0
        lda   t0, 8(zero)
    qloop:
        cmpult a2, t0, t1
        bne   t1, tail
        ldq   t2, 0(a0)
        stq   t2, 0(a1)
        lda   a0, 8(a0)
        lda   a1, 8(a1)
        lda   a2, -8(a2)
        br    qloop
    tail:
        beq   a2, done
        ldb   t2, 0(a0)
        stb   t2, 0(a1)
        lda   a0, 1(a0)
        lda   a1, 1(a1)
        lda   a2, -1(a2)
        br    tail
    done:
        ret
    """,
    "bzero": """
        ; bzero(a0=dst, a1=len) -> v0 = bytes zeroed
        bis   a1, zero, v0
        lda   t0, 8(zero)
    qloop:
        cmpult a1, t0, t1
        bne   t1, tail
        stq   zero, 0(a0)
        lda   a0, 8(a0)
        lda   a1, -8(a1)
        br    qloop
    tail:
        beq   a1, done
        stb   zero, 0(a0)
        lda   a0, 1(a0)
        lda   a1, -1(a1)
        br    tail
    done:
        ret
    """,
    "cache_copy": """
        ; cache_copy(a0=hdr, a1=src, a2=off, a3=len) -> v0 = len
        ; hdr: [0]=magic, [8]=dst base, [16]=buffer size, [24]=flags
        lda   sp, -32(sp)
        stq   ra, 0(sp)
        stq   a0, 8(sp)
        stq   a1, 16(sp)
        ldq   t0, 0(a0)
        lda   t1, 0x7B0F(zero)
        cmpeq t0, t1, t2
        bne   t2, magic_ok
        panic #21
    magic_ok:
        ldq   a0, 8(sp)
        ldq   t3, 8(a0)
        ldq   t4, 16(a0)
        addq  a2, a3, t5
        cmpule t5, t4, t6
        bne   t6, size_ok
        panic #22
    size_ok:
        bis   a3, zero, v0
        addq  t3, a2, t7
        ldq   a1, 16(sp)
        lda   t0, 8(zero)
    qloop:
        cmpult a3, t0, t1
        bne   t1, tail
        ldq   t2, 0(a1)
        stq   t2, 0(t7)
        lda   a1, 8(a1)
        lda   t7, 8(t7)
        lda   a3, -8(a3)
        br    qloop
    tail:
        beq   a3, done
        ldb   t2, 0(a1)
        stb   t2, 0(t7)
        lda   a1, 1(a1)
        lda   t7, 1(t7)
        lda   a3, -1(a3)
        br    tail
    done:
        ldq   ra, 0(sp)
        lda   sp, 32(sp)
        ret
    """,
    "checksum_block": """
        ; checksum_block(a0=addr, a1=len) -> v0 = sum of quadwords
        bis   zero, zero, v0
        lda   t0, 8(zero)
    loop:
        cmpult a1, t0, t1
        bne   t1, done
        ldq   t2, 0(a0)
        addq  v0, t2, v0
        lda   a0, 8(a0)
        lda   a1, -8(a1)
        br    loop
    done:
        ret
    """,
    "sched_tick": """
        ; sched_tick(a0=&head): walk run queue, bump tick counters
        ; proc: [0]=magic, [8]=next, [16]=ticks
        ldq   t5, 0(a0)
        lda   t1, 0x50C5(zero)
    loop:
        beq   t5, done
        ldq   t0, 0(t5)
        cmpeq t0, t1, t2
        bne   t2, ok
        panic #31
    ok:
        ldq   t3, 16(t5)
        lda   t3, 1(t3)
        stq   t3, 16(t5)
        ldq   t5, 8(t5)
        br    loop
    done:
        ret
    """,
    "vnode_scan": """
        ; vnode_scan(a0=table, a1=nbuckets): walk vnode hash chains
        ; vnode: [0]=magic, [8]=next, [16]=refcnt
        bis   a0, zero, s0
        bis   a1, zero, s1
        lda   t1, 0x7A0D(zero)
    bucket_loop:
        beq   s1, done
        ldq   t5, 0(s0)
    chain:
        beq   t5, next_bucket
        ldq   t0, 0(t5)
        cmpeq t0, t1, t2
        bne   t2, chain_ok
        panic #33
    chain_ok:
        ldq   t3, 16(t5)
        lda   t3, 1(t3)
        stq   t3, 16(t5)
        ldq   t5, 8(t5)
        br    chain
    next_bucket:
        lda   s0, 8(s0)
        lda   s1, -1(s1)
        br    bucket_loop
    done:
        ret
    """,
}

MASK64 = (1 << 64) - 1


# -- native fast paths -------------------------------------------------------


def _native_bcopy(bus: MemoryBus, args: list[int], ctx: AccessContext) -> int:
    src, dst, length = args[0], args[1], args[2]
    if length:
        bus.store(dst, bus.load(src, length, ctx), ctx)
    return length


def _bcopy_steps(args: list[int]) -> int:
    length = args[2]
    return 6 + 8 * (length // 8) + 7 * (length % 8)


def _bcopy_stores(args: list[int]) -> int:
    length = args[2]
    return length // 8 + length % 8


def _native_bzero(bus: MemoryBus, args: list[int], ctx: AccessContext) -> int:
    dst, length = args[0], args[1]
    if length:
        bus.store(dst, b"\x00" * length, ctx)
    return length


def _bzero_steps(args: list[int]) -> int:
    length = args[1]
    return 6 + 6 * (length // 8) + 6 * (length % 8)


def _bzero_stores(args: list[int]) -> int:
    length = args[1]
    return length // 8 + length % 8


def _native_cache_copy(bus: MemoryBus, args: list[int], ctx: AccessContext) -> int:
    hdr, src, off, length = args[0], args[1], args[2], args[3]
    magic = bus.load_u64(hdr + HDR_MAGIC_OFF, ctx)
    if magic != CACHE_HDR_MAGIC:
        raise KernelPanic(PANIC_MESSAGES[21], code=21)
    dst_base = bus.load_u64(hdr + HDR_DST_OFF, ctx)
    size = bus.load_u64(hdr + HDR_SIZE_OFF, ctx)
    if (off + length) & MASK64 > size:
        raise KernelPanic(PANIC_MESSAGES[22], code=22)
    if length:
        bus.store((dst_base + off) & MASK64, bus.load(src, length, ctx), ctx)
    return length


def _cache_copy_steps(args: list[int]) -> int:
    length = args[3]
    return 20 + 8 * (length // 8) + 7 * (length % 8)


def _cache_copy_stores(args: list[int]) -> int:
    length = args[3]
    # The register spills in the prologue are stores too.
    return 3 + length // 8 + length % 8


def _native_checksum_block(bus: MemoryBus, args: list[int], ctx: AccessContext) -> int:
    addr, length = args[0], args[1]
    data = bus.load(addr, length - length % 8, ctx) if length >= 8 else b""
    total = 0
    for i in range(0, len(data), 8):
        total = (total + int.from_bytes(data[i : i + 8], "little")) & MASK64
    return total


def _checksum_steps(args: list[int]) -> int:
    return 4 + 6 * (args[1] // 8)


def _native_sched_tick(bus: MemoryBus, args: list[int], ctx: AccessContext) -> int:
    node = bus.load_u64(args[0], ctx)
    while node:
        if bus.load_u64(node, ctx) != PROC_MAGIC:
            raise KernelPanic(PANIC_MESSAGES[31], code=31)
        bus.store_u64(node + 16, bus.load_u64(node + 16, ctx) + 1, ctx)
        node = bus.load_u64(node + 8, ctx)
    return 0


def _native_vnode_scan(bus: MemoryBus, args: list[int], ctx: AccessContext) -> int:
    table, nbuckets = args[0], args[1]
    for bucket in range(nbuckets):
        node = bus.load_u64(table + 8 * bucket, ctx)
        while node:
            if bus.load_u64(node, ctx) != VNODE_MAGIC:
                raise KernelPanic(PANIC_MESSAGES[33], code=33)
            bus.store_u64(node + 16, bus.load_u64(node + 16, ctx) + 1, ctx)
            node = bus.load_u64(node + 8, ctx)
    return 0


def _const_steps(value: int):
    return lambda args: value


def build_kernel_text(transform=None) -> KernelText:
    """Assemble the kernel routine set and register the native fast paths.

    With a ``transform`` (e.g. the code patcher) the text is rewritten and
    **no natives are registered**: rewritten text must actually execute on
    the interpreter — that is the point of patching it — and the native
    equivalents would neither run the inserted checks nor charge their
    cost.
    """
    text = KernelText(ROUTINE_SOURCES, transform=transform)
    if transform is not None:
        return text
    text.register_native("bcopy", _native_bcopy, _bcopy_steps, _bcopy_stores)
    text.register_native("bzero", _native_bzero, _bzero_steps, _bzero_stores)
    text.register_native(
        "cache_copy", _native_cache_copy, _cache_copy_steps, _cache_copy_stores
    )
    text.register_native(
        "checksum_block", _native_checksum_block, _checksum_steps, _const_steps(0)
    )
    text.register_native(
        "sched_tick", _native_sched_tick, _const_steps(120), _const_steps(16)
    )
    text.register_native(
        "vnode_scan", _native_vnode_scan, _const_steps(400), _const_steps(32)
    )
    return text
