"""A small Alpha-flavoured ISA, assembler and interpreter.

Why a mini-ISA at all?  The paper's fault injector corrupts the *running
kernel's machine code*: it flips bits in kernel text, changes source and
destination registers of instructions, deletes branches, and so on
(section 3.1).  Reproducing those faults honestly requires kernel code that
is really encoded as instructions in simulated memory and really executed —
otherwise "delete the most recent instruction that modifies the base
register of a store" has no meaning and the reproduction degenerates into
sampling outcome probabilities.

So the kernel's data-movement plane (``bcopy``, ``bzero``, the buffer/UBC
write paths) and a body of background kernel activity (list manipulation,
scheduler tick) are written in assembly for the ISA defined here, loaded
into the simulated machine's kernel text segment at boot, and executed by
:class:`~repro.isa.interpreter.Interpreter` through the memory bus — which
means wild stores from corrupted code meet exactly the same MMU protection
as legitimate stores.

For speed, routines whose text is *pristine* (never touched by the fault
injector) may execute via registered native equivalents that issue the
same bus traffic; any routine whose text has been mutated always runs on
the interpreter.
"""

from repro.isa.encoding import (
    Instruction,
    Op,
    REG_NAMES,
    REG_NUMBERS,
    decode,
    encode,
)
from repro.isa.assembler import AssemblyError, assemble
from repro.isa.text import KernelText, Routine
from repro.isa.interpreter import Interpreter, InterpreterLimits

__all__ = [
    "Instruction",
    "Op",
    "REG_NAMES",
    "REG_NUMBERS",
    "decode",
    "encode",
    "AssemblyError",
    "assemble",
    "KernelText",
    "Routine",
    "Interpreter",
    "InterpreterLimits",
]
