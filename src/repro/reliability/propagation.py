"""Fault-propagation analysis — the paper's declared future work.

Footnote 2 (section 3.3): "We plan to trace how faults propagate to
corrupt files and crash the system instead of treating the system as a
black box.  This is extremely challenging, however, and is beyond the
scope of this paper."

In a simulation it is not beyond scope: every run already knows what was
mutated (the injection record), what the kernel was doing when it died
(the crash reason), how long the fault incubated (operations and virtual
time from injection to crash), and what the detectors found.  This module
aggregates those facts into the fault-type × outcome matrix the paper
could only gesture at.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field

from repro.faults.types import FaultType
from repro.reliability.report import Table1

CRASH_KIND_LABELS = {
    "machine_check": "illegal address (machine check)",
    "panic": "consistency check (panic)",
    "illegal_instruction": "illegal instruction",
    "watchdog": "hang (watchdog)",
    "protection_trap": "Rio protection trap",
}


@dataclass
class PropagationSummary:
    """Fault type -> outcome distribution for one campaign."""

    #: (fault type, crash kind) -> count
    matrix: dict = field(default_factory=dict)
    #: fault type -> [ops from injection to crash]
    incubation_ops: dict = field(default_factory=dict)
    #: fault type -> corruption count
    corruptions: dict = field(default_factory=dict)
    #: fault type -> count of crashed trials where no fault was ever
    #: injected (``injected_at_op == -1``).  Bucketed separately: such a
    #: trial has no injection point, so it has no incubation time.
    uninjected: dict = field(default_factory=dict)

    def add(self, fault_type: FaultType, kind: str, ops: int, corrupted: bool) -> None:
        key = (fault_type, kind)
        self.matrix[key] = self.matrix.get(key, 0) + 1
        self.incubation_ops.setdefault(fault_type, []).append(ops)
        if corrupted:
            self.corruptions[fault_type] = self.corruptions.get(fault_type, 0) + 1

    def add_uninjected(self, fault_type: FaultType) -> None:
        self.uninjected[fault_type] = self.uninjected.get(fault_type, 0) + 1

    def median_incubation(self, fault_type: FaultType) -> int:
        """Median ops from injection to crash, as ``statistics.median_low``.

        ``median_low`` so the statistic is always an *observed* op count:
        for an even number of samples it returns the lower of the two
        middle values rather than interpolating a half-operation that no
        trial actually exhibited.  (The previous ``ops[len(ops) // 2]``
        returned the *upper* middle element — not any accepted median.)
        """
        ops = self.incubation_ops.get(fault_type, [])
        return statistics.median_low(ops) if ops else 0


def summarize_propagation(table: Table1, system: str) -> PropagationSummary:
    """Build the propagation summary for one system of a campaign.

    Crashed trials whose fault was never injected (``injected_at_op ==
    -1``) carry no injection-to-crash information; they are counted in
    :attr:`PropagationSummary.uninjected` instead of polluting the
    incubation distribution with their whole run length.
    """
    summary = PropagationSummary()
    for (cell_system, fault_type), cell in table.cells.items():
        if cell_system != system:
            continue
        for result in cell.results:
            if not result.crashed:
                continue
            if result.injected_at_op < 0:
                summary.add_uninjected(fault_type)
                continue
            incubation = result.ops_run - result.injected_at_op
            summary.add(
                fault_type,
                result.crash_kind,
                max(0, incubation),
                result.corrupted,
            )
    return summary


def format_propagation(summary: PropagationSummary) -> str:
    """Render the fault-type × crash-kind matrix.

    An empty matrix (no crashed trial ever had a fault injected — e.g.
    a campaign of crash-point-explorer trials, or one whose every crash
    predates its injection op) renders a typed one-liner instead of a
    bare header over zero rows.
    """
    if not summary.matrix:
        lines = [
            "(no crashed trials with an injected fault — "
            "no propagation to attribute)"
        ]
        if summary.uninjected:
            total = sum(summary.uninjected.values())
            lines.append(
                f"(excluded: {total} crashed trial(s) with no fault injected)"
            )
        return "\n".join(lines)
    kinds = sorted({kind for (_, kind) in summary.matrix})
    fault_types = sorted(
        {fault for (fault, _) in summary.matrix}, key=lambda f: list(FaultType).index(f)
    )
    width = 22
    header = "Fault Type".ljust(width) + "".join(k.ljust(18) for k in kinds)
    header += "corrupted".rjust(10) + "median ops".rjust(12)
    lines = [header, "-" * len(header)]
    for fault in fault_types:
        row = fault.value.ljust(width)
        for kind in kinds:
            count = summary.matrix.get((fault, kind), 0)
            row += (str(count) if count else ".").ljust(18)
        row += str(summary.corruptions.get(fault, 0)).rjust(10)
        row += str(summary.median_incubation(fault)).rjust(12)
        lines.append(row)
    if summary.uninjected:
        total = sum(summary.uninjected.values())
        lines.append(
            f"(excluded: {total} crashed trial(s) with no fault injected)"
        )
    return "\n".join(lines)
