"""One crash test: boot, load, inject, crash, recover, detect.

The three systems of Table 1:

* ``disk`` — the default Digital Unix kernel setup: UFS policy (sync
  metadata, async data) with memTest calling fsync after every write to
  get write-through semantics.  No registry, no warm reboot; recovery is
  fsck.  "Only memTest is used to detect corruption on disk."
* ``rio_noprot`` — reliability writes off, registry + warm reboot, no
  protection.
* ``rio_prot`` — the same plus the VM/KSEG protection mechanism.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Optional

from repro.core import RioConfig
from repro.errors import FileSystemError, KernelPanic, SystemCrash
from repro.faults import FaultInjector, FaultType
from repro.faults.injector import FaultParams
from repro.hw.clock import NS_PER_SEC
from repro.system import SystemSpec, build_system
from repro.util.prng import DeterministicRandom, pattern_bytes
from repro.workloads.andrew import AndrewBenchmark, AndrewParams
from repro.workloads.memtest import (
    MemTest,
    MemTestModel,
    MemTestParams,
    verify_against_model,
)

SYSTEM_NAMES = ("disk", "rio_noprot", "rio_prot")

_STATIC_KEY = 0x57A71C
_STATIC_BYTES = 32 * 1024


def system_spec_for(name: str, **overrides) -> SystemSpec:
    """The SystemSpec for one of Table 1's three systems."""
    if name == "disk":
        return SystemSpec(fs_type="ufs", policy="ufs", rio=None, **overrides)
    if name == "rio_noprot":
        return SystemSpec(
            fs_type="ufs", policy="rio", rio=RioConfig.without_protection(), **overrides
        )
    if name == "rio_prot":
        return SystemSpec(
            fs_type="ufs", policy="rio", rio=RioConfig.with_protection(), **overrides
        )
    raise ValueError(f"unknown system {name!r}; know {SYSTEM_NAMES}")


@dataclass
class CrashTestConfig:
    system: str = "rio_prot"
    fault_type: FaultType = FaultType.KERNEL_TEXT
    seed: int = 1
    #: Operation budget after injection before the run is discarded
    #: (stands in for the paper's ten-minute wall-clock budget).
    max_ops_after_injection: int = 1500
    #: Simulated-time budget after injection (the paper's ten minutes).
    sim_budget_s: float = 600.0
    #: Concurrent Andrew instances (the paper ran four).
    andrew_copies: int = 2
    inject_after_ops: tuple = (30, 120)
    memtest: MemTestParams = field(default_factory=MemTestParams)
    faults: FaultParams = field(default_factory=FaultParams)
    #: Keep the recovered ``System`` on the result for white-box
    #: inspection.  Off by default: a live system is unpicklable, and the
    #: parallel campaign engine ships results between processes.
    keep_system: bool = False
    #: Record the flight-recorder event stream for the trial and attach
    #: it (serialized, with a digest) to the result.  Off by default —
    #: with it off the recorder stays disabled and results serialize
    #: exactly as before, so table1 digests are unchanged.
    trace_events: bool = False

    def to_json_dict(self) -> dict:
        """A pure-JSON description (enums to values, tuples to lists)."""
        data = {
            "system": self.system,
            "fault_type": self.fault_type.value,
            "seed": self.seed,
            "max_ops_after_injection": self.max_ops_after_injection,
            "sim_budget_s": self.sim_budget_s,
            "andrew_copies": self.andrew_copies,
            "inject_after_ops": list(self.inject_after_ops),
            "memtest": _params_to_json(self.memtest),
            "faults": _params_to_json(self.faults),
            "keep_system": self.keep_system,
        }
        # Only serialized when set, so untraced configs — and therefore
        # table1_digest over untraced campaigns — are byte-identical to
        # what they were before the flight recorder existed.
        if self.trace_events:
            data["trace_events"] = True
        return data

    @classmethod
    def from_json_dict(cls, data: dict) -> "CrashTestConfig":
        data = dict(data)
        data["fault_type"] = FaultType(data["fault_type"])
        data["inject_after_ops"] = tuple(data["inject_after_ops"])
        data["memtest"] = _params_from_json(MemTestParams, data["memtest"])
        data["faults"] = _params_from_json(FaultParams, data["faults"])
        return cls(**data)


def _params_to_json(params) -> dict:
    """Dataclass -> JSON dict, tuples down-converted to lists."""
    return {
        key: list(value) if isinstance(value, tuple) else value
        for key, value in params.__dict__.items()
    }


def _params_from_json(cls, data: dict):
    """JSON dict -> dataclass, lists restored to tuples where the field
    default is a tuple (all sequence fields here are)."""
    kwargs = {}
    for f in dataclasses.fields(cls):
        if f.name not in data:
            continue
        value = data[f.name]
        if isinstance(value, list):
            value = tuple(value)
        kwargs[f.name] = value
    return cls(**kwargs)


@dataclass
class CrashTestResult:
    config: CrashTestConfig
    crashed: bool = False
    discarded: bool = False
    crash_kind: str = ""
    crash_reason: str = ""
    #: The kernel panic's numeric code (``PANIC_MESSAGES`` key), for
    #: bucketing campaign crashes by panic site; None for non-panic
    #: crashes and panics raised without a code.
    panic_code: Optional[int] = None
    ops_run: int = 0
    injected_at_op: int = -1
    memtest_progress: int = 0
    #: Corruption evidence, by detector.
    memtest_problems: list = field(default_factory=list)
    checksum_mismatches: int = 0
    static_copy_mismatch: bool = False
    recovery_failed: bool = False
    #: True when the crash *was* the protection trap — a prevented
    #: corruption (the paper recorded eight of these).
    protection_trap: bool = False
    fsck_fixes: int = 0
    #: Serialized flight-recorder event stream (list of JSON dicts) and
    #: its digest, populated only when the config sets ``trace_events``.
    #: Left out of ``to_json_dict`` when None so untraced results (and
    #: table1 digests) serialize exactly as before.
    trace_events: Optional[list] = None
    event_digest: Optional[str] = None
    #: Second opinion from the independent dissect verifier, run over the
    #: post-fsck disk image of every crashed trial: the image's canonical
    #: digest, the typed findings (JSON dicts), and the fsck-vs-dissect
    #: :class:`~repro.fs.dissect.DivergenceReport` (JSON dict).  None on
    #: discarded/diskless runs; left out of ``to_json_dict`` when None.
    image_sha256: Optional[str] = None
    dissect_findings: Optional[list] = None
    divergence: Optional[dict] = None
    #: The recovered System (populated after recovery only when the
    #: config sets ``keep_system``; white-box tests inspect it).  Never
    #: serialized: ``detach``/``__getstate__`` strip it.
    _system: object = None

    @property
    def corrupted(self) -> bool:
        return bool(
            self.memtest_problems
            or self.checksum_mismatches
            or self.static_copy_mismatch
            or self.recovery_failed
        )

    @property
    def diverged(self) -> bool:
        """fsck and the dissect verifier disagreed about this trial's
        post-recovery image (always False when the verifier did not run)."""
        return bool(self.divergence) and not self.divergence["agreed"]

    def detach(self) -> "CrashTestResult":
        """Drop the live ``_system`` back-reference; returns ``self``."""
        self._system = None
        return self

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state["_system"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)

    def to_json_dict(self) -> dict:
        """A pure-JSON description; the journal/worker wire format."""
        data = {
            name: value
            for name, value in self.__dict__.items()
            if name not in ("_system", "config", "memtest_problems")
            and not (
                name
                in (
                    "trace_events",
                    "event_digest",
                    "image_sha256",
                    "dissect_findings",
                    "divergence",
                )
                and value is None
            )
        }
        data["config"] = self.config.to_json_dict()
        data["memtest_problems"] = [
            {"path": p.path, "problem": p.problem} for p in self.memtest_problems
        ]
        return data

    @classmethod
    def from_json_dict(cls, data: dict) -> "CrashTestResult":
        from repro.workloads.memtest import CorruptionRecord

        data = dict(data)
        data["config"] = CrashTestConfig.from_json_dict(data["config"])
        data["memtest_problems"] = [
            CorruptionRecord(**p) for p in data["memtest_problems"]
        ]
        return cls(**data)


def _setup_static_files(vfs) -> None:
    """Two identical copies of a file nothing modifies (section 3.2's
    final corruption check)."""
    vfs.mkdir("/static")
    payload = pattern_bytes(_STATIC_KEY, 0, _STATIC_BYTES)
    for name in ("copy1", "copy2"):
        fd = vfs.open(f"/static/{name}", create=True)
        vfs.write(fd, payload)
        # The paper's static copies pre-exist on stable storage; make
        # them durable before any fault is armed.
        vfs.fsync(fd)
        vfs.close(fd)


def _check_static_files(fs) -> bool:
    """Returns True when the static copies are damaged or differ."""
    expected = pattern_bytes(_STATIC_KEY, 0, _STATIC_BYTES)
    try:
        contents = [
            fs.read(fs.namei(f"/static/{name}"), 0, _STATIC_BYTES)
            for name in ("copy1", "copy2")
        ]
    except FileSystemError:
        return True
    return contents[0] != contents[1] or contents[0] != expected


def dissect_second_opinion(system, reboot, result: CrashTestResult) -> None:
    """Run the independent verifier over the post-fsck disk image.

    Populates ``image_sha256``, ``dissect_findings`` and ``divergence``
    on the result.  Runs at the one point in the trial where the on-disk
    state is supposed to be consistent — immediately after
    ``System.reboot`` (fsck has repaired, nothing has re-dirtied the
    caches) — because on a live Rio system the disk is *legitimately*
    stale between flushes and a mid-run scan would prove nothing.
    """
    from repro.fs.dissect import compare_verdicts, dissect_image, snapshot

    if system.disk is None or reboot.fsck is None:
        return
    report = dissect_image(snapshot(system.disk))
    result.image_sha256 = report.image_sha256
    result.dissect_findings = [f.to_json_dict() for f in report.findings]
    result.divergence = compare_verdicts(
        fsck_unrecoverable=reboot.fsck.unrecoverable,
        fsck_fix_count=reboot.fsck.fix_count,
        report=report,
    ).to_json_dict()


def run_crash_test(
    config: CrashTestConfig, *, baseline_stop: Optional[int] = None
) -> CrashTestResult:
    """Execute one fault-injection run end to end.

    With ``baseline_stop`` set, the run becomes a *forensic baseline*: the
    fault is never injected (everything else — seeds, workload streams,
    even the rng draw that picks the injection point — is identical) and
    the run halts once ``op_index`` reaches the stop.  Diffing a faulted
    trial's event stream against its baseline's pinpoints the first store
    the fault influenced.
    """
    from repro.obs import events_digest

    result = CrashTestResult(config=config)
    rng = DeterministicRandom(config.seed ^ 0xC0FFEE)
    spec = system_spec_for(config.system)
    system = build_system(spec)
    vfs, kernel = system.vfs, system.kernel

    recorder = getattr(system.machine, "recorder", None)
    if config.trace_events and recorder is not None:
        recorder.start()

    def finish(res: CrashTestResult) -> CrashTestResult:
        """Capture the event stream onto the result (all return paths)."""
        if config.trace_events and recorder is not None:
            res.trace_events = recorder.to_json_list()
            res.event_digest = events_digest(res.trace_events)
            recorder.stop()
        return res

    memtest = MemTest(
        vfs,
        config.seed,
        MemTestParams(
            **{
                **config.memtest.__dict__,
                "fsync_every_write": config.system == "disk",
            }
        ),
    )
    memtest.setup()
    _setup_static_files(vfs)
    andrews = [
        AndrewBenchmark(
            vfs,
            kernel,
            AndrewParams(root=f"/andrew{i}", seed=config.seed * 31 + i, dirs=2, files_per_dir=4),
        )
        for i in range(config.andrew_copies)
    ]
    streams = [memtest.ops()] + [a.ops() for a in andrews]

    injector = FaultInjector(kernel, config.seed, config.faults)
    inject_at = rng.randint(*config.inject_after_ops)
    injected = False
    deadline_ns: Optional[int] = None
    op_index = 0

    while True:
        if baseline_stop is not None:
            if op_index >= baseline_stop:
                result.discarded = True  # baseline: ran clean to the stop
                break
        elif injected:
            if (
                op_index - inject_at > config.max_ops_after_injection
                or system.clock.now_ns > deadline_ns
            ):
                result.discarded = True  # survived the budget: discard
                break
        if baseline_stop is None and op_index == inject_at:
            if recorder is not None and recorder.enabled:
                recorder.emit(
                    "trial",
                    "inject",
                    at_op=inject_at,
                    fault=str(config.fault_type.value),
                    seed=config.seed,
                )
            injector.inject(config.fault_type)
            injected = True
            result.injected_at_op = inject_at
            deadline_ns = system.clock.now_ns + int(config.sim_budget_s * NS_PER_SEC)
        stream = streams[op_index % len(streams)]
        thunk = next(stream)
        try:
            thunk()
        except SystemCrash as crash:
            result.crashed = True
            result.crash_reason = str(crash)
            result.crash_kind = (
                system.machine.crash_log[-1].kind if system.machine.crash_log else "panic"
            )
            result.protection_trap = result.crash_kind == "protection_trap"
            if isinstance(crash, KernelPanic):
                result.panic_code = crash.code
            break
        except FileSystemError:
            pass  # a failed op (e.g. transient ENOSPC) is not a crash
        op_index += 1
    result.ops_run = op_index
    result.memtest_progress = memtest.progress
    if not result.crashed:
        return finish(result)

    # -- recovery ----------------------------------------------------------
    try:
        reboot = system.reboot()
    except Exception:
        result.recovery_failed = True
        return finish(result)
    # Second opinion before any detection I/O can dirty the caches: the
    # independent dissect verifier walks the image exactly as fsck left it.
    dissect_second_opinion(system, reboot, result)
    if reboot.fsck is not None:
        result.fsck_fixes = reboot.fsck.fix_count
        if reboot.fsck.unrecoverable:
            result.recovery_failed = True
            return finish(result)
    if reboot.warm is not None:
        result.checksum_mismatches = len(reboot.warm.checksum_mismatches)

    # -- detection ------------------------------------------------------------
    model, in_flight = MemTestModel.replay(
        config.seed, memtest.progress, memtest.params
    )
    try:
        result.memtest_problems = verify_against_model(system.fs, model, in_flight)
    except FileSystemError:
        result.recovery_failed = True
    result.static_copy_mismatch = _check_static_files(system.fs)
    if config.keep_system:
        result._system = system  # kept for white-box inspection in tests
    return finish(result)


def run_baseline_trace(config: CrashTestConfig, stop_at_op: int) -> list:
    """Re-run a trial's exact configuration with injection suppressed.

    Returns the serialized baseline event stream, halted at
    ``stop_at_op`` (pass the faulted trial's ``ops_run + 1`` so the
    baseline fully executes the operation the faulted run died inside).
    """
    cfg = dataclasses.replace(config, trace_events=True, keep_system=False)
    res = run_crash_test(cfg, baseline_stop=stop_at_op)
    return res.trace_events or []
