"""Seeded chaos campaigns: the capability matrix, driven end to end.

One chaos *trial* is a traffic-under-faults campaign
(:func:`~repro.reliability.traffic.run_traffic_campaign`) with one set
of armed capabilities from :mod:`repro.faults.capabilities` — the same
deterministic clients, the same forced crash storm, plus allocation
denials / queue overflows / disk-full / slow IO injected on top.  The
*matrix* runs one trial per capability (plus a calm baseline) and
reports the service-tier SLOs:

* **p99 latency under chaos** — what each fault family costs the tail;
* **zero lost acks** — every trial must keep the durability promise;
* **recovery time** — virtual ns spent in warm reboot + audit.

Trials are pure functions of their payload, so the matrix fans out
through :class:`~repro.reliability.engine.ParallelMap` and the campaign
digest — a hash over every trial's ack/state digests and fire counts in
matrix order — is bit-identical at any ``--jobs`` and on either
execution engine.  ``repro chaos`` is the CLI; ``benchmarks/
bench_chaos.py`` records the SLO artifact.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field
from typing import List, Optional, Tuple


@dataclass(frozen=True)
class ChaosSpec:
    """One capability arming, in wire-safe form.

    Field names match :meth:`ChaosRegistry.enable` exactly, so a spec's
    dict form is the enable call's kwargs; a tuple of these dicts is
    what :attr:`TrafficConfig.chaos` carries across process boundaries.
    """

    name: str
    probability: int = 100
    interval: int = 1
    times: int = -1
    nth: int = 0
    factor: float = 8.0
    client: Optional[int] = None
    session: Optional[int] = None
    routine: Optional[str] = None

    def to_json_dict(self) -> dict:
        """The enable-kwargs dict (JSON-safe)."""
        return asdict(self)

    @classmethod
    def from_json_dict(cls, data: dict) -> "ChaosSpec":
        """Rebuild a spec from its dict form."""
        return cls(**data)


#: The default capability matrix: one trial per capability plus a calm
#: baseline.  Knobs are deliberately *bounded* (finite ``times``, sparse
#: ``interval``) — chaos must perturb the run, not livelock it: a
#: retryable capability armed unbounded at probability 100 would deny
#: every retry forever.
DEFAULT_MATRIX: Tuple[Tuple[str, Tuple[ChaosSpec, ...]], ...] = (
    ("baseline", ()),
    ("fail_alloc", (ChaosSpec("fail_alloc", probability=25, interval=7, times=6),)),
    ("fail_queue", (ChaosSpec("fail_queue", probability=50, interval=11, times=10),)),
    ("fail_disk_full", (ChaosSpec("fail_disk_full", probability=40, interval=5, times=5),)),
    ("slow_io", (ChaosSpec("slow_io", interval=6, times=20, factor=8.0),)),
    ("fail_nth_syscall", (ChaosSpec("fail_nth_syscall", nth=9, times=4),)),
)


@dataclass
class ChaosCampaignConfig:
    """One chaos campaign: the shared trial shape plus the matrix."""

    system: str = "rio_prot"
    clients: int = 16
    #: Forced crashes per trial — every trial exercises recovery, so the
    #: recovery-time SLO is never vacuous.
    crashes: int = 2
    seed: int = 1
    #: Worker processes for the trial fan-out (1 = inline).
    jobs: int = 1
    ops_per_client: int = 30
    fs_blocks: int = 2048
    #: Pin the execution engine (None keeps the machine default).
    fast_path: Optional[bool] = None
    #: ``(trial_name, (ChaosSpec, ...))`` pairs; order fixes the digest.
    matrix: Tuple[Tuple[str, Tuple[ChaosSpec, ...]], ...] = DEFAULT_MATRIX


@dataclass
class ChaosTrialResult:
    """One trial's SLO summary (wire-safe)."""

    trial: str
    capabilities: Tuple[str, ...] = ()
    acked: int = 0
    failed: int = 0
    rejected: int = 0
    retried: int = 0
    lost_acks: int = 0
    crashes_observed: int = 0
    recoveries: int = 0
    recovery_ns: int = 0
    chaos_fires: int = 0
    chaos_snapshot: List[dict] = field(default_factory=list)
    p50_ns: int = 0
    p99_ns: int = 0
    throughput_ops_per_vsec: float = 0.0
    ack_digest: str = ""
    state_digest: str = ""
    ok: bool = False

    def to_json_dict(self) -> dict:
        """JSON-safe form shipped back from trial workers."""
        data = asdict(self)
        data["capabilities"] = list(self.capabilities)
        return data

    @classmethod
    def from_json_dict(cls, data: dict) -> "ChaosTrialResult":
        """Rebuild a trial result from its wire form."""
        data = dict(data)
        data["capabilities"] = tuple(data.get("capabilities", ()))
        return cls(**data)


@dataclass
class ChaosCampaignResult:
    """The whole matrix's outcome."""

    config: ChaosCampaignConfig
    trials: List[ChaosTrialResult] = field(default_factory=list)
    digest: str = ""
    quarantined: List = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Every trial ran, kept zero lost acks, and audited clean."""
        return (
            not self.quarantined
            and len(self.trials) == len(self.config.matrix)
            and all(trial.ok for trial in self.trials)
        )

    @property
    def total_fires(self) -> int:
        """Capability fires summed over the matrix."""
        return sum(trial.chaos_fires for trial in self.trials)

    def compute_digest(self) -> str:
        """sha256 over every trial's identity-bearing fields, in matrix
        order — the bit-identical-at-any-jobs/engine fixture."""
        h = hashlib.sha256()
        for trial in self.trials:
            h.update(
                json.dumps(
                    {
                        "trial": trial.trial,
                        "ack_digest": trial.ack_digest,
                        "state_digest": trial.state_digest,
                        "chaos_fires": trial.chaos_fires,
                        "chaos_snapshot": trial.chaos_snapshot,
                        "lost_acks": trial.lost_acks,
                        "crashes_observed": trial.crashes_observed,
                    },
                    sort_keys=True,
                    separators=(",", ":"),
                ).encode()
            )
            h.update(b"\n")
        return h.hexdigest()


def trial_payload(
    config: ChaosCampaignConfig, trial: str, specs: Tuple[ChaosSpec, ...]
) -> dict:
    """The JSON task one :func:`_chaos_trial_entry` worker consumes."""
    return {
        "trial": trial,
        "system": config.system,
        "clients": config.clients,
        "crashes": config.crashes,
        "seed": config.seed,
        "ops_per_client": config.ops_per_client,
        "fs_blocks": config.fs_blocks,
        "fast_path": config.fast_path,
        "chaos": [spec.to_json_dict() for spec in specs],
    }


def _chaos_trial_entry(payload: dict) -> dict:
    """ParallelMap entry point: run one chaos trial, return its summary.

    A pure function of ``payload`` (every input is in it, every output
    comes back as a JSON-safe dict), which is what makes the campaign
    digest independent of the worker count.
    """
    from repro.reliability.traffic import TrafficConfig, run_traffic_campaign
    from repro.server import LoadSpec

    config = TrafficConfig(
        system=payload["system"],
        clients=payload["clients"],
        crashes=payload["crashes"],
        seed=payload["seed"],
        storm="forced",
        fs_blocks=payload["fs_blocks"],
        load=LoadSpec(ops_per_client=payload["ops_per_client"]),
        fast_path=payload["fast_path"],
        chaos=tuple(payload["chaos"]),
    )
    result = run_traffic_campaign(config)
    load = result.load
    return ChaosTrialResult(
        trial=payload["trial"],
        capabilities=tuple(sorted({spec["name"] for spec in payload["chaos"]})),
        acked=load.acked,
        failed=load.failed,
        rejected=load.rejected,
        retried=load.retried,
        lost_acks=result.lost_acks,
        crashes_observed=result.crashes_observed,
        recoveries=result.recoveries,
        recovery_ns=result.recovery_ns,
        chaos_fires=result.chaos_fires,
        chaos_snapshot=list(result.chaos_snapshot),
        p50_ns=load.latency_percentile(0.50),
        p99_ns=load.latency_percentile(0.99),
        throughput_ops_per_vsec=load.throughput_ops_per_vsec,
        ack_digest=result.ack_digest,
        state_digest=result.state_digest,
        ok=result.ok,
    ).to_json_dict()


def format_chaos_report(result: ChaosCampaignResult) -> str:
    """Human-readable SLO report for one chaos campaign."""
    config = result.config
    lines = [
        "chaos capability matrix",
        f"  system          {config.system}  (seed={config.seed}, jobs={config.jobs})",
        f"  clients         {config.clients} x {config.ops_per_client} programs, "
        f"{config.crashes} forced crashes per trial",
        "",
        f"  {'trial':<18} {'fires':>5} {'acked':>6} {'p50 ms':>8} {'p99 ms':>8} "
        f"{'recovery ms':>11} {'lost':>4}",
    ]
    for trial in result.trials:
        lines.append(
            f"  {trial.trial:<18} {trial.chaos_fires:>5} {trial.acked:>6} "
            f"{trial.p50_ns / 1e6:>8.2f} {trial.p99_ns / 1e6:>8.2f} "
            f"{trial.recovery_ns / 1e6:>11.2f} {trial.lost_acks:>4}"
        )
    lines += [
        "",
        f"  total fires     {result.total_fires}",
        f"  campaign digest {result.digest[:16]}",
        f"  verdict         "
        + ("ZERO LOST ACKS UNDER CHAOS" if result.ok else "SLO VIOLATED"),
    ]
    if result.quarantined:
        lines.append(f"  quarantined     {result.quarantined}")
    return "\n".join(lines)
