"""Traffic-under-faults: crash storms against the live file service.

Table 1 crashes a kernel under a single-threaded workload.  This module
is the same experiment at service scale: N deterministic clients drive
the :class:`~repro.server.FileService` while a *crash storm* brings the
kernel down M times mid-traffic.  After every crash the service warm
reboots, audits its acknowledged-write journal against the recovered
cache, re-binds every session, and resumes the interrupted batch.  The
campaign's claim is the paper's, restated for a server: **no
acknowledged operation is ever lost on Rio** — and the whole run,
crashes included, is a pure function of its seed, so one
``(system, clients, seed)`` triple produces one ack digest on either
execution engine.

Two storm flavours:

* ``forced`` — administrative crashes at evenly spaced points in the
  executed-request stream (deterministic, always fires M times);
* ``faults`` — the Table 1 fault injector corrupts the running kernel
  at the same points; if a corruption stays latent past the watchdog
  budget the storm forces the crash (the paper's time budget, restated
  in executed requests).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro.faults import FaultInjector, FaultType
from repro.reliability.campaign import system_spec_for
from repro.server import (
    ClusterConfig,
    ClusterLoadReport,
    ClusterService,
    FileService,
    LoadClient,
    LoadReport,
    LoadSpec,
    ServiceConfig,
    run_cluster_load,
    run_load,
)
from repro.system import build_system


@dataclass
class TrafficConfig:
    """One traffic-under-faults run."""

    #: "disk" | "rio_noprot" | "rio_prot" (Table 1's three systems).
    system: str = "rio_prot"
    clients: int = 16
    crashes: int = 3
    seed: int = 1
    #: "forced" (administrative crashes) or "faults" (injected faults
    #: plus a watchdog).
    storm: str = "forced"
    #: Fault type used by the "faults" storm.
    fault_type: FaultType = FaultType.KERNEL_STACK
    #: Executed requests a latent fault may ride before the watchdog
    #: forces the crash ("faults" storm only).
    watchdog_budget: int = 200
    #: Root file system size in 8 KB blocks (64 clients need room).
    fs_blocks: int = 2048
    #: Per-client load shape.
    load: LoadSpec = field(default_factory=LoadSpec)
    #: Service tunables (queue depth, batch size, quotas).
    service: ServiceConfig = field(default_factory=ServiceConfig)
    #: Re-apply lost journal entries during recovery (meaningful on the
    #: disk system; a Rio run never has anything to repair).
    repair: bool = False
    #: Tiered backing store behind the disk ("local" | "objectstore" |
    #: "tiered"), or None for the classic single-tier stack.  With a
    #: backend armed the campaign reconciles the remote tier at every
    #: storm recovery and finishes with the remote-only audit.
    backend: Optional[str] = None
    #: Pin the execution engine (None keeps the machine default).
    fast_path: Optional[bool] = None
    #: Chaos capability specs to arm — a tuple of JSON-safe dicts whose
    #: keys match :meth:`ChaosRegistry.enable` (``name`` plus knobs and
    #: scope fields).  Empty means no chaos.
    chaos: tuple = ()


@dataclass
class TrafficResult:
    """What one traffic campaign observed."""

    config: TrafficConfig
    crashes_observed: int = 0
    recoveries: int = 0
    faults_injected: int = 0
    watchdog_fired: int = 0
    lost_acks: int = 0
    repaired_acks: int = 0
    rebinds: int = 0
    rebind_failures: int = 0
    transparent_retries: int = 0
    final_audit_ok: bool = False
    #: Virtual time spent in recovery (reboot + audit), summed.
    recovery_ns: int = 0
    #: Total chaos capability fires, and the per-capability snapshot
    #: (:meth:`ChaosRegistry.snapshot`) when chaos was armed.
    chaos_fires: int = 0
    chaos_snapshot: list = field(default_factory=list)
    load: Optional[LoadReport] = None
    #: Independent-verifier second opinions: one dissect scan after each
    #: storm recovery (post-fsck) plus one of the final flushed image.
    dissect_scans: int = 0
    dissect_divergences: int = 0
    divergence_details: list = field(default_factory=list)
    final_image_sha256: str = ""
    final_dissect_findings: int = 0
    final_dissect_clean: bool = False
    #: Remote tier (set only when ``config.backend`` is armed): storm
    #: recoveries that reconciled the object store, repairs they
    #: applied, deferred reconciles, and the final remote-only audit
    #: (a :meth:`~repro.backend.audit.RemoteCheck.to_json_dict`).
    remote_reconciles: int = 0
    remote_repairs: int = 0
    remote_deferred: int = 0
    remote_audit: Optional[dict] = None
    #: :meth:`TieredStats.to_json_dict` snapshot (uploads, dedup hits...).
    remote_stats: Optional[dict] = None

    @property
    def remote_ok(self) -> bool:
        """The remote tier's verdict (vacuously True without a backend)."""
        if self.config.backend is None:
            return True
        return bool(self.remote_audit and self.remote_audit.get("ok"))

    @property
    def ok(self) -> bool:
        """The zero-lost-acks guarantee, including the final audit (and
        the remote-only audit when a backend is armed)."""
        return self.lost_acks == 0 and self.final_audit_ok and self.remote_ok

    @property
    def ack_digest(self) -> str:
        """Digest of the ordered ack log (determinism fixture)."""
        return self.load.ack_digest if self.load else ""

    @property
    def state_digest(self) -> str:
        """Digest of the expected post-run state."""
        return self.load.state_digest if self.load else ""

    def to_json_dict(self) -> dict:
        """JSON-serializable summary (drops the live objects).

        Remote-tier keys appear only when ``config.backend`` is armed,
        so backend-less campaigns (and the chaos digests derived from
        them) serialize exactly as before.
        """
        data = {
            "system": self.config.system,
            "clients": self.config.clients,
            "crashes": self.config.crashes,
            "storm": self.config.storm,
            "seed": self.config.seed,
            "crashes_observed": self.crashes_observed,
            "recoveries": self.recoveries,
            "faults_injected": self.faults_injected,
            "watchdog_fired": self.watchdog_fired,
            "lost_acks": self.lost_acks,
            "repaired_acks": self.repaired_acks,
            "rebinds": self.rebinds,
            "rebind_failures": self.rebind_failures,
            "transparent_retries": self.transparent_retries,
            "recovery_ns": self.recovery_ns,
            "chaos_fires": self.chaos_fires,
            "chaos_snapshot": list(self.chaos_snapshot),
            "acked": self.load.acked if self.load else 0,
            "failed": self.load.failed if self.load else 0,
            "rejected": self.load.rejected if self.load else 0,
            "ok": self.ok,
            "ack_digest": self.ack_digest,
            "state_digest": self.state_digest,
            "dissect_scans": self.dissect_scans,
            "dissect_divergences": self.dissect_divergences,
            "divergence_details": list(self.divergence_details),
            "final_image_sha256": self.final_image_sha256,
            "final_dissect_findings": self.final_dissect_findings,
            "final_dissect_clean": self.final_dissect_clean,
        }
        if self.config.backend is not None:
            data["backend"] = self.config.backend
            data["remote_reconciles"] = self.remote_reconciles
            data["remote_repairs"] = self.remote_repairs
            data["remote_deferred"] = self.remote_deferred
            data["remote_ok"] = self.remote_ok
            data["remote_audit"] = self.remote_audit
            data["remote_stats"] = self.remote_stats
        return data


class _CrashStorm:
    """The ``before_execute`` hook bringing the kernel down mid-traffic.

    Crash points are evenly spaced over the estimated executed-request
    stream.  The "forced" flavour crashes the machine outright; the
    "faults" flavour injects one Table 1 fault and arms a watchdog that
    forces the crash if the corruption stays latent too long.
    """

    def __init__(self, system, config: TrafficConfig) -> None:
        self.system = system
        self.config = config
        total = config.clients * (
            config.load.files_per_client + int(config.load.ops_per_client * 1.4)
        )
        step = max(1, total // (config.crashes + 1))
        self.points: List[int] = [step * (i + 1) for i in range(config.crashes)]
        self.fired = 0
        self.faults_injected = 0
        self.watchdog_fired = 0
        self._armed_at: Optional[int] = None
        self._armed_kernel = None

    def __call__(self, executed: int) -> None:
        config = self.config
        if self._armed_at is not None:
            if self.system.kernel is not self._armed_kernel:
                # The fault crashed the kernel on its own (the system
                # has rebooted since arming): disarm the watchdog.
                self._armed_at = self._armed_kernel = None
            elif executed - self._armed_at >= config.watchdog_budget:
                # Latent corruption past the budget; force the crash.
                self._armed_at = self._armed_kernel = None
                self.watchdog_fired += 1
                self.system.machine.crash(
                    "traffic storm watchdog: latent fault", kind="watchdog"
                )
                return
            else:
                return
        if self.fired >= len(self.points) or executed < self.points[self.fired]:
            return
        self.fired += 1
        if config.storm == "forced":
            self.system.machine.crash(
                f"traffic storm crash {self.fired}/{config.crashes}",
                kind="forced",
            )
        else:
            # A fresh injector every time: the kernel object is replaced
            # by each reboot.
            injector = FaultInjector(
                self.system.kernel, seed=config.seed * 1000 + self.fired
            )
            injector.inject(config.fault_type)
            self.faults_injected += 1
            self._armed_at = executed
            self._armed_kernel = self.system.kernel


def run_traffic_campaign(config: TrafficConfig) -> TrafficResult:
    """Run one traffic-under-faults campaign; returns its result."""
    if config.storm not in ("forced", "faults"):
        raise ValueError(f"unknown storm {config.storm!r}")
    spec = system_spec_for(config.system, fs_blocks=config.fs_blocks)
    if config.backend is not None:
        spec = replace(spec, backend=config.backend, backend_seed=config.seed)
    if config.fast_path is not None:
        spec = replace(spec, machine=replace(spec.machine, fast_path=config.fast_path))
    system = build_system(spec)
    if config.chaos:
        from repro.faults.capabilities import ChaosRegistry

        registry = ChaosRegistry(seed=config.seed)
        for cap in config.chaos:
            registry.enable(**dict(cap))
        system.install_chaos(registry)
    service_config = replace(config.service, repair_on_recover=config.repair)
    service = FileService(system, service_config)
    storm = _CrashStorm(system, config)
    service.before_execute = storm

    # Second opinion after every storm recovery: the reboot hook runs at
    # the end of System.reboot, when fsck has just blessed the disk — the
    # one mid-campaign point where the on-disk state claims consistency.
    from repro.fs.dissect import compare_verdicts, dissect_image, snapshot

    scans: List = []
    remote_reconciles: List = []

    def dissect_after_recovery(sys_, report) -> None:
        remote = getattr(report, "remote", None)
        if remote is not None:
            remote_reconciles.append(remote)
        if sys_.disk is None or report.fsck is None:
            return
        scan = dissect_image(snapshot(sys_.disk))
        scans.append(
            compare_verdicts(
                fsck_unrecoverable=report.fsck.unrecoverable,
                fsck_fix_count=report.fsck.fix_count,
                report=scan,
            )
        )

    system.add_reboot_hook(dissect_after_recovery)
    clients = [
        LoadClient(client_id, seed=config.seed, spec=config.load)
        for client_id in range(config.clients)
    ]
    load = run_load(service, clients)
    result = TrafficResult(config=config, load=load)
    result.crashes_observed = service.stats.crashes_detected
    result.recoveries = service.stats.recoveries
    result.faults_injected = storm.faults_injected
    result.watchdog_fired = storm.watchdog_fired
    result.lost_acks = service.stats.lost_acks
    result.repaired_acks = service.stats.repaired_acks
    result.transparent_retries = service.stats.transparent_retries
    result.recovery_ns = service.stats.recovery_ns
    if system.chaos is not None:
        result.chaos_snapshot = system.chaos.snapshot()
        result.chaos_fires = sum(cap["fires"] for cap in result.chaos_snapshot)
    for session in service.sessions.sessions.values():
        result.rebinds += session.rebinds
        result.rebind_failures += session.rebind_failures
    final = service.audit()
    result.final_audit_ok = final.ok
    result.lost_acks += len(final.lost)

    # Final second opinion: flush everything, then dissect the quiesced
    # image (mid-run the Rio disk is legitimately stale, so only a fully
    # flushed image is expected to parse clean).
    result.dissect_scans = len(scans)
    result.dissect_divergences = sum(1 for d in scans if not d.agreed)
    for d in scans:
        result.divergence_details.extend(d.details)
    if system.disk is not None:
        system.fs.flush_data(sync=True)
        system.fs.flush_metadata(sync=True)
        system.drain_disks()
        final_scan = dissect_image(snapshot(system.disk))
        result.dissect_scans += 1
        result.final_image_sha256 = final_scan.image_sha256
        result.final_dissect_findings = len(final_scan.findings)
        result.final_dissect_clean = final_scan.clean

    # Remote tier verdict: the storm reconciles already ran inside each
    # reboot; the campaign finishes with the remote-only audit — the
    # object store alone, local disk thrown away, must pay every ack.
    if config.backend is not None and system.backing is not None:
        from repro.backend.audit import remote_recovery_audit

        result.remote_reconciles = len(remote_reconciles)
        result.remote_repairs = sum(r.repairs for r in remote_reconciles)
        result.remote_deferred = sum(1 for r in remote_reconciles if r.deferred)
        result.remote_audit = remote_recovery_audit(
            system, service.journal
        ).to_json_dict()
        result.remote_stats = system.backing.stats.to_json_dict()
    return result


def format_traffic_report(result: TrafficResult) -> str:
    """Human-readable summary of one traffic campaign."""
    config = result.config
    load = result.load
    lines = [
        "traffic-under-faults campaign",
        f"  system          {config.system}  (storm={config.storm}, seed={config.seed})",
        f"  clients         {config.clients} x {config.load.ops_per_client} programs",
        f"  crashes         {result.crashes_observed} observed / {config.crashes} requested",
    ]
    if config.storm == "faults":
        lines.append(
            f"  faults          {result.faults_injected} injected "
            f"({config.fault_type.value}), watchdog fired {result.watchdog_fired}"
        )
    if result.config.chaos:
        armed = ",".join(sorted({cap["name"] for cap in result.config.chaos}))
        lines.append(
            f"  chaos           {armed}: {result.chaos_fires} fires"
        )
    lines += [
        f"  acked           {load.acked} "
        f"(failed {load.failed}, rejected {load.rejected}, retried {load.retried})",
        f"  transparent     {result.transparent_retries} requests re-run across crashes",
        f"  rebinds         {result.rebinds} fds re-bound, {result.rebind_failures} stale",
        f"  lost acks       {result.lost_acks}"
        + (f"  (repaired {result.repaired_acks})" if result.repaired_acks else ""),
        f"  throughput      {load.throughput_ops_per_vsec:,.0f} ops/vsec",
        f"  latency p50/p99 {load.latency_percentile(0.50) / 1e6:.2f} / "
        f"{load.latency_percentile(0.99) / 1e6:.2f} ms (virtual)",
        f"  ack digest      {result.ack_digest[:16]}",
        f"  state digest    {result.state_digest[:16]}",
        f"  dissect         {result.dissect_scans} scans, "
        f"{result.dissect_divergences} fsck divergences, final image "
        + ("CLEAN" if result.final_dissect_clean else f"{result.final_dissect_findings} findings")
        + f" ({result.final_image_sha256[:16]})",
    ]
    if config.backend is not None:
        audit = result.remote_audit or {}
        lines.append(
            f"  remote tier     backend={config.backend}: "
            f"{result.remote_reconciles} reconciles "
            f"({result.remote_repairs} repairs, "
            f"{result.remote_deferred} deferred), final audit "
            + ("OK" if result.remote_ok else "FAILED")
            + (
                f" (image {str(audit.get('image_sha256', ''))[:16]})"
                if audit.get("image_sha256")
                else ""
            )
        )
    lines += [
        f"  verdict         {'ZERO LOST ACKS' if result.ok else 'ACKS LOST'}",
    ]
    for detail in result.divergence_details[:5]:
        lines.append(f"  divergence      {detail}")
    return "\n".join(lines)


def run_chaos_campaign(config) -> "object":
    """Run a chaos capability matrix: one traffic trial per armed set.

    ``config`` is a :class:`~repro.reliability.chaos.ChaosCampaignConfig`;
    each ``(trial, specs)`` row of its matrix becomes one seeded
    traffic-under-faults run with those capabilities armed, fanned out
    through :class:`~repro.reliability.engine.ParallelMap`.  Trials are
    pure functions of their payloads, so the campaign digest is
    bit-identical at any ``jobs`` count and on either execution engine.
    Returns a :class:`~repro.reliability.chaos.ChaosCampaignResult`.
    """
    from repro.reliability.chaos import (
        ChaosCampaignResult,
        ChaosTrialResult,
        trial_payload,
    )
    from repro.reliability.engine import ParallelMap

    pmap = ParallelMap(
        "repro.reliability.chaos:_chaos_trial_entry", jobs=config.jobs
    )
    tasks = [
        (trial, trial_payload(config, trial, specs))
        for trial, specs in config.matrix
    ]
    raw = pmap.run(tasks)
    result = ChaosCampaignResult(config=config)
    for trial, _specs in config.matrix:
        summary = raw.get(trial)
        if summary is None:
            # A worker died on this trial (quarantined by the engine).
            result.quarantined.append(trial)
            continue
        result.trials.append(ChaosTrialResult.from_json_dict(summary))
    result.digest = result.compute_digest()
    return result


# ---------------------------------------------------------------------------
# Cluster traffic: rolling crash storms against the multi-kernel cluster.
# ---------------------------------------------------------------------------


@dataclass
class ClusterTrafficConfig:
    """One traffic campaign against a sharded cluster."""

    shards: int = 2
    system: str = "rio_prot"
    clients: int = 16
    #: Forced kernel crashes per shard, staggered so at most one shard
    #: is down at a time (the *rolling* storm).
    crashes_per_shard: int = 1
    seed: int = 1
    #: Router key mode ("dir" colocates directories; "hash" scatters).
    router_mode: str = "dir"
    #: Shard hosting: 1 = all shards in-process, >1 = one worker
    #: process per shard.  Digests must not depend on this.
    jobs: int = 1
    #: Per-shard file system geometry.
    fs_blocks: int = 2048
    #: Per-shard inode area (None: sized from the client count).
    inode_blocks: Optional[int] = None
    #: Per-shard machine memory override (None: the default 16 MB).
    memory_bytes: Optional[int] = None
    #: Requests per front-end scheduling batch (None: ClusterConfig
    #: default; raise at high client counts so every shard sees a
    #: full per-step batch).
    batch_size: Optional[int] = None
    load: LoadSpec = field(default_factory=LoadSpec)
    #: Pin the execution engine on every shard.
    fast_path: Optional[bool] = None


@dataclass
class ClusterTrafficResult:
    """What one cluster traffic campaign observed."""

    config: ClusterTrafficConfig
    crashes_observed: int = 0
    recoveries: int = 0
    lost_acks: int = 0
    transparent_retries: int = 0
    shard_audits_ok: bool = False
    intent_audit: dict = field(default_factory=dict)
    cluster_digest: str = ""
    load: Optional[ClusterLoadReport] = None

    @property
    def ok(self) -> bool:
        """Zero lost acks, every shard audit clean, intents settled."""
        return (
            self.lost_acks == 0
            and self.shard_audits_ok
            and bool(self.intent_audit.get("ok"))
        )

    def to_json_dict(self) -> dict:
        """JSON-serializable summary (drops the live objects)."""
        load = self.load
        return {
            "shards": self.config.shards,
            "system": self.config.system,
            "clients": self.config.clients,
            "crashes_per_shard": self.config.crashes_per_shard,
            "seed": self.config.seed,
            "router_mode": self.config.router_mode,
            "jobs": self.config.jobs,
            "crashes_observed": self.crashes_observed,
            "recoveries": self.recoveries,
            "lost_acks": self.lost_acks,
            "transparent_retries": self.transparent_retries,
            "acked": load.acked if load else 0,
            "failed": load.failed if load else 0,
            "rejected": load.rejected if load else 0,
            "throughput_ops_per_vsec": (
                load.throughput_ops_per_vsec if load else 0.0
            ),
            "wall_virtual_ns": load.wall_virtual_ns if load else 0,
            "cross_renames": self.intent_audit.get("intents", 0),
            "shard_audits_ok": self.shard_audits_ok,
            "intent_audit": dict(self.intent_audit),
            "ok": self.ok,
            "cluster_digest": self.cluster_digest,
        }


def rolling_crash_points(config: ClusterTrafficConfig) -> Dict[int, Tuple[int, ...]]:
    """Staggered per-shard crash schedule: one shard down at a time.

    Each shard executes roughly ``1/shards`` of the estimated request
    stream, so its crash points live on a per-shard executed axis.
    The axis estimate is deliberately *half* the even-split share:
    consistent hashing skews the real split (the lightest shard can
    carry ~half the average at high shard counts), and a crash point
    beyond a shard's actual traffic would silently never fire.  Crash
    ``j`` of shard ``i`` lands at fraction
    ``(j * shards + i + 1) / (total + 1)`` of that axis — interleaving
    the shards so the storm *rolls* across the cluster instead of
    taking it down wholesale.
    """
    if config.crashes_per_shard <= 0:
        return {}
    per_shard = config.clients * (
        config.load.files_per_client + config.load.ops_per_client
    ) // (2 * max(1, config.shards))
    total = config.shards * config.crashes_per_shard
    points: Dict[int, Tuple[int, ...]] = {}
    for shard in range(config.shards):
        shard_points: List[int] = []
        for crash in range(config.crashes_per_shard):
            fraction = (crash * config.shards + shard + 1) / (total + 1)
            candidate = max(1, int(per_shard * fraction))
            if shard_points and candidate <= shard_points[-1]:
                # Short axis: successive fractions truncate to the same
                # executed count, which would collapse distinct crashes
                # into one point.  Bump monotonically so every configured
                # crash keeps its own firing point.
                candidate = shard_points[-1] + 1
            shard_points.append(candidate)
        assert len(set(shard_points)) == config.crashes_per_shard, (
            f"shard {shard}: {len(set(shard_points))} distinct crash points "
            f"for {config.crashes_per_shard} configured crashes"
        )
        points[shard] = tuple(shard_points)
    return points


def _cluster_inode_blocks(config: ClusterTrafficConfig) -> int:
    """Per-shard inode area sized for the client population.

    Every client owns a home directory (replicated nowhere — it lives
    on the shards its session touches) plus ``files_per_client`` files
    and a few rename/cycle spares; directory shells replicate to every
    shard and the hash spread is uneven, so each shard is provisioned
    for the full population rather than ``1/shards`` of it.
    """
    from repro.fs.ondisk import INODES_PER_BLOCK

    inodes = config.clients * (config.load.files_per_client + 4) + 16
    return max(8, math.ceil(inodes / INODES_PER_BLOCK))


def run_cluster_campaign(config: ClusterTrafficConfig) -> ClusterTrafficResult:
    """Drive seeded load through a cluster under a rolling crash storm."""
    inode_blocks = (
        config.inode_blocks
        if config.inode_blocks is not None
        else _cluster_inode_blocks(config)
    )
    cluster_config = ClusterConfig(
        shards=config.shards,
        system=config.system,
        router_mode=config.router_mode,
        fs_blocks=config.fs_blocks,
        inode_blocks=inode_blocks,
        memory_bytes=config.memory_bytes,
        fast_path=config.fast_path,
        crash_points=rolling_crash_points(config),
    )
    if config.batch_size is not None:
        cluster_config = replace(cluster_config, batch_size=config.batch_size)
    cluster = ClusterService(cluster_config, jobs=config.jobs)
    try:
        clients = [
            LoadClient(client_id, seed=config.seed, spec=config.load)
            for client_id in range(config.clients)
        ]
        load = run_cluster_load(cluster, clients)
        result = ClusterTrafficResult(config=config, load=load)
        for snap in load.shard_snapshots:
            result.crashes_observed += snap["crashes_detected"]
            result.recoveries += snap["recoveries"]
            result.lost_acks += snap["lost_acks"]
            result.transparent_retries += snap["transparent_retries"]
        audits = cluster.audits()
        result.shard_audits_ok = all(audit["ok"] for audit in audits)
        result.lost_acks += sum(len(audit["lost"]) for audit in audits)
        result.intent_audit = cluster.audit_intents()
        result.cluster_digest = cluster.cluster_digest()
    finally:
        cluster.close()
    return result


def format_cluster_report(result: ClusterTrafficResult) -> str:
    """Human-readable summary of one cluster traffic campaign."""
    config = result.config
    load = result.load
    lines = [
        "cluster traffic campaign",
        f"  shards          {config.shards} x {config.system}  "
        f"(router={config.router_mode}, jobs={config.jobs}, seed={config.seed})",
        f"  clients         {config.clients} x {config.load.ops_per_client} programs",
        f"  storm           rolling, {config.crashes_per_shard} crashes/shard "
        f"({result.crashes_observed} observed, {result.recoveries} recoveries)",
        f"  acked           {load.acked} "
        f"(failed {load.failed}, rejected {load.rejected}, retried {load.retried})",
        f"  transparent     {result.transparent_retries} requests re-run across crashes",
        f"  cross renames   {result.intent_audit.get('intents', 0)} "
        f"(rolled forward {result.intent_audit.get('rolled_forward', 0)}, "
        f"back {result.intent_audit.get('rolled_back', 0)})",
        f"  lost acks       {result.lost_acks}",
        f"  throughput      {load.throughput_ops_per_vsec:,.0f} ops/vsec "
        f"(cluster wall = slowest shard)",
        f"  latency p50/p99 {load.latency_percentile(0.50) / 1e6:.2f} / "
        f"{load.latency_percentile(0.99) / 1e6:.2f} ms (virtual)",
        f"  cluster digest  {result.cluster_digest[:16]}",
        f"  verdict         {'ZERO LOST ACKS' if result.ok else 'ACKS LOST'}",
    ]
    return "\n".join(lines)
