"""Reliability experiments: the crash-test campaign behind Table 1.

Each run boots a system (disk-based write-through, Rio without
protection, or Rio with protection), drives memTest plus concurrent
Andrew instances, arms one fault type, lets the corrupted kernel run
until it crashes (or discards the run after the time budget, as the paper
does), recovers per the system's design, and then hunts for corruption
three ways — exactly the paper's apparatus:

1. memTest replay comparison (direct + indirect corruption);
2. registry checksums (direct corruption, Rio systems only);
3. the two static copies of files no workload modifies.
"""

from repro.reliability.campaign import (
    CrashTestConfig,
    CrashTestResult,
    SYSTEM_NAMES,
    dissect_second_opinion,
    run_crash_test,
    system_spec_for,
)
from repro.reliability.report import (
    CampaignCell,
    Table1,
    format_table1,
    run_table1_campaign,
    seed_for,
    table1_digest,
)
from repro.reliability.engine import (
    CampaignEngine,
    CampaignWorkerError,
    EngineStats,
    run_table1_campaign_parallel,
)
from repro.reliability.journal import (
    CampaignJournal,
    CampaignResumeError,
    JournalWarning,
)
from repro.reliability.traffic import (
    ClusterTrafficConfig,
    ClusterTrafficResult,
    TrafficConfig,
    TrafficResult,
    format_cluster_report,
    format_traffic_report,
    rolling_crash_points,
    run_chaos_campaign,
    run_cluster_campaign,
    run_traffic_campaign,
)
from repro.reliability.chaos import (
    DEFAULT_MATRIX,
    ChaosCampaignConfig,
    ChaosCampaignResult,
    ChaosSpec,
    ChaosTrialResult,
    format_chaos_report,
)
from repro.reliability.propagation import (
    PropagationSummary,
    format_propagation,
    summarize_propagation,
)

__all__ = [
    "CrashTestConfig",
    "CrashTestResult",
    "SYSTEM_NAMES",
    "dissect_second_opinion",
    "run_crash_test",
    "system_spec_for",
    "CampaignCell",
    "Table1",
    "format_table1",
    "run_table1_campaign",
    "seed_for",
    "table1_digest",
    "CampaignEngine",
    "CampaignWorkerError",
    "EngineStats",
    "run_table1_campaign_parallel",
    "CampaignJournal",
    "CampaignResumeError",
    "JournalWarning",
    "ClusterTrafficConfig",
    "ClusterTrafficResult",
    "TrafficConfig",
    "TrafficResult",
    "format_cluster_report",
    "format_traffic_report",
    "rolling_crash_points",
    "run_chaos_campaign",
    "run_cluster_campaign",
    "run_traffic_campaign",
    "DEFAULT_MATRIX",
    "ChaosCampaignConfig",
    "ChaosCampaignResult",
    "ChaosSpec",
    "ChaosTrialResult",
    "format_chaos_report",
    "PropagationSummary",
    "format_propagation",
    "summarize_propagation",
]
