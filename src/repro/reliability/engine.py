"""Parallel fault-injection campaign engine.

The paper crashed a live system 1,950 times for Table 1 ("6
machine-months").  :func:`repro.reliability.report.run_table1_campaign`
replays that serially in one process; this engine shards the same
campaign across a pool of worker processes while keeping the output
**bit-identical** to the serial path.

How equivalence survives parallelism
------------------------------------

Every trial is a pure function of its :class:`CrashTestConfig`, and the
campaign's seed schedule (:func:`repro.reliability.report.seed_for`) is
a pure function of ``(base_seed, cell, attempt)``.  The only sequential
coupling in the serial loop is the *stopping rule*: a cell stops once it
has counted ``crashes_per_cell`` crashes, so whether attempt ``k`` runs
depends on the outcomes of attempts ``0..k-1``.  The engine therefore:

1. runs attempts **speculatively** out of order across workers (bounded
   per cell by a speculation window sized to the crashes still needed);
2. buffers finished results per ``(cell, attempt)``;
3. **merges** each cell's buffer in attempt order, re-evaluating the
   serial stopping rule before consuming each attempt — exactly the
   check the serial loop makes before running it;
4. discards (as "wasted speculation") any buffered attempt past the
   point where the serial loop would have stopped.

The merged :class:`Table1` is then identical to the serial one for any
job count and any completion order; ``results`` lists stay in serial
order via ``CampaignCell.record(..., order=attempt)``.

Checkpoint / resume
-------------------

With a ``checkpoint`` path, every finished trial is journaled to JSONL
(:mod:`repro.reliability.journal`).  On the next run with the same
campaign parameters, journaled trials complete instantly from the cache
and only the remainder executes.  Corrupt journal lines are skipped with
a warning and their trials re-run.

Worker death
------------

A worker that dies mid-trial (OOM-kill, SIGKILL, a bug that takes down
the interpreter) is detected by liveness polling; the trial it held is
recorded as a ``worker_crashed`` outcome and retried once on a fresh
worker.  If it kills a second worker it is **quarantined**: a synthetic
discarded result (``crash_kind="worker_crashed"``) takes its slot so the
campaign can finish, and the key is listed in ``stats.quarantined``.
(Quarantine is the one case where parallel output can differ from
serial — the trial genuinely could not be run.)
"""

from __future__ import annotations

import dataclasses
import json
import multiprocessing
import os
import queue as queue_mod
import time
import warnings
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.faults.types import ALL_FAULT_TYPES, FaultType
from repro.reliability.campaign import (
    CrashTestConfig,
    CrashTestResult,
    SYSTEM_NAMES,
    _params_to_json,
    run_crash_test,
)
from repro.reliability.journal import CampaignJournal, JournalWarning, TrialKey
from repro.reliability.report import CampaignCell, Table1, seed_for


class CampaignWorkerError(RuntimeError):
    """A worker hit an exception inside the simulation (a bug, not a
    simulated crash); determinism means retrying would fail identically,
    so the campaign aborts loudly."""


@dataclass
class EngineStats:
    """What one engine invocation did (host-side bookkeeping only —
    nothing here feeds back into trial outcomes)."""

    executed: int = 0  #: trials actually run this invocation
    from_checkpoint: int = 0  #: trials satisfied from the journal
    wasted_speculation: int = 0  #: finished past the serial stopping point
    worker_crashes: int = 0  #: worker deaths observed
    quarantined: list = field(default_factory=list)  #: keys given up on
    checkpoint_lines_skipped: int = 0  #: corrupt journal lines skipped
    wall_seconds: float = 0.0


@dataclass
class _CellState:
    """Scheduler-side view of one Table 1 cell."""

    system: str
    fault_type: FaultType
    cell: CampaignCell
    target: int
    max_attempts: int
    next_attempt: int = 0  #: next attempt index not yet scheduled
    merged_upto: int = 0  #: attempts consumed by the serial-order merge
    done: bool = False  #: serial stopping rule has fired
    buffer: dict = field(default_factory=dict)  #: attempt -> CrashTestResult

    def key(self, attempt: int) -> TrialKey:
        return (self.system, self.fault_type.value, attempt)


@dataclass
class _WorkerHandle:
    proc: multiprocessing.Process
    #: Shared ``Value('i')``: the task id the worker is executing, -1 if
    #: idle.  Shared memory, not a queue message: a queue put is flushed
    #: by a background feeder thread, so a worker killed right after
    #: claiming could die with the claim unsent — the claim slot write
    #: is synchronous and survives any death.
    claim_slot: object = None


# -- worker process ----------------------------------------------------------


def _test_kill_hook(key: TrialKey) -> None:
    """Deterministic worker-death injection for the engine's own tests.

    ``RIO_ENGINE_TEST_KILL=system|fault value|attempt|times|counter_dir``
    kills the worker (hard, no cleanup) the first ``times`` times the
    named trial is claimed; the cross-process count lives in
    ``counter_dir`` because each death spawns a fresh worker.
    """
    spec = os.environ.get("RIO_ENGINE_TEST_KILL")
    if not spec:
        return
    system, fault, attempt, times, counter_dir = spec.split("|")
    if key != (system, fault, int(attempt)):
        return
    os.makedirs(counter_dir, exist_ok=True)
    marker = os.path.join(counter_dir, "kills")
    count = 0
    if os.path.exists(marker):
        count = int(open(marker).read() or "0")
    if count >= int(times):
        return
    with open(marker, "w") as fh:
        fh.write(str(count + 1))
    os._exit(17)


def _map_worker_main(worker_id: int, fn_path: str, task_q, result_q, claim_slot) -> None:
    """Worker loop for :class:`ParallelMap`: claim, import, run, ship.

    Same claim-slot discipline as :func:`_worker_main` — the slot write
    precedes execution so a dead worker's task is identifiable — but
    the task body is a named function resolved by import path, so any
    subsystem (the crash-point explorer in particular) can fan plain
    JSON tasks across the pool.
    """
    import importlib

    module_name, _, func_name = fn_path.partition(":")
    fn = getattr(importlib.import_module(module_name), func_name)
    while True:
        task = task_q.get()
        if task is None:
            return
        task_id, key, payload = task
        claim_slot.value = task_id
        _test_kill_hook(key)
        try:
            result_q.put(("done", worker_id, key, fn(payload)))
        except BaseException as exc:  # ship the bug home, don't hang
            result_q.put(("fail", worker_id, key, f"{type(exc).__name__}: {exc}"))


def _worker_main(worker_id: int, task_q, result_q, claim_slot) -> None:
    """Worker loop: claim a trial, run it, ship the JSON result back.

    The claim-slot write *precedes* execution so the orchestrator knows
    which trial a dead worker was holding.
    """
    while True:
        task = task_q.get()
        if task is None:
            return
        task_id, key, config_dict = task
        claim_slot.value = task_id
        _test_kill_hook(key)
        try:
            config = CrashTestConfig.from_json_dict(config_dict)
            result = run_crash_test(config)
            result_q.put(("done", worker_id, key, result.to_json_dict()))
        except BaseException as exc:  # ship the bug home, don't hang
            result_q.put(("fail", worker_id, key, f"{type(exc).__name__}: {exc}"))


# -- generic claim-slot pool -------------------------------------------------


@dataclass
class MapStats:
    """Host-side bookkeeping for one :meth:`ParallelMap.run`."""

    executed: int = 0  #: tasks that produced a result
    worker_crashes: int = 0  #: worker deaths observed
    quarantined: list = field(default_factory=list)  #: keys given up on


class ParallelMap:
    """The campaign engine's worker/claim-slot machinery, generalized.

    Runs a named pure function (``"module.path:function"``, dict in /
    JSON-safe dict out) over a list of keyed tasks on a pool of worker
    processes.  Reuses the engine's reliability discipline — the
    synchronous claim-slot write that survives worker death, liveness
    polling, retry-then-quarantine — but drops the speculative
    scheduler: these tasks have **no sequential stopping rule**, so the
    keyed result map is identical for any job count and any completion
    order by construction.  The crash-point explorer fans its
    per-boundary trials through this.

    ``jobs == 1`` runs inline in-process (no subprocess), calling the
    same imported function on the same payload dicts, so the serial
    path exercises the identical wire format.
    """

    #: Worker deaths tolerated per task before quarantine.
    worker_retry_limit = 1

    def __init__(
        self,
        fn_path: str,
        jobs: int = 1,
        progress: Optional[Callable[[str], None]] = None,
    ) -> None:
        self.fn_path = fn_path
        self.jobs = max(1, jobs)
        self.progress = progress
        self.stats = MapStats()

    def _say(self, line: str) -> None:
        if self.progress is not None:
            self.progress(line)

    def _resolve(self):
        import importlib

        module_name, _, func_name = self.fn_path.partition(":")
        return getattr(importlib.import_module(module_name), func_name)

    def run(self, tasks: list) -> dict:
        """Execute ``tasks`` — ``(key, payload_dict)`` pairs, keys unique
        hashable tuples — and return ``{key: result_dict}``.  A task
        whose worker died past the retry limit maps to ``None`` and its
        key lands in ``stats.quarantined``.  A task that *raises* (a
        deterministic bug, not a worker death) aborts the whole map
        with :class:`CampaignWorkerError`.
        """
        if self.jobs == 1:
            fn = self._resolve()
            out = {}
            for key, payload in tasks:
                out[key] = fn(payload)
                self.stats.executed += 1
            return out
        return self._run_pool(tasks)

    def _run_pool(self, tasks: list) -> dict:
        ctx = multiprocessing.get_context()
        task_q, result_q = ctx.Queue(), ctx.Queue()
        workers: dict = {}
        tid_key: dict = {}
        retries: dict = {}
        next_ids = {"wid": 0, "tid": 0}
        out: dict = {}
        outstanding = {}  # key -> payload (for retries)
        last_activity = time.monotonic()

        def spawn() -> None:
            wid = next_ids["wid"]
            next_ids["wid"] += 1
            claim_slot = ctx.Value("i", -1)
            proc = ctx.Process(
                target=_map_worker_main,
                args=(wid, self.fn_path, task_q, result_q, claim_slot),
                daemon=True,
                name=f"rio-map-{wid}",
            )
            proc.start()
            workers[wid] = _WorkerHandle(proc=proc, claim_slot=claim_slot)

        def put(key, payload) -> None:
            tid = next_ids["tid"]
            next_ids["tid"] += 1
            tid_key[tid] = key
            task_q.put((tid, key, payload))

        def claimed_keys() -> set:
            keys = set()
            for worker in workers.values():
                tid = worker.claim_slot.value
                if tid >= 0 and tid in tid_key:
                    keys.add(tid_key[tid])
            return keys

        def strike(key: str, why: str) -> None:
            self.stats.worker_crashes += 1
            count = retries.get(key, 0) + 1
            retries[key] = count
            if count <= self.worker_retry_limit:
                self._say(f"{why} on {key}; retrying once")
                put(key, outstanding[key])
                return
            self._say(f"{why} again on {key}; quarantining the task")
            self.stats.quarantined.append(key)
            out[key] = None
            del outstanding[key]

        for _ in range(self.jobs):
            spawn()
        for key, payload in tasks:
            outstanding[key] = payload
            put(key, payload)
        try:
            while outstanding:
                try:
                    message = result_q.get(timeout=0.2)
                except queue_mod.Empty:
                    for wid, worker in list(workers.items()):
                        if worker.proc.is_alive():
                            continue
                        del workers[wid]
                        tid = worker.claim_slot.value
                        key = tid_key.get(tid) if tid >= 0 else None
                        if key is not None and key in outstanding:
                            strike(key, "worker died")
                        spawn()
                    if (
                        outstanding
                        and time.monotonic() - last_activity > 5.0
                        and task_q.empty()
                    ):
                        # A worker died between queue get and claim write.
                        claimed = claimed_keys()
                        for key in [k for k in outstanding if k not in claimed]:
                            strike(key, "task lost in flight")
                        last_activity = time.monotonic()
                    continue
                last_activity = time.monotonic()
                kind, _wid, key, payload = message
                if kind == "fail":
                    raise CampaignWorkerError(
                        f"worker exception on task {key}: {payload}"
                    )
                if key not in outstanding:
                    continue  # a retry raced its original; result unneeded
                out[key] = payload
                del outstanding[key]
                self.stats.executed += 1
        finally:
            for worker in workers.values():
                if worker.proc.is_alive():
                    worker.proc.terminate()
            for worker in workers.values():
                worker.proc.join(timeout=2)
            for q in (task_q, result_q):
                q.cancel_join_thread()
                q.close()
        return out


# -- the engine --------------------------------------------------------------


class CampaignEngine:
    """One campaign invocation; see the module docstring for design."""

    #: Worker deaths tolerated per trial before quarantine.
    worker_retry_limit = 1
    #: Speculative attempts scheduled per crash still needed (the paper
    #: discards "about half" of runs, so 2x is the natural oversubscription).
    speculation = 2

    def __init__(
        self,
        crashes_per_cell: int = 10,
        systems: tuple = SYSTEM_NAMES,
        fault_types: tuple = ALL_FAULT_TYPES,
        base_seed: int = 1000,
        max_attempts_factor: int = 5,
        config_overrides: Optional[dict] = None,
        jobs: int = 1,
        checkpoint: Optional[str] = None,
        max_trials: Optional[int] = None,
        progress: Optional[Callable[[str], None]] = None,
        progress_interval_s: float = 5.0,
    ):
        self.crashes_per_cell = crashes_per_cell
        self.systems = tuple(systems)
        self.fault_types = tuple(fault_types)
        self.base_seed = base_seed
        self.max_attempts_factor = max_attempts_factor
        self.config_overrides = dict(config_overrides or {})
        self.jobs = max(1, jobs)
        self.checkpoint = checkpoint
        self.max_trials = max_trials
        self.progress = progress
        self.progress_interval_s = progress_interval_s

        self.stats = EngineStats()
        self.complete = False
        self.table = Table1(crashes_per_cell=crashes_per_cell)
        self._cells = [
            _CellState(
                system=system,
                fault_type=fault,
                cell=self.table.cell(system, fault),
                target=crashes_per_cell,
                max_attempts=crashes_per_cell * max_attempts_factor,
            )
            for system in self.systems
            for fault in self.fault_types
        ]
        self._cache: dict = {}
        self._journal: Optional[CampaignJournal] = None
        self._outstanding: dict = {}  # key -> (cell state, attempt)
        self._cancelled: set = set()
        self._requeue: list = []  # (cell state, attempt) awaiting retry
        self._retries: dict = {}  # key -> worker-death count
        self._tid_key: dict = {}  # task id -> key (pool mode)
        self._next_tid = 0
        self._scheduled_exec = 0
        self._budget_stop = False
        self._rr = 0
        self._next_wid = 0
        self._workers: dict = {}
        self._t0 = 0.0
        self._last_progress = 0.0
        self._last_activity = 0.0

    # -- public entry point ------------------------------------------------

    def run(self) -> Table1:
        self._t0 = self._last_progress = self._last_activity = time.monotonic()
        if self.checkpoint:
            self._journal = CampaignJournal(self.checkpoint, self._fingerprint())
            self._cache = self._journal.load()  # raises on fingerprint mismatch
            self.stats.checkpoint_lines_skipped = self._journal.skipped_lines
            self._journal.open_for_append()
        try:
            if self.jobs == 1:
                self._run_inline()
            else:
                self._run_pool()
        finally:
            if self._journal is not None:
                self._journal.close()
        self.stats.wall_seconds = time.monotonic() - self._t0
        self.complete = all(cs.done for cs in self._cells)
        self._emit_progress(force=True)
        return self.table

    # -- shared machinery --------------------------------------------------

    def _fingerprint(self) -> dict:
        overrides = {}
        for key, value in sorted(self.config_overrides.items()):
            if dataclasses.is_dataclass(value):
                value = _params_to_json(value)
            elif isinstance(value, tuple):
                value = list(value)
            overrides[key] = value
        return {
            "crashes_per_cell": self.crashes_per_cell,
            "systems": list(self.systems),
            "fault_types": [f.value for f in self.fault_types],
            "base_seed": self.base_seed,
            "max_attempts_factor": self.max_attempts_factor,
            "config_overrides": overrides,
        }

    def _config_json(self, cs: _CellState, attempt: int) -> dict:
        seed = seed_for(self.base_seed, cs.system, cs.fault_type, attempt)
        config = CrashTestConfig(
            system=cs.system,
            fault_type=cs.fault_type,
            seed=seed,
            **self.config_overrides,
        )
        return config.to_json_dict()

    def _take_cached(self, cs: _CellState, attempt: int) -> Optional[CrashTestResult]:
        """Pop and validate a journaled result for this trial, if any."""
        entry = self._cache.pop(cs.key(attempt), None)
        if entry is None:
            return None
        seed, result_dict = entry
        expected = seed_for(self.base_seed, cs.system, cs.fault_type, attempt)
        if seed != expected:
            warnings.warn(
                f"checkpoint entry for {cs.key(attempt)} has seed {seed}, "
                f"campaign expects {expected}; re-running the trial",
                JournalWarning,
                stacklevel=3,
            )
            return None
        try:
            return CrashTestResult.from_json_dict(result_dict)
        except Exception as exc:
            warnings.warn(
                f"checkpoint entry for {cs.key(attempt)} does not decode "
                f"({type(exc).__name__}: {exc}); re-running the trial",
                JournalWarning,
                stacklevel=3,
            )
            return None

    def _may_execute(self) -> bool:
        return self.max_trials is None or self._scheduled_exec < self.max_trials

    def _merge(self, cs: _CellState) -> None:
        """Replay the serial loop over buffered attempts, in order.

        Mirrors ``run_table1_campaign``'s ``while cell.crashes < N and
        attempt < N * factor`` — checked before consuming each attempt,
        so the cutoff lands on exactly the same attempt index.
        """
        was_done = cs.done
        while True:
            if not (cs.cell.crashes < cs.target and cs.merged_upto < cs.max_attempts):
                cs.done = True
                break
            result = cs.buffer.pop(cs.merged_upto, None)
            if result is None:
                break
            self._write_trace_artifact(cs, cs.merged_upto, result)
            cs.cell.record(result, order=cs.merged_upto)
            cs.merged_upto += 1
        if cs.done and not was_done:
            self.stats.wasted_speculation += len(cs.buffer)
            cs.buffer.clear()
            for key, (other, _attempt) in list(self._outstanding.items()):
                if other is cs:
                    self._cancelled.add(key)
                    del self._outstanding[key]
            self._emit_cell_line(cs)

    def _write_trace_artifact(
        self, cs: _CellState, attempt: int, result: CrashTestResult
    ) -> None:
        """Drop a per-corrupting-trial JSONL trace next to the journal.

        Written only for consumed (serial-order-merged) trials that were
        traced, crashed, *and* corrupted — one ``<checkpoint>.traces/
        <system>__<fault>__<attempt>.jsonl`` each, a header line followed
        by one serialized event per line.  ``repro forensics`` reads
        these back to build per-trial reports.
        """
        if (
            self.checkpoint is None
            or result.trace_events is None
            or not result.crashed
            or not result.corrupted
        ):
            return
        outdir = self.checkpoint + ".traces"
        os.makedirs(outdir, exist_ok=True)
        fault = cs.fault_type.value.replace(" ", "_").replace("/", "_")
        path = os.path.join(outdir, f"{cs.system}__{fault}__{attempt}.jsonl")
        with open(path, "w", encoding="utf-8") as fh:
            header = {
                "kind": "trace-header",
                "system": cs.system,
                "fault": cs.fault_type.value,
                "attempt": attempt,
                "seed": result.config.seed,
                "event_digest": result.event_digest,
            }
            fh.write(json.dumps(header, sort_keys=True, separators=(",", ":")) + "\n")
            for ev in result.trace_events:
                fh.write(json.dumps(ev, sort_keys=True, separators=(",", ":")) + "\n")

    # -- inline (jobs == 1) ------------------------------------------------

    def _run_inline(self) -> None:
        """Strict serial order, same code path as the pool otherwise:
        configs and results round-trip through JSON so jobs=1 exercises
        the identical wire format."""
        for cs in self._cells:
            while True:
                self._merge(cs)
                if cs.done:
                    break
                attempt = cs.next_attempt
                result = self._take_cached(cs, attempt)
                if result is None:
                    if not self._may_execute():
                        return
                    self._scheduled_exec += 1
                    config = CrashTestConfig.from_json_dict(
                        self._config_json(cs, attempt)
                    )
                    result = CrashTestResult.from_json_dict(
                        run_crash_test(config).to_json_dict()
                    )
                    self.stats.executed += 1
                    if self._journal is not None:
                        self._journal.append_trial(
                            cs.key(attempt), config.seed, result.to_json_dict()
                        )
                else:
                    self.stats.from_checkpoint += 1
                cs.next_attempt = attempt + 1
                cs.buffer[attempt] = result
                self._emit_progress()

    # -- worker pool (jobs > 1) --------------------------------------------

    def _run_pool(self) -> None:
        ctx = multiprocessing.get_context()
        self._task_q = ctx.Queue()
        self._result_q = ctx.Queue()
        for _ in range(self.jobs):
            self._spawn_worker(ctx)
        try:
            while not all(cs.done for cs in self._cells):
                self._dispatch()
                if self._budget_stop and not self._outstanding:
                    return
                if not self._outstanding and not self._requeue:
                    # nothing in flight and nothing dispatchable: the
                    # remaining cells completed from cache in _dispatch
                    continue
                try:
                    message = self._result_q.get(timeout=0.2)
                except queue_mod.Empty:
                    self._check_workers(ctx)
                    self._emit_progress()
                    continue
                self._last_activity = time.monotonic()
                self._handle(message)
                self._emit_progress()
        finally:
            self._shutdown_pool()

    def _spawn_worker(self, ctx) -> None:
        wid = self._next_wid
        self._next_wid += 1
        claim_slot = ctx.Value("i", -1)
        proc = ctx.Process(
            target=_worker_main,
            args=(wid, self._task_q, self._result_q, claim_slot),
            daemon=True,
            name=f"rio-campaign-{wid}",
        )
        proc.start()
        self._workers[wid] = _WorkerHandle(proc=proc, claim_slot=claim_slot)

    def _next_task(self) -> Optional[tuple]:
        """Round-robin over incomplete cells, bounded by each cell's
        speculation window."""
        n = len(self._cells)
        for i in range(n):
            cs = self._cells[(self._rr + i) % n]
            if cs.done or cs.next_attempt >= cs.max_attempts:
                continue
            window = max(self.speculation * (cs.target - cs.cell.crashes), 1)
            if cs.next_attempt - cs.merged_upto >= window:
                continue
            attempt = cs.next_attempt
            cs.next_attempt += 1
            self._rr = (self._rr + i + 1) % n
            return cs, attempt
        return None

    def _dispatch(self) -> None:
        while len(self._outstanding) < self.jobs + 2:
            if self._requeue:
                cs, attempt = self._requeue.pop(0)
                if cs.done:
                    continue
            else:
                task = self._next_task()
                if task is None:
                    return
                cs, attempt = task
                cached = self._take_cached(cs, attempt)
                if cached is not None:
                    self.stats.from_checkpoint += 1
                    cs.buffer[attempt] = cached
                    self._merge(cs)
                    continue
            if not self._may_execute():
                self._budget_stop = True
                return
            self._scheduled_exec += 1
            key = cs.key(attempt)
            tid = self._next_tid
            self._next_tid += 1
            self._tid_key[tid] = key
            self._outstanding[key] = (cs, attempt)
            self._task_q.put((tid, key, self._config_json(cs, attempt)))
            self._last_activity = time.monotonic()

    def _handle(self, message: tuple) -> None:
        kind, wid, key, payload = message
        if kind == "fail":
            raise CampaignWorkerError(f"worker exception on trial {key}: {payload}")
        if kind != "done":
            return
        self.stats.executed += 1
        entry = self._outstanding.pop(key, None)
        if entry is None:
            # cancelled after its cell completed, or a retry raced its
            # original: the work is real but the result is unneeded.
            self._cancelled.discard(key)
            self.stats.wasted_speculation += 1
            return
        cs, attempt = entry
        result = CrashTestResult.from_json_dict(payload)
        if self._journal is not None:
            self._journal.append_trial(key, result.config.seed, payload)
        cs.buffer[attempt] = result
        self._merge(cs)

    def _claimed_key(self, worker: _WorkerHandle) -> Optional[TrialKey]:
        tid = worker.claim_slot.value
        return self._tid_key.get(tid) if tid >= 0 else None

    def _check_workers(self, ctx) -> None:
        for wid, worker in list(self._workers.items()):
            if worker.proc.is_alive():
                continue
            del self._workers[wid]
            key = self._claimed_key(worker)
            if key is not None and key in self._outstanding:
                self._handle_worker_crash(key, "worker died")
            self._spawn_worker(ctx)
        self._sweep_lost_tasks()

    def _handle_worker_crash(self, key: TrialKey, why: str) -> None:
        """One worker-death (or task-loss) strike against a trial:
        retry up to ``worker_retry_limit`` times, then quarantine —
        record a synthetic discarded ``worker_crashed`` outcome so the
        campaign can finish instead of relaunching a worker-killer
        forever."""
        self.stats.worker_crashes += 1
        cs, attempt = self._outstanding.pop(key)
        count = self._retries.get(key, 0) + 1
        self._retries[key] = count
        label = "/".join(map(str, key))
        if count <= self.worker_retry_limit:
            self._say(f"{why} on {label} (worker_crashed); retrying once")
            self._requeue.append((cs, attempt))
            return
        self._say(f"{why} again on {label}; quarantining the trial")
        self.stats.quarantined.append(key)
        seed = seed_for(self.base_seed, cs.system, cs.fault_type, attempt)
        synthetic = CrashTestResult(
            config=CrashTestConfig.from_json_dict(self._config_json(cs, attempt)),
            discarded=True,
            crash_kind="worker_crashed",
            crash_reason=f"trial killed {count} workers; quarantined",
        )
        if self._journal is not None:
            self._journal.append_trial(key, seed, synthetic.to_json_dict())
        cs.buffer[attempt] = synthetic
        self._merge(cs)

    def _sweep_lost_tasks(self) -> None:
        """Strike trials that are outstanding but neither queued nor
        claimed by any live worker (a worker died in the window between
        queue get and claim-slot write)."""
        if not self._outstanding:
            return
        if time.monotonic() - self._last_activity < 5.0:
            return
        claimed = {self._claimed_key(w) for w in self._workers.values()}
        lost = [k for k in self._outstanding if k not in claimed]
        if lost and self._task_q.empty():
            for key in lost:
                self._handle_worker_crash(key, "trial lost in flight")
        self._last_activity = time.monotonic()

    def _shutdown_pool(self) -> None:
        for worker in self._workers.values():
            if worker.proc.is_alive():
                worker.proc.terminate()
        for worker in self._workers.values():
            worker.proc.join(timeout=2)
        for q in (self._task_q, self._result_q):
            q.cancel_join_thread()
            q.close()
        self._workers.clear()

    # -- progress ----------------------------------------------------------

    def _say(self, line: str) -> None:
        if self.progress is not None:
            self.progress(line)

    def _emit_cell_line(self, cs: _CellState) -> None:
        cell = cs.cell
        line = (
            f"{cs.system}/{cs.fault_type.value}: {cell.crashes} crashes, "
            f"{cell.corruptions} corruptions, {cell.discarded} discarded"
        )
        if cell.divergences:
            line += f", {cell.divergences} fsck/dissect divergences"
        self._say(line)

    def _emit_progress(self, force: bool = False) -> None:
        if self.progress is None:
            return
        now = time.monotonic()
        if not force and now - self._last_progress < self.progress_interval_s:
            return
        self._last_progress = now
        crashes = sum(cs.cell.crashes for cs in self._cells)
        target = sum(cs.target for cs in self._cells)
        discarded = sum(cs.cell.discarded for cs in self._cells)
        diverged = sum(cs.cell.divergences for cs in self._cells)
        self._say(
            f"[engine] {crashes}/{target} crashes counted, {discarded} discarded, "
            + (f"{diverged} fsck/dissect divergences, " if diverged else "")
            + f"{self.stats.worker_crashes} worker-crashed "
            f"({self.stats.executed} trials run, "
            f"{self.stats.from_checkpoint} from checkpoint); eta {self._eta()}"
        )

    def _eta(self) -> str:
        elapsed = time.monotonic() - self._t0
        if self.stats.executed == 0 or elapsed <= 0:
            return "?"
        throughput = self.stats.executed / elapsed  # trials/s, all workers
        remaining = 0.0
        for cs in self._cells:
            if cs.done:
                continue
            needed = cs.target - cs.cell.crashes
            rate = (
                cs.cell.crashes / cs.merged_upto if cs.merged_upto else 0.5
            )  # paper: "about half the time" a run survives and is discarded
            remaining += min(needed / max(rate, 0.1), cs.max_attempts - cs.merged_upto)
        return f"~{remaining / throughput:.0f}s"


def run_table1_campaign_parallel(
    crashes_per_cell: int = 10,
    systems: tuple = SYSTEM_NAMES,
    fault_types: tuple = ALL_FAULT_TYPES,
    base_seed: int = 1000,
    max_attempts_factor: int = 5,
    config_overrides: Optional[dict] = None,
    jobs: int = 1,
    checkpoint: Optional[str] = None,
    max_trials: Optional[int] = None,
    progress: Optional[Callable[[str], None]] = None,
    progress_interval_s: float = 5.0,
) -> Table1:
    """Drop-in parallel replacement for ``run_table1_campaign``.

    Same parameters plus ``jobs`` (worker processes; 1 = in-process),
    ``checkpoint`` (JSONL journal path for resume), ``max_trials`` (stop
    scheduling new trials after this many — an interrupted-campaign
    budget; the journal keeps what finished).  Output is bit-identical
    to the serial campaign for the same parameters.
    """
    engine = CampaignEngine(
        crashes_per_cell=crashes_per_cell,
        systems=systems,
        fault_types=fault_types,
        base_seed=base_seed,
        max_attempts_factor=max_attempts_factor,
        config_overrides=config_overrides,
        jobs=jobs,
        checkpoint=checkpoint,
        max_trials=max_trials,
        progress=progress,
        progress_interval_s=progress_interval_s,
    )
    return engine.run()
