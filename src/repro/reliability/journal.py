"""Append-only JSONL checkpoint journal for crash-test campaigns.

The paper's Table 1 took "6 machine-months"; a run that long *will* be
interrupted.  The campaign engine journals every finished trial so an
interrupted campaign resumes without re-running completed work.

Format — one JSON object per line:

* line 1, the **header**: ``{"kind": "header", "version": 1,
  "fingerprint": {...}}``.  The fingerprint captures every parameter
  that shapes the seed schedule (crashes per cell, systems, fault
  types, base seed, attempt bound, config overrides).  Resuming with a
  different fingerprint raises :class:`CampaignResumeError` — silently
  merging two different campaigns would fabricate results.
* **trial** lines: ``{"kind": "trial", "system": ..., "fault": ...,
  "attempt": ..., "seed": ..., "result": {...}, "crc": "xxxxxxxx"}``
  where ``crc`` is the CRC-32 of the rest of the record in canonical
  JSON.  A truncated, garbled, or checksum-failing line is *skipped
  with a* :class:`JournalWarning` and its trial re-runs — a corrupt
  checkpoint can cost time, never correctness.

Duplicate trial keys keep the **last** valid line: a trial re-run after
its original line was damaged appends a fresh record that supersedes it.
"""

from __future__ import annotations

import json
import os
import warnings
import zlib
from typing import IO, Optional

JOURNAL_VERSION = 1

#: A trial's identity within one campaign: (system, fault value, attempt).
TrialKey = tuple


class JournalWarning(UserWarning):
    """A checkpoint line was unusable and its trial will re-run."""


class CampaignResumeError(ValueError):
    """The journal belongs to a differently-parameterized campaign."""


def _canonical(record: dict) -> str:
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


def _crc(record: dict) -> str:
    """CRC-32 (hex) of a record's canonical JSON, sans the crc field."""
    body = {k: v for k, v in record.items() if k != "crc"}
    return format(zlib.crc32(_canonical(body).encode()) & 0xFFFFFFFF, "08x")


def read_trials(path: str) -> dict:
    """CRC-checked read of a journal's trial records, sans fingerprint.

    For offline tools (``repro forensics``) that inspect a finished
    journal rather than resume the campaign that wrote it: the header's
    fingerprint is ignored instead of validated.  Returns
    ``{(system, fault, attempt): (seed, result_dict)}`` with the same
    last-wins dedup and corrupt-line skipping as :meth:`CampaignJournal.load`.
    """
    reader = CampaignJournal(path, fingerprint={})
    entries: dict = {}
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            record = reader._parse_line(line, lineno)
            if record is None or record.get("kind") == "header":
                continue
            key = (record["system"], record["fault"], record["attempt"])
            entries[key] = (record["seed"], record["result"])
    return entries


class CampaignJournal:
    """Reader/writer for one campaign's checkpoint file."""

    def __init__(self, path: str, fingerprint: dict):
        self.path = str(path)
        self.fingerprint = fingerprint
        self.skipped_lines = 0
        self._fh: Optional[IO[str]] = None

    # -- reading -----------------------------------------------------------

    def load(self) -> dict:
        """Parse the journal into ``{trial_key: (seed, result_dict)}``.

        Missing file -> empty.  Bad lines are counted in
        ``skipped_lines`` and warned about; their trials simply re-run.
        """
        entries: dict = {}
        if not os.path.exists(self.path):
            return entries
        with open(self.path, "r", encoding="utf-8") as fh:
            for lineno, line in enumerate(fh, start=1):
                line = line.strip()
                if not line:
                    continue
                record = self._parse_line(line, lineno)
                if record is None:
                    continue
                if record.get("kind") == "header":
                    self._check_header(record)
                    continue
                key = (record["system"], record["fault"], record["attempt"])
                entries[key] = (record["seed"], record["result"])
        return entries

    def _parse_line(self, line: str, lineno: int) -> Optional[dict]:
        try:
            record = json.loads(line)
        except ValueError:
            self._skip(lineno, "unparseable JSON (truncated write?)")
            return None
        if not isinstance(record, dict) or "kind" not in record:
            self._skip(lineno, "not a journal record")
            return None
        if record["kind"] == "header":
            return record
        if record.get("crc") != _crc(record):
            self._skip(lineno, "checksum mismatch")
            return None
        missing = {"system", "fault", "attempt", "seed", "result"} - set(record)
        if missing:
            self._skip(lineno, f"missing fields {sorted(missing)}")
            return None
        return record

    def _check_header(self, record: dict) -> None:
        if record.get("version") != JOURNAL_VERSION:
            raise CampaignResumeError(
                f"{self.path}: journal version {record.get('version')!r}, "
                f"this engine writes {JOURNAL_VERSION}"
            )
        theirs = record.get("fingerprint")
        if theirs != self.fingerprint:
            raise CampaignResumeError(
                f"{self.path}: checkpoint is from a different campaign "
                f"(journal {theirs!r} != requested {self.fingerprint!r}); "
                "refusing to merge"
            )

    def _skip(self, lineno: int, why: str) -> None:
        self.skipped_lines += 1
        warnings.warn(
            f"{self.path}:{lineno}: skipping corrupt checkpoint line ({why}); "
            "the trial will re-run",
            JournalWarning,
            stacklevel=4,
        )

    # -- writing -----------------------------------------------------------

    def open_for_append(self) -> None:
        fresh = not os.path.exists(self.path) or os.path.getsize(self.path) == 0
        self._fh = open(self.path, "a", encoding="utf-8")
        if fresh:
            header = {
                "kind": "header",
                "version": JOURNAL_VERSION,
                "fingerprint": self.fingerprint,
            }
            self._fh.write(_canonical(header) + "\n")
            self._fh.flush()

    def append_trial(self, key: TrialKey, seed: int, result_dict: dict) -> None:
        assert self._fh is not None, "open_for_append first"
        system, fault, attempt = key
        record = {
            "kind": "trial",
            "system": system,
            "fault": fault,
            "attempt": attempt,
            "seed": seed,
            "result": result_dict,
        }
        record["crc"] = _crc(record)
        self._fh.write(_canonical(record) + "\n")
        self._fh.flush()

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None
