"""Table 1 assembly: run campaigns and format the results.

"We conducted 50 tests for each fault category for each of the three
systems (disk, Rio without protection, Rio with protection); this
represents 6 machine-months of testing."  Here a *test* is a counted
crash; runs that survive the budget are discarded and retried, exactly as
in the paper ("this happens about half the time").
"""

from __future__ import annotations

import bisect
import hashlib
import json
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.faults.types import ALL_FAULT_TYPES, FaultType
from repro.reliability.campaign import (
    CrashTestConfig,
    CrashTestResult,
    SYSTEM_NAMES,
    run_crash_test,
)

SYSTEM_LABELS = {
    "disk": "Disk-Based",
    "rio_noprot": "Rio without Protection",
    "rio_prot": "Rio with Protection",
}


@dataclass
class CampaignCell:
    """One (system, fault type) cell of Table 1."""

    system: str
    fault_type: FaultType
    crashes: int = 0
    corruptions: int = 0
    discarded: int = 0
    protection_trap_saves: int = 0
    #: Trials where fsck and the independent dissect verifier disagreed
    #: about the post-recovery image (see ``repro.fs.dissect``).
    divergences: int = 0
    crash_kinds: dict = field(default_factory=dict)
    results: list = field(default_factory=list)
    #: Ordering keys parallel to ``results`` (``record``'s ``order``);
    #: plain appends sort after every keyed insert.
    _order_keys: list = field(default_factory=list, repr=False)

    def record(self, result: CrashTestResult, order: Optional[int] = None) -> None:
        """Count one finished trial.

        ``order`` is the trial's position in the campaign's serial
        schedule (the attempt index).  The parallel engine records
        results as workers deliver them — possibly out of order — and the
        key keeps ``results`` in the exact order the serial campaign
        would have produced, so formatted tables and digests match
        bit-for-bit.  The counters are order-independent sums.
        """
        if order is None:
            self.results.append(result)
            self._order_keys.append(float("inf"))
        else:
            at = bisect.bisect_right(self._order_keys, order)
            self.results.insert(at, result)
            self._order_keys.insert(at, order)
        if result.discarded:
            self.discarded += 1
            return
        self.crashes += 1
        self.crash_kinds[result.crash_kind] = self.crash_kinds.get(result.crash_kind, 0) + 1
        if result.corrupted:
            self.corruptions += 1
        if result.protection_trap:
            self.protection_trap_saves += 1
        if result.diverged:
            self.divergences += 1

    def to_json_dict(self) -> dict:
        return {
            "system": self.system,
            "fault_type": self.fault_type.value,
            "crashes": self.crashes,
            "corruptions": self.corruptions,
            "discarded": self.discarded,
            "protection_trap_saves": self.protection_trap_saves,
            "divergences": self.divergences,
            "crash_kinds": dict(sorted(self.crash_kinds.items())),
            "results": [r.to_json_dict() for r in self.results],
        }


@dataclass
class Table1:
    """The full campaign result."""

    crashes_per_cell: int
    cells: dict = field(default_factory=dict)  # (system, fault) -> CampaignCell

    def cell(self, system: str, fault_type: FaultType) -> CampaignCell:
        key = (system, fault_type)
        if key not in self.cells:
            self.cells[key] = CampaignCell(system, fault_type)
        return self.cells[key]

    def total_crashes(self, system: str) -> int:
        return sum(c.crashes for (s, _), c in self.cells.items() if s == system)

    def total_corruptions(self, system: str) -> int:
        return sum(c.corruptions for (s, _), c in self.cells.items() if s == system)

    def corruption_rate(self, system: str) -> float:
        crashes = self.total_crashes(system)
        return self.total_corruptions(system) / crashes if crashes else 0.0

    def trap_saves(self, system: str) -> int:
        return sum(
            c.protection_trap_saves for (s, _), c in self.cells.items() if s == system
        )

    def total_divergences(self, system: str) -> int:
        """fsck-vs-dissect divergences across the system's cells."""
        return sum(c.divergences for (s, _), c in self.cells.items() if s == system)

    def unique_crash_messages(self) -> int:
        reasons = set()
        for cell in self.cells.values():
            for result in cell.results:
                if result.crashed:
                    reasons.add(result.crash_reason)
        return len(reasons)

    def to_json_dict(self) -> dict:
        """Canonical JSON form: cells sorted by (system, fault value)."""
        return {
            "crashes_per_cell": self.crashes_per_cell,
            "cells": [
                cell.to_json_dict()
                for (system, fault), cell in sorted(
                    self.cells.items(), key=lambda kv: (kv[0][0], kv[0][1].value)
                )
            ],
        }


def table1_digest(table: Table1) -> str:
    """SHA-256 over the canonical JSON form.

    Two campaigns over the same seed schedule are equivalent iff their
    digests match — the serial≡parallel acceptance check.
    """
    canon = json.dumps(table.to_json_dict(), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canon.encode()).hexdigest()


def seed_for(base_seed: int, system: str, fault_type: FaultType, attempt: int) -> int:
    """The campaign's deterministic seed schedule.

    One seed per (cell, attempt); both the serial campaign and the
    parallel engine draw from this function, which is what makes their
    outputs comparable at all.
    """
    return base_seed + hash_cell(system, fault_type) * 10_000 + attempt


def run_table1_campaign(
    crashes_per_cell: int = 10,
    systems: tuple = SYSTEM_NAMES,
    fault_types: tuple = ALL_FAULT_TYPES,
    base_seed: int = 1000,
    max_attempts_factor: int = 5,
    config_overrides: Optional[dict] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> Table1:
    """Run the full campaign.

    ``crashes_per_cell`` is the number of *counted* crashes per cell (the
    paper used 50); discarded runs do not count but do consume attempts,
    bounded by ``crashes_per_cell * max_attempts_factor``.
    """
    table = Table1(crashes_per_cell=crashes_per_cell)
    overrides = config_overrides or {}
    for system in systems:
        for fault_type in fault_types:
            cell = table.cell(system, fault_type)
            attempt = 0
            while (
                cell.crashes < crashes_per_cell
                and attempt < crashes_per_cell * max_attempts_factor
            ):
                seed = seed_for(base_seed, system, fault_type, attempt)
                config = CrashTestConfig(
                    system=system, fault_type=fault_type, seed=seed, **overrides
                )
                cell.record(run_crash_test(config))
                attempt += 1
            if progress is not None:
                line = (
                    f"{system}/{fault_type.value}: {cell.crashes} crashes, "
                    f"{cell.corruptions} corruptions, {cell.discarded} discarded"
                )
                if cell.divergences:
                    line += f", {cell.divergences} fsck/dissect divergences"
                progress(line)
    return table


def hash_cell(system: str, fault_type: FaultType) -> int:
    """Stable small integer per cell (no built-in hash: PYTHONHASHSEED)."""
    text = f"{system}:{fault_type.value}"
    value = 0
    for ch in text:
        value = (value * 131 + ord(ch)) & 0xFFFF
    return value


def format_table1(table: Table1, systems: tuple = SYSTEM_NAMES) -> str:
    """Render the campaign in the layout of the paper's Table 1."""
    width = 22
    header = "Fault Type".ljust(width) + "".join(
        SYSTEM_LABELS[s].ljust(width + 4) for s in systems
    )
    lines = [header, "-" * len(header)]
    fault_types = sorted(
        {fault for (_, fault) in table.cells}, key=lambda f: list(FaultType).index(f)
    )
    for fault_type in fault_types:
        row = fault_type.value.ljust(width)
        for system in systems:
            cell = table.cells.get((system, fault_type))
            if cell is None:
                row += "-".ljust(width + 4)
                continue
            text = f"{cell.corruptions or ''}"
            if cell.protection_trap_saves:
                text += f" [{cell.protection_trap_saves} trapped]"
            row += (text or " ").ljust(width + 4)
        lines.append(row)
    lines.append("-" * len(header))
    totals = "Total".ljust(width)
    for system in systems:
        crashes = table.total_crashes(system)
        corruptions = table.total_corruptions(system)
        rate = 100.0 * table.corruption_rate(system)
        totals += f"{corruptions} of {crashes} ({rate:.1f}%)".ljust(width + 4)
    lines.append(totals)
    # Second-opinion footer: only when the independent verifier disagreed
    # with fsck somewhere (so tables without divergences are unchanged).
    diverged = {s: table.total_divergences(s) for s in systems}
    if any(diverged.values()):
        parts = ", ".join(f"{s}: {n}" for s, n in diverged.items() if n)
        lines.append(f"fsck/dissect divergences  {parts}")
    return "\n".join(lines)
