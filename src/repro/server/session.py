"""Per-client sessions: fd tables and working directories.

A session's client-visible file descriptors are *server* state layered
over the kernel's: each client fd maps to a path, a session-tracked
offset, and a backing kernel fd.  The kernel fd table does not survive
a crash (the VFS is rebuilt by the reboot), so after a warm reboot the
session layer *reconstructs* itself: every client fd is re-opened by
path on the new VFS and its offset restored.  On a Rio system every
acknowledged ``open``'s file is guaranteed to still exist, so rebinding
is total; on a disk-based system a rebind may find the file gone, and
the fd is marked stale (:data:`FdState.STALE`) — operations on it fail
with ``EBADSESSION`` until the client re-opens.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.errors import FileNotFound
from repro.server.protocol import QuotaExceeded, SessionError


def resolve_path(cwd: str, path: str) -> str:
    """Resolve ``path`` against ``cwd`` into a normalized absolute path.

    Supports ``.`` and ``..`` components; never escapes the root.
    """
    if not path:
        raise SessionError("empty path")
    combined = path if path.startswith("/") else f"{cwd}/{path}"
    parts: list[str] = []
    for part in combined.split("/"):
        if part in ("", "."):
            continue
        if part == "..":
            if parts:
                parts.pop()
            continue
        parts.append(part)
    return "/" + "/".join(parts)


@dataclass
class FdState:
    """One client file descriptor's server-side record."""

    #: Marker value for :attr:`backing_fd` after a failed rebind.
    STALE = -1

    cfd: int
    path: str
    offset: int = 0
    backing_fd: int = 0

    @property
    def stale(self) -> bool:
        """True when the post-crash rebind could not re-open the file."""
        return self.backing_fd == self.STALE


@dataclass
class Session:
    """One client's connection state: working directory plus fd table."""

    client_id: int
    cwd: str = "/"
    fds: Dict[int, FdState] = field(default_factory=dict)
    next_cfd: int = 3
    #: Monotone session sequence number assigned at open (1, 2, ...),
    #: surviving warm reboots (the session object persists); chaos
    #: capabilities scope on it to target one session deterministically.
    session_seq: int = 0
    #: Total successful rebinds and rebind failures across this
    #: session's lifetime (observability; tested by the traffic suite).
    rebinds: int = 0
    rebind_failures: int = 0

    def resolve(self, path: str) -> str:
        """Resolve a request path against this session's cwd."""
        return resolve_path(self.cwd, path)

    def lookup(self, cfd: Optional[int]) -> FdState:
        """Return the fd record or raise a non-retryable session error."""
        if cfd is None or cfd not in self.fds:
            raise SessionError(f"client {self.client_id}: unknown fd {cfd}")
        state = self.fds[cfd]
        if state.stale:
            raise SessionError(
                f"client {self.client_id}: fd {cfd} went stale across a crash"
            )
        return state

    def add_fd(self, path: str, backing_fd: int, limit: int) -> FdState:
        """Allocate a client fd for ``path``; enforces the open-fd quota."""
        if len(self.fds) >= limit:
            raise QuotaExceeded(
                f"client {self.client_id}: open-fd quota ({limit}) exhausted"
            )
        state = FdState(cfd=self.next_cfd, path=path, backing_fd=backing_fd)
        self.fds[state.cfd] = state
        self.next_cfd += 1
        return state

    def drop_fd(self, cfd: int) -> FdState:
        """Remove and return a client fd record."""
        if cfd not in self.fds:
            raise SessionError(f"client {self.client_id}: unknown fd {cfd}")
        return self.fds.pop(cfd)


class SessionManager:
    """All live sessions, and the post-crash re-binding pass.

    The manager deliberately holds no reference to a VFS: the VFS is
    rebuilt on every reboot, so every call takes the *current* one.
    """

    def __init__(self) -> None:
        self.sessions: Dict[int, Session] = {}
        self._next_seq = 1

    def open_session(self, client_id: int, cwd: str = "/") -> Session:
        """Create (or return) the session for ``client_id``."""
        if client_id in self.sessions:
            return self.sessions[client_id]
        session = Session(client_id=client_id, cwd=cwd, session_seq=self._next_seq)
        self._next_seq += 1
        self.sessions[client_id] = session
        return session

    def get(self, client_id: int) -> Session:
        """Return an existing session or raise a session error."""
        if client_id not in self.sessions:
            raise SessionError(f"no session for client {client_id}")
        return self.sessions[client_id]

    def close_session(self, client_id: int, vfs) -> None:
        """Close every backing fd and forget the session."""
        session = self.sessions.pop(client_id, None)
        if session is None:
            return
        for state in session.fds.values():
            if not state.stale:
                try:
                    vfs.close(state.backing_fd)
                except Exception:
                    pass  # backing fd may already be gone mid-crash

    def rebind_all(self, vfs, recorder=None) -> tuple[int, int]:
        """Reconstruct every session's fd table on a fresh VFS.

        Re-opens each client fd's path and keeps the session offset
        (session ops are positional, so no seek is replayed).  Returns
        ``(rebound, failed)`` counts; failures mark the fd stale rather
        than raising — the owning client decides whether to re-open.
        """
        rebound = failed = 0
        for client_id in sorted(self.sessions):
            session = self.sessions[client_id]
            for cfd in sorted(session.fds):
                state = session.fds[cfd]
                try:
                    state.backing_fd = vfs.open(state.path)
                    session.rebinds += 1
                    rebound += 1
                except FileNotFound:
                    state.backing_fd = FdState.STALE
                    session.rebind_failures += 1
                    failed += 1
            if recorder is not None and recorder.enabled:
                recorder.emit(
                    "server",
                    "rebind",
                    client=client_id,
                    fds=len(session.fds),
                    failed=session.rebind_failures,
                )
        return rebound, failed
