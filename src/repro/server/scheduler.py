"""Deterministic fair queuing over per-client request streams.

The simulated machine is single-threaded, so concurrency is a
scheduling problem: many client streams must interleave onto one
syscall layer without any client starving the rest.  The scheduler
keeps one bounded FIFO per client and assembles *batches* by deficit
round-robin: clients are visited in a rotating order (resuming after
the last client served, so a heavy client cannot monopolize the front
of every batch) and each visited client contributes up to ``quantum``
requests until the batch is full or every queue is empty.  Everything
is a pure function of the submission order, so one seed produces one
schedule — the property the traffic-under-faults determinism suite
pins down.

The rotation order is maintained *incrementally*: a sorted list of
active (non-empty) client ids is updated on enqueue and on drain, so
assembling a batch costs O(batch) visits plus a bisect — not a full
``sorted()`` rescan of every client queue per batch, which at cluster
scale (thousands of clients) used to dominate the pump loop.
"""

from __future__ import annotations

from bisect import bisect_right, insort
from collections import deque
from typing import Deque, Dict, List

from repro.server.protocol import Backpressure, Request


class RequestScheduler:
    """Bounded per-client queues plus deficit round-robin batching."""

    def __init__(self, queue_depth: int = 32) -> None:
        if queue_depth <= 0:
            raise ValueError("queue_depth must be positive")
        self.queue_depth = queue_depth
        #: Chaos registry (``fail_queue`` capability); set by the file
        #: service when one is installed.
        self.chaos = None
        self._queues: Dict[int, Deque[Request]] = {}
        #: Sorted ids of clients with a non-empty queue.  Invariant:
        #: ``cid in _active`` iff ``_queues[cid]`` is non-empty, so every
        #: visit during batch assembly takes at least one request.
        self._active: List[int] = []
        #: Client id after which the next batch's rotation starts.
        self._resume_after: int = -1

    # -- admission -----------------------------------------------------

    def enqueue(self, request: Request) -> None:
        """Admit one request or raise :class:`Backpressure` if full."""
        queue = self._queues.setdefault(request.client_id, deque())
        if len(queue) >= self.queue_depth:
            raise Backpressure(
                f"client {request.client_id}: queue depth {self.queue_depth} reached"
            )
        if self.chaos is not None and self.chaos.should_fail(
            "fail_queue", client=request.client_id, routine=request.op
        ):
            # Forced Backpressure: the queue pretends to be full.  Raised
            # before any queue/_active mutation, so a denied admission
            # leaves the scheduler exactly as it was.
            raise Backpressure(
                f"client {request.client_id}: chaos fail_queue"
            )
        if not queue:
            insort(self._active, request.client_id)
        queue.append(request)

    def requeue_front(self, requests: List[Request]) -> None:
        """Put never-started requests back at the head of their queues.

        Used when a crash interrupts a batch: requests scheduled but not
        yet executed keep their place in line (and their admission
        timestamps, so their latency honestly includes the recovery).

        Requeue is exempt from admission control and from chaos: these
        requests were already admitted once, and bouncing them here would
        silently drop in-flight work (losing acked-op accounting), so the
        queue may transiently exceed ``queue_depth``.  Each id enters
        ``_active`` only after its request is actually back in the queue —
        nothing in this path can leave a phantom active entry.
        """
        for request in reversed(requests):
            queue = self._queues.setdefault(request.client_id, deque())
            was_empty = not queue
            queue.appendleft(request)
            if was_empty:
                insort(self._active, request.client_id)

    # -- introspection -------------------------------------------------

    def backlog(self, client_id: int | None = None) -> int:
        """Queued requests for one client (or all clients)."""
        if client_id is not None:
            return len(self._queues.get(client_id, ()))
        return sum(len(q) for q in self._queues.values())

    @property
    def clients(self) -> List[int]:
        """Client ids with a queue (sorted; may be empty queues)."""
        return sorted(self._queues)

    # -- batching ------------------------------------------------------

    def next_batch(self, batch_size: int, quantum: int = 4) -> List[Request]:
        """Assemble the next batch by rotating deficit round-robin.

        Visits active clients in ascending id order starting after the
        client that ended the previous batch, wrapping circularly; each
        visit takes up to ``quantum`` requests and a drained client
        leaves the active list.  Returns at most ``batch_size`` requests
        (empty when nothing is queued).
        """
        if batch_size <= 0 or quantum <= 0:
            raise ValueError("batch_size and quantum must be positive")
        active = self._active
        index = bisect_right(active, self._resume_after)
        batch: List[Request] = []
        while active and len(batch) < batch_size:
            if index >= len(active):
                index = 0
            cid = active[index]
            queue = self._queues[cid]
            took = 0
            while queue and took < quantum and len(batch) < batch_size:
                batch.append(queue.popleft())
                took += 1
            self._resume_after = cid
            if queue:
                index += 1
            else:
                # The next-larger id slides into `index`; no advance.
                active.pop(index)
        return batch
