"""Deterministic request routing for the multi-kernel cluster.

The router maps every *resolved, absolute* path to exactly one shard.
It is a classic consistent-hash ring: each shard contributes ``vnodes``
virtual points hashed onto a 64-bit circle, and a path lands on the
shard owning the first point at or clockwise of the path key's hash.
The hash is :func:`hashlib.blake2b` over the key bytes — never Python's
builtin ``hash()``, whose per-process salt would make routing differ
between runs and between shard worker processes.

Two key modes:

* ``"dir"`` (the default) — the key is the path's *parent directory*,
  so every entry of one directory colocates on one shard.  Per-client
  session homes land whole on a single shard, renames within a
  directory are always intra-shard, and ``readdir`` is served by the
  single shard owning the directory's key (:meth:`Router.shard_for_key`
  — directory *shells* replicate everywhere via fan-out ``mkdir``, so
  the owner's view is complete).
* ``"hash"`` — the key is the full path, scattering even one
  directory's files across shards.  This maximizes spread and makes
  cross-shard ``rename`` an everyday event, which is exactly why the
  cluster test suite runs in this mode.

Routing is a pure function of ``(shards, vnodes, mode, path)``: the
front-end and every shard worker process agree on placement without
any coordination, and one seed produces one request stream per shard,
bit for bit — the property the cluster digest tests pin down.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_left
from typing import List, Tuple


def _hash64(key: str) -> int:
    """64-bit position of ``key`` on the ring (process-stable)."""
    return int.from_bytes(
        hashlib.blake2b(key.encode(), digest_size=8).digest(), "big"
    )


class Router:
    """Consistent-hash ring mapping absolute paths to shard ids."""

    MODES = ("dir", "hash")

    def __init__(self, shards: int, *, mode: str = "dir", vnodes: int = 64) -> None:
        if shards <= 0:
            raise ValueError(f"shards must be positive, got {shards}")
        if vnodes <= 0:
            raise ValueError(f"vnodes must be positive, got {vnodes}")
        if mode not in self.MODES:
            raise ValueError(f"unknown router mode {mode!r}; know {self.MODES}")
        self.shards = shards
        self.mode = mode
        self.vnodes = vnodes
        points: List[Tuple[int, int]] = []
        for shard in range(shards):
            for vnode in range(vnodes):
                points.append((_hash64(f"shard-{shard}/vnode-{vnode}"), shard))
        points.sort()
        self._ring = points
        self._positions = [point for point, _ in points]

    def key_for(self, path: str) -> str:
        """The routing key of an absolute path (mode-dependent)."""
        if self.mode == "dir":
            head, _, _ = path.rpartition("/")
            return head or "/"
        return path

    def shard_for(self, path: str) -> int:
        """The shard owning ``path`` (a pure function of the path)."""
        return self.shard_for_key(self.key_for(path))

    def shard_for_key(self, key: str) -> int:
        """The shard owning a raw routing key.

        ``shard_for_key(dir)`` is where every direct entry of ``dir``
        lives in dir mode — the one shard that can answer a
        ``readdir`` of it alone.
        """
        point = _hash64(key)
        index = bisect_left(self._positions, point)
        if index == len(self._positions):
            index = 0  # wrap: the ring is a circle
        return self._ring[index][1]

    def spread(self, paths) -> List[int]:
        """Paths-per-shard histogram (balance diagnostics and tests)."""
        counts = [0] * self.shards
        for path in paths:
            counts[self.shard_for(path)] += 1
        return counts

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Router {self.shards} shards x {self.vnodes} vnodes, "
            f"mode={self.mode}>"
        )
