"""Deterministic multi-client load generation for the file service.

Each :class:`LoadClient` is a seeded PRNG state machine producing a
stream of small *programs* — a write, a read, an fsync, a close/unlink/
re-create cycle, a rename — against its own session home.  Clients
pipeline a few requests at a time, resubmit on retryable errors
(backpressure, quota, the machine being down mid-recovery), and count
every acknowledgement.  Because both the clients and the scheduler are
pure functions of their seeds, one ``(seed, clients, ops)`` triple
produces one ack log, bit for bit, crash storms included — the
determinism the traffic campaign asserts across runs *and* across
execution engines.

:func:`run_load` is the shared driver loop behind ``repro loadgen``,
``repro serve``, the traffic-under-faults campaign and the server
benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.server.protocol import Request, Response
from repro.server.service import FileService
from repro.util.prng import DeterministicRandom, pattern_bytes


#: Ops that change the namespace or a descriptor binding.  A client
#: submits these *exclusively*: the pipeline drains first, and nothing
#: else goes out while one is in flight.  Data ops (positional reads,
#: writes, fsyncs) commute, so pipelining them is safe — but a retried
#: namespace op must never leapfrog a dependent request.  Without the
#: barrier, a retryable failure (backpressure, an injected fault) of
#: ``rename f1 -> r1`` lets the already-pipelined ``open r1 create``
#: execute first; the retried rename then replaces the fresh file while
#: the client keeps writing through its fd — acknowledged writes land
#: in a dead inode and the run's zero-lost-acks audit rightly fails.
NAMESPACE_OPS = frozenset({"open", "close", "unlink", "rename", "mkdir", "rmdir"})


def percentile(values: List[int], fraction: float) -> int:
    """Nearest-rank percentile of ``values`` (0 for an empty list)."""
    if not values:
        return 0
    ordered = sorted(values)
    index = min(len(ordered) - 1, max(0, int(fraction * len(ordered))))
    return ordered[index]


@dataclass
class LoadSpec:
    """Shape of the generated load (per client)."""

    #: Programs each client runs (a program is 1-3 requests).
    ops_per_client: int = 30
    #: Files per client home directory.
    files_per_client: int = 4
    #: Write sizes drawn uniformly from this inclusive range.
    write_bytes: tuple = (64, 2048)
    #: Files grow up to this many bytes (offsets drawn below it).
    max_file_bytes: int = 16 * 1024
    #: Requests a client keeps in flight at once.
    pipeline: int = 4
    #: Relative weights of the program mix.
    mix: tuple = (
        ("write", 50),
        ("read", 20),
        ("fsync", 8),
        ("readdir", 4),
        ("stat", 4),
        ("cycle", 8),
        ("mkdir", 3),
        ("rename", 3),
    )


@dataclass
class ClientStats:
    """One client's view of the run."""

    client_id: int
    acked: int = 0
    failed: int = 0
    retried: int = 0
    rejected: int = 0
    latencies_ns: List[int] = field(default_factory=list)


class LoadClient:
    """One deterministic client: generates programs, tracks outcomes."""

    def __init__(self, client_id: int, seed: int, spec: LoadSpec) -> None:
        self.client_id = client_id
        self.spec = spec
        self.rng = DeterministicRandom(seed ^ (client_id * 0x9E3779B9) ^ 0x5EED)
        self.stats = ClientStats(client_id=client_id)
        self._next_req_id = 1
        self._programs_left = spec.ops_per_client
        self._planned: List[Request] = []
        self._outstanding: Dict[int, Request] = {}
        #: file index -> current path (relative to the session home).
        self.files = [f"f{i}" for i in range(spec.files_per_client)]
        #: file index -> client fd (None while closed/not yet open).
        self.fds: List[Optional[int]] = [None] * spec.files_per_client
        #: requests whose response assigns an fd: req_id -> file index.
        self._pending_opens: Dict[int, int] = {}
        self._mkdirs = 0
        self._renames = 0
        # Session warm-up: open every file once.
        for index in range(spec.files_per_client):
            self._plan_open(index)

    # -- request construction ------------------------------------------

    def _request(self, op: str, **kwargs) -> Request:
        req = Request(
            client_id=self.client_id, req_id=self._next_req_id, op=op, **kwargs
        )
        self._next_req_id += 1
        return req

    def _plan_open(self, index: int) -> None:
        req = self._request("open", path=self.files[index], create=True)
        self._pending_opens[req.req_id] = index
        self._planned.append(req)

    def _file_key(self, index: int) -> int:
        return (self.client_id << 20) ^ (index << 8) ^ 0xF11E

    def _plan_program(self) -> bool:
        """Queue the next program's requests; False when none remain."""
        if self._programs_left <= 0:
            return False
        self._programs_left -= 1
        spec = self.spec
        index = self.rng.randrange(spec.files_per_client)
        fd = self.fds[index]
        kinds = [kind for kind, _ in spec.mix]
        weights = [weight for _, weight in spec.mix]
        kind = self.rng.weighted_choice(kinds, weights)
        if fd is None and kind in ("write", "read", "fsync", "cycle", "rename"):
            kind = "stat"  # file mid-reopen; run a cheap op instead
        if kind == "write":
            offset = self.rng.randrange(spec.max_file_bytes)
            size = self.rng.randint(*spec.write_bytes)
            data = pattern_bytes(
                self._file_key(index) ^ self._next_req_id, offset, size
            )
            self._planned.append(
                self._request("write", fd=fd, offset=offset, data=data)
            )
        elif kind == "read":
            offset = self.rng.randrange(spec.max_file_bytes)
            length = self.rng.randint(*spec.write_bytes)
            self._planned.append(
                self._request("read", fd=fd, offset=offset, length=length)
            )
        elif kind == "fsync":
            self._planned.append(self._request("fsync", fd=fd))
        elif kind == "readdir":
            self._planned.append(self._request("readdir", path="."))
        elif kind == "stat":
            self._planned.append(self._request("stat", path=self.files[index]))
        elif kind == "cycle":
            self._planned.append(self._request("close", fd=fd))
            self._planned.append(self._request("unlink", path=self.files[index]))
            self.fds[index] = None
            self._plan_open(index)
        elif kind == "mkdir":
            self._mkdirs += 1
            self._planned.append(self._request("mkdir", path=f"d{self._mkdirs}"))
        elif kind == "rename":
            self._renames += 1
            new_name = f"r{self._renames}_{index}"
            self._planned.append(self._request("close", fd=fd))
            self._planned.append(
                self._request("rename", path=self.files[index], new_path=new_name)
            )
            self.fds[index] = None
            self.files[index] = new_name
            self._plan_open(index)
        return True

    # -- the client loop ------------------------------------------------

    def next_request(self) -> Optional[Request]:
        """The next request to submit, or None if idle right now."""
        if len(self._outstanding) >= self.spec.pipeline:
            return None
        while not self._planned:
            if not self._plan_program():
                return None
        head = self._planned[0]
        if self._outstanding and (
            head.op in NAMESPACE_OPS
            or any(r.op in NAMESPACE_OPS for r in self._outstanding.values())
        ):
            # Namespace ops run exclusively (see NAMESPACE_OPS): wait
            # for the pipeline to drain before one, and for the op to
            # resolve before anything behind it.
            return None
        request = self._planned.pop(0)
        self._outstanding[request.req_id] = request
        return request

    def on_response(self, response: Response) -> None:
        """Account one response; plan retries for retryable failures."""
        request = self._outstanding.pop(response.req_id, None)
        if request is None:
            return
        if response.ok:
            self.stats.acked += 1
            self.stats.latencies_ns.append(response.latency_ns)
            index = self._pending_opens.pop(response.req_id, None)
            if index is not None:
                self.fds[index] = response.value
            return
        if response.retryable:
            if response.error == "EAGAIN":
                self.stats.rejected += 1
            else:
                self.stats.retried += 1
            if response.error == "EQUOTA":
                # Quota relief needs another request (a close) to execute
                # first; retrying at the head would spin ahead of — and
                # starve — the very close that frees the descriptor.
                # Requeue at the back instead: the op is retried, never
                # dropped, after the rest of the plan has had its turn.
                self._planned.append(request)
            else:
                self._planned.insert(0, request)
            return
        # Non-retryable: record, and self-heal the common cases.
        self.stats.failed += 1
        index = self._pending_opens.pop(response.req_id, None)
        if index is not None:
            # The re-open after a cycle/rename failed (e.g. the unlink
            # landed un-acked before a crash): create it afresh.
            self._plan_open(index)
        elif request.op == "unlink" and response.error == "ENOENT":
            pass  # the unlink itself landed pre-crash; nothing to do

    @property
    def done(self) -> bool:
        """True when every program ran and every request resolved."""
        return (
            self._programs_left <= 0
            and not self._planned
            and not self._outstanding
        )


@dataclass
class LoadReport:
    """The outcome of one :func:`run_load` drive."""

    clients: int = 0
    acked: int = 0
    failed: int = 0
    retried: int = 0
    rejected: int = 0
    rounds: int = 0
    wall_virtual_ns: int = 0
    latencies_ns: List[int] = field(default_factory=list)
    per_client: List[ClientStats] = field(default_factory=list)
    ack_digest: str = ""
    state_digest: str = ""

    @property
    def throughput_ops_per_vsec(self) -> float:
        """Acknowledged operations per virtual second."""
        if self.wall_virtual_ns <= 0:
            return 0.0
        return self.acked / (self.wall_virtual_ns / 1e9)

    def latency_percentile(self, fraction: float) -> int:
        """Nearest-rank latency percentile over all acks (virtual ns)."""
        return percentile(self.latencies_ns, fraction)


def run_load(
    service: FileService,
    clients: List[LoadClient],
    *,
    max_rounds: int = 100_000,
) -> LoadReport:
    """Drive ``clients`` against ``service`` until all are done.

    One round = every client tops up its pipeline (in client-id order),
    then the service executes one scheduled batch and the responses are
    delivered.  Entirely deterministic for fixed seeds.
    """
    report = LoadReport(clients=len(clients))
    by_id = {client.client_id: client for client in clients}
    for client in clients:
        service.open_session(client.client_id)
    start_ns = service.system.clock.now_ns
    rounds = 0
    while rounds < max_rounds:
        rounds += 1
        idle = True
        for client in clients:
            while True:
                request = client.next_request()
                if request is None:
                    break
                idle = False
                rejection = service.submit(request)
                if rejection is not None:
                    client.on_response(rejection)
                    break
        responses = service.pump()
        for response in responses:
            idle = False
            owner = by_id.get(response.client_id)
            if owner is not None:
                owner.on_response(response)
        if idle and service.scheduler.backlog() == 0:
            if all(client.done for client in clients):
                break
    report.rounds = rounds
    report.wall_virtual_ns = service.system.clock.now_ns - start_ns
    for client in clients:
        stats = client.stats
        report.acked += stats.acked
        report.failed += stats.failed
        report.retried += stats.retried
        report.rejected += stats.rejected
        report.latencies_ns.extend(stats.latencies_ns)
        report.per_client.append(stats)
    report.ack_digest = service.journal.ack_digest()
    report.state_digest = service.journal.state_digest()
    return report
