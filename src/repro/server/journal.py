"""The acknowledged-write journal and the per-request durability audit.

Every mutating operation the service acknowledges is recorded here
*after* it succeeded against the file cache — the ack journal is the
service's promise ledger.  It keeps two views of the same history:

* the **ack log**: the ordered list of acknowledged mutations, hashed
  into :meth:`AckJournal.ack_digest` (the determinism fixture: one seed
  must produce one ack log, bit for bit, on either execution engine);
* the **expected state**: the journal replayed into an in-memory model
  of every path the service has touched — final bytes per file, the
  set of directories, the set of paths whose *absence* was promised
  (acknowledged unlink/rmdir not followed by a re-create).

After a crash and warm reboot, :meth:`AckJournal.audit` replays the
expected state against the recovered file system: every journaled file
must exist with exactly the expected bytes, every journaled directory
must exist, every promised-absent path must be absent.  Anything else
is a *lost acknowledgement* — the failure Rio exists to prevent.  With
``repair=True`` the audit additionally rewrites what a lossy system
dropped (journal replay), so a disk-backed service degrades instead of
lying; on Rio the repair count must be zero.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.errors import FileExists, FileNotFound, FileSystemError


@dataclass
class AckEntry:
    """One acknowledged mutation (the ack-log record)."""

    seq: int
    client_id: int
    req_id: int
    op: str
    path: str
    offset: Optional[int] = None
    length: Optional[int] = None
    checksum: Optional[str] = None
    new_path: Optional[str] = None

    def to_json_dict(self) -> dict:
        """Canonical wire form (None fields omitted) for digests."""
        return {
            key: value
            for key, value in self.__dict__.items()
            if value is not None
        }


@dataclass
class AuditReport:
    """What one durability audit found."""

    files_checked: int = 0
    dirs_checked: int = 0
    absent_checked: int = 0
    #: Human-readable descriptions of every lost acknowledgement.
    lost: List[str] = field(default_factory=list)
    #: Entries re-applied from the journal (``repair=True`` only).
    repaired: int = 0
    #: sha256 over the expected state (see :meth:`AckJournal.state_digest`).
    digest: str = ""

    @property
    def ok(self) -> bool:
        """True when no acknowledged operation was lost."""
        return not self.lost


def _sha16(data: bytes) -> str:
    """Short content hash used in ack-log entries."""
    return hashlib.sha256(bytes(data)).hexdigest()[:16]


class AckJournal:
    """Promise ledger plus expected-state model for the file service."""

    def __init__(self) -> None:
        self.entries: List[AckEntry] = []
        self.files: Dict[str, bytearray] = {}
        self.dirs: Set[str] = set()
        #: Paths whose absence is promised (acked unlink/rmdir/rename-from).
        self.absent: Set[str] = set()

    def __len__(self) -> int:
        return len(self.entries)

    # -- recording acknowledgements -----------------------------------

    def record(
        self,
        client_id: int,
        req_id: int,
        op: str,
        path: str,
        *,
        offset: Optional[int] = None,
        data: Optional[bytes] = None,
        new_path: Optional[str] = None,
    ) -> AckEntry:
        """Journal one acknowledged mutation and update the model.

        Call *after* the operation succeeded against the cache — an
        entry is an acknowledgement, never an intention.
        """
        entry = AckEntry(
            seq=len(self.entries),
            client_id=client_id,
            req_id=req_id,
            op=op,
            path=path,
            offset=offset,
            length=len(data) if data is not None else None,
            checksum=_sha16(data) if data is not None else None,
            new_path=new_path,
        )
        self.entries.append(entry)
        self._apply(entry, data)
        return entry

    def _apply(self, entry: AckEntry, data: Optional[bytes]) -> None:
        """Replay one entry into the expected-state model."""
        op, path = entry.op, entry.path
        if op == "open":  # journaled only for create
            self.files.setdefault(path, bytearray())
            self.absent.discard(path)
        elif op == "write":
            content = self.files.setdefault(path, bytearray())
            self.absent.discard(path)
            end = entry.offset + len(data)
            if len(content) < end:
                content.extend(b"\x00" * (end - len(content)))
            content[entry.offset : end] = data
        elif op == "truncate":
            self.files[path] = bytearray()
            self.absent.discard(path)
        elif op == "mkdir":
            self.dirs.add(path)
            self.absent.discard(path)
        elif op == "rmdir":
            self.dirs.discard(path)
            self.absent.add(path)
        elif op == "unlink":
            self.files.pop(path, None)
            self.absent.add(path)
        elif op == "rename":
            content = self.files.pop(path, None)
            if content is not None:
                self.files[entry.new_path] = content
            self.absent.add(path)
            self.absent.discard(entry.new_path)
        else:
            raise ValueError(f"non-mutating op journaled: {op!r}")

    # -- digests -------------------------------------------------------

    def ack_digest(self) -> str:
        """sha256 over the canonical JSON of the ordered ack log."""
        h = hashlib.sha256()
        for entry in self.entries:
            h.update(
                json.dumps(
                    entry.to_json_dict(), sort_keys=True, separators=(",", ":")
                ).encode()
            )
            h.update(b"\n")
        return h.hexdigest()

    def state_digest(self) -> str:
        """sha256 over the expected state (files, dirs, absences)."""
        h = hashlib.sha256()
        for path in sorted(self.files):
            h.update(f"F {path} {_sha16(self.files[path])}\n".encode())
        for path in sorted(self.dirs):
            h.update(f"D {path}\n".encode())
        for path in sorted(self.absent):
            h.update(f"A {path}\n".encode())
        return h.hexdigest()

    # -- the audit -----------------------------------------------------

    def _read_all(self, vfs, path: str, size: int) -> bytes:
        """Read ``size`` bytes of ``path`` through a scratch descriptor."""
        fd = vfs.open(path)
        try:
            chunks = []
            offset = 0
            while offset < size:
                chunk = vfs.pread(fd, min(64 * 1024, size - offset), offset)
                if not chunk:
                    break
                chunks.append(chunk)
                offset += len(chunk)
            return b"".join(chunks)
        finally:
            vfs.close(fd)

    def reconcile_inflight(self, vfs, inflight: dict) -> None:
        """Void the promise of the single request the machine died inside.

        ``inflight`` describes the one request in flight at the crash
        (keys ``op``/``path``/``offset``/``length``/``new_path``, paths
        resolved).  It was never acknowledged, so whatever it partially
        did is *outside* the promise — but it may have landed, and a
        model that ignores that would report false lost-acks forever
        after.  The fix is adoption: the model takes on the recovered
        reality for exactly the bytes/paths that request touched.  If
        the client retries and the retry is acknowledged, the model is
        overwritten again by the normal ack path.
        """
        op = inflight.get("op")
        path = inflight.get("path")
        if path is None:
            return
        if op == "write" and path in self.files:
            start = inflight.get("offset") or 0
            length = inflight.get("length") or 0
            content = self.files[path]
            try:
                fd = vfs.open(path)
            except FileSystemError:
                return
            try:
                actual = vfs.pread(fd, length, start)
            finally:
                vfs.close(fd)
            end = start + length
            if len(content) < end:
                content.extend(b"\x00" * (end - len(content)))
            content[start:end] = actual.ljust(length, b"\x00")
        elif op == "unlink":
            if not vfs.exists(path):
                self.files.pop(path, None)
        elif op == "rmdir":
            if not vfs.exists(path):
                self.dirs.discard(path)
        elif op == "rename":
            new = inflight.get("new_path")
            if new and not vfs.exists(path) and vfs.exists(new):
                content = self.files.pop(path, None)
                if content is not None:
                    self.files[new] = content
        elif op == "truncate" and path in self.files:
            try:
                fd = vfs.open(path)
            except FileSystemError:
                return
            try:
                actual = vfs.pread(fd, 1, 0)
            finally:
                vfs.close(fd)
            if actual == b"" and self.files[path]:
                self.files[path] = bytearray()
        # mkdir / open-create: an unacknowledged extra path is never
        # audited, so there is nothing to adopt.

    def audit(
        self, vfs, *, repair: bool = False, inflight: Optional[dict] = None
    ) -> AuditReport:
        """Replay the expected state against the (recovered) file system.

        Returns an :class:`AuditReport`; ``report.ok`` is the
        zero-lost-acks guarantee.  With ``repair=True``, lost state is
        re-applied from the journal (counted in ``report.repaired``)
        after being reported lost — repair heals, it does not excuse.
        ``inflight`` (the request the machine died inside) is
        reconciled into the model first: see :meth:`reconcile_inflight`.
        """
        if inflight is not None:
            self.reconcile_inflight(vfs, inflight)
        report = AuditReport(digest=self.state_digest())
        for path in sorted(self.dirs):
            report.dirs_checked += 1
            if not vfs.exists(path):
                report.lost.append(f"dir {path}: missing after recovery")
                if repair:
                    try:
                        vfs.mkdir(path)
                        report.repaired += 1
                    except FileSystemError:
                        pass
        for path in sorted(self.files):
            report.files_checked += 1
            expected = bytes(self.files[path])
            try:
                actual = self._read_all(vfs, path, len(expected))
            except FileNotFound:
                report.lost.append(f"file {path}: missing after recovery")
                actual = None
            if actual is not None:
                # The recovered file may be shorter when the expected
                # tail is all zeros (a hole the fs never materialized);
                # pad before comparing so only real data counts.
                padded = actual.ljust(len(expected), b"\x00")
                if padded != expected:
                    report.lost.append(
                        f"file {path}: content mismatch "
                        f"(expected {_sha16(expected)}, found {_sha16(padded)})"
                    )
                    actual = None
            if actual is None and repair:
                try:
                    fd = vfs.open(path, create=True, truncate=True)
                    if expected:
                        vfs.pwrite(fd, expected, 0)
                    vfs.close(fd)
                    report.repaired += 1
                except FileSystemError:
                    pass
        for path in sorted(self.absent):
            report.absent_checked += 1
            if vfs.exists(path):
                report.lost.append(f"path {path}: resurrected after recovery")
                if repair:
                    try:
                        vfs.unlink(path)
                        report.repaired += 1
                    except FileSystemError:
                        try:
                            vfs.rmdir(path)
                            report.repaired += 1
                        except FileSystemError:
                            pass
        return report

    def audit_remote(self, store, *, repair: bool = False) -> AuditReport:
        """Audit the promise ledger against the remote tier *alone*.

        The hard version of :meth:`audit`: the local disk is thrown
        away.  The full device image is materialized from the object
        store behind ``store`` (a
        :class:`~repro.backend.tiered.TieredStore`), installed on a
        scratch machine, taken through cold recovery (fsck + mount),
        and the ordinary audit replays against that scratch VFS.
        ``report.ok`` therefore means: no acknowledged operation
        depends on a dirty block that never uploaded — the remote tier
        by itself reconstructs every promise.  Raises
        :class:`~repro.backend.common.BackendOutage` when the store is
        unreachable.
        """
        from repro.backend.audit import mount_materialized

        scratch, _report, _image = mount_materialized(store)
        return self.audit(scratch.vfs, repair=repair)
