""":class:`FileService`: the assembled crash-transparent file server.

One service owns one :class:`~repro.system.System` and serves many
clients: admission control and typed backpressure at the front, the
deterministic fair scheduler in the middle, batched syscall execution
against the VFS at the bottom — and, when the kernel goes down
mid-traffic (an injected fault, a crash-storm hook, a genuine bug), the
service *recovers in line*: it runs the warm reboot, audits (and on
lossy systems repairs) the acknowledged-write journal against the
restored cache, re-binds every session's fd table, and resumes the very
batch it was executing.  Acknowledged operations are never lost; the
per-request durability audit proves it after every crash.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional

from repro.errors import (
    CrashedMachineError,
    FileExists,
    FileNotFound,
    FileSystemError,
    SystemCrash,
)
from repro.server.journal import AckJournal, AuditReport
from repro.server.protocol import (
    ChaosInjected,
    QuotaExceeded,
    Request,
    Response,
    ServerError,
    SessionError,
)
from repro.server.scheduler import RequestScheduler
from repro.server.session import Session, SessionManager


@dataclass
class ServiceConfig:
    """Tunables of one file service instance."""

    #: Per-client admission queue depth (Backpressure beyond it).
    queue_depth: int = 32
    #: Requests executed per scheduling batch.
    batch_size: int = 16
    #: Max requests one client contributes per round-robin visit.
    quantum: int = 4
    #: Per-client open-descriptor quota (QuotaExceeded beyond it).
    max_open_fds: int = 16
    #: Run recovery automatically when a batch hits a crash.
    auto_recover: bool = True
    #: Re-apply lost journal entries during the post-crash audit.
    #: Pointless on Rio (nothing is ever lost); it lets the service
    #: degrade gracefully on disk-backed systems instead of lying.
    repair_on_recover: bool = False
    #: Directory under which per-client homes are created.
    home_prefix: str = "/srv"
    #: PLANTED ORDERING BUG — off by default, switched on only by the
    #: crash-point explorer's counterexample tests.  When set, a write
    #: is journaled, acknowledged and answered *before* it executes; a
    #: crash inside the window between the premature ack and the cache
    #: write loses an acknowledged operation (the exact failure the
    #: acked-data-durable spec clause exists to catch), because the
    #: dying request is already answered and recovery has no in-flight
    #: description to reconcile the broken promise with.
    ack_before_execute: bool = False


@dataclass
class ServiceStats:
    """Running counters across the service's lifetime."""

    submitted: int = 0
    rejected: int = 0
    executed: int = 0
    acked: int = 0
    failed: int = 0
    crashes_detected: int = 0
    #: Requests re-executed transparently after a mid-request crash.
    transparent_retries: int = 0
    recoveries: int = 0
    lost_acks: int = 0
    repaired_acks: int = 0
    #: Virtual time spent inside :meth:`FileService.recover` (reboot +
    #: audit), summed across all recoveries — the recovery-time SLO the
    #: chaos campaign reports.
    recovery_ns: int = 0
    audits: List[AuditReport] = field(default_factory=list)


class FileService:
    """A concurrent multi-client file service over one simulated system."""

    def __init__(
        self, system, config: Optional[ServiceConfig] = None, chaos=None
    ) -> None:
        self.system = system
        self.config = config or ServiceConfig()
        self.sessions = SessionManager()
        self.journal = AckJournal()
        self.scheduler = RequestScheduler(self.config.queue_depth)
        #: Chaos registry, or ``None``.  The service owns the request
        #: scope: every executed request is bracketed with its
        #: client/session/routine identity so capabilities down the
        #: stack (cache, allocator, disk) can target it.
        self.chaos = chaos if chaos is not None else getattr(system, "chaos", None)
        self.scheduler.chaos = self.chaos
        self.stats = ServiceStats()
        #: Optional hook called with the running executed-request count
        #: immediately before each request runs; crash storms use it to
        #: bring the kernel down mid-traffic.
        self.before_execute: Optional[Callable[[int], None]] = None
        self.last_audit: Optional[AuditReport] = None
        system.add_reboot_hook(self._on_reboot)
        try:
            self.system.vfs.mkdir(self.config.home_prefix)
        except FileExists:
            pass
        else:
            self.journal.record(-1, 0, "mkdir", self.config.home_prefix)

    # -- plumbing ------------------------------------------------------

    @property
    def _now(self) -> int:
        return self.system.clock.now_ns

    def _recorder(self):
        """The machine's flight recorder, when attached and running."""
        rec = getattr(self.system.machine, "recorder", None)
        return rec if rec is not None and rec.enabled else None

    # -- sessions ------------------------------------------------------

    def open_session(self, client_id: int) -> Session:
        """Create a session (and its home directory) for a client.

        The home directory creation is journaled under ``req_id=0`` —
        it is an acknowledged mutation like any other.
        """
        if client_id in self.sessions.sessions:
            return self.sessions.get(client_id)
        home = f"{self.config.home_prefix}/c{client_id:03d}"
        try:
            self.system.vfs.mkdir(home)
        except FileExists:
            pass
        self.journal.record(client_id, 0, "mkdir", home)
        session = self.sessions.open_session(client_id, cwd=home)
        rec = self._recorder()
        if rec is not None:
            rec.emit("server", "session-open", client=client_id, home=home)
        return session

    def close_session(self, client_id: int) -> None:
        """Close a client's backing descriptors and drop the session."""
        self.sessions.close_session(client_id, self.system.vfs)

    # -- admission -----------------------------------------------------

    def submit(self, request: Request) -> Optional[Response]:
        """Admit a request into its client's queue.

        Returns ``None`` on admission, or an immediate *retryable*
        error response (backpressure) when the queue is full.  Requests
        are stamped with the current virtual time so latencies measure
        queueing, execution, and any recovery they waited out.
        """
        request.submitted_ns = self._now
        self.stats.submitted += 1
        try:
            self.sessions.get(request.client_id)
            self.scheduler.enqueue(request)
        except ServerError as exc:
            self.stats.submitted -= 1
            self.stats.rejected += 1
            rec = self._recorder()
            if rec is not None:
                rec.emit(
                    "server", "reject",
                    client=request.client_id, req=request.req_id, error=exc.code,
                )
            return Response.failure(request, exc, self._now)
        return None

    # -- the pump ------------------------------------------------------

    def pump(self) -> List[Response]:
        """Execute one scheduled batch; returns its responses.

        The batch runs inside a :meth:`VFS.batch` scope (the fixed
        syscall prologue is charged once at full price, then at the
        batched rate).  A crash mid-batch is absorbed here: completed
        requests keep their (already journaled) acknowledgements, while
        the dying request and the batch's unstarted remainder return to
        the front of their queues in order — the client never sees the
        crash, only the recovery latency.  With ``auto_recover`` the
        warm reboot, audit and session re-bind all happen before this
        call returns.
        """
        if self.system.machine.crashed:
            # The machine went down outside any batch (an administrative
            # crash, a storm firing between pumps).  Recover first.
            if not self.config.auto_recover:
                return []
            self.stats.crashes_detected += 1
            self.recover(None)
        batch = self.scheduler.next_batch(self.config.batch_size, self.config.quantum)
        if not batch:
            return []
        responses: List[Response] = []
        inflight: Optional[dict] = None
        rec = self._recorder()
        vfs = self.system.vfs
        try:
            with vfs.batch():
                for index, request in enumerate(batch):
                    if self.before_execute is not None:
                        self.before_execute(self.stats.executed)
                    #: The client has (or will get, when pump returns)
                    #: this request's response — set the moment it is
                    #: appended, *before* the ack event is emitted, so a
                    #: crash landing on the ack emission still delivers.
                    answered = False
                    pre_acked = False
                    try:
                        if self.config.ack_before_execute and request.op == "write":
                            pre_ack = self._pre_ack(request)
                            if pre_ack is not None:
                                self.stats.executed += 1
                                self.stats.acked += 1
                                responses.append(pre_ack)
                                answered = pre_acked = True
                                if rec is not None:
                                    rec.emit(
                                        "server", "ack",
                                        client=request.client_id,
                                        req=request.req_id,
                                        op=request.op,
                                    )
                        value = self._execute(request, journal=not pre_acked)
                        if not pre_acked:
                            self.stats.executed += 1
                            self.stats.acked += 1
                            responses.append(
                                Response(
                                    client_id=request.client_id,
                                    req_id=request.req_id,
                                    op=request.op,
                                    ok=True,
                                    value=value,
                                    submitted_ns=request.submitted_ns,
                                    completed_ns=self._now,
                                )
                            )
                            answered = True
                            if rec is not None:
                                rec.emit(
                                    "server", "ack",
                                    client=request.client_id,
                                    req=request.req_id,
                                    op=request.op,
                                )
                    except (SystemCrash, CrashedMachineError):
                        if answered:
                            # The request was already answered.  Either it
                            # fully executed and the crash hit the ack
                            # emission (nothing is in flight), or the
                            # planted ack-before-execute bug promised it
                            # and the crash beat the data to the cache —
                            # recovery is handed *no* in-flight
                            # description, so the broken promise stands
                            # unexcused and the post-crash audit reports
                            # the lost ack.
                            inflight = {}
                            self.scheduler.requeue_front(batch[index + 1:])
                            break
                        # Crash transparency: the dying request was not
                        # acknowledged, so it is simply re-executed after
                        # recovery — ahead of the rest of the batch, so
                        # per-client ordering is preserved.  Re-execution
                        # is safe: writes are positional (idempotent) and
                        # a namespace op that did land surfaces as an
                        # ordinary POSIX error on the retry.
                        inflight = self._describe_inflight(request)
                        self.stats.transparent_retries += 1
                        self.scheduler.requeue_front(batch[index:])
                        break
                    except ServerError as exc:
                        if not pre_acked:
                            self.stats.executed += 1
                            self.stats.failed += 1
                            responses.append(Response.failure(request, exc, self._now))
                    except FileSystemError as exc:
                        if not pre_acked:
                            self.stats.executed += 1
                            self.stats.failed += 1
                            responses.append(
                                Response(
                                    client_id=request.client_id,
                                    req_id=request.req_id,
                                    op=request.op,
                                    ok=False,
                                    error=exc.errno_name,
                                    retryable=False,
                                    submitted_ns=request.submitted_ns,
                                    completed_ns=self._now,
                                )
                            )
        except (SystemCrash, CrashedMachineError):
            # A crash escaping outside request execution (e.g. raised by
            # the batch epilogue) is handled like a mid-request crash
            # with nothing in flight.
            inflight = inflight or {}
        if inflight is not None:
            self.stats.crashes_detected += 1
            if rec is not None:
                rec.emit("server", "crash-detected", backlog=self.scheduler.backlog())
            if self.config.auto_recover:
                self.recover(inflight)
        return responses

    def drain(self, max_batches: int = 100_000) -> List[Response]:
        """Pump until every queue is empty; returns all responses."""
        responses: List[Response] = []
        for _ in range(max_batches):
            out = self.pump()
            if not out and self.scheduler.backlog() == 0:
                break
            responses.extend(out)
        return responses

    # -- recovery ------------------------------------------------------

    def recover(self, inflight: Optional[dict] = None) -> AuditReport:
        """Warm-reboot the system, audit the ack journal, resume.

        ``inflight`` is the description of the single unacknowledged
        request the machine died inside (see
        :meth:`AckJournal.audit`); sessions are re-bound by the
        :meth:`System.add_reboot_hook` hook this service registered at
        construction.  Returns the audit report; ``report.ok`` is the
        zero-lost-acks guarantee the traffic campaign asserts.
        """
        recover_start_ns = self._now
        self.system.reboot()  # reboot hooks re-bind the sessions
        audit = self.journal.audit(
            self.system.vfs,
            repair=self.config.repair_on_recover,
            inflight=inflight,
        )
        self.stats.recovery_ns += self._now - recover_start_ns
        self.stats.recoveries += 1
        self.stats.lost_acks += len(audit.lost)
        self.stats.repaired_acks += audit.repaired
        self.stats.audits.append(audit)
        self.last_audit = audit
        rec = self._recorder()
        if rec is not None:
            rec.emit(
                "server", "recovered",
                lost=len(audit.lost),
                repaired=audit.repaired,
                files=audit.files_checked,
            )
        return audit

    def audit(self) -> AuditReport:
        """Run the durability audit against the current file system."""
        audit = self.journal.audit(self.system.vfs)
        self.last_audit = audit
        return audit

    def _on_reboot(self, system, report) -> None:
        """Reboot hook: reconstruct every session on the fresh VFS."""
        self.sessions.rebind_all(system.vfs, recorder=self._recorder())

    # -- request execution ---------------------------------------------

    def _describe_inflight(self, request: Request) -> dict:
        """Resolve the crashing request's paths for the audit mask."""
        info: dict = {"op": request.op}
        try:
            session = self.sessions.get(request.client_id)
        except SessionError:
            return info
        if request.op in ("write", "read", "fsync", "truncate", "close"):
            state = session.fds.get(request.fd)
            if state is not None:
                info["path"] = state.path
                if request.op == "write":
                    info["offset"] = (
                        request.offset if request.offset is not None else state.offset
                    )
                    info["length"] = len(request.data or b"")
        elif request.path is not None:
            info["path"] = session.resolve(request.path)
            if request.new_path is not None:
                info["new_path"] = session.resolve(request.new_path)
        return info

    def _pre_ack(self, request: Request) -> Optional[Response]:
        """The ``ack_before_execute`` planted bug: promise, then do.

        Journals and answers a write before a single byte reaches the
        cache (the caller appends the response and emits the ack event).
        Returns the premature response, or ``None`` when the request
        cannot be resolved (bad session/fd — it then takes the normal
        path and fails honestly).
        """
        try:
            session = self.sessions.get(request.client_id)
            state = session.lookup(request.fd)
        except ServerError:
            return None
        offset = request.offset if request.offset is not None else state.offset
        data = request.data or b""
        self.journal.record(
            session.client_id, request.req_id, "write",
            state.path, offset=offset, data=data,
        )
        return Response(
            client_id=request.client_id,
            req_id=request.req_id,
            op=request.op,
            ok=True,
            value=len(data),
            submitted_ns=request.submitted_ns,
            completed_ns=self._now,
        )

    def _execute(self, request: Request, *, journal: bool = True) -> Any:
        """Run one request against the VFS; journal it if it mutates.

        Raises :class:`ServerError` subtypes for service-level
        failures, file-system errors for POSIX failures, and lets
        crashes propagate to :meth:`pump`.  ``journal=False`` skips the
        write-path journal append (the ``ack_before_execute`` planted
        bug already recorded the promise before calling here).

        When a chaos registry is installed, execution runs inside a
        request scope carrying the client id, session sequence number
        and op name, and the ``fail_nth_syscall`` capability is
        evaluated here — *before* dispatch — so a denied request fails
        retryably without touching any state.  A deep chaos denial
        (page grant or block allocation refused mid-op) can leave a
        *partially applied* unacknowledged mutation; that partial state
        is outside the promise, so the journal model adopts the request's
        actual effect — exactly the crash-in-flight reconciliation —
        before the failure is surfaced.
        """
        session = self.sessions.get(request.client_id)
        if self.chaos is None:
            return self._dispatch(request, session, journal=journal)
        with self.chaos.request_scope(
            client=request.client_id,
            session=session.session_seq,
            routine=request.op,
        ):
            if self.chaos.should_fail("fail_nth_syscall"):
                raise ChaosInjected(
                    f"client {request.client_id}: chaos fail_nth_syscall"
                )
            try:
                return self._dispatch(request, session, journal=journal)
            except FileSystemError:
                with self.chaos.calm():
                    self.journal.reconcile_inflight(
                        self.system.vfs, self._describe_inflight(request)
                    )
                raise

    def _dispatch(self, request: Request, session: Session, *, journal: bool) -> Any:
        """The op switch behind :meth:`_execute` (same contract)."""
        vfs = self.system.vfs
        op = request.op

        if op == "open":
            if len(session.fds) >= self.config.max_open_fds:
                raise QuotaExceeded(
                    f"client {session.client_id}: "
                    f"open-fd quota ({self.config.max_open_fds}) exhausted"
                )
            path = session.resolve(request.path)
            existed = vfs.exists(path)
            backing = vfs.open(path, create=request.create)
            state = session.add_fd(path, backing, self.config.max_open_fds)
            if request.create and not existed:
                self.journal.record(session.client_id, request.req_id, "open", path)
            return state.cfd

        if op == "close":
            state = session.lookup(request.fd)
            vfs.close(state.backing_fd)
            session.drop_fd(state.cfd)
            return None

        if op == "read":
            state = session.lookup(request.fd)
            offset = request.offset if request.offset is not None else state.offset
            data = vfs.pread(state.backing_fd, request.length or 0, offset)
            if request.offset is None:
                state.offset = offset + len(data)
            return data

        if op == "write":
            state = session.lookup(request.fd)
            offset = request.offset if request.offset is not None else state.offset
            data = request.data or b""
            vfs.pwrite(state.backing_fd, data, offset)
            if journal:
                self.journal.record(
                    session.client_id, request.req_id, "write",
                    state.path, offset=offset, data=data,
                )
            if request.offset is None:
                state.offset = offset + len(data)
            return len(data)

        if op == "fsync":
            state = session.lookup(request.fd)
            vfs.fsync(state.backing_fd)
            return None

        if op == "truncate":
            state = session.lookup(request.fd)
            vfs.ftruncate(state.backing_fd)
            self.journal.record(
                session.client_id, request.req_id, "truncate", state.path
            )
            state.offset = 0
            return None

        if op == "mkdir":
            path = session.resolve(request.path)
            vfs.mkdir(path)
            self.journal.record(session.client_id, request.req_id, "mkdir", path)
            return None

        if op == "rmdir":
            path = session.resolve(request.path)
            vfs.rmdir(path)
            self.journal.record(session.client_id, request.req_id, "rmdir", path)
            return None

        if op == "unlink":
            path = session.resolve(request.path)
            vfs.unlink(path)
            self.journal.record(session.client_id, request.req_id, "unlink", path)
            return None

        if op == "rename":
            old = session.resolve(request.path)
            new = session.resolve(request.new_path)
            vfs.rename(old, new)
            self.journal.record(
                session.client_id, request.req_id, "rename", old, new_path=new
            )
            for other in self.sessions.sessions.values():
                for state in other.fds.values():
                    if state.path == old:
                        state.path = new
            return None

        if op == "readdir":
            return vfs.readdir(session.resolve(request.path))

        if op == "stat":
            path = session.resolve(request.path)
            try:
                node = vfs.stat(path)
            except FileNotFound:
                return {"exists": False}
            return {"exists": True, "size": getattr(node, "size", None)}

        if op == "chdir":
            path = session.resolve(request.path)
            if not vfs.exists(path):
                raise FileNotFound(path)
            session.cwd = path
            return path

        raise SessionError(f"unknown op {request.op!r}")
