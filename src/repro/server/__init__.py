"""The crash-transparent file service.

Section 7 of the paper runs a *departmental file server* on Rio with
reliability-induced writes turned off.  This package grows that story to
the ROADMAP's scale: a concurrent, multi-client file service layered on
the syscall layer that keeps serving through kernel crashes.

The pieces (one module each):

* :mod:`repro.server.protocol` — requests, responses, and the typed
  error taxonomy (retryable vs. fatal) of the admission layer.
* :mod:`repro.server.session` — per-client sessions: fd tables and
  working directories, *reconstructed* after a warm reboot (the backing
  kernel fd table dies with the kernel; the session layer re-opens and
  re-seeks every file).
* :mod:`repro.server.journal` — the acknowledged-write journal and the
  per-request durability audit: no acknowledged operation may ever be
  lost across a crash, and the audit proves it.
* :mod:`repro.server.scheduler` — deterministic fair queuing: many
  client streams interleaved onto the single-threaded machine with
  batched syscall execution.
* :mod:`repro.server.service` — :class:`FileService`, the assembled
  server: admission control, request execution, crash detection,
  warm-reboot recovery, session re-binding and the audit.
* :mod:`repro.server.loadgen` — the deterministic multi-client load
  generator and the shared driver loop behind ``repro loadgen``,
  the traffic-under-faults campaign and the server benchmarks.
* :mod:`repro.server.router` — the deterministic consistent-hash
  router mapping absolute paths to shards.
* :mod:`repro.server.cluster` — the multi-kernel cluster: N
  independent Machine+Kernel shards (in-process or one worker process
  each) behind one router, with per-shard crash transparency and
  two-phase cross-shard renames audited by an intent log.
"""

from repro.server.protocol import (
    Backpressure,
    QuotaExceeded,
    Request,
    Response,
    ServerError,
    ServiceDown,
    SessionError,
)
from repro.server.session import FdState, Session, SessionManager
from repro.server.journal import AckJournal, AuditReport
from repro.server.scheduler import RequestScheduler
from repro.server.service import FileService, ServiceConfig, ServiceStats
from repro.server.loadgen import (
    LoadClient,
    LoadReport,
    LoadSpec,
    percentile,
    run_load,
)
from repro.server.router import Router
from repro.server.cluster import (
    ClusterConfig,
    ClusterIntentLog,
    ClusterLoadReport,
    ClusterService,
    RenameIntent,
    Shard,
    ShardSpec,
    run_cluster_load,
)

__all__ = [
    "Backpressure",
    "QuotaExceeded",
    "Request",
    "Response",
    "ServerError",
    "ServiceDown",
    "SessionError",
    "FdState",
    "Session",
    "SessionManager",
    "AckJournal",
    "AuditReport",
    "RequestScheduler",
    "FileService",
    "ServiceConfig",
    "ServiceStats",
    "LoadClient",
    "LoadReport",
    "LoadSpec",
    "percentile",
    "run_load",
    "Router",
    "ClusterConfig",
    "ClusterIntentLog",
    "ClusterLoadReport",
    "ClusterService",
    "RenameIntent",
    "Shard",
    "ShardSpec",
    "run_cluster_load",
]
