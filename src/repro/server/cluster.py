"""The multi-kernel cluster: N independent shards behind one front-end.

One :class:`ClusterService` owns N *shards*.  Each shard is a complete
:class:`~repro.system.System` — its own machine, kernel, Rio cache,
disk, file system — wrapped in its own crash-transparent
:class:`~repro.server.FileService`, so a kernel crash on one shard is
recovered by that shard's warm reboot (requeue, reboot, journal audit,
session rebind) while every other shard keeps serving.  The front-end
is deliberately thin: it owns the cluster-wide admission queues and the
fair scheduler, resolves paths against per-client working directories,
routes every request to its shard through the deterministic
:class:`~repro.server.router.Router`, and translates client file
descriptors to shard descriptors.  All shard state — caches, journals,
fd tables — lives shard-side.

Shards run either in-process (:class:`InlineShardHost`, ``jobs=1``) or
each in its own worker process (:class:`ProcessShardHost`, ``jobs>1``)
speaking a batched command protocol over a pipe.  Both hosts drive the
*same* :class:`Shard` core with the *same* request stream, so one
``(config, seed)`` pair produces one set of per-shard ack digests, bit
for bit, at any ``jobs`` and on either execution engine — the cluster
determinism contract.

The explicit hard case is cross-shard ``rename``: the source and
destination hash to different kernels, so no single shard can move the
file atomically.  The front-end runs a two-phase protocol journaled in
a :class:`ClusterIntentLog` — record the intent, copy the bytes through
the destination shard's *normal acknowledged service path* (so the
destination's own ack journal covers them), then unlink the source
(covered by the source shard's journal) and mark the intent done.
:meth:`ClusterService.audit_intents` replays the log after recovery:
a ``done`` intent must hold (destination present, source absent), an
interrupted one is rolled forward from the ``copied`` state or rolled
back from ``begin``.  The 13-op protocol has no ``link``, so hard
links across shards do not arise; the day the protocol grows one, it
must take the same intent-log route.

Process death is *not* in scope: Rio's stable store is the machine's
memory, which lives inside the shard process.  Killing the process is
a power failure, which the paper's Rio explicitly does not survive.
Kernel crashes — the paper's subject — are recovered warm, in line.
"""

from __future__ import annotations

import hashlib
import multiprocessing
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.errors import ReproError
from repro.server.protocol import (
    Backpressure,
    QuotaExceeded,
    Request,
    Response,
    SessionError,
)
from repro.server.router import Router
from repro.server.scheduler import RequestScheduler
from repro.server.service import FileService, ServiceConfig
from repro.server.session import resolve_path

#: Reserved client id for cluster-internal traffic (fan-out sub-requests
#: and cross-shard rename copies).  Real clients are numbered from 0;
#: a million simulated clients is beyond any configuration here.
INTERNAL_CLIENT = 1_000_000

#: Chunk size for cross-shard rename copies.
_COPY_CHUNK = 64 * 1024


class ClusterError(ReproError):
    """A shard worker failed outside the normal service error paths."""


# ---------------------------------------------------------------------------
# Shard core: one system + one service, same code under every host.
# ---------------------------------------------------------------------------


@dataclass
class ShardSpec:
    """Everything needed to build one shard (picklable: it crosses the
    pipe to worker processes, which build the shard from scratch)."""

    shard_id: int
    system: str = "rio_prot"
    fs_blocks: int = 2048
    inode_blocks: int = 8
    #: Machine memory override in bytes (None keeps the default 16 MB).
    memory_bytes: Optional[int] = None
    #: Pin the execution engine (None keeps the machine default).
    fast_path: Optional[bool] = None
    service: ServiceConfig = field(default_factory=ServiceConfig)
    #: Executed-request counts at which this shard force-crashes (the
    #: rolling-storm schedule; each point fires once, in order).
    crash_points: Tuple[int, ...] = ()
    #: Start the flight recorder with shard-tagged events.
    trace_events: bool = False


def _shard_system_spec(spec: ShardSpec):
    """Build the :class:`~repro.system.SystemSpec` for one shard.

    Mirrors :func:`repro.reliability.campaign.system_spec_for` without
    importing ``repro.reliability`` (whose package init imports
    ``repro.server`` — a cycle).
    """
    from repro.core import RioConfig
    from repro.system import SystemSpec

    if spec.system == "disk":
        base = SystemSpec(fs_type="ufs", policy="ufs", rio=None)
    elif spec.system == "rio_noprot":
        base = SystemSpec(
            fs_type="ufs", policy="rio", rio=RioConfig.without_protection()
        )
    elif spec.system == "rio_prot":
        base = SystemSpec(fs_type="ufs", policy="rio", rio=RioConfig.with_protection())
    else:
        raise ClusterError(f"unknown system {spec.system!r}")
    base = replace(base, fs_blocks=spec.fs_blocks, inode_blocks=spec.inode_blocks)
    machine = base.machine
    if spec.memory_bytes is not None:
        machine = replace(machine, memory_bytes=spec.memory_bytes)
    if spec.fast_path is not None:
        machine = replace(machine, fast_path=spec.fast_path)
    return replace(base, machine=machine)


class Shard:
    """One kernel's worth of the cluster: a system plus its service.

    ``step`` is the whole shard-facing API: submit a batch of
    translated requests and drain them to completion.  A configured
    crash point firing mid-step is absorbed by the shard's own
    :class:`FileService` — the dying request is requeued exactly as
    ``requeue_front`` always has, the warm reboot runs in line, and the
    step returns a response for every submitted request regardless.
    """

    def __init__(self, spec: ShardSpec) -> None:
        from repro.system import build_system

        self.spec = spec
        self.system = build_system(_shard_system_spec(spec))
        self.service = FileService(self.system, replace(spec.service))
        self._points = sorted(spec.crash_points)
        self._fired = 0
        self.service.before_execute = self._storm_hook
        if spec.trace_events:
            recorder = getattr(self.system.machine, "recorder", None)
            if recorder is not None:
                recorder.static_tags["shard"] = spec.shard_id
                recorder.start()

    def _storm_hook(self, executed: int) -> None:
        """Force a kernel crash at each configured executed count."""
        if self._fired < len(self._points) and executed >= self._points[self._fired]:
            self._fired += 1
            self.system.machine.crash(
                f"shard {self.spec.shard_id} storm crash "
                f"{self._fired}/{len(self._points)}",
                kind="forced",
            )

    def open_session(self, client_id: int) -> None:
        """Create the client's shard session (idempotent)."""
        self.service.open_session(client_id)

    def step(self, requests: List[Request]) -> List[Response]:
        """Submit ``requests`` and drain them; one response each."""
        responses: List[Response] = []
        for request in requests:
            rejection = self.service.submit(request)
            if rejection is not None:
                responses.append(rejection)
        responses.extend(self.service.drain())
        return responses

    def snapshot(self) -> Dict[str, Any]:
        """Scalar shard facts: digests, clock, counters (JSON-safe)."""
        stats = self.service.stats
        return {
            "shard": self.spec.shard_id,
            "clock_ns": self.system.clock.now_ns,
            "ack_digest": self.service.journal.ack_digest(),
            "state_digest": self.service.journal.state_digest(),
            "journal_entries": len(self.service.journal),
            "executed": stats.executed,
            "acked": stats.acked,
            "failed": stats.failed,
            "crashes_detected": stats.crashes_detected,
            "recoveries": stats.recoveries,
            "transparent_retries": stats.transparent_retries,
            "lost_acks": stats.lost_acks,
        }

    def audit(self) -> Dict[str, Any]:
        """Run the shard's durability audit; scalar report."""
        report = self.service.audit()
        return {
            "shard": self.spec.shard_id,
            "ok": report.ok,
            "lost": list(report.lost),
            "files_checked": report.files_checked,
            "dirs_checked": report.dirs_checked,
            "absent_checked": report.absent_checked,
        }

    def events(self) -> List[Dict[str, Any]]:
        """The shard's flight-recorder stream (empty when untraced)."""
        recorder = getattr(self.system.machine, "recorder", None)
        if recorder is None:
            return []
        return recorder.to_json_list()

    def handle(self, command: str, payload: Any) -> Any:
        """Dispatch one host command (shared by both host kinds)."""
        if command == "step":
            return self.step(payload)
        if command == "session":
            return self.open_session(payload)
        if command == "snapshot":
            return self.snapshot()
        if command == "audit":
            return self.audit()
        if command == "events":
            return self.events()
        raise ClusterError(f"unknown shard command {command!r}")


# ---------------------------------------------------------------------------
# Shard hosts: the same command stream, in-process or over a pipe.
# ---------------------------------------------------------------------------


class InlineShardHost:
    """Runs the shard in-process; ``cast`` executes eagerly."""

    def __init__(self, spec: ShardSpec) -> None:
        self.shard = Shard(spec)
        self._results: List[Any] = []

    def cast(self, command: str, payload: Any = None) -> None:
        """Execute the command now; the result queues for collect."""
        self._results.append(self.shard.handle(command, payload))

    def collect(self) -> Any:
        """Pop the oldest result (FIFO, matching cast order)."""
        return self._results.pop(0)

    def close(self) -> None:
        """Drop any uncollected results (the shard needs no teardown)."""
        self._results.clear()


def _shard_worker(conn, spec: ShardSpec) -> None:  # pragma: no cover - subprocess
    """Worker-process loop: build the shard, serve pipe commands."""
    shard = Shard(spec)
    while True:
        command, payload = conn.recv()
        if command == "close":
            conn.send((True, None))
            conn.close()
            return
        try:
            conn.send((True, shard.handle(command, payload)))
        except Exception as exc:  # surface shard bugs to the front-end
            conn.send((False, f"{type(exc).__name__}: {exc}"))


class ProcessShardHost:
    """Runs the shard in its own worker process behind a pipe.

    ``cast`` enqueues without waiting (the pipe is the per-shard
    serialization), so the front-end can keep several shards' steps in
    flight at once; ``collect`` returns replies in cast order.
    """

    def __init__(self, spec: ShardSpec, ctx=None) -> None:
        ctx = ctx or multiprocessing.get_context()
        self._conn, child = ctx.Pipe()
        self._process = ctx.Process(
            target=_shard_worker, args=(child, spec), daemon=True
        )
        self._process.start()
        child.close()
        self._pending = 0

    def cast(self, command: str, payload: Any = None) -> None:
        """Send the command down the pipe without waiting for a reply."""
        self._conn.send((command, payload))
        self._pending += 1

    def collect(self) -> Any:
        """Receive the next reply (cast order); raise on worker errors."""
        self._pending -= 1
        ok, result = self._conn.recv()
        if not ok:
            raise ClusterError(f"shard worker failed: {result}")
        return result

    def close(self) -> None:
        """Ask the worker to exit, then join (terminate as last resort)."""
        if self._process.is_alive():
            try:
                self._conn.send(("close", None))
                self._conn.recv()
            except (BrokenPipeError, EOFError, OSError):
                pass
        self._conn.close()
        self._process.join(timeout=10)
        if self._process.is_alive():  # pragma: no cover - defensive
            self._process.terminate()


# ---------------------------------------------------------------------------
# The cross-shard rename intent log.
# ---------------------------------------------------------------------------


@dataclass
class RenameIntent:
    """One cross-shard rename's durable intent record."""

    intent_id: int
    client_id: int
    req_id: int
    old: str
    new: str
    src_shard: int
    dst_shard: int
    #: "begin" -> "copied" -> "done" (or "aborted" on a clean failure).
    state: str = "begin"

    def to_json_dict(self) -> dict:
        """A JSON-serializable copy (the digest's canonical form)."""
        return dict(self.__dict__)


class ClusterIntentLog:
    """Ordered two-phase intent records for cross-shard renames.

    The log is the front-end's crash-consistency anchor for the one
    operation no single shard journal can cover end to end.  Every
    record moves ``begin -> copied -> done``; anything short of
    ``done``/``aborted`` after a disturbance is repaired by
    :meth:`ClusterService.audit_intents` — forward from ``copied``
    (the destination's bytes are acknowledged; finish the unlink),
    backward from ``begin`` (nothing acknowledged yet; drop any
    partial copy).
    """

    def __init__(self) -> None:
        self.records: List[RenameIntent] = []

    def __len__(self) -> int:
        return len(self.records)

    def begin(
        self,
        client_id: int,
        req_id: int,
        old: str,
        new: str,
        src_shard: int,
        dst_shard: int,
    ) -> RenameIntent:
        """Open a new intent in state "begin" and return it."""
        intent = RenameIntent(
            intent_id=len(self.records),
            client_id=client_id,
            req_id=req_id,
            old=old,
            new=new,
            src_shard=src_shard,
            dst_shard=dst_shard,
        )
        self.records.append(intent)
        return intent

    def advance(self, intent: RenameIntent, state: str) -> None:
        """Move one intent forward ("copied", "done", or "aborted")."""
        if state not in ("copied", "done", "aborted"):
            raise ClusterError(f"bad intent state {state!r}")
        intent.state = state

    def open_intents(self) -> List[RenameIntent]:
        """Records not yet settled (neither done nor aborted)."""
        return [r for r in self.records if r.state not in ("done", "aborted")]

    def digest(self) -> str:
        """sha256 over the canonical ordered log."""
        import json

        h = hashlib.sha256()
        for record in self.records:
            h.update(
                json.dumps(
                    record.to_json_dict(), sort_keys=True, separators=(",", ":")
                ).encode()
            )
            h.update(b"\n")
        return h.hexdigest()


# ---------------------------------------------------------------------------
# The cluster front-end.
# ---------------------------------------------------------------------------


@dataclass
class ClusterFd:
    """Front-end descriptor record: which shard holds the real fd."""

    STALE = -1

    cfd: int
    shard: int
    shard_fd: int
    path: str


@dataclass
class ClusterSession:
    """A client's front-end state: cwd plus the cluster fd table."""

    client_id: int
    cwd: str
    fds: Dict[int, ClusterFd] = field(default_factory=dict)
    next_cfd: int = 3


@dataclass
class ClusterConfig:
    """Tunables of one cluster."""

    shards: int = 2
    system: str = "rio_prot"
    #: Router key mode: "dir" colocates a directory's entries on one
    #: shard (client homes land whole); "hash" scatters by full path.
    router_mode: str = "dir"
    #: Virtual ring points per shard; more points, less arc-length
    #: imbalance (the scaling curve's enemy at high shard counts).
    vnodes: int = 128
    #: Cluster-level per-client admission queue depth.
    queue_depth: int = 32
    #: Requests per front-end scheduling batch.
    batch_size: int = 32
    quantum: int = 4
    #: Cluster-wide per-client open-descriptor quota.
    max_open_fds: int = 16
    #: Per-shard file system geometry.
    fs_blocks: int = 2048
    inode_blocks: int = 8
    #: Per-shard machine memory override (None: the default 16 MB).
    memory_bytes: Optional[int] = None
    home_prefix: str = "/srv"
    #: Pin the execution engine on every shard.
    fast_path: Optional[bool] = None
    #: Rolling-storm schedule: shard id -> executed-count crash points.
    crash_points: Dict[int, Tuple[int, ...]] = field(default_factory=dict)
    #: Shard-side service tunables.  The shard queue must swallow a
    #: whole front-end batch plus fan-out traffic; shard-side quotas
    #: are disabled because the front-end enforces the real ones.
    shard_queue_depth: int = 512
    shard_batch_size: int = 16
    trace_events: bool = False


@dataclass
class ClusterStats:
    """Front-end counters (shard counters live in shard snapshots)."""

    submitted: int = 0
    rejected: int = 0
    routed: int = 0
    fanouts: int = 0
    local_failures: int = 0
    cross_renames: int = 0
    cross_rename_failures: int = 0


class ClusterService:
    """N independent Machine+Kernel shards behind one deterministic router.

    ``jobs=1`` hosts every shard in-process; ``jobs>1`` gives every
    shard its own worker process.  The command streams are identical,
    so digests are too.
    """

    def __init__(self, config: Optional[ClusterConfig] = None, *, jobs: int = 1) -> None:
        self.config = config or ClusterConfig()
        self.router = Router(
            self.config.shards,
            mode=self.config.router_mode,
            vnodes=self.config.vnodes,
        )
        self.scheduler = RequestScheduler(self.config.queue_depth)
        self.sessions: Dict[int, ClusterSession] = {}
        self.intents = ClusterIntentLog()
        self.stats = ClusterStats()
        #: Test hook: called with (phase, intent) at "pre-copy" and
        #: "pre-unlink" during a cross-shard rename, so the suite can
        #: land a shard crash exactly inside the two-phase window.
        self.rename_hook: Optional[Callable[[str, RenameIntent], None]] = None
        self._shard_sessions: Set[Tuple[int, int]] = set()
        self._next_internal_req = 1
        shard_service = ServiceConfig(
            queue_depth=self.config.shard_queue_depth,
            batch_size=self.config.shard_batch_size,
            quantum=self.config.quantum,
            max_open_fds=1_000_000_000,
            auto_recover=True,
            home_prefix=self.config.home_prefix,
        )
        specs = [
            ShardSpec(
                shard_id=shard,
                system=self.config.system,
                fs_blocks=self.config.fs_blocks,
                inode_blocks=self.config.inode_blocks,
                memory_bytes=self.config.memory_bytes,
                fast_path=self.config.fast_path,
                service=shard_service,
                crash_points=tuple(self.config.crash_points.get(shard, ())),
                trace_events=self.config.trace_events,
            )
            for shard in range(self.config.shards)
        ]
        if jobs > 1:
            self.hosts: List[Any] = [ProcessShardHost(spec) for spec in specs]
        else:
            self.hosts = [InlineShardHost(spec) for spec in specs]
        self.jobs = jobs
        # The internal session exists on every shard from the start so
        # fan-out and rename machinery never races session creation.
        for host in self.hosts:
            host.cast("session", INTERNAL_CLIENT)
        for host in self.hosts:
            host.collect()

    # -- plumbing ------------------------------------------------------

    def close(self) -> None:
        """Shut down every shard host (idempotent)."""
        for host in self.hosts:
            host.close()

    def __enter__(self) -> "ClusterService":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def _internal_request(self, op: str, **kwargs) -> Request:
        request = Request(
            client_id=INTERNAL_CLIENT,
            req_id=self._next_internal_req,
            op=op,
            **kwargs,
        )
        self._next_internal_req += 1
        return request

    def _shard_call(self, shard: int, command: str, payload: Any = None) -> Any:
        host = self.hosts[shard]
        host.cast(command, payload)
        return host.collect()

    def _internal_step(self, shard: int, request: Request) -> Response:
        return self._shard_call(shard, "step", [request])[0]

    def _ensure_session(self, client_id: int, shard: int, casts: List) -> None:
        """Queue a shard session-open for the client if missing."""
        key = (client_id, shard)
        if key in self._shard_sessions:
            return
        self._shard_sessions.add(key)
        self.hosts[shard].cast("session", client_id)
        casts.append(("session", shard, None))

    def _ensure_sessions_sync(self, client_id: int, shards) -> None:
        """Open the client's session on the given shards, synchronously.

        The barriers (fan-out, chdir, cross-shard rename) touch shards
        the client may never have been routed to; the shard-side
        session open also creates the client's home directory, which
        those operations resolve under.
        """
        casts: List = []
        for shard in shards:
            self._ensure_session(client_id, shard, casts)
        for _, shard, _ in casts:
            self.hosts[shard].collect()

    # -- sessions ------------------------------------------------------

    def open_session(self, client_id: int) -> ClusterSession:
        """Create the client's front-end session (shard sessions are
        created lazily, on the first request routed to each shard)."""
        if client_id in self.sessions:
            return self.sessions[client_id]
        home = f"{self.config.home_prefix}/c{client_id:03d}"
        session = ClusterSession(client_id=client_id, cwd=home)
        self.sessions[client_id] = session
        return session

    # -- admission -----------------------------------------------------

    def submit(self, request: Request) -> Optional[Response]:
        """Admit a request into the cluster-wide scheduler.

        Mirrors :meth:`FileService.submit`: ``None`` on admission, an
        immediate retryable response on backpressure.  Time stamps are
        applied shard-side (each shard has its own virtual clock), so
        latencies are shard-local and deterministic.
        """
        self.stats.submitted += 1
        if request.client_id not in self.sessions:
            self.stats.submitted -= 1
            self.stats.rejected += 1
            return Response.failure(
                request, SessionError(f"no session for client {request.client_id}")
            )
        try:
            self.scheduler.enqueue(request)
        except Backpressure as exc:
            self.stats.submitted -= 1
            self.stats.rejected += 1
            return Response.failure(request, exc)
        return None

    def backlog(self) -> int:
        """Requests admitted but not yet dispatched to a shard."""
        return self.scheduler.backlog()

    # -- the pump ------------------------------------------------------

    def pump(self) -> List[Response]:
        """Dispatch one scheduled batch across the shards.

        Single-shard requests are grouped per shard and the groups run
        concurrently (each shard's pipe serializes its own stream);
        fan-out operations, cross-shard renames and ``chdir`` are
        barriers — the open groups are collected first, then the
        barrier runs synchronously.  Response order is deterministic:
        per segment, shards ascending, each shard's responses in its
        service's execution order.
        """
        batch = self.scheduler.next_batch(self.config.batch_size, self.config.quantum)
        if not batch:
            return []
        out: List[Response] = []
        segment: List[Tuple[int, Request, Optional[Callable]]] = []
        for request in batch:
            kind, payload = self._translate(request)
            if kind == "local":
                self.stats.local_failures += 1
                out.append(payload)
            elif kind == "shard":
                self.stats.routed += 1
                segment.append(payload)
            else:
                out.extend(self._dispatch(segment))
                segment = []
                if kind == "fanout":
                    self.stats.fanouts += 1
                    out.append(self._fanout(payload))
                elif kind == "chdir":
                    out.append(self._chdir(payload))
                else:  # "xrename"
                    out.append(self._cross_rename(*payload))
        out.extend(self._dispatch(segment))
        return out

    def drain(self, max_batches: int = 100_000) -> List[Response]:
        """Pump until the cluster scheduler is empty."""
        responses: List[Response] = []
        for _ in range(max_batches):
            got = self.pump()
            if not got and self.backlog() == 0:
                break
            responses.extend(got)
        return responses

    # -- request translation -------------------------------------------

    def _translate(self, request: Request):
        """Classify one client request into a dispatch plan item.

        Returns ``(kind, payload)`` where kind is ``"shard"`` (a
        translated single-shard request plus its response finisher),
        ``"fanout"``/``"chdir"``/``"xrename"`` (barriers), or
        ``"local"`` (answered front-side, usually an error).
        """
        session = self.sessions[request.client_id]
        op = request.op

        if op in ("read", "write", "fsync", "truncate", "close"):
            entry = session.fds.get(request.fd) if request.fd is not None else None
            if entry is None:
                return "local", Response.failure(
                    request,
                    SessionError(
                        f"client {request.client_id}: unknown fd {request.fd}"
                    ),
                )
            if entry.shard_fd == ClusterFd.STALE:
                return "local", Response.failure(
                    request,
                    SessionError(
                        f"client {request.client_id}: fd {request.fd} went "
                        "stale across a cross-shard rename"
                    ),
                )
            translated = replace(request, fd=entry.shard_fd)
            finisher = None
            if op == "close":
                cfd = request.fd

                def finisher(response: Response, _session=session, _cfd=cfd):
                    if response.ok:
                        _session.fds.pop(_cfd, None)
                    return response

            return "shard", (entry.shard, translated, finisher)

        if op == "open":
            path = resolve_path(session.cwd, request.path)
            if len(session.fds) >= self.config.max_open_fds:
                return "local", Response.failure(
                    request,
                    QuotaExceeded(
                        f"client {request.client_id}: open-fd quota "
                        f"({self.config.max_open_fds}) exhausted"
                    ),
                )
            shard = self.router.shard_for(path)
            translated = replace(request, path=path)

            def finisher(response: Response, _session=session, _shard=shard, _path=path):
                if response.ok:
                    entry = ClusterFd(
                        cfd=_session.next_cfd,
                        shard=_shard,
                        shard_fd=response.value,
                        path=_path,
                    )
                    _session.fds[entry.cfd] = entry
                    _session.next_cfd += 1
                    response.value = entry.cfd
                return response

            return "shard", (shard, translated, finisher)

        if op == "readdir" and self.router.mode == "dir":
            # Dir mode colocates a directory's files on the shard owning
            # its key, and directory shells replicate everywhere — so
            # that one shard holds the complete listing.  No fan-out.
            path = resolve_path(session.cwd, request.path)
            shard = self.router.shard_for_key(path)
            return "shard", (shard, replace(request, path=path), None)

        if op in ("mkdir", "rmdir", "readdir"):
            return "fanout", request

        if op in ("stat", "unlink"):
            path = resolve_path(session.cwd, request.path)
            shard = self.router.shard_for(path)
            return "shard", (shard, replace(request, path=path), None)

        if op == "rename":
            old = resolve_path(session.cwd, request.path)
            new = resolve_path(session.cwd, request.new_path)
            src = self.router.shard_for(old)
            dst = self.router.shard_for(new)
            if src == dst:
                translated = replace(request, path=old, new_path=new)

                def finisher(response: Response, _old=old, _new=new):
                    if response.ok:
                        self._repoint_fds(_old, _new, stale=False)
                    return response

                return "shard", (src, translated, finisher)
            return "xrename", (request, old, new, src, dst)

        if op == "chdir":
            return "chdir", request

        return "local", Response.failure(
            request, SessionError(f"unknown op {request.op!r}")
        )

    def _repoint_fds(self, old: str, new: str, *, stale: bool) -> None:
        """Update every cluster fd open on ``old`` after a rename.

        Intra-shard renames keep descriptors valid (the shard service
        re-points its own fd table), so the front-end just renames the
        path.  A cross-shard rename moves the bytes to another kernel,
        so descriptors on the source go stale — exactly like a network
        file system's handle after a cross-server migration.
        """
        for session in self.sessions.values():
            for entry in session.fds.values():
                if entry.path == old:
                    entry.path = new
                    if stale:
                        entry.shard_fd = ClusterFd.STALE

    # -- dispatch ------------------------------------------------------

    def _dispatch(self, segment: List[Tuple[int, Request, Optional[Callable]]]):
        """Run one barrier-free segment: group per shard, overlap, collect."""
        if not segment:
            return []
        by_shard: Dict[int, List[Tuple[Request, Optional[Callable]]]] = {}
        for shard, translated, finisher in segment:
            by_shard.setdefault(shard, []).append((translated, finisher))
        casts: List[Tuple[str, int, Any]] = []
        for shard in sorted(by_shard):
            entries = by_shard[shard]
            for translated, _ in entries:
                self._ensure_session(translated.client_id, shard, casts)
            self.hosts[shard].cast("step", [t for t, _ in entries])
            casts.append(("step", shard, entries))
        out: List[Response] = []
        for kind, shard, entries in casts:
            result = self.hosts[shard].collect()
            if kind == "session":
                continue
            finishers = {
                (t.client_id, t.req_id): f for t, f in entries if f is not None
            }
            for response in result:
                finisher = finishers.get((response.client_id, response.req_id))
                out.append(finisher(response) if finisher else response)
        return out

    def _run_internal(self, shard: int, request: Request) -> Response:
        """One internal sub-request, sessions guaranteed."""
        return self._internal_step(shard, request)

    # -- barriers ------------------------------------------------------

    def _merged_failure(self, request: Request, sub: Response) -> Response:
        """A client response carrying a sub-response's failure."""
        return Response(
            client_id=request.client_id,
            req_id=request.req_id,
            op=request.op,
            ok=False,
            error=sub.error,
            retryable=sub.retryable,
            submitted_ns=sub.submitted_ns,
            completed_ns=sub.completed_ns,
        )

    def _fanout_step(self, op: str, path: str) -> List[Response]:
        """One internal request per shard, overlapped; shard order."""
        for shard in range(self.config.shards):
            sub = self._internal_request(op, path=path)
            self.hosts[shard].cast("step", [sub])
        return [host.collect()[0] for host in self.hosts]

    def _fanout(self, request: Request) -> Response:
        """Run mkdir/rmdir (and hash-mode readdir) on every shard.

        Directory *shells* are replicated: a directory exists on every
        shard so any shard can hold files under it.  ``readdir`` is
        the union of every shard's view; ``mkdir`` succeeds only when
        every shard succeeded (the shards' directory sets only move in
        lock step, so a split verdict indicates real divergence and is
        surfaced as the lowest shard's error).  ``rmdir`` probes every
        shard's listing *first* and only deletes once all report empty
        — a one-shot fan-out would strip the shells from the empty
        shards while the shard holding files refuses, leaving the
        directory sets diverged.
        """
        session = self.sessions[request.client_id]
        path = resolve_path(session.cwd, request.path)
        self._ensure_sessions_sync(request.client_id, range(self.config.shards))
        if request.op == "rmdir":
            probes = self._fanout_step("readdir", path)
            failed = [r for r in probes if not r.ok]
            if failed:
                return self._merged_failure(request, failed[0])
            blocked = [r for r in probes if r.value]
            if blocked:
                return Response(
                    client_id=request.client_id,
                    req_id=request.req_id,
                    op=request.op,
                    ok=False,
                    error="ENOTEMPTY",
                    retryable=False,
                    submitted_ns=blocked[0].submitted_ns,
                    completed_ns=blocked[0].completed_ns,
                )
        subs = self._fanout_step(request.op, path)
        slowest = max(subs, key=lambda r: r.latency_ns)
        failed = [r for r in subs if not r.ok]
        if failed:
            return self._merged_failure(request, failed[0])
        value = None
        if request.op == "readdir":
            names: Set[str] = set()
            for sub in subs:
                names.update(sub.value or [])
            value = sorted(names)
        return Response(
            client_id=request.client_id,
            req_id=request.req_id,
            op=request.op,
            ok=True,
            value=value,
            submitted_ns=slowest.submitted_ns,
            completed_ns=slowest.completed_ns,
        )

    def _chdir(self, request: Request) -> Response:
        """Resolve and validate a chdir front-side (cwd is front-end
        state; shard sessions always receive absolute paths)."""
        session = self.sessions[request.client_id]
        path = resolve_path(session.cwd, request.path)
        shard = self.router.shard_for(path)
        self._ensure_sessions_sync(request.client_id, (shard,))
        probe = self._run_internal(shard, self._internal_request("stat", path=path))
        if probe.ok and probe.value.get("exists"):
            session.cwd = path
            return Response(
                client_id=request.client_id,
                req_id=request.req_id,
                op=request.op,
                ok=True,
                value=path,
                submitted_ns=probe.submitted_ns,
                completed_ns=probe.completed_ns,
            )
        return Response(
            client_id=request.client_id,
            req_id=request.req_id,
            op=request.op,
            ok=False,
            error="ENOENT",
            retryable=False,
            submitted_ns=probe.submitted_ns,
            completed_ns=probe.completed_ns,
        )

    # -- the hard case: cross-shard rename ------------------------------

    def _cross_rename(
        self, request: Request, old: str, new: str, src: int, dst: int
    ) -> Response:
        """Move a file between kernels under a two-phase intent record.

        Phase 1 reads the source through the source shard's normal
        service path; phase 2 writes the destination through the
        destination shard's path (create + truncate + write, all
        acknowledged into *that* shard's journal) and advances the
        intent to ``copied``; phase 3 unlinks the source (acknowledged
        into the *source* shard's journal) and marks the intent
        ``done``.  A shard crash inside any phase is recovered by that
        shard in line — the sub-request is requeued and re-executed —
        so the phases always complete; the intent log exists to make
        the window *auditable* and to drive roll-forward/back if the
        front-end is ever interrupted between phases
        (:meth:`audit_intents`).
        """
        self.stats.cross_renames += 1
        self._ensure_sessions_sync(request.client_id, (src, dst))
        intent = self.intents.begin(request.client_id, request.req_id, old, new, src, dst)
        if self.rename_hook is not None:
            self.rename_hook("pre-copy", intent)
        # Phase 1: read the whole source file.
        probe = self._run_internal(src, self._internal_request("stat", path=old))
        if not probe.ok or not probe.value.get("exists"):
            self.intents.advance(intent, "aborted")
            self.stats.cross_rename_failures += 1
            return Response(
                client_id=request.client_id,
                req_id=request.req_id,
                op=request.op,
                ok=False,
                error="ENOENT",
                retryable=False,
                submitted_ns=probe.submitted_ns,
                completed_ns=probe.completed_ns,
            )
        size = probe.value.get("size") or 0
        opened = self._run_internal(src, self._internal_request("open", path=old))
        if not opened.ok:
            self.intents.advance(intent, "aborted")
            self.stats.cross_rename_failures += 1
            return self._merged_failure(request, opened)
        src_fd = opened.value
        chunks: List[bytes] = []
        offset = 0
        while offset < size:
            got = self._run_internal(
                src,
                self._internal_request(
                    "read", fd=src_fd, offset=offset, length=min(_COPY_CHUNK, size - offset)
                ),
            )
            if not got.ok or not got.value:
                break
            chunks.append(got.value)
            offset += len(got.value)
        self._run_internal(src, self._internal_request("close", fd=src_fd))
        data = b"".join(chunks)
        # Phase 2: write the destination through its own journaled path.
        created = self._run_internal(
            dst, self._internal_request("open", path=new, create=True)
        )
        if not created.ok:
            self.intents.advance(intent, "aborted")
            self.stats.cross_rename_failures += 1
            return self._merged_failure(request, created)
        dst_fd = created.value
        self._run_internal(dst, self._internal_request("truncate", fd=dst_fd))
        if data:
            self._run_internal(
                dst, self._internal_request("write", fd=dst_fd, offset=0, data=data)
            )
        self._run_internal(dst, self._internal_request("close", fd=dst_fd))
        self.intents.advance(intent, "copied")
        if self.rename_hook is not None:
            self.rename_hook("pre-unlink", intent)
        # Phase 3: drop the source; ENOENT means someone beat us to it.
        gone = self._run_internal(src, self._internal_request("unlink", path=old))
        if gone.ok or gone.error == "ENOENT":
            self.intents.advance(intent, "done")
            self._repoint_fds(old, new, stale=True)
            return Response(
                client_id=request.client_id,
                req_id=request.req_id,
                op=request.op,
                ok=True,
                value=None,
                submitted_ns=gone.submitted_ns,
                completed_ns=gone.completed_ns,
            )
        self.stats.cross_rename_failures += 1
        return self._merged_failure(request, gone)

    # -- audits --------------------------------------------------------

    def audit_intents(self) -> Dict[str, Any]:
        """Audit the intent log against the shards; repair open records.

        A ``done`` intent must hold — destination present, source
        absent; a violation is reported (it would mean a shard lost an
        acknowledged operation, which its own audit also flags).  An
        intent caught mid-flight is repaired: rolled *forward* from
        ``copied`` (the destination's bytes are acknowledged — finish
        the unlink), rolled *back* from ``begin`` (drop any partial
        destination; the source was never touched).
        """
        violations: List[str] = []
        rolled_forward = rolled_back = 0
        for intent in self.intents.open_intents():
            if intent.state == "copied":
                gone = self._run_internal(
                    intent.src_shard, self._internal_request("unlink", path=intent.old)
                )
                if gone.ok or gone.error == "ENOENT":
                    self.intents.advance(intent, "done")
                    self._repoint_fds(intent.old, intent.new, stale=True)
                    rolled_forward += 1
                else:
                    violations.append(
                        f"intent {intent.intent_id}: roll-forward unlink "
                        f"{intent.old} failed ({gone.error})"
                    )
            else:  # "begin": nothing acknowledged at the destination yet
                self._run_internal(
                    intent.dst_shard, self._internal_request("unlink", path=intent.new)
                )
                self.intents.advance(intent, "aborted")
                rolled_back += 1
        for intent in self.intents.records:
            if intent.state != "done":
                continue
            dst = self._run_internal(
                intent.dst_shard, self._internal_request("stat", path=intent.new)
            )
            src = self._run_internal(
                intent.src_shard, self._internal_request("stat", path=intent.old)
            )
            if not (dst.ok and dst.value.get("exists")):
                violations.append(
                    f"intent {intent.intent_id}: destination {intent.new} "
                    "missing after completion"
                )
            if src.ok and src.value.get("exists"):
                violations.append(
                    f"intent {intent.intent_id}: source {intent.old} "
                    "resurrected after completion"
                )
        return {
            "intents": len(self.intents),
            "open": len(self.intents.open_intents()),
            "rolled_forward": rolled_forward,
            "rolled_back": rolled_back,
            "violations": violations,
            "ok": not violations,
        }

    def snapshots(self) -> List[Dict[str, Any]]:
        """One scalar snapshot per shard, in shard order."""
        for host in self.hosts:
            host.cast("snapshot")
        return [host.collect() for host in self.hosts]

    def audits(self) -> List[Dict[str, Any]]:
        """One durability-audit report per shard, in shard order."""
        for host in self.hosts:
            host.cast("audit")
        return [host.collect() for host in self.hosts]

    def cluster_digest(self) -> str:
        """sha256 over every shard's ack+state digest plus the intent log.

        The cluster determinism fixture: identical at any ``jobs`` and
        on either execution engine for one ``(config, seed)``.
        """
        h = hashlib.sha256()
        for snap in self.snapshots():
            h.update(
                f"{snap['shard']} {snap['ack_digest']} {snap['state_digest']}\n".encode()
            )
        h.update(self.intents.digest().encode())
        return h.hexdigest()


# ---------------------------------------------------------------------------
# The cluster load driver.
# ---------------------------------------------------------------------------


@dataclass
class ClusterLoadReport:
    """The outcome of one :func:`run_cluster_load` drive."""

    shards: int = 0
    clients: int = 0
    acked: int = 0
    failed: int = 0
    retried: int = 0
    rejected: int = 0
    rounds: int = 0
    #: Max per-shard elapsed virtual time (shards run concurrently, so
    #: the cluster is done when its slowest shard is).
    wall_virtual_ns: int = 0
    latencies_ns: List[int] = field(default_factory=list)
    shard_snapshots: List[Dict[str, Any]] = field(default_factory=list)
    cluster_digest: str = ""
    intent_digest: str = ""

    @property
    def throughput_ops_per_vsec(self) -> float:
        """Acknowledged operations per virtual second (cluster-wide)."""
        if self.wall_virtual_ns <= 0:
            return 0.0
        return self.acked / (self.wall_virtual_ns / 1e9)

    def latency_percentile(self, fraction: float) -> int:
        """The request-latency percentile at ``fraction`` (0..1), in ns."""
        from repro.server.loadgen import percentile

        return percentile(self.latencies_ns, fraction)


def run_cluster_load(
    cluster: ClusterService,
    clients,
    *,
    max_rounds: int = 1_000_000,
) -> ClusterLoadReport:
    """Drive load clients against a cluster until all are done.

    The same round structure as :func:`repro.server.run_load` — top up
    every pipeline in client-id order, pump one batch, deliver — so a
    ``(seed, clients, ops)`` triple is exactly as deterministic here as
    against a single service.
    """
    report = ClusterLoadReport(shards=cluster.config.shards, clients=len(clients))
    by_id = {client.client_id: client for client in clients}
    for client in clients:
        cluster.open_session(client.client_id)
    starts = {snap["shard"]: snap["clock_ns"] for snap in cluster.snapshots()}
    rounds = 0
    while rounds < max_rounds:
        rounds += 1
        idle = True
        for client in clients:
            while True:
                request = client.next_request()
                if request is None:
                    break
                idle = False
                rejection = cluster.submit(request)
                if rejection is not None:
                    client.on_response(rejection)
                    break
        for response in cluster.pump():
            idle = False
            owner = by_id.get(response.client_id)
            if owner is not None:
                owner.on_response(response)
        if idle and cluster.backlog() == 0:
            if all(client.done for client in clients):
                break
    report.rounds = rounds
    report.shard_snapshots = cluster.snapshots()
    report.wall_virtual_ns = max(
        snap["clock_ns"] - starts[snap["shard"]] for snap in report.shard_snapshots
    )
    for client in clients:
        stats = client.stats
        report.acked += stats.acked
        report.failed += stats.failed
        report.retried += stats.retried
        report.rejected += stats.rejected
        report.latencies_ns.extend(stats.latencies_ns)
    report.cluster_digest = cluster.cluster_digest()
    report.intent_digest = cluster.intents.digest()
    return report
