"""Requests, responses, and the service's typed error taxonomy.

The admission layer distinguishes *retryable* conditions — a full queue,
an exhausted quota, a machine that is down mid-recovery — from genuine
failures (bad descriptor, missing file).  Clients are expected to
resubmit on retryable errors and to treat everything else as the final
outcome of the request.  Error names follow errno tradition where one
fits and invent one (``EAGAIN``-style) where it does not.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.errors import ReproError

#: Operations a request may carry.  Mutating ops (journaled on ack) are
#: marked in :data:`MUTATING_OPS`.
OPS = (
    "open",      # path, create -> client fd
    "close",     # fd
    "read",      # fd, offset, length -> bytes
    "write",     # fd, offset, data -> bytes written
    "fsync",     # fd
    "truncate",  # fd
    "mkdir",     # path
    "rmdir",     # path
    "unlink",    # path
    "rename",    # path, new_path
    "readdir",   # path -> [names]
    "stat",      # path -> exists/size facts
    "chdir",     # path (session working directory)
)

#: Ops that change durable state and therefore enter the ack journal.
MUTATING_OPS = frozenset(
    {"open", "write", "truncate", "mkdir", "rmdir", "unlink", "rename"}
)


class ServerError(ReproError):
    """Base class of service-level failures surfaced to clients.

    ``retryable`` marks transient conditions the client should simply
    resubmit after; ``code`` is the symbolic error tag carried on the
    wire in :attr:`Response.error`.
    """

    retryable = False
    code = "EIO"


class Backpressure(ServerError):
    """The client's admission queue is full; resubmit later."""

    retryable = True
    code = "EAGAIN"


class QuotaExceeded(ServerError):
    """A per-client quota (open fds, queued bytes) is exhausted."""

    retryable = True
    code = "EQUOTA"


class ServiceDown(ServerError):
    """The kernel crashed while the request was in flight.

    The request was *not* acknowledged; nothing about it is durable.
    Resubmit once the service has recovered (the service recovers
    automatically before the next batch is scheduled).
    """

    retryable = True
    code = "EDOWN"


class ChaosInjected(ServerError):
    """A chaos ``fail_nth_syscall`` capability denied the request.

    The request did not execute and nothing about it is durable; the
    client resubmits exactly as for :class:`Backpressure`.  (The
    capability's fail-Nth counter has already advanced, so the retry is
    not re-denied unless the knobs say so.)
    """

    retryable = True
    code = "ECHAOS"


class SessionError(ServerError):
    """The session or client fd is unknown or no longer valid."""

    retryable = False
    code = "EBADSESSION"


@dataclass
class Request:
    """One client request.

    ``client_id``/``req_id`` identify the request (``req_id`` is a
    per-client monotone counter — acks are journaled under it); ``op``
    is one of :data:`OPS` and the remaining fields are that op's
    arguments.  Paths are resolved against the session's working
    directory when relative.
    """

    client_id: int
    req_id: int
    op: str
    path: Optional[str] = None
    new_path: Optional[str] = None
    fd: Optional[int] = None
    offset: Optional[int] = None
    length: Optional[int] = None
    data: Optional[bytes] = None
    create: bool = False
    #: Set by the service at admission (virtual ns); used for latency.
    submitted_ns: int = field(default=0, compare=False)


@dataclass
class Response:
    """The outcome of one request.

    ``ok`` acknowledges the operation: for mutating ops an ``ok=True``
    response is a durability promise audited across crashes.  On
    failure ``error`` holds the symbolic code and ``retryable`` says
    whether resubmitting can succeed.
    """

    client_id: int
    req_id: int
    op: str
    ok: bool
    value: Any = None
    error: Optional[str] = None
    retryable: bool = False
    submitted_ns: int = 0
    completed_ns: int = 0

    @property
    def latency_ns(self) -> int:
        """Virtual time from admission to completion."""
        return self.completed_ns - self.submitted_ns

    @classmethod
    def failure(cls, request: Request, exc: ServerError, now_ns: int = 0) -> "Response":
        """Build an error response for ``request`` from a typed error."""
        return cls(
            client_id=request.client_id,
            req_id=request.req_id,
            op=request.op,
            ok=False,
            error=exc.code,
            retryable=exc.retryable,
            submitted_ns=request.submitted_ns,
            completed_ns=now_ns,
        )
