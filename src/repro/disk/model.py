"""Disk timing model.

Parameters default to a mid-1990s SCSI disk of the class attached to the
paper's DEC 3000/600 workstations (a few MB/s of media bandwidth, ~10 ms
random access).  The exact values are calibration constants — Table 2's
*shape* (who wins and by what factor) comes from how many disk operations
each file system issues and whether they block, not from these numbers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.clock import NS_PER_MS, NS_PER_SEC


@dataclass
class DiskParameters:
    """Timing parameters for :class:`~repro.disk.device.SimulatedDisk`."""

    sector_size: int = 512
    #: Average seek time for a random access.
    seek_ms: float = 8.0
    #: Average rotational latency (half a revolution at 5400 rpm).
    rotational_ms: float = 5.5
    #: Sustained media bandwidth.
    bandwidth_bytes_per_sec: int = 5 * 1024 * 1024
    #: Fixed controller/driver overhead per request.
    overhead_ms: float = 0.3

    def positioning_ns(self, *, sequential: bool) -> int:
        """Head positioning cost: waived when the access continues the
        previous one (the property journaling and LFS exploit)."""
        if sequential:
            return 0
        return int((self.seek_ms + self.rotational_ms) * NS_PER_MS)

    def transfer_ns(self, nbytes: int) -> int:
        return int(nbytes * NS_PER_SEC / self.bandwidth_bytes_per_sec)

    def service_ns(self, nbytes: int, *, sequential: bool) -> int:
        """Total service time for one request of ``nbytes``."""
        return (
            int(self.overhead_ms * NS_PER_MS)
            + self.positioning_ns(sequential=sequential)
            + self.transfer_ns(nbytes)
        )
