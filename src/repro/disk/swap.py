"""The swap partition: destination of the warm reboot's memory dump.

Section 2.2: "Before the VM and file system are initialized, we dump all of
physical memory to the swap partition."  The dump is performed by a healthy,
booting kernel — unlike a crash dump taken by a dying one — so it always
succeeds; this class provides the bounded disk window it lands in.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.disk.device import SimulatedDisk


class SwapPartition:
    """A contiguous window of a disk reserved for swap / memory dumps."""

    def __init__(self, disk: SimulatedDisk, start_sector: int, num_sectors: int) -> None:
        if start_sector < 0 or start_sector + num_sectors > disk.num_sectors:
            raise ConfigurationError("swap partition outside disk")
        self.disk = disk
        self.start_sector = start_sector
        self.num_sectors = num_sectors
        self.size_bytes = num_sectors * disk.sector_size

    def dump_memory_image(self, image: bytes, *, sync: bool = True) -> None:
        """Write a physical-memory image to swap (timed, like the real dump)."""
        if len(image) > self.size_bytes:
            raise ConfigurationError(
                f"memory image ({len(image)} B) exceeds swap ({self.size_bytes} B)"
            )
        padded = image + b"\x00" * (-len(image) % self.disk.sector_size)
        self.disk.write(self.start_sector, padded, sync=sync)

    def read_memory_image(self, nbytes: int) -> bytes:
        """Read back the dumped image (used by the user-level restore)."""
        if nbytes > self.size_bytes:
            raise ConfigurationError("requested more bytes than swap holds")
        nsectors = -(-nbytes // self.disk.sector_size)
        return self.disk.read(self.start_sector, nsectors)[:nbytes]
