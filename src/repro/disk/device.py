"""The simulated disk: sector store, request queue, crash semantics.

Write handling is the part that matters for the paper's experiments:

* A write is *applied to the sector store immediately* (so later reads see
  it, as they would from a real controller's queue) but also recorded as a
  pending request carrying the sectors' prior contents.
* On a clean completion (virtual time passes the request's completion
  time) the request retires and the prior contents are dropped.
* On a **crash**, queued requests are resolved against the crash time:
  completed ones stand; never-started ones are rolled back entirely (the
  data "had not yet made it to disk"); the one in flight is partially
  applied with its boundary sector *torn* — scrambled so that neither old
  nor new contents survive, exactly the disk vulnerability the paper
  concedes ("a disk sector being written during a system crash can be
  corrupted").

Synchronous writes advance the virtual clock to the completion time before
returning, which is why write-through file systems are slow in Table 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.errors import ConfigurationError, MachineCheck
from repro.disk.model import DiskParameters
from repro.hw.clock import Clock


@dataclass
class DiskRequest:
    """One queued disk operation."""

    kind: str  # "read" | "write"
    sector: int
    nsectors: int
    submit_ns: int
    start_ns: int
    completion_ns: int
    old_data: Optional[bytes] = None  # original contents (writes only)
    on_complete: Optional[Callable[["DiskRequest"], None]] = None
    retired: bool = False

    @property
    def end_sector(self) -> int:
        return self.sector + self.nsectors


@dataclass
class DiskStats:
    reads: int = 0
    writes: int = 0
    sync_writes: int = 0
    async_writes: int = 0
    sectors_read: int = 0
    sectors_written: int = 0
    busy_ns: int = 0
    sync_wait_ns: int = 0
    #: Writes discarded or torn by a crash.
    lost_writes: int = 0
    torn_sectors: int = 0


class SimulatedDisk:
    """A sector-addressed disk with virtual-time service and crash tears."""

    def __init__(
        self,
        name: str,
        num_sectors: int,
        params: DiskParameters | None = None,
    ) -> None:
        self.name = name
        self.params = params or DiskParameters()
        self.num_sectors = num_sectors
        self.sector_size = self.params.sector_size
        self._sectors: dict[int, bytes] = {}
        self._clock: Clock | None = None
        self._pending: list[DiskRequest] = []
        self._busy_until_ns = 0
        self._last_sector_end: int | None = None
        self.stats = DiskStats()
        #: Chaos registry (``slow_io`` capability); installed by
        #: :meth:`System.install_chaos`, surviving machine resets because
        #: the disk object itself persists across warm reboots.
        self.chaos = None

    def _service_ns(self, nbytes: int, *, sequential: bool) -> int:
        """Model service time, stretched by ``slow_io`` chaos if armed."""
        service = self.params.service_ns(nbytes, sequential=sequential)
        if self.chaos is not None:
            service = self.chaos.io_service_ns(service)
        return service

    # -- attachment --------------------------------------------------------

    def attach(self, clock: Clock) -> None:
        self._clock = clock
        clock.on_advance(self._on_clock_advance)

    def _require_clock(self) -> Clock:
        if self._clock is None:
            raise ConfigurationError(f"disk {self.name!r} not attached to a clock")
        return self._clock

    # -- raw sector store (no timing; used by detectors and test setup) -----

    def _check_range(self, sector: int, count: int) -> None:
        if count < 0:
            raise ValueError("negative sector count")
        if sector < 0 or sector + count > self.num_sectors:
            raise MachineCheck(
                f"disk {self.name}: sectors [{sector}, {sector + count}) out of range"
            )

    def peek(self, sector: int, count: int) -> bytes:
        """Read sectors without consuming virtual time."""
        self._check_range(sector, count)
        out = bytearray()
        for s in range(sector, sector + count):
            out += self._sectors.get(s, b"\x00" * self.sector_size)
        return bytes(out)

    def poke(self, sector: int, data: bytes) -> None:
        """Write sectors without queueing or consuming time (mkfs, tests)."""
        if len(data) % self.sector_size:
            raise ValueError("poke data must be whole sectors")
        count = len(data) // self.sector_size
        self._check_range(sector, count)
        for i in range(count):
            self._sectors[sector + i] = bytes(
                data[i * self.sector_size : (i + 1) * self.sector_size]
            )

    # -- timed operations ----------------------------------------------------

    def _note_position(self, sector: int, nsectors: int) -> None:
        self._last_sector_end = sector + nsectors

    def _sequential_with(self, sector: int) -> bool:
        return self._last_sector_end == sector

    def read(self, sector: int, count: int) -> bytes:
        """Synchronous read: blocks (advances the clock) until done."""
        self._check_range(sector, count)
        clock = self._require_clock()
        start = max(clock.now_ns, self._busy_until_ns)
        service = self._service_ns(
            count * self.sector_size, sequential=self._sequential_with(sector)
        )
        completion = start + service
        self.stats.reads += 1
        self.stats.sectors_read += count
        self.stats.busy_ns += service
        self._busy_until_ns = completion
        self._note_position(sector, count)
        clock.advance_to(completion)
        return self.peek(sector, count)

    def write(
        self,
        sector: int,
        data: bytes,
        *,
        sync: bool,
        on_complete: Optional[Callable[[DiskRequest], None]] = None,
    ) -> DiskRequest:
        """Write sectors; ``sync=True`` blocks until the platter has them."""
        if len(data) % self.sector_size:
            raise ValueError("write data must be whole sectors")
        count = len(data) // self.sector_size
        self._check_range(sector, count)
        clock = self._require_clock()
        start = max(clock.now_ns, self._busy_until_ns)
        service = self._service_ns(
            count * self.sector_size, sequential=self._sequential_with(sector)
        )
        completion = start + service
        request = DiskRequest(
            kind="write",
            sector=sector,
            nsectors=count,
            submit_ns=clock.now_ns,
            start_ns=start,
            completion_ns=completion,
            old_data=self.peek(sector, count),
            on_complete=on_complete,
        )
        self.poke(sector, data)  # visible to subsequent reads immediately
        self._pending.append(request)
        self._busy_until_ns = completion
        self._note_position(sector, count)
        self.stats.writes += 1
        self.stats.sectors_written += count
        self.stats.busy_ns += service
        if sync:
            self.stats.sync_writes += 1
            self.stats.sync_wait_ns += completion - clock.now_ns
            clock.advance_to(completion)  # retires via the clock listener
        else:
            self.stats.async_writes += 1
        return request

    def drain(self) -> None:
        """Block until every queued write is on the platter."""
        clock = self._require_clock()
        if self._pending:
            clock.advance_to(max(r.completion_ns for r in self._pending))
        self._retire(clock.now_ns)

    @property
    def pending_writes(self) -> int:
        return len(self._pending)

    @property
    def busy_until_ns(self) -> int:
        return self._busy_until_ns

    # -- retirement and crash handling ----------------------------------------

    def _on_clock_advance(self, now_ns: int) -> None:
        if self._pending:
            self._retire(now_ns)

    def _retire(self, now_ns: int) -> None:
        still_pending: list[DiskRequest] = []
        for request in self._pending:
            if request.completion_ns <= now_ns:
                request.retired = True
                request.old_data = None
                if request.on_complete is not None:
                    request.on_complete(request)
            else:
                still_pending.append(request)
        self._pending = still_pending

    def crash(self) -> None:
        """Resolve the queue as of the crash instant (see module docstring)."""
        clock = self._require_clock()
        now = clock.now_ns
        self._retire(now)
        # Requests are ordered by start time; roll back from the tail so
        # overlapping writes restore the oldest surviving contents.
        in_flight: DiskRequest | None = None
        for request in reversed(self._pending):
            if request.start_ns >= now:
                # Never reached the disk: vanishes without trace.
                self.poke(request.sector, request.old_data)
                self.stats.lost_writes += 1
            else:
                # At most one request can be mid-service at the crash.
                in_flight = request
        if in_flight is not None:
            self._tear(in_flight, now)
            self.stats.lost_writes += 1
        self._pending = []
        self._busy_until_ns = now

    def _tear(self, request: DiskRequest, now_ns: int) -> None:
        """Partially apply an in-flight write, scrambling the torn sector."""
        duration = max(1, request.completion_ns - request.start_ns)
        fraction = (now_ns - request.start_ns) / duration
        done = min(request.nsectors, max(0, int(request.nsectors * fraction)))
        # Sectors beyond the head position retain their old contents.
        if done + 1 < request.nsectors:
            tail = request.old_data[(done + 1) * self.sector_size :]
            self.poke(request.sector + done + 1, tail)
        if done < request.nsectors:
            # The sector under the head is torn: a deterministic scramble
            # that matches neither the old nor the new contents.
            new = self.peek(request.sector + done, 1)
            old = request.old_data[done * self.sector_size : (done + 1) * self.sector_size]
            half = self.sector_size // 2
            torn = bytes(b ^ 0xA5 for b in new[:half]) + old[half:]
            self.poke(request.sector + done, torn)
            self.stats.torn_sectors += 1

    def reset(self) -> None:
        """Power-cycle the controller: the queue is gone, the platter stays."""
        self._pending = []
        self._last_sector_end = None
        if self._clock is not None:
            self._busy_until_ns = self._clock.now_ns
