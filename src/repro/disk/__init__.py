"""Simulated disks: sector stores with a timing model and crash semantics.

Three properties of real disks matter to the paper and are modelled here:

* **Speed.**  Disk throughput is "far slower than memory throughput"; the
  timing model (seek + rotation + transfer, with a sequential-access fast
  path that benefits journaling) is what makes write-through file systems
  slow in Table 2.
* **Asynchrony.**  Async writes sit in the request queue and "make no firm
  guarantees about when the data is safe"; a crash discards queued requests
  that never reached the platter — this is where delayed-write systems
  mechanically lose data.
* **Torn writes.**  "a disk sector being written during a system crash can
  be corrupted": the sector in flight at crash time is scrambled.
"""

from repro.disk.model import DiskParameters
from repro.disk.device import DiskRequest, DiskStats, SimulatedDisk
from repro.disk.swap import SwapPartition

__all__ = [
    "DiskParameters",
    "DiskRequest",
    "DiskStats",
    "SimulatedDisk",
    "SwapPartition",
]
