"""A Phoenix-style checkpointing in-memory file system cache [Gait90].

Section 6: "Phoenix keeps two versions of an in-memory file system.  One
of these versions is kept write-protected; the other version is
unprotected and evolves from the write-protected one via copy-on-write.
At periodic checkpoints, the system write-protects the unprotected
version and deletes obsolete pages in the original version.  Rio differs
from Phoenix in two major ways: 1) Phoenix does not ensure the
reliability of every write; instead, writes are only made permanent at
periodic checkpoints; 2) Phoenix keeps multiple copies of modified pages,
while Rio keeps only one copy."

This implementation rides on the Rio machinery so the two designs differ
*only* in the contrast the paper draws:

* the registry entry for each buffer points at the page's state as of the
  last **checkpoint** (a protected snapshot frame), not its live state;
* pages that never made it into a checkpoint are marked clean in the
  registry, so the warm reboot does not restore them — writes since the
  last checkpoint die with the crash;
* every modified page occupies two frames (live + snapshot) between
  checkpoints — the memory cost Rio avoids.
"""

from __future__ import annotations

from repro.core.config import ProtectionMode, RioConfig
from repro.core.guard import RioGuard
from repro.core.protection import ProtectionManager
from repro.core.registry import FLAG_DIRTY, Registry
from repro.fs.cache import CachePage


class PhoenixGuard(RioGuard):
    """Like RioGuard, but registry state reflects the last checkpoint."""

    def __init__(self, kernel, registry, protection, config, cache_ref) -> None:
        super().__init__(kernel, registry, protection, config)
        self._phoenix = cache_ref

    def on_attach(self, page: CachePage) -> None:
        super().on_attach(page)
        # Until a checkpoint captures this page, a crash must not restore
        # it: only checkpointed state is permanent.
        self.registry.update_flags(page.registry_slot, clear_flags=FLAG_DIRTY)

    def on_dirty_changed(self, page: CachePage) -> None:
        # The registry's dirty flag tracks *checkpoint* state, not live
        # state; checkpoints manage it.
        pass

    def on_detach(self, page: CachePage) -> None:
        self._phoenix.release_snapshot(page.key)
        super().on_detach(page)


class PhoenixFileCache:
    """The Phoenix counterpart to :class:`~repro.core.rio.RioFileCache`.

    Usage::

        kernel = Kernel(machine)
        phoenix = PhoenixFileCache(kernel)
        kernel.init_caches(guard=phoenix.guard)
        ...
        phoenix.checkpoint()     # called periodically (or from a daemon)
    """

    def __init__(self, kernel, config: RioConfig | None = None) -> None:
        self.kernel = kernel
        # Phoenix protects the *snapshot* version; the live version is
        # unprotected by design.
        self.config = config or RioConfig(
            protection=ProtectionMode.NONE,
            maintain_checksums=False,
            shadow_metadata=False,
        )
        frames = kernel.registry_frames
        base_paddr = frames[0] * kernel.page_size
        self.protection = ProtectionManager(kernel, self.config)
        self.registry = Registry(
            kernel.bus,
            base_paddr,
            len(frames) * kernel.page_size,
            window=self.protection.registry_window,
        )
        self.guard = PhoenixGuard(kernel, self.registry, self.protection, self.config, self)
        self.registry.format()
        self.protection.install(frames)
        kernel.reliability_writes_off = True
        kernel.config.panic_syncs_dirty = False
        #: page key -> snapshot pfn (the write-protected version).
        self._snapshots: dict[tuple, int] = {}
        self.checkpoints_taken = 0

    # -- checkpointing --------------------------------------------------

    def release_snapshot(self, key: tuple) -> None:
        pfn = self._snapshots.pop(key, None)
        if pfn is not None:
            self.kernel.frames.free(pfn)

    def checkpoint(self) -> int:
        """Capture the current state of every cached page into protected
        snapshot frames; returns the number of pages captured."""
        kernel = self.kernel
        page_size = kernel.page_size
        captured = 0
        for cache in (kernel.buffer_cache, kernel.ubc):
            if cache is None:
                continue
            for page in cache.pages.values():
                old = self._snapshots.get(page.key)
                snap = kernel.frames.alloc()
                kernel.memory.write(
                    snap * page_size,
                    kernel.memory.read(page.pfn * page_size, page_size),
                )
                self._snapshots[page.key] = snap
                if old is not None:
                    kernel.frames.free(old)  # "deletes obsolete pages"
                set_flags = FLAG_DIRTY if page.dirty else 0
                self.registry.update_fields(
                    page.registry_slot, phys_addr=snap * page_size
                )
                if set_flags:
                    self.registry.update_flags(page.registry_slot, set_flags=set_flags)
                else:
                    self.registry.update_flags(
                        page.registry_slot, clear_flags=FLAG_DIRTY
                    )
                captured += 1
        self.checkpoints_taken += 1
        return captured

    # -- accounting --------------------------------------------------------

    @property
    def snapshot_frames(self) -> int:
        """Extra frames Phoenix holds that Rio would not ("multiple copies
        of modified pages")."""
        return len(self._snapshots)
