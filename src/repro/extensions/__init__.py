"""Extensions beyond the paper's core: systems it compares against or
points toward.

* :mod:`~repro.extensions.phoenix` — a Phoenix-style checkpointing file
  cache [Gait90], the only prior system that kept permanent files
  reliable in main memory.  Built here so the paper's two contrasts can
  be *measured*: Phoenix makes writes permanent only at periodic
  checkpoints, and keeps two copies of modified pages.
"""

from repro.extensions.phoenix import PhoenixFileCache

__all__ = ["PhoenixFileCache"]
