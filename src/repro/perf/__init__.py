"""Performance experiments: the Table 2 harness.

Eight system configurations (MFS, UFS-delayed, AdvFS, UFS, UFS
write-through-on-close, UFS write-through-on-write, Rio without
protection, Rio with protection) × three workloads (cp+rm, Sdet, Andrew),
timed on the virtual clock.
"""

from repro.perf.systems import TABLE2_SYSTEMS, Table2System, spec_for_row
from repro.perf.runner import WorkloadResult, run_workload, run_table2
from repro.perf.report import Table2, format_table2, ratio_summary
from repro.perf.sweeps import (
    format_sweep,
    sweep_disk_bandwidth,
    sweep_update_interval,
    sweep_working_set,
)

__all__ = [
    "TABLE2_SYSTEMS",
    "Table2System",
    "spec_for_row",
    "WorkloadResult",
    "run_workload",
    "run_table2",
    "Table2",
    "format_table2",
    "ratio_summary",
    "format_sweep",
    "sweep_disk_bandwidth",
    "sweep_update_interval",
    "sweep_working_set",
]
