"""Run the Table 2 workloads on configured systems and time them.

Times are virtual seconds from the simulated clock: CPU cost from the
instruction/cost model plus disk time from the disk model.  Workload
runs start from a freshly built system (cold caches except where the
workload's own setup warms them, as on the paper's testbed).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.perf.systems import TABLE2_KEYS, spec_for_row
from repro.system import SystemSpec, build_system
from repro.workloads.andrew import AndrewBenchmark, AndrewParams
from repro.workloads.cp_rm import CpRmParams, CpRmWorkload
from repro.workloads.sdet import SdetParams, SdetWorkload

WORKLOAD_NAMES = ("cp_rm", "sdet", "andrew")


@dataclass
class WorkloadResult:
    system: str
    workload: str
    seconds: float
    #: cp+rm reports its phase split, like Table 2's "81 (76+5)".
    cp_seconds: Optional[float] = None
    rm_seconds: Optional[float] = None
    disk_stats: dict = field(default_factory=dict)

    def cell(self) -> str:
        def fmt(value: float) -> str:
            return f"{value:.1f}" if value < 10 else f"{value:.0f}"

        if self.cp_seconds is not None:
            return f"{fmt(self.seconds)} ({fmt(self.cp_seconds)}+{fmt(self.rm_seconds)})"
        return fmt(self.seconds)


def _collect_disk_stats(system) -> dict:
    if system.disk is None:
        return {}
    stats = system.disk.stats
    return {
        "reads": stats.reads,
        "writes": stats.writes,
        "sync_writes": stats.sync_writes,
        "sectors_written": stats.sectors_written,
    }


def run_workload(
    system_key: str,
    workload: str,
    base_spec: SystemSpec | None = None,
    cp_rm_params: CpRmParams | None = None,
    sdet_params: SdetParams | None = None,
    andrew_params: AndrewParams | None = None,
    update_interval_s: float = 1.0,
) -> WorkloadResult:
    """Build the system and run one workload on it.

    ``update_interval_s`` scales the 30-second update daemon to the
    scaled-down workload: the paper's runs span several daemon intervals
    (cp+rm of 40 MB took 81+ s against a 30 s daemon), so ours must too,
    or delayed-write systems would never issue a single write and the
    Rio-vs-delayed comparison would degenerate.  The ratio of run length
    to flush interval, not the absolute 30 s, is what Table 2 exercises.
    """
    if base_spec is None:
        # Perf runs need room for source + destination trees on disk.
        base_spec = SystemSpec(fs_blocks=2048)
    spec = spec_for_row(system_key, base_spec)
    if update_interval_s is not None:
        spec = replace(
            spec,
            kernel=replace(
                spec.kernel, update_interval_ns=int(update_interval_s * 1e9)
            ),
        )
    system = build_system(spec)
    vfs, kernel = system.vfs, system.kernel

    if system_key == "mfs":
        # Benchmark targets live on the memory file system.
        cp_rm_params = replace(
            cp_rm_params or CpRmParams(), dst_root="/mfs/dst"
        )
        sdet_params = replace(sdet_params or SdetParams(), root="/mfs/sdet")
        andrew_params = replace(andrew_params or AndrewParams(), root="/mfs/andrew")

    if workload == "cp_rm":
        bench = CpRmWorkload(vfs, kernel, cp_rm_params)
        bench.setup()
        system.drop_caches()  # the timed phase starts with a cold cache
        result = bench.run()
        return WorkloadResult(
            system=system_key,
            workload=workload,
            seconds=result.total_seconds,
            cp_seconds=result.cp_seconds,
            rm_seconds=result.rm_seconds,
            disk_stats=_collect_disk_stats(system),
        )
    if workload == "sdet":
        bench = SdetWorkload(vfs, kernel, sdet_params)
        seconds = bench.run()
        return WorkloadResult(
            system=system_key,
            workload=workload,
            seconds=seconds,
            disk_stats=_collect_disk_stats(system),
        )
    if workload == "andrew":
        bench = AndrewBenchmark(vfs, kernel, andrew_params)
        seconds = bench.run()
        return WorkloadResult(
            system=system_key,
            workload=workload,
            seconds=seconds,
            disk_stats=_collect_disk_stats(system),
        )
    raise KeyError(f"unknown workload {workload!r}; know {WORKLOAD_NAMES}")


def run_table2(
    systems: tuple = TABLE2_KEYS,
    workloads: tuple = WORKLOAD_NAMES,
    base_spec: SystemSpec | None = None,
    **workload_params,
) -> dict:
    """Run the full Table 2 grid; returns {(system, workload): result}."""
    results = {}
    for system_key in systems:
        for workload in workloads:
            results[(system_key, workload)] = run_workload(
                system_key, workload, base_spec, **workload_params
            )
    return results
