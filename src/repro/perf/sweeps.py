"""Parameter sweeps around Table 2.

The paper reports single points; these sweeps show where the conclusions
live in parameter space:

* **Update-daemon interval** — the delayed/no-order system's time and its
  data-loss window both scale with the flush interval; Rio is a flat
  line at zero-loss.
* **Disk bandwidth** — faster disks narrow every disk-bound system's gap
  to Rio; Rio (and MFS) barely move, because they do not wait for the
  disk at all.  Extrapolating this sweep is the NVM/persistent-memory
  research lineage the paper seeded.
* **Working-set size** — Rio's write-avoidance grows with the amount of
  data that would otherwise need reliability writes.
"""

from __future__ import annotations

from dataclasses import replace

from repro.disk import DiskParameters
from repro.perf.runner import run_workload
from repro.system import SystemSpec
from repro.workloads.cp_rm import CpRmParams


def sweep_update_interval(
    intervals_s: tuple = (0.25, 0.5, 1.0, 2.0, 4.0),
    systems: tuple = ("ufs_delayed", "rio_prot"),
    cp_rm_params: CpRmParams | None = None,
) -> dict:
    """cp+rm time as a function of the update daemon's flush interval.

    Returns {(system, interval): seconds}."""
    results = {}
    for interval in intervals_s:
        for system in systems:
            result = run_workload(
                system,
                "cp_rm",
                cp_rm_params=cp_rm_params,
                update_interval_s=interval,
            )
            results[(system, interval)] = result.seconds
    return results


def sweep_disk_bandwidth(
    bandwidths_mb_s: tuple = (2, 5, 10, 20, 40),
    systems: tuple = ("wt_write", "ufs", "rio_prot"),
    cp_rm_params: CpRmParams | None = None,
) -> dict:
    """cp+rm time as a function of disk media bandwidth.

    Returns {(system, bandwidth): seconds}."""
    results = {}
    for bandwidth in bandwidths_mb_s:
        base = SystemSpec(
            fs_blocks=2048,
            disk=DiskParameters(bandwidth_bytes_per_sec=bandwidth * 1024 * 1024),
        )
        for system in systems:
            result = run_workload(
                system, "cp_rm", base_spec=base, cp_rm_params=cp_rm_params
            )
            results[(system, bandwidth)] = result.seconds
    return results


def sweep_working_set(
    scales: tuple = (1, 2, 4),
    systems: tuple = ("wt_write", "rio_prot"),
) -> dict:
    """cp+rm time as the copied tree grows.

    Returns {(system, scale): seconds}."""
    results = {}
    for scale in scales:
        params = CpRmParams(dirs=4 * scale, files_per_dir=8, mean_file_bytes=16 * 1024)
        base = SystemSpec(fs_blocks=max(2048, 512 * scale * 2))
        for system in systems:
            result = run_workload(
                system, "cp_rm", base_spec=base, cp_rm_params=params
            )
            results[(system, scale)] = result.seconds
    return results


def format_sweep(results: dict, x_label: str) -> str:
    systems = sorted({system for system, _ in results})
    xs = sorted({x for _, x in results})
    lines = [f"{x_label:>12s}  " + "".join(f"{s:>14s}" for s in systems)]
    for x in xs:
        row = f"{x:>12g}  "
        for system in systems:
            row += f"{results[(system, x)]:>13.2f}s"
        lines.append(row)
    return "\n".join(lines)
