"""Table 2 formatting and the paper's headline performance ratios."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.perf.runner import WORKLOAD_NAMES
from repro.perf.systems import TABLE2_SYSTEMS

WORKLOAD_LABELS = {
    "cp_rm": "cp+rm (seconds)",
    "sdet": "Sdet (5 scripts) (seconds)",
    "andrew": "Andrew (seconds)",
}


@dataclass
class Table2:
    """Structured Table 2 results."""

    results: dict = field(default_factory=dict)  # (system, workload) -> WorkloadResult

    def seconds(self, system: str, workload: str) -> float:
        return self.results[(system, workload)].seconds

    def ratio(self, slow_system: str, fast_system: str, workload: str) -> float:
        """How many times faster ``fast_system`` is on ``workload``."""
        fast = self.seconds(fast_system, workload)
        if fast <= 0:
            return float("inf")
        return self.seconds(slow_system, workload) / fast

    def ratio_range(self, slow_system: str, fast_system: str) -> tuple[float, float]:
        ratios = [
            self.ratio(slow_system, fast_system, w)
            for w in WORKLOAD_NAMES
            if (slow_system, w) in self.results and (fast_system, w) in self.results
        ]
        return (min(ratios), max(ratios))


def format_table2(table: Table2) -> str:
    """Render in the paper's Table 2 layout."""
    name_width = 44
    col_width = 18
    header = (
        "System".ljust(name_width)
        + "Data Permanent".ljust(50)
        + "".join(WORKLOAD_LABELS[w].ljust(col_width + 10) for w in WORKLOAD_NAMES)
    )
    lines = [header, "-" * len(header)]
    for row in TABLE2_SYSTEMS:
        line = row.label.ljust(name_width) + row.data_permanent.ljust(50)
        for workload in WORKLOAD_NAMES:
            result = table.results.get((row.key, workload))
            line += (result.cell() if result else "-").ljust(col_width + 10)
        lines.append(line)
    return "\n".join(lines)


def ratio_summary(table: Table2) -> dict:
    """The paper's headline claims, as measured ratio ranges:

    * Rio is 4-22x as fast as the write-through systems,
    * 2-14x as fast as the default UFS,
    * 1-3x as fast as the delayed (no-order) UFS,
    * protection adds essentially no overhead,
    * Rio performs about as fast as MFS.
    """
    rio = "rio_prot"
    summary = {
        "rio_vs_wt_write": table.ratio_range("wt_write", rio),
        "rio_vs_wt_close": table.ratio_range("wt_close", rio),
        "rio_vs_ufs": table.ratio_range("ufs", rio),
        "rio_vs_delayed": table.ratio_range("ufs_delayed", rio),
        "rio_vs_advfs": table.ratio_range("advfs", rio),
        "protection_overhead": table.ratio_range("rio_prot", "rio_noprot"),
        "rio_vs_mfs": table.ratio_range("rio_prot", "mfs"),
    }
    return summary


def format_ratio_summary(summary: dict) -> str:
    lines = ["Headline ratios (min-max across workloads):"]
    labels = {
        "rio_vs_wt_write": "Rio vs UFS write-through-on-write (paper: 4-22x)",
        "rio_vs_wt_close": "Rio vs UFS write-through-on-close (paper: 4-22x)",
        "rio_vs_ufs": "Rio vs default UFS                (paper: 2-14x)",
        "rio_vs_delayed": "Rio vs UFS delayed/no-order       (paper: 1-3x)",
        "rio_vs_advfs": "Rio vs AdvFS",
        "protection_overhead": "Rio+P time / Rio-P time           (paper: ~1.0x)",
        "rio_vs_mfs": "Rio time / MFS time               (paper: ~1.0x)",
    }
    for key, (low, high) in summary.items():
        lines.append(f"  {labels.get(key, key)}: {low:.1f}x - {high:.1f}x")
    return "\n".join(lines)
