"""The eight rows of Table 2 as SystemSpecs."""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core import ProtectionMode, RioConfig
from repro.system import SystemSpec


@dataclass(frozen=True)
class Table2System:
    key: str
    label: str
    data_permanent: str


TABLE2_SYSTEMS: tuple[Table2System, ...] = (
    Table2System("mfs", "Memory File System", "never"),
    Table2System(
        "ufs_delayed", "UFS with delayed data and metadata", "after 0-30 seconds, asynchronous"
    ),
    Table2System("advfs", "AdvFS (log metadata updates)", "after 0-30 seconds, asynchronous"),
    Table2System(
        "ufs", "UFS", "data after 64 KB, asynchronous; metadata synchronous"
    ),
    Table2System(
        "wt_close", "UFS with write-through after each close", "after close, synchronous"
    ),
    Table2System(
        "wt_write", "UFS with write-through after each write", "after write, synchronous"
    ),
    Table2System("rio_noprot", "Rio without protection", "after write, synchronous"),
    Table2System("rio_prot", "Rio with protection", "after write, synchronous"),
)

TABLE2_KEYS = tuple(s.key for s in TABLE2_SYSTEMS)


def spec_for_row(key: str, base: SystemSpec | None = None) -> SystemSpec:
    """The SystemSpec for one Table 2 row.

    Performance runs disable the detection checksums (experimental
    apparatus of the reliability study, not part of the measured system).
    """
    base = base or SystemSpec()
    if key == "mfs":
        # Root stays disk-backed (the source tree must come off a disk,
        # as on the paper's testbed); the benchmark target is the MFS
        # mounted at /mfs.
        return replace(
            base, fs_type="ufs", policy="ufs_delayed", rio=None, mfs_mount="/mfs"
        )
    if key == "advfs":
        return replace(base, fs_type="advfs", policy="advfs", rio=None)
    if key in ("ufs_delayed", "ufs", "wt_close", "wt_write"):
        return replace(base, fs_type="ufs", policy=key, rio=None)
    if key == "rio_noprot":
        return replace(
            base,
            fs_type="ufs",
            policy="rio",
            rio=RioConfig(protection=ProtectionMode.NONE, maintain_checksums=False),
        )
    if key == "rio_prot":
        return replace(
            base,
            fs_type="ufs",
            policy="rio",
            rio=RioConfig(protection=ProtectionMode.VM_KSEG, maintain_checksums=False),
        )
    if key == "rio_patch":
        # The code-patching ablation (section 2.1's 20-50% penalty).
        return replace(
            base,
            fs_type="ufs",
            policy="rio",
            rio=RioConfig(
                protection=ProtectionMode.CODE_PATCHING, maintain_checksums=False
            ),
        )
    raise KeyError(f"unknown Table 2 row {key!r}")
